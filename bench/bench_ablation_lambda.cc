// Ablation A2: the relevance/diversity mixing parameter λ.
//
// The paper fixes λ = 0.15 for both OptSelect and xQuAD, citing the value
// that maximized α-NDCG@20 in Santos et al. [24]. This ablation sweeps λ
// over [0, 1] on the TREC-shaped testbed and reports α-NDCG@20 and
// IA-P@20, showing how sensitive each algorithm is to the mixture and
// where the testbed's own optimum lies.
//
// Usage: bench_ablation_lambda [--topics N] (default 25)

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "eval/diversity_evaluator.h"
#include "pipeline/diversification_pipeline.h"
#include "pipeline/testbed.h"
#include "util/table_printer.h"

namespace {
using namespace optselect;  // NOLINT(build/namespaces)
}  // namespace

int main(int argc, char** argv) {
  size_t num_topics = 25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--topics") == 0 && i + 1 < argc) {
      num_topics = static_cast<size_t>(std::atoi(argv[++i]));
    }
  }

  pipeline::TestbedConfig config = pipeline::TestbedConfig::TrecShaped();
  config.universe.num_topics = num_topics;
  std::printf("Building testbed (%zu topics)...\n", num_topics);
  pipeline::Testbed testbed(config);

  pipeline::PipelineParams params;
  params.num_candidates = 1000;
  params.results_per_specialization = 20;
  params.threshold_c = 0.0;
  params.diversify.k = 1000;
  pipeline::DiversificationPipeline pipe(&testbed, params);

  const corpus::TopicSet& topics = testbed.corpus().topics;
  eval::DiversityEvaluator::Options eopt;
  eopt.cutoffs = {20};
  eval::DiversityEvaluator evaluator(&topics, &testbed.corpus().qrels,
                                     eopt);

  // Prepare once; λ only affects selection.
  std::vector<pipeline::DiversifiedResult> prepared;
  for (const corpus::TrecTopic& topic : topics.topics()) {
    prepared.push_back(pipe.Prepare(topic.query));
  }

  const std::vector<double> lambdas = {0.0, 0.05, 0.15, 0.3,
                                       0.5, 0.7,  0.9,  1.0};
  const double threshold_c = 0.3;  // the sparsifying regime (see Table 3)
  // One fixed cutoff for the whole sweep — threshold once, in place,
  // instead of deep-copying every matrix per (λ, algorithm) pair.
  for (pipeline::DiversifiedResult& prep : prepared) {
    prep.utilities.ThresholdInPlace(threshold_c);
  }

  util::TablePrinter tp;
  tp.SetHeader({"lambda", "OptSelect aN@20", "OptSelect IA@20",
                "xQuAD aN@20", "xQuAD IA@20"});
  for (double lambda : lambdas) {
    std::vector<std::string> row{util::TablePrinter::Num(lambda, 2)};
    for (const char* name_cstr : {"optselect", "xquad"}) {
      const std::string name = name_cstr;
      std::unique_ptr<core::Diversifier> algo =
          std::move(core::MakeDiversifier(name)).value();
      core::DiversifyParams dp;
      dp.k = params.diversify.k;
      dp.lambda = lambda;
      eval::Run run;
      run.name = name;
      for (size_t t = 0; t < prepared.size(); ++t) {
        const pipeline::DiversifiedResult& prep = prepared[t];
        const corpus::TrecTopic& topic = topics.topic(t);
        if (!prep.specializations.ambiguous() ||
            prep.input.candidates.empty()) {
          run.rankings[topic.id] =
              pipeline::AssembleRanking(prep.input, {}, dp.k);
          continue;
        }
        run.rankings[topic.id] = pipeline::AssembleRanking(
            prep.input, algo->Select(prep.input, prep.utilities, dp),
            dp.k);
      }
      eval::MetricRow metrics = evaluator.Evaluate(run);
      row.push_back(util::TablePrinter::Num(metrics.alpha_ndcg[20], 3));
      row.push_back(util::TablePrinter::Num(metrics.ia_precision[20], 3));
    }
    tp.AddRow(std::move(row));
  }
  std::printf("\nLambda ablation (threshold c = 0.3, k = 1000, "
              "metrics @20):\n\n%s\n", tp.ToString().c_str());
  std::printf("Paper uses lambda = 0.15 for both algorithms.\n");
  return 0;
}
