// Streaming vs. materialized cold-path selection — the tentpole
// measurement for the streaming top-k diversifier.
//
// Three phases, each gated in-bench (a failed gate exits non-zero and
// records a non-zero correctness param, so check_bench.py catches a
// regressed baseline too):
//
//   1. correctness — every distinct query of a Zipf mix served by a
//      streaming-cold-path node and a materialized-cold-path node over
//      the same plans-off store; rankings must match bit for bit.
//   2. cold-path p50 — strictly sequential replay (one request in
//      flight, workers=1, cache off) through each node; the streaming
//      p50 must not exceed the materialized p50 by more than the
//      tolerance (arg 2; 0 disables the gate for sanitizer runs, whose
//      instrumentation distorts relative timings).
//   3. extend — a pager's k -> k+delta widening on retained core state:
//      Finalize(k) then Finalize(k+delta) on one StreamingTopK that
//      reserved k+delta, asserted to perform ZERO additional pushes
//      (the operation-count bound — a fresh run pays n) and to equal a
//      fresh k+delta run bit for bit.
//
// Output: a human table plus BENCH_streaming_select.json (bench_util).
//
//   bench_streaming_select [requests] [p50_tolerance]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/streaming_select.h"
#include "pipeline/testbed.h"
#include "querylog/popularity.h"
#include "serving/replay.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

struct SequentialRun {
  double wall_ms = 0;
  double qps = 0;
  serving::ServingStats stats;
  std::string metrics_json;
};

SequentialRun RunSequential(const store::DiversificationStore* store,
                            const pipeline::Testbed* testbed,
                            serving::ServingConfig config,
                            const std::vector<std::string>& mix) {
  serving::ServingNode node(store, testbed, config);
  serving::ReplayOutcome out = serving::ReplaySequential(
      [&](const std::string& query) { return node.Serve(query); }, mix,
      nullptr, nullptr);
  SequentialRun r;
  r.wall_ms = out.wall_ms;
  r.qps = out.qps;
  r.stats = node.Stats();
  node.Shutdown();
  r.metrics_json = node.metrics().RenderJson();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000;
  // p50 gate: streaming_p50 <= materialized_p50 * tolerance. 0 disables
  // (sanitizer smokes); the default leaves headroom for timer noise on
  // loaded CI hosts while still catching a streaming path that lost its
  // advantage wholesale.
  double p50_tolerance = argc > 2 ? std::atof(argv[2]) : 1.25;

  std::printf("building testbed + plans-off store...\n");
  pipeline::Testbed testbed(pipeline::TestbedConfig::Small());
  std::vector<std::string> roots;
  for (const auto& topic : testbed.universe().topics) {
    roots.push_back(topic.root_query);
  }
  // Plans off: compiled plans preempt the cold path on both nodes, and
  // the cold path is the thing being measured.
  store::StoreBuilderOptions store_opts;
  store_opts.compile_plans = false;
  store::DiversificationStore store;
  store::BuildStore(testbed.detector(), testbed.searcher(),
                    testbed.snippets(), testbed.analyzer(),
                    testbed.corpus().store, roots, store_opts, &store);

  util::Rng rng(77);
  std::vector<std::string> mix = querylog::ZipfQueryMix(
      testbed.recommender().popularity(), num_requests, 1.0, &rng);

  serving::ServingConfig base;
  base.num_workers = 1;  // sequential replay: latency, not pool scaling
  base.queue_capacity = std::max<size_t>(64, num_requests);
  base.max_batch = 1;
  base.enable_cache = false;  // every request pays the cold path
  base.params.num_candidates = 200;
  base.params.diversify.k = 10;

  serving::ServingConfig streaming_config = base;
  streaming_config.streaming_cold_path = true;
  serving::ServingConfig materialized_config = base;
  materialized_config.streaming_cold_path = false;

  bench::BenchJsonWriter json("streaming_select");
  util::TablePrinter tp;
  tp.SetHeader({"phase", "wall ms", "QPS", "p50 ms", "p99 ms"});
  int exit_code = 0;

  // ---- phase 1: bit-identity over every distinct query ---------------
  size_t mismatches = 0;
  std::set<std::string> distinct(mix.begin(), mix.end());
  {
    util::WallTimer timer;
    serving::ServingNode streaming(&store, &testbed, streaming_config);
    serving::ServingNode materialized(&store, &testbed,
                                      materialized_config);
    size_t streamed = 0;
    for (const std::string& q : distinct) {
      serving::ServeResult s = streaming.Serve(q);
      serving::ServeResult m = materialized.Serve(q);
      if (s.ranking != m.ranking || s.diversified != m.diversified) {
        std::fprintf(stderr, "FATAL: streaming ranking diverged for '%s'\n",
                     q.c_str());
        ++mismatches;
      }
      if (s.streaming_served) ++streamed;
    }
    double wall_ms = timer.ElapsedMillis();
    if (streamed == 0) {
      std::fprintf(stderr,
                   "FATAL: no distinct query took the streaming cold "
                   "path — the bench measured nothing\n");
      ++mismatches;
    }
    std::printf("bit-identity: %zu distinct queries, %zu streamed, %zu "
                "mismatches\n",
                distinct.size(), streamed, mismatches);
    json.Add("bit-identity",
             {{"distinct", static_cast<double>(distinct.size())},
              {"streamed", static_cast<double>(streamed)},
              {"mismatches", static_cast<double>(mismatches)}},
             wall_ms,
             wall_ms > 0
                 ? 1000.0 * static_cast<double>(2 * distinct.size()) /
                       wall_ms
                 : 0.0);
    if (mismatches > 0) exit_code = 1;
  }

  // ---- phase 2: sequential cold-path p50 -----------------------------
  SequentialRun streaming_run =
      RunSequential(&store, &testbed, streaming_config, mix);
  SequentialRun materialized_run =
      RunSequential(&store, &testbed, materialized_config, mix);
  json.SetMetricsJson(streaming_run.metrics_json);

  auto add_run = [&](const std::string& name, const SequentialRun& r,
                     const char* backend, double failures) {
    tp.AddRow({name, util::TablePrinter::Num(r.wall_ms, 1),
               util::TablePrinter::Num(r.qps, 0),
               util::TablePrinter::Num(r.stats.p50_ms, 3),
               util::TablePrinter::Num(r.stats.p99_ms, 3)});
    json.Add(name,
             {{"requests", static_cast<double>(num_requests)},
              {"p50_ms", r.stats.p50_ms},
              {"p99_ms", r.stats.p99_ms},
              {"streaming_served",
               static_cast<double>(r.stats.streaming_served)},
              {"failures", failures}},
             r.wall_ms, r.qps, {{"backend", backend}});
  };

  double p50_failures = 0;
  double ratio = materialized_run.stats.p50_ms > 0
                     ? streaming_run.stats.p50_ms /
                           materialized_run.stats.p50_ms
                     : 1.0;
  if (p50_tolerance > 0 && ratio > p50_tolerance) {
    std::fprintf(stderr,
                 "FATAL: streaming p50 %.3f ms exceeds materialized "
                 "p50 %.3f ms by more than %.2fx\n",
                 streaming_run.stats.p50_ms,
                 materialized_run.stats.p50_ms, p50_tolerance);
    p50_failures = 1;
    exit_code = 1;
  }
  add_run("streaming cold-path", streaming_run, "streaming", p50_failures);
  add_run("materialized cold-path", materialized_run, "materialized", 0);
  std::printf("%s", tp.ToString().c_str());
  std::printf("cold-path p50: streaming %.3f ms vs materialized %.3f ms "
              "(%.2fx%s)\n",
              streaming_run.stats.p50_ms, materialized_run.stats.p50_ms,
              ratio,
              p50_tolerance > 0 ? "" : ", gate disabled");

  // ---- phase 3: Extend(k -> k+delta) on retained state ---------------
  {
    const size_t n = 20000;
    const size_t m = 8;
    const size_t k = 10;
    const size_t delta = 10;
    util::Rng extend_rng(41);
    bench::TimingInstance ti = bench::MakeTimingInstance(&extend_rng, n, m);
    std::vector<double> probs(m);
    for (size_t j = 0; j < m; ++j) {
      probs[j] = ti.input.specializations[j].probability;
    }
    auto push_all = [&](core::StreamingTopK* stream, size_t max_k) {
      stream->Begin(probs.data(), m, max_k, 0.15);
      for (size_t i = 0; i < n; ++i) {
        if (stream->CanPrune(ti.input.candidates[i].relevance)) {
          stream->Skip();
          continue;
        }
        // UtilityMatrix is row-major [candidate][specialization].
        stream->Push(i, ti.input.candidates[i].relevance,
                     ti.utilities.data() + i * m);
      }
    };

    core::StreamingTopK reserved;
    util::WallTimer stream_timer;
    push_all(&reserved, k + delta);
    double full_stream_ms = stream_timer.ElapsedMillis();

    std::vector<size_t> first_page;
    std::vector<size_t> widened;
    reserved.Finalize(k, &first_page);
    size_t pushes_before_extend = reserved.pushed();
    util::WallTimer extend_timer;
    reserved.Finalize(k + delta, &widened);
    double extend_ms = extend_timer.ElapsedMillis();
    size_t extend_pushes = reserved.pushed() - pushes_before_extend;

    core::StreamingTopK fresh;
    util::WallTimer fresh_timer;
    push_all(&fresh, k + delta);
    std::vector<size_t> fresh_widened;
    fresh.Finalize(k + delta, &fresh_widened);
    double fresh_ms = fresh_timer.ElapsedMillis();

    size_t extend_failures = 0;
    if (extend_pushes != 0) {
      std::fprintf(stderr,
                   "FATAL: Extend re-pushed %zu candidates; widening "
                   "must reuse retained state\n",
                   extend_pushes);
      ++extend_failures;
    }
    if (widened != fresh_widened) {
      std::fprintf(stderr,
                   "FATAL: Extend(k -> k+delta) != fresh k+delta run\n");
      ++extend_failures;
    }
    if (widened.size() <= first_page.size()) {
      std::fprintf(stderr, "FATAL: widening did not grow the page\n");
      ++extend_failures;
    }
    std::printf(
        "extend: n=%zu stream %.3f ms, Extend(%zu -> %zu) %.4f ms "
        "(0 pushes; fresh rerun %.3f ms)%s\n",
        n, full_stream_ms, k, k + delta, extend_ms, fresh_ms,
        extend_failures == 0 ? "" : " FAILED");
    json.Add("extend",
             {{"n", static_cast<double>(n)},
              {"k", static_cast<double>(k)},
              {"delta", static_cast<double>(delta)},
              {"stream_pushes", static_cast<double>(reserved.pushed())},
              {"extend_pushes", static_cast<double>(extend_pushes)},
              {"extend_us", extend_ms * 1000.0},
              {"fresh_us", fresh_ms * 1000.0},
              {"failures", static_cast<double>(extend_failures)}},
             full_stream_ms,
             full_stream_ms > 0
                 ? 1000.0 * static_cast<double>(n) / full_stream_ms
                 : 0.0);
    if (extend_failures > 0) exit_code = 1;
  }

  util::Status s = json.WriteFile();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_streaming_select.json (%zu records)\n",
              json.size());
  return exit_code;
}
