// Micro-benchmarks of the SIMD selection kernels (core/kernels) — the
// per-primitive numbers behind the plan-serving and utility-phase
// speedups: weighted row sums, overall-score fusion, and the sparse
// AoS·SoA dot product, each timed for the scalar reference AND the
// runtime-dispatched table (AVX2/NEON where the host has them).
//
// Every dispatched timing doubles as a determinism check: the timed
// outputs are compared bit-for-bit against the scalar reference over
// the same data, and any difference is counted in the record's
// `mismatches` param — a correctness key check_bench.py pins to zero,
// so a kernel that silently drifts from the canonical blocked order
// fails CI even if it got faster. The dispatched records also gate
// throughput (qps = kernel invocations/sec) against the checked-in
// baseline; scalar records are emitted for the human speedup column.
//
// Self-contained on purpose (no Google Benchmark): fixed rep counts,
// preallocated inputs, results folded into a sink so nothing is
// dead-code-eliminated. Under OPTSELECT_KERNELS=scalar the dispatched
// rows time the scalar table and the speedup column reads 1.0x — the
// sanitizer/forced-scalar smoke still exercises every code path.
//
//   bench_micro_core [rep_scale]
//
// rep_scale (default 1.0) multiplies every rep count — drop it to 0.1
// for sanitizer smokes, raise it for stable numbers on quiet hosts.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/kernels/kernels.h"
#include "text/term_vector.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

std::vector<double> RandomDoubles(util::Rng* rng, size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->UniformDouble();
  return v;
}

/// One timed + checked primitive run: `body(ops, sink)` executes `reps`
/// passes over the preallocated data with the given kernel table.
struct KernelTiming {
  double wall_ms = 0;
  double ops_per_sec = 0;  ///< kernel invocations (not reps) per second
  double sink = 0;         ///< fold of every result; defeats DCE
};

template <typename Body>
KernelTiming TimeKernel(const core::kernels::Ops& ops, size_t reps,
                        size_t calls_per_rep, const Body& body) {
  KernelTiming t;
  util::WallTimer timer;
  for (size_t r = 0; r < reps; ++r) t.sink += body(ops);
  t.wall_ms = timer.ElapsedMillis();
  double calls = static_cast<double>(reps * calls_per_rep);
  t.ops_per_sec = t.wall_ms > 0 ? 1000.0 * calls / t.wall_ms : 0.0;
  return t;
}

struct BenchContext {
  bench::BenchJsonWriter* json;
  util::TablePrinter* table;
  size_t* total_mismatches;
};

/// Emits the scalar + dispatched records for one primitive. `run`
/// returns the timing for a kernel table; `check` counts bitwise
/// scalar-vs-dispatched output differences over the same data.
template <typename Run, typename Check>
void Record(const BenchContext& ctx, const std::string& name,
            const std::vector<std::pair<std::string, double>>& shape,
            const Run& run, const Check& check) {
  const core::kernels::Ops& scalar = core::kernels::Scalar();
  const core::kernels::Ops& active = core::kernels::Active();
  KernelTiming st = run(scalar);
  KernelTiming at = run(active);
  size_t mismatches = check();
  *ctx.total_mismatches += mismatches;

  double speedup = at.ops_per_sec > 0 && st.ops_per_sec > 0
                       ? at.ops_per_sec / st.ops_per_sec
                       : 0.0;
  ctx.table->AddRow(
      {name, active.name, util::TablePrinter::Num(st.ops_per_sec / 1e6, 2),
       util::TablePrinter::Num(at.ops_per_sec / 1e6, 2),
       util::TablePrinter::Num(speedup, 2),
       util::TablePrinter::Num(static_cast<double>(mismatches), 0)});

  std::vector<std::pair<std::string, double>> params = shape;
  params.emplace_back("mismatches", static_cast<double>(mismatches));
  // Scalar reference row: ungated context for the speedup column.
  ctx.json->Add(name + "/scalar", shape, st.wall_ms, st.ops_per_sec,
                {{"target", "scalar"}});
  // Dispatched row: qps and mismatches both gate against the baseline.
  ctx.json->Add(name, params, at.wall_ms, at.ops_per_sec,
                {{"target", active.name}});
}

}  // namespace

int main(int argc, char** argv) {
  double rep_scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  if (!(rep_scale > 0)) {
    std::fprintf(stderr, "usage: %s [rep_scale > 0]\n", argv[0]);
    return 2;
  }
  auto scaled = [rep_scale](size_t reps) {
    size_t r = static_cast<size_t>(static_cast<double>(reps) * rep_scale);
    return r == 0 ? size_t{1} : r;
  };

  std::printf("kernel dispatch target: %s\n", core::kernels::ActiveName());

  bench::BenchJsonWriter json("micro_core");
  util::TablePrinter table;
  table.SetHeader({"kernel", "target", "scalar Mops", "dispatched Mops",
                   "speedup", "mismatches"});
  size_t total_mismatches = 0;
  BenchContext ctx{&json, &table, &total_mismatches};
  util::Rng rng(2011);

  // ---- weighted_row_sum: Σ_j P(q'_j|q)·U[i][j] over utility rows -----
  {
    const size_t n = 1024, m = 32;
    std::vector<double> rows = RandomDoubles(&rng, n * m);
    std::vector<double> prob = RandomDoubles(&rng, m);
    auto run = [&](const core::kernels::Ops& ops) {
      return TimeKernel(ops, scaled(2000), n,
                        [&](const core::kernels::Ops& o) {
                          double acc = 0;
                          for (size_t i = 0; i < n; ++i) {
                            acc += o.weighted_row_sum(rows.data() + i * m,
                                                      prob.data(), m);
                          }
                          return acc;
                        });
    };
    auto check = [&] {
      size_t bad = 0;
      for (size_t i = 0; i < n; ++i) {
        double want = core::kernels::Scalar().weighted_row_sum(
            rows.data() + i * m, prob.data(), m);
        double got = core::kernels::Active().weighted_row_sum(
            rows.data() + i * m, prob.data(), m);
        if (got != want) ++bad;
      }
      return bad;
    };
    Record(ctx, "weighted_row_sum",
           {{"n", static_cast<double>(n)}, {"m", static_cast<double>(m)}},
           run, check);
  }

  // ---- overall_from_weighted: the plan-serving fusion loop -----------
  {
    const size_t n = 4096;
    const double lambda = 0.5, m_scale = 8.0;
    std::vector<double> rel = RandomDoubles(&rng, n);
    std::vector<double> weighted = RandomDoubles(&rng, n);
    std::vector<double> out(n);
    auto run = [&](const core::kernels::Ops& ops) {
      return TimeKernel(ops, scaled(8000), n,
                        [&](const core::kernels::Ops& o) {
                          o.overall_from_weighted(rel.data(),
                                                  weighted.data(), n, lambda,
                                                  m_scale, out.data());
                          return out[0] + out[n - 1];
                        });
    };
    auto check = [&] {
      std::vector<double> want(n), got(n);
      core::kernels::Scalar().overall_from_weighted(
          rel.data(), weighted.data(), n, lambda, m_scale, want.data());
      core::kernels::Active().overall_from_weighted(
          rel.data(), weighted.data(), n, lambda, m_scale, got.data());
      size_t bad = 0;
      for (size_t i = 0; i < n; ++i) bad += got[i] != want[i];
      return bad;
    };
    Record(ctx, "overall_from_weighted", {{"n", static_cast<double>(n)}},
           run, check);
  }

  // ---- overall_from_rows: streaming cold path's fused row scorer -----
  {
    const size_t n = 512, m = 16;
    const double lambda = 0.7;
    std::vector<double> rel = RandomDoubles(&rng, n);
    std::vector<double> rows = RandomDoubles(&rng, n * m);
    std::vector<double> prob = RandomDoubles(&rng, m);
    std::vector<double> out(n);
    auto run = [&](const core::kernels::Ops& ops) {
      return TimeKernel(ops, scaled(4000), n,
                        [&](const core::kernels::Ops& o) {
                          o.overall_from_rows(rel.data(), rows.data(),
                                              prob.data(), n, m, lambda,
                                              out.data());
                          return out[0] + out[n - 1];
                        });
    };
    auto check = [&] {
      std::vector<double> want(n), got(n);
      core::kernels::Scalar().overall_from_rows(rel.data(), rows.data(),
                                                prob.data(), n, m, lambda,
                                                want.data());
      core::kernels::Active().overall_from_rows(rel.data(), rows.data(),
                                                prob.data(), n, m, lambda,
                                                got.data());
      size_t bad = 0;
      for (size_t i = 0; i < n; ++i) bad += got[i] != want[i];
      return bad;
    };
    Record(ctx, "overall_from_rows",
           {{"n", static_cast<double>(n)}, {"m", static_cast<double>(m)}},
           run, check);
  }

  // ---- dot_aos_soa: the utility phase's sparse cosine core -----------
  {
    // ~64-term vectors, ~50% term overlap — the store-v4 surrogate shape.
    const size_t pairs = 64;
    std::vector<std::vector<text::TermVector::Entry>> lhs(pairs);
    std::vector<std::vector<uint32_t>> rhs_terms(pairs);
    std::vector<std::vector<double>> rhs_weights(pairs);
    for (size_t p = 0; p < pairs; ++p) {
      for (uint32_t t = 0; t < 128; ++t) {
        if (rng.Bernoulli(0.5)) {
          lhs[p].push_back({t, rng.UniformDouble() + 0.1});
        }
        if (rng.Bernoulli(0.5)) {
          rhs_terms[p].push_back(t);
          rhs_weights[p].push_back(rng.UniformDouble() + 0.1);
        }
      }
    }
    auto dot_all = [&](const core::kernels::Ops& o) {
      double acc = 0;
      for (size_t p = 0; p < pairs; ++p) {
        acc += o.dot_aos_soa(lhs[p].data(), lhs[p].size(),
                             rhs_terms[p].data(), rhs_weights[p].data(),
                             rhs_terms[p].size());
      }
      return acc;
    };
    auto run = [&](const core::kernels::Ops& ops) {
      return TimeKernel(ops, scaled(20000), pairs, dot_all);
    };
    auto check = [&] {
      size_t bad = 0;
      for (size_t p = 0; p < pairs; ++p) {
        double want = core::kernels::Scalar().dot_aos_soa(
            lhs[p].data(), lhs[p].size(), rhs_terms[p].data(),
            rhs_weights[p].data(), rhs_terms[p].size());
        double got = core::kernels::Active().dot_aos_soa(
            lhs[p].data(), lhs[p].size(), rhs_terms[p].data(),
            rhs_weights[p].data(), rhs_terms[p].size());
        if (got != want) ++bad;
      }
      return bad;
    };
    Record(ctx, "dot_aos_soa", {{"pairs", static_cast<double>(pairs)}}, run,
           check);
  }

  std::printf("%s", table.ToString().c_str());
  if (total_mismatches > 0) {
    std::fprintf(stderr,
                 "FATAL: %zu dispatched kernel outputs differ from the "
                 "scalar reference\n",
                 total_mismatches);
  }

  util::Status s = json.WriteFile();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_micro_core.json (%zu records)\n", json.size());
  return total_mismatches == 0 ? 0 : 1;
}
