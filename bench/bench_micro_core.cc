// Micro-benchmarks of the primitives on the diversification hot path:
// sparse cosine, utility computation, bounded-heap pushes, DPH scoring,
// and end-to-end top-k search over a synthetic index.

#include <vector>

#include <benchmark/benchmark.h>

#include "core/bounded_heap.h"
#include "core/utility.h"
#include "corpus/synthetic_corpus.h"
#include "index/inverted_index.h"
#include "index/searcher.h"
#include "synth/topic_universe.h"
#include "text/analyzer.h"
#include "text/term_vector.h"
#include "util/rng.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

text::TermVector RandomVector(util::Rng* rng, size_t terms,
                              size_t vocab = 5000) {
  std::vector<text::TermVector::Entry> entries;
  entries.reserve(terms);
  for (size_t i = 0; i < terms; ++i) {
    entries.emplace_back(static_cast<text::TermId>(rng->Uniform(vocab)),
                         rng->UniformDouble() + 0.1);
  }
  return text::TermVector::FromEntries(std::move(entries));
}

void BM_SparseCosine(benchmark::State& state) {
  util::Rng rng(1);
  const size_t terms = static_cast<size_t>(state.range(0));
  text::TermVector a = RandomVector(&rng, terms);
  text::TermVector b = RandomVector(&rng, terms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Cosine(b));
  }
}
BENCHMARK(BM_SparseCosine)->Arg(16)->Arg(32)->Arg(128);

void BM_UtilityAgainstReferenceList(benchmark::State& state) {
  util::Rng rng(2);
  text::TermVector doc = RandomVector(&rng, 32);
  std::vector<text::TermVector> rq_prime;
  for (int i = 0; i < 20; ++i) rq_prime.push_back(RandomVector(&rng, 32));
  core::UtilityComputer computer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(computer.NormalizedUtility(doc, rq_prime));
  }
}
BENCHMARK(BM_UtilityAgainstReferenceList);

void BM_BoundedHeapPush(benchmark::State& state) {
  util::Rng rng(3);
  const size_t capacity = static_cast<size_t>(state.range(0));
  std::vector<double> keys(65536);
  for (double& k : keys) k = rng.UniformDouble();
  size_t i = 0;
  core::BoundedTopK<size_t> heap(capacity);
  for (auto _ : state) {
    heap.Push(keys[i & 65535], i);
    ++i;
  }
}
BENCHMARK(BM_BoundedHeapPush)->Arg(10)->Arg(100)->Arg(1000);

void BM_TopKSearch(benchmark::State& state) {
  synth::TopicUniverseConfig ucfg;
  ucfg.num_topics = 10;
  auto universe = synth::GenerateTopicUniverse(ucfg, 0);
  corpus::SyntheticCorpusConfig ccfg;
  ccfg.docs_per_intent = 20;
  ccfg.background_docs = 2000;
  auto corpus = corpus::GenerateSyntheticCorpus(ccfg, universe.topics);
  text::Analyzer analyzer;
  index::InvertedIndex index =
      index::InvertedIndex::Build(corpus.store, &analyzer);
  index::Searcher searcher(&index, &analyzer);
  const std::string query = universe.topics[0].root_query;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        searcher.Search(query, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_TopKSearch)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
