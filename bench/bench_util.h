// Shared helpers for the benchmark binaries: synthetic problem instances
// for selection-phase timing, shaped like the paper's Table 2 workload.

#ifndef OPTSELECT_BENCH_BENCH_UTIL_H_
#define OPTSELECT_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/candidate.h"
#include "core/utility.h"
#include "util/rng.h"

namespace optselect {
namespace bench {

/// A timing instance: n candidates, m specializations, cluster-structured
/// utilities (each candidate is strongly useful for one specialization,
/// weakly or not at all for the others), Zipf-flavored probabilities.
struct TimingInstance {
  core::DiversificationInput input;
  core::UtilityMatrix utilities;
};

inline TimingInstance MakeTimingInstance(util::Rng* rng, size_t n,
                                         size_t m) {
  TimingInstance ti;
  ti.input.query = "bench";
  ti.utilities = core::UtilityMatrix(n, m);

  double norm = 0;
  std::vector<double> probs(m);
  for (size_t j = 0; j < m; ++j) {
    probs[j] = 1.0 / static_cast<double>(j + 1);
    norm += probs[j];
  }
  for (size_t j = 0; j < m; ++j) {
    core::SpecializationProfile sp;
    sp.query = "bench s" + std::to_string(j);
    sp.probability = probs[j] / norm;
    ti.input.specializations.push_back(std::move(sp));
  }

  ti.input.candidates.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    core::Candidate c;
    c.doc = static_cast<DocId>(i);
    c.relevance = rng->UniformDouble();
    ti.input.candidates.push_back(std::move(c));
    size_t home = rng->Uniform(m);
    ti.utilities.Set(i, home, 0.3 + 0.7 * rng->UniformDouble());
    // Mild off-cluster leakage for realism.
    if (rng->Bernoulli(0.2)) {
      ti.utilities.Set(i, (home + 1) % m, 0.1 * rng->UniformDouble());
    }
  }
  return ti;
}

}  // namespace bench
}  // namespace optselect

#endif  // OPTSELECT_BENCH_BENCH_UTIL_H_
