// Shared helpers for the benchmark binaries: synthetic problem instances
// for selection-phase timing, shaped like the paper's Table 2 workload,
// plus a machine-readable JSON emitter so CI and tooling can track bench
// numbers without parsing the human tables.

#ifndef OPTSELECT_BENCH_BENCH_UTIL_H_
#define OPTSELECT_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/candidate.h"
#include "core/utility.h"
#include "util/rng.h"
#include "util/status.h"

namespace optselect {
namespace bench {

/// A timing instance: n candidates, m specializations, cluster-structured
/// utilities (each candidate is strongly useful for one specialization,
/// weakly or not at all for the others), Zipf-flavored probabilities.
struct TimingInstance {
  core::DiversificationInput input;
  core::UtilityMatrix utilities;
};

inline TimingInstance MakeTimingInstance(util::Rng* rng, size_t n,
                                         size_t m) {
  TimingInstance ti;
  ti.input.query = "bench";
  ti.utilities = core::UtilityMatrix(n, m);

  double norm = 0;
  std::vector<double> probs(m);
  for (size_t j = 0; j < m; ++j) {
    probs[j] = 1.0 / static_cast<double>(j + 1);
    norm += probs[j];
  }
  for (size_t j = 0; j < m; ++j) {
    core::SpecializationProfile sp;
    sp.query = "bench s" + std::to_string(j);
    sp.probability = probs[j] / norm;
    ti.input.specializations.push_back(std::move(sp));
  }

  ti.input.candidates.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    core::Candidate c;
    c.doc = static_cast<DocId>(i);
    c.relevance = rng->UniformDouble();
    ti.input.candidates.push_back(std::move(c));
    size_t home = rng->Uniform(m);
    ti.utilities.Set(i, home, 0.3 + 0.7 * rng->UniformDouble());
    // Mild off-cluster leakage for realism.
    if (rng->Bernoulli(0.2)) {
      ti.utilities.Set(i, (home + 1) % m, 0.1 * rng->UniformDouble());
    }
  }
  return ti;
}

/// Collects benchmark records and writes them as `BENCH_<bench>.json`
/// next to the working directory, one object per record:
///
///   { "bench": "serving_throughput",
///     "records": [ { "name": "workers=4", "wall_ms": 812.1,
///                    "qps": 1231.5, "params": { "workers": 4 } }, ... ] }
///
/// Values are plain doubles; parameter maps are flat. Emit alongside the
/// human-readable table, never instead of it.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Adds one record. `params` is a flat list of (key, value) pairs;
  /// `tags` are string-valued params rendered as quoted JSON strings in
  /// the same "params" object (e.g. {"backend", "streaming"}).
  /// check_bench.py only gates correctness keys and `*_ms` params, so
  /// tags are descriptive, never compared numerically.
  void Add(const std::string& name,
           const std::vector<std::pair<std::string, double>>& params,
           double wall_ms, double qps,
           const std::vector<std::pair<std::string, std::string>>& tags =
               {}) {
    records_.push_back(Record{name, params, tags, wall_ms, qps});
  }

  /// Attaches a metrics-registry snapshot — the verbatim output of
  /// obs::MetricsRegistry::RenderJson() — embedded under the document's
  /// top-level "metrics" key. Benches with a serving component call
  /// this right after the measured run; benches without one emit the
  /// default empty object. check_bench.py compares only "records" (and
  /// within them only baseline-known keys), so the block is context for
  /// humans and tooling, never a gate.
  void SetMetricsJson(std::string registry_json) {
    metrics_json_ = std::move(registry_json);
  }

  /// Renders the full document.
  std::string ToJson() const {
    std::string out = "{\n  \"bench\": \"" + Escape(bench_name_) +
                      "\",\n  \"records\": [";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    { \"name\": \"" + Escape(r.name) + "\"";
      out += ", \"wall_ms\": " + FormatDouble(r.wall_ms);
      out += ", \"qps\": " + FormatDouble(r.qps);
      out += ", \"params\": {";
      for (size_t j = 0; j < r.params.size(); ++j) {
        out += j == 0 ? " " : ", ";
        out += "\"" + Escape(r.params[j].first) +
               "\": " + FormatDouble(r.params[j].second);
      }
      for (size_t j = 0; j < r.tags.size(); ++j) {
        out += r.params.empty() && j == 0 ? " " : ", ";
        out += "\"" + Escape(r.tags[j].first) + "\": \"" +
               Escape(r.tags[j].second) + "\"";
      }
      out += r.params.empty() && r.tags.empty() ? "}" : " }";
      out += " }";
    }
    out += records_.empty() ? "]" : "\n  ]";
    out += ",\n  \"metrics\": ";
    out += metrics_json_.empty() ? "{}" : metrics_json_;
    out += "\n}\n";
    return out;
  }

  /// Every numeric value must be finite: NaN/Inf have no JSON encoding
  /// and would break .github/check_bench.py's comparisons. A NaN here
  /// always means a broken measurement (0/0 on an empty phase), so it
  /// is rejected loudly instead of laundered into a parseable number.
  util::Status Validate() const {
    for (const Record& r : records_) {
      if (!std::isfinite(r.wall_ms) || !std::isfinite(r.qps)) {
        return util::Status::InvalidArgument(
            "record '" + r.name + "': non-finite wall_ms/qps");
      }
      for (const auto& [key, value] : r.params) {
        if (!std::isfinite(value)) {
          return util::Status::InvalidArgument(
              "record '" + r.name + "': non-finite param '" + key + "'");
        }
      }
    }
    return util::Status::Ok();
  }

  /// Writes `BENCH_<bench_name>.json` into `dir` ("." by default).
  /// Refuses (without writing) when Validate() fails.
  util::Status WriteFile(const std::string& dir = ".") const {
    OPTSELECT_RETURN_IF_ERROR(Validate());
    std::string path = dir + "/BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return util::Status::IoError("cannot open " + path);
    }
    std::string doc = ToJson();
    size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    // fclose flushes stdio's buffer; a failure there (e.g. ENOSPC) is a
    // failed write even when fwrite reported success.
    bool closed_ok = std::fclose(f) == 0;
    if (written != doc.size() || !closed_ok) {
      return util::Status::IoError("short write to " + path);
    }
    return util::Status::Ok();
  }

  size_t size() const { return records_.size(); }

 private:
  struct Record {
    std::string name;
    std::vector<std::pair<std::string, double>> params;
    std::vector<std::pair<std::string, std::string>> tags;
    double wall_ms = 0;
    double qps = 0;
  };

  /// JSON string escaping per RFC 8259: quote, backslash, and every
  /// control character (common ones by short escape, the rest \u00XX).
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      unsigned char u = static_cast<unsigned char>(c);
      switch (c) {
        case '"':  out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (u < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", u);
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  }

  /// Non-finite values render as JSON null (printf would emit the
  /// unparseable bare tokens nan/inf); WriteFile rejects them first, so
  /// null only ever appears via a direct ToJson call.
  static std::string FormatDouble(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::string bench_name_;
  std::vector<Record> records_;
  /// Pre-rendered JSON object (see SetMetricsJson); "{}" when unset.
  std::string metrics_json_;
};

}  // namespace bench
}  // namespace optselect

#endif  // OPTSELECT_BENCH_BENCH_UTIL_H_
