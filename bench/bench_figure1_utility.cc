// Reproduces Figure 1 and the Appendix C utility evaluation: "Average
// utility per number of specializations referring to the AOL and MSN
// query logs".
//
// Protocol (Appendix C): split each log 70/30 chronologically; train the
// mining stack on the first part; for every ambiguous query detected in
// the test part, retrieve |R_q| = 200 results from the black-box engine
// (the paper used Yahoo! BOSS; here the DPH engine over the synthetic
// corpus stands in), diversify with OptSelect (|R_q′| = k = 20), and
// report the ratio
//      Σ_{d ∈ S} Ũ(d|q)  /  Σ_{d ∈ top-k(R_q)} Ũ(d|q)
// bucketed by the number of mined specializations |S_q|. The paper
// observes ratios of ~5–10; the shape this reproduction verifies is a
// mean ratio well above 1 on both logs (see EXPERIMENTS.md for why the
// magnitude is smaller against our synthetic engine substitute).
//
// Usage: bench_figure1_utility [--topics N]

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/optselect.h"
#include "corpus/synthetic_corpus.h"
#include "index/inverted_index.h"
#include "index/searcher.h"
#include "index/snippet_extractor.h"
#include "pipeline/diversification_pipeline.h"
#include "querylog/query_flow_graph.h"
#include "querylog/session_segmenter.h"
#include "querylog/synthetic_log.h"
#include "recommend/ambiguity_detector.h"
#include "recommend/shortcuts_recommender.h"
#include "synth/topic_universe.h"
#include "text/analyzer.h"
#include "util/table_printer.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

// List utility "as in Definition 2" (Appendix C): the normalized
// utilities Ũ(d|R_q′) summed over the list's documents and the mined
// specializations. Definition 2 is per-specialization and carries no
// popularity weighting, so covering more interpretations grows the sum —
// the mechanism behind Figure 1's upward trend in |S_q|.
double ListUtility(const core::DiversificationInput& input,
                   const core::UtilityMatrix& utilities,
                   const std::vector<size_t>& members) {
  double total = 0.0;
  for (size_t i : members) {
    for (size_t j = 0; j < input.specializations.size(); ++j) {
      total += utilities.At(i, j);
    }
  }
  return total;
}

struct SeriesPoint {
  double ratio_sum = 0.0;
  size_t count = 0;
};

}  // namespace

int main(int argc, char** argv) {
  size_t num_topics = 120;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--topics") == 0 && i + 1 < argc) {
      num_topics = static_cast<size_t>(std::atoi(argv[++i]));
    }
  }

  // Universe with a wide specialization range (the figure's x axis spans
  // 2..28 specializations).
  synth::TopicUniverseConfig ucfg;
  ucfg.num_topics = num_topics;
  ucfg.min_intents = 2;
  ucfg.max_intents = 28;
  ucfg.intent_zipf_skew = 0.8;
  synth::TopicUniverse universe = synth::GenerateTopicUniverse(ucfg, 300);

  corpus::SyntheticCorpusConfig ccfg;
  ccfg.docs_per_intent = 6;
  ccfg.proportional_cluster_size = true;
  ccfg.min_docs_per_intent = 3;
  // The engine being re-ranked is a relevance-only black box whose first
  // page for an ambiguous query is dominated by generic root-matching
  // pages (the situation that motivates diversification); utility-rich
  // intent pages sit deeper in the 200-result list.
  ccfg.confusable_docs_per_topic = 40;
  ccfg.background_docs = 2000;
  corpus::SyntheticCorpus corpus =
      corpus::GenerateSyntheticCorpus(ccfg, universe.topics);
  std::printf("Corpus: %zu documents, %zu topics (2..28 specializations)\n",
              corpus.store.size(), corpus.topics.size());

  text::Analyzer analyzer;
  index::InvertedIndex index =
      index::InvertedIndex::Build(corpus.store, &analyzer);
  index::Searcher searcher(&index, &analyzer);
  index::SnippetExtractor snippets(&analyzer, &index);

  // Appendix C parameters: |R_q| = 200, |R_q′| = k = 20.
  pipeline::PipelineParams params;
  params.num_candidates = 200;
  params.results_per_specialization = 20;
  // The deployed configuration zeroes the weak cross-intent similarity
  // floor that query-biased snippets share through the root term (the
  // threshold-c mechanism of Section 5).
  params.threshold_c = 0.3;
  params.diversify.k = 20;
  params.diversify.lambda = 1.0;  // list-utility comparison is λ-free

  core::OptSelectDiversifier optselect;
  util::TablePrinter tp;
  tp.SetHeader({"|Sq|", "AOL ratio", "AOL n", "MSN ratio", "MSN n"});

  std::map<std::string, std::map<size_t, SeriesPoint>> series;
  for (const auto& [log_name, log_config] :
       {std::pair<std::string, querylog::SyntheticLogConfig>{
            "AOL", querylog::AolLikeConfig()},
        {"MSN", querylog::MsnLikeConfig()}}) {
    querylog::SyntheticLogResult log_result =
        querylog::SyntheticLogGenerator(log_config)
            .Generate(universe.topics, universe.noise_queries);

    // 70/30 chronological split (Appendix C).
    querylog::QueryLog train, test;
    log_result.log.SplitChronological(0.7, &train, &test);

    querylog::QueryFlowGraph graph =
        querylog::QueryFlowGraph::Build(train, {});
    std::vector<querylog::Session> sessions =
        querylog::SessionSegmenter().Segment(train, &graph);
    recommend::ShortcutsRecommender recommender;
    recommender.Train(train, sessions);
    // A wide popularity filter (s = 100) keeps the tail specializations
    // of heavily faceted queries — the figure's x axis spans |S_q| up to
    // 28, which the default s = 10 would clip to the head.
    recommend::AmbiguityDetector::Options dopt;
    dopt.popularity_divisor = 100.0;
    dopt.max_candidates = 100;
    recommend::AmbiguityDetector detector(&recommender, dopt);

    pipeline::DiversificationPipeline pipe(&searcher, &snippets, &analyzer,
                                           &corpus.store, &detector, params);

    size_t evaluated = 0;
    for (const synth::TopicSpec& topic : universe.topics) {
      pipeline::DiversifiedResult prep = pipe.Prepare(topic.root_query);
      if (!prep.specializations.ambiguous() ||
          prep.input.candidates.empty()) {
        continue;
      }
      std::vector<size_t> picks =
          optselect.Select(prep.input, prep.utilities, params.diversify);

      // Baseline list: the engine's own top-k.
      std::vector<size_t> topk;
      for (size_t i = 0;
           i < std::min<size_t>(params.diversify.k,
                                prep.input.candidates.size());
           ++i) {
        topk.push_back(i);
      }

      double diversified = ListUtility(prep.input, prep.utilities, picks);
      double original = ListUtility(prep.input, prep.utilities, topk);
      if (original <= 0.0) continue;

      size_t bucket = prep.specializations.size();
      SeriesPoint& point = series[log_name][bucket];
      point.ratio_sum += diversified / original;
      point.count += 1;
      ++evaluated;
    }
    std::printf("%s-like log: %zu records, %zu ambiguous roots evaluated\n",
                log_name.c_str(), log_result.log.size(), evaluated);
  }

  // Merge bucket keys from both series.
  std::map<size_t, bool> buckets;
  for (const auto& [name, pts] : series) {
    for (const auto& [b, p] : pts) buckets[b] = true;
  }
  std::printf("\nFigure 1 reproduction: average utility ratio "
              "(diversified / original top-k) per |S_q|\n\n");
  double overall_sum = 0.0;
  size_t overall_n = 0;
  for (const auto& [bucket, unused] : buckets) {
    std::vector<std::string> row{std::to_string(bucket)};
    for (const char* name_cstr : {"AOL", "MSN"}) {
      const std::string name = name_cstr;
      auto it = series[name].find(bucket);
      if (it == series[name].end() || it->second.count == 0) {
        row.push_back("-");
        row.push_back("0");
      } else {
        double mean = it->second.ratio_sum / it->second.count;
        row.push_back(util::TablePrinter::Num(mean, 2));
        row.push_back(std::to_string(it->second.count));
        overall_sum += it->second.ratio_sum;
        overall_n += it->second.count;
      }
    }
    tp.AddRow(std::move(row));
  }
  std::printf("%s\n", tp.ToString().c_str());
  if (overall_n > 0) {
    std::printf("Overall mean ratio: %.2f over %zu query evaluations "
                "(paper: factors of ~5-10)\n",
                overall_sum / overall_n, overall_n);
  }
  return 0;
}
