// Network serving edge — the wire protocol's cost over in-process
// serving, measured through the same serving::Frontend contract on
// both sides of the socket.
//
// Replays a Zipf-distributed query mix four ways: in-process
// (ServingNode via ReplayMix, the reference), one blocking
// request/response connection, one pipelined connection (window 32),
// and a two-shard server fleet fed by owner-partitioned pipelined
// clients — the same partitioning `optselect serve --shard-index` and
// the in-process ShardedCluster use, so every query is answered by its
// owner shard.
//
// Correctness gates before any timing is trusted: every remote answer
// must hash bit-identical to the in-process node's answer for the same
// mix slot (`mismatches`), every request must be answered ok
// (`failures`), and the servers must shed nothing (`shed`). All three
// are emitted as params pinned to 0 — .github/check_bench.py fails the
// build on a nonzero value, and the bench itself exits non-zero first.
//
// Output: a human table plus BENCH_net_serving.json (bench_util), with
// the single-server run's net_* metrics registry embedded as context.
//
//   bench_net_serving [requests] [zipf_skew]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "pipeline/testbed.h"
#include "querylog/popularity.h"
#include "serving/cache_key.h"
#include "serving/frontend.h"
#include "serving/replay.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

uint64_t RankHash(const std::vector<DocId>& ranking) {
  return util::Fnv1a64(ranking.data(), ranking.size() * sizeof(DocId));
}

/// One timed network run's outcome; the correctness counters gate the
/// timing (the bench exits non-zero when any is nonzero).
struct NetRun {
  double wall_ms = 0;
  double qps = 0;
  uint64_t mismatches = 0;
  uint64_t failures = 0;
  uint64_t shed = 0;
};

serving::ServingConfig NodeConfig(size_t num_requests) {
  serving::ServingConfig config;
  config.num_workers = 2;
  config.queue_capacity = num_requests;
  config.max_batch = 8;
  config.enable_cache = true;
  config.params.num_candidates = 200;
  config.params.diversify.k = 10;
  return config;
}

void TallyAgainstReference(const std::vector<serving::Response>& responses,
                           const std::vector<uint64_t>& want,
                           const std::vector<size_t>& slots, NetRun* run) {
  for (size_t i = 0; i < responses.size(); ++i) {
    const serving::Response& r = responses[i];
    if (!r.ok) {
      ++run->failures;
      continue;
    }
    if (RankHash(r.ranking) != want[slots[i]]) ++run->mismatches;
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  double skew = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("building testbed + store...\n");
  pipeline::Testbed testbed(pipeline::TestbedConfig::Small());
  store::DiversificationStore store;
  std::vector<std::string> roots;
  for (const auto& topic : testbed.universe().topics) {
    roots.push_back(topic.root_query);
  }
  store::BuildStore(testbed.detector(), testbed.searcher(),
                    testbed.snippets(), testbed.analyzer(),
                    testbed.corpus().store, roots, {}, &store);

  util::Rng rng(99);
  std::vector<std::string> mix = querylog::ZipfQueryMix(
      testbed.recommender().popularity(), num_requests, skew, &rng);
  std::vector<size_t> identity_slots(mix.size());
  for (size_t i = 0; i < mix.size(); ++i) identity_slots[i] = i;

  serving::ServingConfig config = NodeConfig(num_requests);

  // ---- in-process reference: per-slot ranking hashes ----------------
  std::vector<uint64_t> want(mix.size(), 0);
  double inproc_wall_ms = 0, inproc_qps = 0;
  {
    serving::ServingNode local(&store, &testbed, config);
    size_t reference_failures = 0;
    serving::ReplaySequential(
        static_cast<serving::Frontend*>(&local), mix, nullptr,
        [&](size_t i, const serving::ServeResult& r) {
          if (!r.ok) {
            ++reference_failures;
            return;
          }
          want[i] = RankHash(r.ranking);
        });
    if (reference_failures != 0) {
      std::fprintf(stderr, "FATAL: %zu in-process reference failures\n",
                   reference_failures);
      return 1;
    }
    // The timed in-process row rides the same Frontend contract the
    // remote clients implement — local and remote replays are the same
    // code path by construction.
    serving::ReplayOutcome out =
        serving::ReplayMix(static_cast<serving::Frontend*>(&local), mix);
    if (out.accepted != mix.size()) {
      std::fprintf(stderr, "FATAL: in-process replay shed %zu requests\n",
                   mix.size() - out.accepted);
      return 1;
    }
    inproc_wall_ms = out.wall_ms;
    inproc_qps = out.qps;
    local.Shutdown();
  }

  // ---- single server: blocking, then pipelined ----------------------
  obs::MetricsRegistry net_registry;
  NetRun blocking, pipelined;
  {
    serving::ServingNode node(&store, &testbed, config);
    net::NetServerConfig sc;
    sc.port = 0;  // ephemeral
    sc.registry = &net_registry;
    net::NetServer server(&node, sc);
    if (!server.Start()) {
      std::fprintf(stderr, "FATAL: server: %s\n", server.last_error().c_str());
      return 1;
    }

    net::RemoteClient client;
    if (!client.Connect("127.0.0.1", server.port())) {
      std::fprintf(stderr, "FATAL: connect: %s\n", client.last_error().c_str());
      return 1;
    }

    {
      std::vector<serving::Response> responses;
      responses.reserve(mix.size());
      util::WallTimer timer;
      for (const std::string& query : mix) {
        responses.push_back(client.Submit(serving::Request(query)));
      }
      blocking.wall_ms = timer.ElapsedMillis();
      TallyAgainstReference(responses, want, identity_slots, &blocking);
    }
    {
      util::WallTimer timer;
      std::vector<serving::Response> responses =
          client.SubmitPipelined(mix, 32);
      pipelined.wall_ms = timer.ElapsedMillis();
      TallyAgainstReference(responses, want, identity_slots, &pipelined);
    }
    client.Close();
    server.Stop();
    blocking.shed = server.stats().shed;  // cumulative: both runs
    pipelined.shed = server.stats().shed;
    node.Shutdown();
  }

  // ---- two-shard fleet: owner-partitioned pipelined clients ---------
  NetRun fleet;
  {
    const size_t kShards = 2;
    std::vector<store::DiversificationStore> slices;
    slices.reserve(kShards);
    for (size_t s = 0; s < kShards; ++s) {
      store::ShardFilter filter;
      filter.num_shards = kShards;
      filter.shard_index = s;
      slices.push_back(store::SplitStore(store, filter));
    }
    std::vector<std::unique_ptr<serving::ServingNode>> nodes;
    std::vector<std::unique_ptr<net::NetServer>> servers;
    for (size_t s = 0; s < kShards; ++s) {
      nodes.push_back(std::make_unique<serving::ServingNode>(
          &slices[s], &testbed, config));
      net::NetServerConfig sc;
      sc.port = 0;
      servers.push_back(std::make_unique<net::NetServer>(nodes[s].get(), sc));
      if (!servers[s]->Start()) {
        std::fprintf(stderr, "FATAL: shard %zu: %s\n", s,
                     servers[s]->last_error().c_str());
        return 1;
      }
    }

    // The same owner hash `serve --shard-index` slices the store by.
    std::vector<std::vector<std::string>> shard_queries(kShards);
    std::vector<std::vector<size_t>> shard_slots(kShards);
    for (size_t i = 0; i < mix.size(); ++i) {
      size_t owner = store::ShardFilter::OwnerShard(
          serving::NormalizeQuery(mix[i]), kShards);
      shard_queries[owner].push_back(mix[i]);
      shard_slots[owner].push_back(i);
    }

    std::vector<std::vector<serving::Response>> shard_responses(kShards);
    std::vector<int> connect_failed(kShards, 0);
    util::WallTimer timer;
    std::vector<std::thread> drivers;
    for (size_t s = 0; s < kShards; ++s) {
      drivers.emplace_back([&, s] {
        net::RemoteClient client;
        if (!client.Connect("127.0.0.1", servers[s]->port())) {
          connect_failed[s] = 1;
          return;
        }
        shard_responses[s] = client.SubmitPipelined(shard_queries[s], 32);
      });
    }
    for (std::thread& t : drivers) t.join();
    fleet.wall_ms = timer.ElapsedMillis();

    for (size_t s = 0; s < kShards; ++s) {
      if (connect_failed[s]) {
        std::fprintf(stderr, "FATAL: shard %zu connect failed\n", s);
        return 1;
      }
      TallyAgainstReference(shard_responses[s], want, shard_slots[s], &fleet);
      servers[s]->Stop();
      fleet.shed += servers[s]->stats().shed;
      nodes[s]->Shutdown();
    }
  }

  // ---- report -------------------------------------------------------
  for (NetRun* run : {&blocking, &pipelined, &fleet}) {
    run->qps = run->wall_ms > 0
                   ? 1000.0 * static_cast<double>(mix.size()) / run->wall_ms
                   : 0.0;
  }
  bool breach = false;
  for (const auto& [name, run] :
       std::vector<std::pair<const char*, const NetRun*>>{
           {"net_blocking", &blocking},
           {"net_pipelined", &pipelined},
           {"net_cluster_2shard", &fleet}}) {
    if (run->mismatches != 0 || run->failures != 0 || run->shed != 0) {
      std::fprintf(stderr,
                   "FATAL: %s: %llu mismatches, %llu failures, %llu shed\n",
                   name,
                   static_cast<unsigned long long>(run->mismatches),
                   static_cast<unsigned long long>(run->failures),
                   static_cast<unsigned long long>(run->shed));
      breach = true;
    }
  }
  if (breach) return 1;
  std::printf("remote bit-identity: OK over %zu requests x 3 network runs\n",
              mix.size());

  bench::BenchJsonWriter json("net_serving");
  util::TablePrinter tp;
  tp.SetHeader({"config", "wall ms", "QPS", "vs in-process"});
  auto add = [&](const std::string& name, double wall_ms, double qps,
                 const NetRun* run, double window, double shards) {
    tp.AddRow({name, util::TablePrinter::Num(wall_ms, 1),
               util::TablePrinter::Num(qps, 0),
               util::TablePrinter::Num(inproc_qps > 0 ? qps / inproc_qps : 0,
                                       2)});
    std::vector<std::pair<std::string, double>> params = {
        {"requests", static_cast<double>(num_requests)},
        {"zipf_skew", skew},
        {"workers", 2.0},
        {"pipeline_window", window},
        {"shards", shards}};
    if (run != nullptr) {
      params.emplace_back("mismatches", static_cast<double>(run->mismatches));
      params.emplace_back("failures", static_cast<double>(run->failures));
      params.emplace_back("shed", static_cast<double>(run->shed));
    }
    json.Add(name, params, wall_ms, qps);
  };
  add("local_inproc", inproc_wall_ms, inproc_qps, nullptr, 0, 1);
  add("net_blocking", blocking.wall_ms, blocking.qps, &blocking, 1, 1);
  add("net_pipelined", pipelined.wall_ms, pipelined.qps, &pipelined, 32, 1);
  add("net_cluster_2shard", fleet.wall_ms, fleet.qps, &fleet, 32, 2);
  json.SetMetricsJson(net_registry.RenderJson());

  std::printf("%s", tp.ToString().c_str());
  if (pipelined.qps > 0 && blocking.qps > 0) {
    std::printf("pipelining (window 32) over blocking round trips: %.1fx\n",
                pipelined.qps / blocking.qps);
  }

  util::Status s = json.WriteFile();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_net_serving.json (%zu records)\n", json.size());
  return 0;
}
