// Hot-reload latency impact — the zero-downtime half of the store
// lifecycle. A ServingNode keeps answering a Zipf query mix while a
// background thread repeatedly rebuilds the store snapshot (one entry's
// specialization distribution perturbed, then restored) and swaps it
// in with ReloadStore. Measured claims, all asserted, not just printed:
//
//   - zero failed requests across every swap (the RCU-style snapshot
//     swap never rejects or drops an in-flight request);
//   - a query whose entry is identical in both snapshot variants keeps
//     a bit-identical ranking through every swap (per-key cache
//     invalidation never touches unchanged keys);
//   - p50/p99 latency under continuous swapping, reported next to the
//     swap-free baseline of the same mix (the swap-window cost);
//   - cold start: mmap+validate of the v4 file beats the heap parse
//     (Load's map + full materialize — what every pre-v4 process paid
//     at startup), with the per-shard resident cost of N MappedShard
//     views over one shared mapping vs N SplitStore heap copies.
//
// Output: a human table plus BENCH_store_reload.json (bench_util).
//
//   bench_store_reload [requests] [swap_period_ms] [zipf_skew]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "pipeline/testbed.h"
#include "store/mapped_store.h"
#include "querylog/popularity.h"
#include "serving/latency_histogram.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"
#include "store/store_snapshot.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

struct PhaseResult {
  double wall_ms = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t failures = 0;          // !ok results or shed submissions
  size_t pinned_mismatches = 0; // pinned-query rankings that diverged
  size_t swaps = 0;             // reloads performed during the phase
};

/// Replays `mix`, recording per-request latency locally. While the
/// phase runs, `swapper` (optional) flips the store between the two
/// entry variants every `swap_period`. `pinned` is a stored query whose
/// entry both variants share; every answer for it must equal
/// `pinned_reference`.
PhaseResult RunPhase(serving::ServingNode* node,
                     const std::vector<std::string>& mix,
                     const std::string& pinned,
                     const std::vector<DocId>& pinned_reference,
                     bool with_swaps, int swap_period_ms,
                     const store::StoredEntry* variant_a,
                     const store::StoredEntry* variant_b) {
  PhaseResult out;
  serving::LatencyHistogram hist;
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  size_t accepted = 0;
  std::atomic<size_t> failures{0};
  std::atomic<size_t> mismatches{0};
  std::atomic<bool> stop_swapper{false};

  std::thread swapper;
  std::atomic<size_t> swaps{0};
  if (with_swaps) {
    swapper = std::thread([&] {
      bool use_b = true;
      while (!stop_swapper.load(std::memory_order_relaxed)) {
        std::shared_ptr<const store::StoreSnapshot> cur = node->snapshot();
        store::StoreDelta delta;
        delta.upserts.push_back(use_b ? *variant_b : *variant_a);
        use_b = !use_b;
        store::SnapshotBuildResult built =
            store::BuildSnapshot(cur.get(), delta);
        node->ReloadStore(built.snapshot, built.changed_keys);
        swaps.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(swap_period_ms));
      }
    });
  }

  util::WallTimer timer;
  for (const std::string& query : mix) {
    bool is_pinned = query == pinned;
    auto enqueue = std::chrono::steady_clock::now();
    bool ok = node->Submit(query, [&, is_pinned,
                                   enqueue](serving::ServeResult r) {
      auto now = std::chrono::steady_clock::now();
      hist.Record(std::chrono::duration_cast<std::chrono::microseconds>(
                      now - enqueue)
                      .count());
      if (!r.ok) failures.fetch_add(1, std::memory_order_relaxed);
      if (is_pinned && r.ranking != pinned_reference) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_one();
    });
    if (ok) {
      ++accepted;
    } else {
      failures.fetch_add(1, std::memory_order_relaxed);
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == accepted; });
  }
  out.wall_ms = timer.ElapsedMillis();
  if (with_swaps) {
    stop_swapper.store(true, std::memory_order_relaxed);
    swapper.join();
  }

  out.qps = out.wall_ms > 0
                ? 1000.0 * static_cast<double>(accepted) / out.wall_ms
                : 0.0;
  out.p50_ms = hist.PercentileMicros(0.50) / 1000.0;
  out.p99_ms = hist.PercentileMicros(0.99) / 1000.0;
  out.failures = failures.load();
  out.pinned_mismatches = mismatches.load();
  out.swaps = swaps.load();
  return out;
}

/// Resident set size from /proc/self/status; -1 when unavailable.
long RssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::atol(line + 6);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

struct ColdStartResult {
  double map_ms = 0;        // min mmap+validate+index time
  double heap_ms = 0;       // min Load (map + materialize) time
  double store_mib = 0;
  long rss_mapped_kb = 0;   // per-shard RSS delta, N MappedShard views
  long rss_heap_kb = 0;     // per-shard RSS delta, N SplitStore copies
  size_t reps = 0;
  size_t shards = 0;
  bool ok = false;          // mmap cold start beat the heap parse
};

/// The startup cost a shard process pays before its first request:
/// min-of-reps mmap+validate vs the legacy heap parse over the same v4
/// bytes, plus the per-shard resident cost of shard views vs copies.
ColdStartResult MeasureColdStart(const store::DiversificationStore& base,
                                 const std::string& path) {
  ColdStartResult out;
  out.reps = 7;
  out.shards = 4;
  out.map_ms = 1e100;
  out.heap_ms = 1e100;
  for (size_t rep = 0; rep < out.reps; ++rep) {
    util::WallTimer map_timer;
    auto mapped = store::MappedStoreFile::Map(path);
    double map_ms = map_timer.ElapsedMillis();
    if (!mapped.ok()) return out;
    out.map_ms = std::min(out.map_ms, map_ms);
    out.store_mib = static_cast<double>(mapped.value()->mapped_bytes()) /
                    (1024.0 * 1024.0);
    util::WallTimer heap_timer;
    auto loaded = store::DiversificationStore::Load(path);
    double heap_ms = heap_timer.ElapsedMillis();
    if (!loaded.ok()) return out;
    out.heap_ms = std::min(out.heap_ms, heap_ms);
  }

  // Per-shard resident cost. The views share one mapping (pages are
  // page-cache-backed, counted once per host); the copies each own a
  // full heap parse of their slice. Deltas are noisy on a small store,
  // so they are reported, not gated.
  auto mapped = store::MappedStoreFile::Map(path);
  if (!mapped.ok()) return out;
  {
    long before = RssKb();
    std::vector<std::shared_ptr<const store::StoreSnapshot>> views;
    for (size_t i = 0; i < out.shards; ++i) {
      store::ShardFilter filter;
      filter.num_shards = out.shards;
      filter.shard_index = i;
      views.push_back(store::StoreSnapshot::MappedShard(
          mapped.value(), [filter](std::string_view key) {
            return filter.Keeps(key);
          }));
    }
    out.rss_mapped_kb =
        std::max(0L, RssKb() - before) / static_cast<long>(out.shards);
  }
  {
    long before = RssKb();
    std::vector<store::DiversificationStore> copies;
    for (size_t i = 0; i < out.shards; ++i) {
      store::ShardFilter filter;
      filter.num_shards = out.shards;
      filter.shard_index = i;
      copies.push_back(store::SplitStore(base, filter));
    }
    out.rss_heap_kb =
        std::max(0L, RssKb() - before) / static_cast<long>(out.shards);
  }
  out.ok = out.map_ms < out.heap_ms;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  int swap_period_ms = argc > 2 ? std::atoi(argv[2]) : 5;
  double skew = argc > 3 ? std::atof(argv[3]) : 1.0;
  if (swap_period_ms < 1) swap_period_ms = 1;

  std::printf("building testbed + store...\n");
  pipeline::Testbed testbed(pipeline::TestbedConfig::Small());
  store::DiversificationStore base;
  std::vector<std::string> roots;
  for (const auto& topic : testbed.universe().topics) {
    roots.push_back(topic.root_query);
  }
  store::BuildStore(testbed.detector(), testbed.searcher(),
                    testbed.snippets(), testbed.analyzer(),
                    testbed.corpus().store, roots, {}, &base);
  if (base.size() < 2) {
    std::fprintf(stderr, "error: need >= 2 stored entries\n");
    return 1;
  }

  // The swap target is the lexically-smallest stored key; the pinned
  // (never-changing) query is the next one. Variant B perturbs the
  // target's specialization distribution, which is exactly what a log
  // refresh does to an entry.
  std::string target_key, pinned_key;
  for (const auto& [key, entry] : base.entries()) {
    if (target_key.empty() || key < target_key) target_key = key;
  }
  for (const auto& [key, entry] : base.entries()) {
    if (key != target_key && (pinned_key.empty() || key < pinned_key)) {
      pinned_key = key;
    }
  }
  store::StoredEntry variant_a = *base.Find(target_key);
  store::StoredEntry variant_b = variant_a;
  double norm = 0;
  variant_b.specializations[0].probability *= 0.5;
  for (const auto& sp : variant_b.specializations) norm += sp.probability;
  for (auto& sp : variant_b.specializations) sp.probability /= norm;

  util::Rng rng(99);
  std::vector<std::string> mix = querylog::ZipfQueryMix(
      testbed.recommender().popularity(), num_requests, skew, &rng);
  // Guarantee pinned coverage inside the measured stream.
  for (size_t i = 16; i < mix.size(); i += 97) mix[i] = pinned_key;

  serving::ServingConfig config;
  config.queue_capacity = num_requests;
  config.max_batch = 8;
  config.params.num_candidates = 200;
  config.params.diversify.k = 10;
  serving::ServingNode node(store::StoreSnapshot::Own(base),
                            &testbed.searcher(), &testbed.snippets(),
                            &testbed.analyzer(), &testbed.corpus().store,
                            config);
  std::vector<DocId> pinned_reference = node.Serve(pinned_key).ranking;

  std::printf("replaying %zu requests, swap every %d ms...\n", num_requests,
              swap_period_ms);
  PhaseResult steady = RunPhase(&node, mix, pinned_key, pinned_reference,
                                false, swap_period_ms, &variant_a,
                                &variant_b);
  PhaseResult reload = RunPhase(&node, mix, pinned_key, pinned_reference,
                                true, swap_period_ms, &variant_a,
                                &variant_b);
  serving::ServingStats stats = node.Stats();

  util::TablePrinter tp;
  tp.SetHeader({"phase", "wall ms", "QPS", "p50 ms", "p99 ms", "swaps",
                "failures"});
  auto row = [&](const char* name, const PhaseResult& r) {
    tp.AddRow({name, util::TablePrinter::Num(r.wall_ms, 1),
               util::TablePrinter::Num(r.qps, 0),
               util::TablePrinter::Num(r.p50_ms, 2),
               util::TablePrinter::Num(r.p99_ms, 2),
               std::to_string(r.swaps), std::to_string(r.failures)});
  };
  row("steady", steady);
  row("under_reload", reload);
  std::printf("%s", tp.ToString().c_str());

  const std::string cold_path = "bench_store_reload_cold_v4.bin";
  if (!base.Save(cold_path).ok()) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", cold_path.c_str());
    return 1;
  }
  ColdStartResult cold = MeasureColdStart(base, cold_path);
  std::remove(cold_path.c_str());
  if (cold.map_ms >= 1e99) {
    std::fprintf(stderr, "FATAL: cold-start measurement failed\n");
    return 1;
  }
  std::printf(
      "cold start (%.1f MiB v4, min of %zu reps): mmap+validate %.3f ms "
      "vs heap parse %.3f ms (%.1fx); per-shard RSS over %zu shards: "
      "%ld KiB mapped views vs %ld KiB heap copies\n",
      cold.store_mib, cold.reps, cold.map_ms, cold.heap_ms,
      cold.map_ms > 0 ? cold.heap_ms / cold.map_ms : 0.0, cold.shards,
      cold.rss_mapped_kb, cold.rss_heap_kb);
  std::printf(
      "store version %llu after %llu reloads, %llu cache invalidations\n",
      static_cast<unsigned long long>(stats.store_version),
      static_cast<unsigned long long>(stats.reloads),
      static_cast<unsigned long long>(stats.cache_invalidations));

  bench::BenchJsonWriter json("store_reload");
  auto record = [&](const char* name, const PhaseResult& r) {
    json.Add(name,
             {{"requests", static_cast<double>(num_requests)},
              {"zipf_skew", skew},
              {"swap_period_ms", static_cast<double>(swap_period_ms)},
              {"swaps", static_cast<double>(r.swaps)},
              {"failures", static_cast<double>(r.failures)},
              {"pinned_mismatches", static_cast<double>(r.pinned_mismatches)},
              {"p50_ms", r.p50_ms},
              {"p99_ms", r.p99_ms}},
             r.wall_ms, r.qps);
  };
  record("steady", steady);
  record("under_reload", reload);
  // Cold-start records: wall_ms is the min startup time (gated with
  // the usual latency slack); `failures` pins "mmap beats heap" as a
  // correctness bit, exactly zero or the gate fails. RSS params are
  // context (too noisy on a Small-testbed store to gate).
  json.Add("cold_start_mmap",
           {{"reps", static_cast<double>(cold.reps)},
            {"shards", static_cast<double>(cold.shards)},
            {"store_mib", cold.store_mib},
            {"rss_per_shard_kb", static_cast<double>(cold.rss_mapped_kb)},
            {"failures", cold.ok ? 0.0 : 1.0}},
           cold.map_ms, 0.0);
  json.Add("cold_start_heap",
           {{"reps", static_cast<double>(cold.reps)},
            {"shards", static_cast<double>(cold.shards)},
            {"store_mib", cold.store_mib},
            {"rss_per_shard_kb", static_cast<double>(cold.rss_heap_kb)},
            {"failures", 0.0}},
           cold.heap_ms, 0.0);
  // Context block: the node's registry after both phases (counters,
  // cache, refresh gauges). Context for humans/tooling, never gated on.
  json.SetMetricsJson(node.metrics().RenderJson());
  util::Status s = json.WriteFile();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_store_reload.json (%zu records)\n", json.size());

  if (steady.failures + reload.failures > 0) {
    std::fprintf(stderr, "FATAL: %zu failed requests\n",
                 steady.failures + reload.failures);
    return 1;
  }
  if (steady.pinned_mismatches + reload.pinned_mismatches > 0) {
    std::fprintf(stderr,
                 "FATAL: %zu pinned-query rankings diverged across swaps\n",
                 steady.pinned_mismatches + reload.pinned_mismatches);
    return 1;
  }
  if (reload.swaps == 0) {
    std::fprintf(stderr, "FATAL: no swap happened during the reload phase\n");
    return 1;
  }
  if (!cold.ok) {
    std::fprintf(stderr,
                 "FATAL: mmap cold start (%.3f ms) did not beat the heap "
                 "parse (%.3f ms)\n",
                 cold.map_ms, cold.heap_ms);
    return 1;
  }
  std::printf("zero failed requests, pinned ranking bit-identical across "
              "%zu swaps, mmap cold start %.1fx faster than heap parse: "
              "OK\n",
              reload.swaps, cold.heap_ms / cold.map_ms);
  return 0;
}
