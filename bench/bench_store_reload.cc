// Hot-reload latency impact — the zero-downtime half of the store
// lifecycle. A ServingNode keeps answering a Zipf query mix while a
// background thread repeatedly rebuilds the store snapshot (one entry's
// specialization distribution perturbed, then restored) and swaps it
// in with ReloadStore. Measured claims, all asserted, not just printed:
//
//   - zero failed requests across every swap (the RCU-style snapshot
//     swap never rejects or drops an in-flight request);
//   - a query whose entry is identical in both snapshot variants keeps
//     a bit-identical ranking through every swap (per-key cache
//     invalidation never touches unchanged keys);
//   - p50/p99 latency under continuous swapping, reported next to the
//     swap-free baseline of the same mix (the swap-window cost).
//
// Output: a human table plus BENCH_store_reload.json (bench_util).
//
//   bench_store_reload [requests] [swap_period_ms] [zipf_skew]

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "pipeline/testbed.h"
#include "querylog/popularity.h"
#include "serving/latency_histogram.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"
#include "store/store_snapshot.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

struct PhaseResult {
  double wall_ms = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t failures = 0;          // !ok results or shed submissions
  size_t pinned_mismatches = 0; // pinned-query rankings that diverged
  size_t swaps = 0;             // reloads performed during the phase
};

/// Replays `mix`, recording per-request latency locally. While the
/// phase runs, `swapper` (optional) flips the store between the two
/// entry variants every `swap_period`. `pinned` is a stored query whose
/// entry both variants share; every answer for it must equal
/// `pinned_reference`.
PhaseResult RunPhase(serving::ServingNode* node,
                     const std::vector<std::string>& mix,
                     const std::string& pinned,
                     const std::vector<DocId>& pinned_reference,
                     bool with_swaps, int swap_period_ms,
                     const store::StoredEntry* variant_a,
                     const store::StoredEntry* variant_b) {
  PhaseResult out;
  serving::LatencyHistogram hist;
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  size_t accepted = 0;
  std::atomic<size_t> failures{0};
  std::atomic<size_t> mismatches{0};
  std::atomic<bool> stop_swapper{false};

  std::thread swapper;
  std::atomic<size_t> swaps{0};
  if (with_swaps) {
    swapper = std::thread([&] {
      bool use_b = true;
      while (!stop_swapper.load(std::memory_order_relaxed)) {
        std::shared_ptr<const store::StoreSnapshot> cur = node->snapshot();
        store::StoreDelta delta;
        delta.upserts.push_back(use_b ? *variant_b : *variant_a);
        use_b = !use_b;
        store::SnapshotBuildResult built =
            store::BuildSnapshot(cur.get(), delta);
        node->ReloadStore(built.snapshot, built.changed_keys);
        swaps.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(swap_period_ms));
      }
    });
  }

  util::WallTimer timer;
  for (const std::string& query : mix) {
    bool is_pinned = query == pinned;
    auto enqueue = std::chrono::steady_clock::now();
    bool ok = node->Submit(query, [&, is_pinned,
                                   enqueue](serving::ServeResult r) {
      auto now = std::chrono::steady_clock::now();
      hist.Record(std::chrono::duration_cast<std::chrono::microseconds>(
                      now - enqueue)
                      .count());
      if (!r.ok) failures.fetch_add(1, std::memory_order_relaxed);
      if (is_pinned && r.ranking != pinned_reference) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_one();
    });
    if (ok) {
      ++accepted;
    } else {
      failures.fetch_add(1, std::memory_order_relaxed);
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == accepted; });
  }
  out.wall_ms = timer.ElapsedMillis();
  if (with_swaps) {
    stop_swapper.store(true, std::memory_order_relaxed);
    swapper.join();
  }

  out.qps = out.wall_ms > 0
                ? 1000.0 * static_cast<double>(accepted) / out.wall_ms
                : 0.0;
  out.p50_ms = hist.PercentileMicros(0.50) / 1000.0;
  out.p99_ms = hist.PercentileMicros(0.99) / 1000.0;
  out.failures = failures.load();
  out.pinned_mismatches = mismatches.load();
  out.swaps = swaps.load();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  int swap_period_ms = argc > 2 ? std::atoi(argv[2]) : 5;
  double skew = argc > 3 ? std::atof(argv[3]) : 1.0;
  if (swap_period_ms < 1) swap_period_ms = 1;

  std::printf("building testbed + store...\n");
  pipeline::Testbed testbed(pipeline::TestbedConfig::Small());
  store::DiversificationStore base;
  std::vector<std::string> roots;
  for (const auto& topic : testbed.universe().topics) {
    roots.push_back(topic.root_query);
  }
  store::BuildStore(testbed.detector(), testbed.searcher(),
                    testbed.snippets(), testbed.analyzer(),
                    testbed.corpus().store, roots, {}, &base);
  if (base.size() < 2) {
    std::fprintf(stderr, "error: need >= 2 stored entries\n");
    return 1;
  }

  // The swap target is the lexically-smallest stored key; the pinned
  // (never-changing) query is the next one. Variant B perturbs the
  // target's specialization distribution, which is exactly what a log
  // refresh does to an entry.
  std::string target_key, pinned_key;
  for (const auto& [key, entry] : base.entries()) {
    if (target_key.empty() || key < target_key) target_key = key;
  }
  for (const auto& [key, entry] : base.entries()) {
    if (key != target_key && (pinned_key.empty() || key < pinned_key)) {
      pinned_key = key;
    }
  }
  store::StoredEntry variant_a = *base.Find(target_key);
  store::StoredEntry variant_b = variant_a;
  double norm = 0;
  variant_b.specializations[0].probability *= 0.5;
  for (const auto& sp : variant_b.specializations) norm += sp.probability;
  for (auto& sp : variant_b.specializations) sp.probability /= norm;

  util::Rng rng(99);
  std::vector<std::string> mix = querylog::ZipfQueryMix(
      testbed.recommender().popularity(), num_requests, skew, &rng);
  // Guarantee pinned coverage inside the measured stream.
  for (size_t i = 16; i < mix.size(); i += 97) mix[i] = pinned_key;

  serving::ServingConfig config;
  config.queue_capacity = num_requests;
  config.max_batch = 8;
  config.params.num_candidates = 200;
  config.params.diversify.k = 10;
  serving::ServingNode node(store::StoreSnapshot::Own(base),
                            &testbed.searcher(), &testbed.snippets(),
                            &testbed.analyzer(), &testbed.corpus().store,
                            config);
  std::vector<DocId> pinned_reference = node.Serve(pinned_key).ranking;

  std::printf("replaying %zu requests, swap every %d ms...\n", num_requests,
              swap_period_ms);
  PhaseResult steady = RunPhase(&node, mix, pinned_key, pinned_reference,
                                false, swap_period_ms, &variant_a,
                                &variant_b);
  PhaseResult reload = RunPhase(&node, mix, pinned_key, pinned_reference,
                                true, swap_period_ms, &variant_a,
                                &variant_b);
  serving::ServingStats stats = node.Stats();

  util::TablePrinter tp;
  tp.SetHeader({"phase", "wall ms", "QPS", "p50 ms", "p99 ms", "swaps",
                "failures"});
  auto row = [&](const char* name, const PhaseResult& r) {
    tp.AddRow({name, util::TablePrinter::Num(r.wall_ms, 1),
               util::TablePrinter::Num(r.qps, 0),
               util::TablePrinter::Num(r.p50_ms, 2),
               util::TablePrinter::Num(r.p99_ms, 2),
               std::to_string(r.swaps), std::to_string(r.failures)});
  };
  row("steady", steady);
  row("under_reload", reload);
  std::printf("%s", tp.ToString().c_str());
  std::printf(
      "store version %llu after %llu reloads, %llu cache invalidations\n",
      static_cast<unsigned long long>(stats.store_version),
      static_cast<unsigned long long>(stats.reloads),
      static_cast<unsigned long long>(stats.cache_invalidations));

  bench::BenchJsonWriter json("store_reload");
  auto record = [&](const char* name, const PhaseResult& r) {
    json.Add(name,
             {{"requests", static_cast<double>(num_requests)},
              {"zipf_skew", skew},
              {"swap_period_ms", static_cast<double>(swap_period_ms)},
              {"swaps", static_cast<double>(r.swaps)},
              {"failures", static_cast<double>(r.failures)},
              {"pinned_mismatches", static_cast<double>(r.pinned_mismatches)},
              {"p50_ms", r.p50_ms},
              {"p99_ms", r.p99_ms}},
             r.wall_ms, r.qps);
  };
  record("steady", steady);
  record("under_reload", reload);
  // Context block: the node's registry after both phases (counters,
  // cache, refresh gauges). Context for humans/tooling, never gated on.
  json.SetMetricsJson(node.metrics().RenderJson());
  util::Status s = json.WriteFile();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_store_reload.json (%zu records)\n", json.size());

  if (steady.failures + reload.failures > 0) {
    std::fprintf(stderr, "FATAL: %zu failed requests\n",
                 steady.failures + reload.failures);
    return 1;
  }
  if (steady.pinned_mismatches + reload.pinned_mismatches > 0) {
    std::fprintf(stderr,
                 "FATAL: %zu pinned-query rankings diverged across swaps\n",
                 steady.pinned_mismatches + reload.pinned_mismatches);
    return 1;
  }
  if (reload.swaps == 0) {
    std::fprintf(stderr, "FATAL: no swap happened during the reload phase\n");
    return 1;
  }
  std::printf("zero failed requests, pinned ranking bit-identical across "
              "%zu swaps: OK\n",
              reload.swaps);
  return 0;
}
