// Scaling benchmark for ParallelOptSelect — the paper's future work
// (iii): diversification running in parallel with (or like) the sharded
// document-scoring phase. Measures the selection stage across thread
// counts at Table 2's largest workload sizes; the output must stay
// bit-identical to serial OptSelect (asserted here on every run).

#include <cstdlib>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/optselect.h"
#include "core/parallel_optselect.h"
#include "util/rng.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)
using bench::MakeTimingInstance;
using bench::TimingInstance;

void BM_ParallelOptSelect(benchmark::State& state) {
  util::Rng rng(7);
  TimingInstance ti =
      MakeTimingInstance(&rng, static_cast<size_t>(state.range(0)), 6);
  core::DiversifyParams params;
  params.k = 1000;

  core::OptSelectDiversifier serial;
  core::ParallelOptSelectDiversifier parallel(
      static_cast<size_t>(state.range(1)));
  if (serial.Select(ti.input, ti.utilities, params) !=
      parallel.Select(ti.input, ti.utilities, params)) {
    state.SkipWithError("parallel result diverged from serial");
    return;
  }
  for (auto _ : state) {
    auto picks = parallel.Select(ti.input, ti.utilities, params);
    benchmark::DoNotOptimize(picks);
  }
}

}  // namespace

// Args: {n, threads}; threads = 1 is the serial-equivalent baseline.
BENCHMARK(BM_ParallelOptSelect)
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({100000, 8})
    ->Args({1000000, 1})
    ->Args({1000000, 2})
    ->Args({1000000, 4})
    ->Args({1000000, 8})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
