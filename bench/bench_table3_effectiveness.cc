// Reproduces Table 3: "Values of α-NDCG, and IA-P for OptSelect, xQuAD,
// and IASelect by varying the threshold c" over the TREC-shaped synthetic
// testbed (50 topics, 3–8 subtopics, subtopic-level qrels).
//
// Setup mirrors Section 5: DPH baseline, |R_q′| = 20, k = 1000, λ = 0.15,
// α = 0.5, cutoffs {5, 10, 20, 100, 1000}, c ∈ {0, .05, .10, .15, .20,
// .25, .35, .50, .75}. The corpus is the synthetic ClueWeb-B stand-in, so
// absolute metric values differ from the paper; the shapes to verify:
//   (1) diversified runs beat the DPH baseline at early cutoffs,
//   (2) OptSelect and xQuAD are comparable, IASelect trails,
//   (3) large c degrades every method toward the baseline,
//   (4) differences between OptSelect and xQuAD are not significant
//       under the Wilcoxon signed-rank test at the 0.05 level.
//
// Usage: bench_table3_effectiveness [--topics N] (default: 50)

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "eval/diversity_evaluator.h"
#include "eval/wilcoxon.h"
#include "pipeline/diversification_pipeline.h"
#include "pipeline/testbed.h"
#include "util/table_printer.h"

namespace {

using namespace optselect;           // NOLINT(build/namespaces)
using pipeline::DiversificationPipeline;
using pipeline::DiversifiedResult;
using pipeline::PipelineParams;
using pipeline::Testbed;
using pipeline::TestbedConfig;
using util::TablePrinter;

const std::vector<double> kThresholds = {0.0,  0.05, 0.10, 0.15, 0.20,
                                         0.25, 0.35, 0.50, 0.75};
const std::vector<size_t> kCutoffs = {5, 10, 20, 100, 1000};

std::vector<std::string> MetricCells(const eval::MetricRow& row) {
  std::vector<std::string> cells;
  for (size_t c : kCutoffs) {
    cells.push_back(TablePrinter::Num(row.alpha_ndcg.at(c), 3));
  }
  for (size_t c : kCutoffs) {
    cells.push_back(TablePrinter::Num(row.ia_precision.at(c), 3));
  }
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_topics = 50;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--topics") == 0 && i + 1 < argc) {
      num_topics = static_cast<size_t>(std::atoi(argv[++i]));
    }
  }

  TestbedConfig config = TestbedConfig::TrecShaped();
  config.universe.num_topics = num_topics;
  std::printf("Building TREC-shaped testbed (%zu topics)...\n", num_topics);
  Testbed testbed(config);
  std::printf("  corpus: %zu docs, log: %zu records, sessions: %zu\n\n",
              testbed.corpus().store.size(), testbed.log_result().log.size(),
              testbed.sessions().size());

  PipelineParams params;
  params.num_candidates = 2000;  // |R_q|: effectively every matching doc
  params.results_per_specialization = 20;  // |R_q'| = 20 (paper)
  params.threshold_c = 0.0;                // raw utilities; c applied below
  params.diversify.k = 1000;
  params.diversify.lambda = 0.15;
  DiversificationPipeline pipe(&testbed, params);

  const corpus::TopicSet& topics = testbed.corpus().topics;
  const corpus::Qrels& qrels = testbed.corpus().qrels;
  eval::DiversityEvaluator::Options eopt;
  eopt.alpha = 0.5;
  eopt.cutoffs = kCutoffs;
  eval::DiversityEvaluator evaluator(&topics, &qrels, eopt);

  // Prepare each topic once (retrieval + mining + raw utilities).
  std::printf("Preparing %zu topics (retrieval + Algorithm 1 + utilities)"
              "...\n", topics.size());
  std::vector<DiversifiedResult> prepared;
  eval::Run baseline;
  baseline.name = "DPH Baseline";
  size_t detected = 0;
  for (const corpus::TrecTopic& topic : topics.topics()) {
    prepared.push_back(pipe.Prepare(topic.query));
    baseline.rankings[topic.id] =
        pipeline::AssembleRanking(prepared.back().input, {}, params.diversify.k);
    if (prepared.back().specializations.ambiguous()) ++detected;
  }
  std::printf("  ambiguous topics detected: %zu / %zu\n\n", detected,
              topics.size());

  TablePrinter tp;
  tp.SetHeader({"run", "c", "aN@5", "aN@10", "aN@20", "aN@100", "aN@1000",
                "IA@5", "IA@10", "IA@20", "IA@100", "IA@1000"});
  eval::MetricRow base_row = evaluator.Evaluate(baseline);
  {
    std::vector<std::string> cells{"DPH Baseline", "-"};
    for (const std::string& c : MetricCells(base_row)) cells.push_back(c);
    tp.AddRow(std::move(cells));
    tp.AddSeparator();
  }

  // For the significance check: remember per-topic α-NDCG@20 of OptSelect
  // and xQuAD at each threshold.
  std::map<double, std::map<std::string, std::vector<double>>> per_topic;

  for (const char* name_cstr : {"optselect", "xquad", "iaselect"}) {
    const std::string name = name_cstr;
    std::unique_ptr<core::Diversifier> algo =
        std::move(core::MakeDiversifier(name)).value();
    // kThresholds ascends, and thresholding is monotone in c, so one
    // working copy per topic sharpened in place replaces a deep copy
    // per (algorithm, threshold, topic) triple.
    std::vector<core::UtilityMatrix> work;
    work.reserve(prepared.size());
    for (const DiversifiedResult& prep : prepared) {
      work.push_back(prep.utilities);
    }
    for (double c : kThresholds) {
      eval::Run run;
      run.name = algo->name();
      for (size_t t = 0; t < prepared.size(); ++t) {
        const DiversifiedResult& prep = prepared[t];
        const corpus::TrecTopic& topic = topics.topic(t);
        if (!prep.specializations.ambiguous() ||
            prep.input.candidates.empty()) {
          run.rankings[topic.id] = baseline.rankings[topic.id];
          continue;
        }
        work[t].ThresholdInPlace(c);
        std::vector<size_t> picks =
            algo->Select(prep.input, work[t], params.diversify);
        run.rankings[topic.id] =
            pipeline::AssembleRanking(prep.input, picks, params.diversify.k);
      }
      eval::MetricRow row = evaluator.Evaluate(run);
      std::vector<std::string> cells{row.run_name,
                                     TablePrinter::Num(c, 2)};
      for (const std::string& cell : MetricCells(row)) cells.push_back(cell);
      tp.AddRow(std::move(cells));
      per_topic[c][name] = evaluator.PerTopicAlphaNdcg(run, 20);
    }
    tp.AddSeparator();
  }
  std::printf("%s\n", tp.ToString().c_str());

  // Wilcoxon signed-rank OptSelect vs xQuAD on per-topic α-NDCG@20 (the
  // paper reports no significant differences at the 0.05 level).
  std::printf("Wilcoxon signed-rank (OptSelect vs xQuAD, α-NDCG@20):\n");
  for (double c : kThresholds) {
    eval::WilcoxonResult w = eval::WilcoxonSignedRank(
        per_topic[c]["optselect"], per_topic[c]["xquad"]);
    std::printf("  c=%.2f  n=%2zu  W+=%7.1f  W-=%7.1f  p=%.4f  %s\n", c,
                w.n, w.w_plus, w.w_minus, w.p_value,
                w.Significant(0.05) ? "SIGNIFICANT" : "not significant");
  }
  return 0;
}
