// Horizontal scaling of the sharded serving cluster — the deployment
// dimension the paper's per-node efficiency argument exists to serve:
// OptSelect is cheap enough per node that aggregate capacity should
// grow with the number of nodes, not with heroics inside one.
//
// Replays one Zipf query mix against a single ServingNode and against
// ShardedClusters of 1, 2, and 4 shards (one worker per shard — each
// shard models one machine of a homogeneous fleet), cache OFF so every
// request pays the full retrieve + diversify compute, plans OFF so the
// measured work is the per-request path whose flat worker scaling
// motivated the cluster (see docs/BENCH.md). A final configuration
// replicates the hottest stored queries onto every shard and spreads
// them round-robin.
//
// Asserted, not just printed:
//   - every distinct query's cluster ranking is bit-identical to the
//     single-node path, for every shard count and with hot replication
//     (replicas serve from non-owner shards);
//   - per-shard stores partition the full store exactly (no replication);
//   - zero failed requests; cluster stats aggregation is consistent;
//   - on hosts with >= 4 hardware threads: aggregate cache-off QPS
//     scales >= 2x from 1 shard to 4 shards. On fewer cores the ratio
//     is reported but not enforced (no parallel speedup exists to
//     measure; the bench prints SKIP with the reason).
//
// Output: a human table plus BENCH_cluster_scaling.json (bench_util).
//
//   bench_cluster_scaling [requests] [zipf_skew] [min_scaling]
//
// `min_scaling` (default 2.0) is the enforced 1 -> 4 shard QPS ratio;
// 0 disables the enforcement while keeping every correctness assert —
// for sanitizer runs, where the instrumented allocator serializes the
// very threads the ratio measures.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/sharded_cluster.h"
#include "pipeline/testbed.h"
#include "querylog/popularity.h"
#include "serving/latency_histogram.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

struct PhaseResult {
  double wall_ms = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t failures = 0;
};

/// Replays `mix` through an async submit function (node or cluster),
/// recording per-request latency locally; wall spans first submit to
/// last completion.
PhaseResult RunPhase(
    const std::function<bool(const std::string&,
                             std::function<void(serving::ServeResult)>)>&
        submit,
    const std::vector<std::string>& mix) {
  PhaseResult out;
  serving::LatencyHistogram hist;
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  size_t accepted = 0;
  std::atomic<size_t> failures{0};

  util::WallTimer timer;
  for (const std::string& query : mix) {
    auto enqueue = std::chrono::steady_clock::now();
    bool ok = submit(query, [&, enqueue](serving::ServeResult r) {
      auto now = std::chrono::steady_clock::now();
      hist.Record(std::chrono::duration_cast<std::chrono::microseconds>(
                      now - enqueue)
                      .count());
      if (!r.ok) failures.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_one();
    });
    if (ok) {
      ++accepted;
    } else {
      failures.fetch_add(1, std::memory_order_relaxed);
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == accepted; });
  }
  out.wall_ms = timer.ElapsedMillis();
  out.qps = out.wall_ms > 0
                ? 1000.0 * static_cast<double>(accepted) / out.wall_ms
                : 0.0;
  out.p50_ms = hist.PercentileMicros(0.50) / 1000.0;
  out.p99_ms = hist.PercentileMicros(0.99) / 1000.0;
  out.failures = failures.load();
  return out;
}

/// Serves every distinct query through the cluster and counts rankings
/// that diverge from the single-node references.
size_t CountMismatches(
    cluster::ShardedCluster* cl,
    const std::map<std::string, std::vector<DocId>>& references) {
  size_t mismatches = 0;
  for (const auto& [query, reference] : references) {
    if (cl->Serve(query).ranking != reference) ++mismatches;
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  double skew = argc > 2 ? std::atof(argv[2]) : 1.0;
  double min_scaling = argc > 3 ? std::atof(argv[3]) : 2.0;
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("building testbed + store...\n");
  pipeline::Testbed testbed(pipeline::TestbedConfig::Small());
  std::vector<std::string> roots;
  for (const auto& topic : testbed.universe().topics) {
    roots.push_back(topic.root_query);
  }
  // Plans off: the measured work is the full per-request retrieve +
  // diversify compute (the workload whose single-node worker scaling
  // is flat — docs/BENCH.md), not the microsecond plan path where the
  // single submitting thread would become the bottleneck.
  store::StoreBuilderOptions store_opts;
  store_opts.compile_plans = false;
  store::DiversificationStore full_store;
  store::BuildStore(testbed.detector(), testbed.searcher(),
                    testbed.snippets(), testbed.analyzer(),
                    testbed.corpus().store, roots, store_opts, &full_store);
  if (full_store.size() < 2) {
    std::fprintf(stderr, "error: need >= 2 stored entries\n");
    return 1;
  }

  util::Rng rng(99);
  std::vector<std::string> mix = querylog::ZipfQueryMix(
      testbed.recommender().popularity(), num_requests, skew, &rng);
  std::set<std::string> distinct(mix.begin(), mix.end());

  cluster::ClusterConfig base;
  base.node.num_workers = 1;  // one worker per shard: shard == machine
  base.node.queue_capacity = num_requests;
  base.node.max_batch = 8;
  base.node.enable_cache = false;
  base.node.params.num_candidates = 200;
  base.node.params.diversify.k = 10;

  // ---- single-node reference ------------------------------------------
  serving::ServingNode single(&full_store, &testbed, base.node);
  std::map<std::string, std::vector<DocId>> references;
  for (const std::string& query : distinct) {
    references[query] = single.Serve(query).ranking;
  }
  std::printf("replaying %zu requests (skew %.2f, %zu distinct) on %u "
              "hardware threads...\n",
              num_requests, skew, distinct.size(), hw);
  PhaseResult single_phase = RunPhase(
      [&](const std::string& q, std::function<void(serving::ServeResult)> cb) {
        return single.Submit(q, std::move(cb));
      },
      mix);

  // ---- shard sweep ----------------------------------------------------
  bench::BenchJsonWriter json("cluster_scaling");
  util::TablePrinter tp;
  tp.SetHeader({"config", "wall ms", "QPS", "p50 ms", "p99 ms", "failures",
                "mismatches"});
  auto report = [&](const std::string& name, const PhaseResult& r,
                    size_t shards, size_t replicate_hot,
                    size_t mismatches) {
    tp.AddRow({name, util::TablePrinter::Num(r.wall_ms, 1),
               util::TablePrinter::Num(r.qps, 0),
               util::TablePrinter::Num(r.p50_ms, 2),
               util::TablePrinter::Num(r.p99_ms, 2),
               std::to_string(r.failures), std::to_string(mismatches)});
    json.Add(name,
             {{"shards", static_cast<double>(shards)},
              {"workers_per_shard", 1.0},
              {"replicate_hot", static_cast<double>(replicate_hot)},
              {"requests", static_cast<double>(num_requests)},
              {"zipf_skew", skew},
              {"hw_threads", static_cast<double>(hw)},
              {"failures", static_cast<double>(r.failures)},
              {"mismatches", static_cast<double>(mismatches)},
              {"p50_ms", r.p50_ms},
              {"p99_ms", r.p99_ms}},
             r.wall_ms, r.qps);
  };
  report("single_node", single_phase, 1, 0, 0);

  size_t total_failures = single_phase.failures;
  size_t total_mismatches = 0;
  size_t aggregation_errors = 0;
  double qps_1 = 0, qps_4 = 0;
  std::string last_metrics_json;  // registry dump of the last cluster run

  auto run_cluster = [&](size_t shards, size_t replicate_hot,
                         const std::string& name) {
    cluster::ClusterConfig config = base;
    config.num_shards = shards;
    config.replicate_hot = replicate_hot;
    cluster::ShardedCluster cl(full_store, &testbed,
                               &testbed.recommender().popularity(), config);
    if (replicate_hot == 0) {
      // Per-shard stores must partition the full store exactly.
      size_t sum = 0;
      for (size_t i = 0; i < cl.num_shards(); ++i) {
        sum += cl.shard(i)->store().size();
      }
      if (sum != full_store.size()) {
        std::fprintf(stderr,
                     "FATAL: shard stores hold %zu entries, full store "
                     "%zu\n",
                     sum, full_store.size());
        std::exit(1);
      }
    }
    size_t mismatches = CountMismatches(&cl, references);
    PhaseResult phase = RunPhase(
        [&](const std::string& q,
            std::function<void(serving::ServeResult)> cb) {
          return cl.Submit(q, std::move(cb));
        },
        mix);
    cluster::ClusterStats cs = cl.Stats();
    uint64_t sum_completed = 0;
    for (const auto& s : cs.per_shard) sum_completed += s.completed;
    // Totals must be the sum of the shards, and every request of both
    // phases (identity serves + accepted replay) must be accounted for.
    if (cs.total.completed != sum_completed ||
        cs.total.completed + phase.failures !=
            references.size() + static_cast<uint64_t>(num_requests)) {
      ++aggregation_errors;
    }
    report(name, phase, shards, replicate_hot, mismatches);
    total_failures += phase.failures;
    total_mismatches += mismatches;
    last_metrics_json = cl.metrics().RenderJson();
    return phase;
  };

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    PhaseResult phase = run_cluster(
        shards, 0, "shards=" + std::to_string(shards));
    if (shards == 1) qps_1 = phase.qps;
    if (shards == 4) qps_4 = phase.qps;
  }
  size_t hot = std::min<size_t>(4, full_store.size());
  run_cluster(4, hot, "shards=4 replicate_hot=" + std::to_string(hot));

  std::printf("%s", tp.ToString().c_str());
  double scaling = qps_1 > 0 ? qps_4 / qps_1 : 0.0;
  std::printf("scaling 1 -> 4 shards (cache off): %.2fx on %u hardware "
              "threads\n",
              scaling, hw);

  // Context block: shard- and router-level registry of the final
  // cluster configuration (4 shards + hot replication).
  json.SetMetricsJson(last_metrics_json);
  util::Status s = json.WriteFile();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_cluster_scaling.json (%zu records)\n",
              json.size());

  // ---- asserted claims -----------------------------------------------
  if (total_failures > 0) {
    std::fprintf(stderr, "FATAL: %zu failed requests\n", total_failures);
    return 1;
  }
  if (total_mismatches > 0) {
    std::fprintf(stderr,
                 "FATAL: %zu cluster rankings diverged from the "
                 "single-node path\n",
                 total_mismatches);
    return 1;
  }
  if (aggregation_errors > 0) {
    std::fprintf(stderr, "FATAL: cluster stats aggregation inconsistent\n");
    return 1;
  }
  if (min_scaling <= 0) {
    std::printf("SKIP: scaling enforcement disabled (min_scaling 0)\n");
  } else if (hw >= 4) {
    if (scaling < min_scaling) {
      std::fprintf(stderr,
                   "FATAL: 1 -> 4 shard scaling %.2fx < %.1fx on %u "
                   "hardware threads\n",
                   scaling, min_scaling, hw);
      return 1;
    }
  } else {
    std::printf("SKIP: scaling >= %.1fx not enforced on %u hardware "
                "thread(s) — shards share cores, no parallel speedup "
                "exists to measure\n",
                min_scaling, hw);
  }
  std::printf("bit-identical rankings across all shard configs: OK over "
              "%zu distinct queries\n",
              references.size());
  return 0;
}
