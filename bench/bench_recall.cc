// Reproduces the Appendix C recall measure: "we measured the number of
// times our method is able to provide diversified results when they are
// actually needed, i.e., [...] the number of times a user, after
// submitting an ambiguous/faceted query, issued a new query that is a
// specialization of the previous one. [...] Concerning AOL, we are able
// to diversify results for the 61% of the cases, whereas for MSN this
// recall measure raises up to 65%."
//
// Protocol: 70/30 chronological split; mining stack trained on the train
// part; every in-session (q → q′) refinement event in the test part where
// q′ restates q more precisely counts as a "diversification needed"
// event; the event is covered when Algorithm 1 (trained on the train
// part) declares q ambiguous. The paper's shape: a clear majority of
// events covered, MSN slightly above AOL.

#include <cstdio>
#include <string>
#include <vector>

#include "querylog/query_flow_graph.h"
#include "querylog/session_segmenter.h"
#include "querylog/synthetic_log.h"
#include "recommend/ambiguity_detector.h"
#include "recommend/shortcuts_recommender.h"
#include "synth/topic_universe.h"
#include "util/table_printer.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

struct RecallResult {
  size_t events = 0;
  size_t covered = 0;
  double recall() const {
    return events == 0 ? 0.0
                       : static_cast<double>(covered) /
                             static_cast<double>(events);
  }
};

RecallResult MeasureRecall(const querylog::SyntheticLogConfig& config,
                           const synth::TopicUniverse& universe) {
  querylog::SyntheticLogResult log_result =
      querylog::SyntheticLogGenerator(config).Generate(
          universe.topics, universe.noise_queries);

  querylog::QueryLog train, test;
  log_result.log.SplitChronological(0.7, &train, &test);

  querylog::QueryFlowGraph graph = querylog::QueryFlowGraph::Build(train, {});
  std::vector<querylog::Session> train_sessions =
      querylog::SessionSegmenter().Segment(train, &graph);
  recommend::ShortcutsRecommender recommender;
  recommender.Train(train, train_sessions);
  recommend::AmbiguityDetector detector(&recommender);

  // Refinement events in the *test* part: consecutive in-session queries
  // where the second restates the first more precisely.
  querylog::QueryFlowGraph test_graph =
      querylog::QueryFlowGraph::Build(test, {});
  std::vector<querylog::Session> test_sessions =
      querylog::SessionSegmenter().Segment(test, &test_graph);

  RecallResult result;
  for (const querylog::Session& session : test_sessions) {
    for (size_t i = 0; i + 1 < session.record_indices.size(); ++i) {
      const std::string& q = test.record(session.record_indices[i]).query;
      const std::string& q_next =
          test.record(session.record_indices[i + 1]).query;
      if (q == q_next) continue;
      if (!recommend::IsTermSuperset(q_next, q)) continue;
      ++result.events;
      if (detector.Detect(q).ambiguous()) ++result.covered;
    }
  }
  return result;
}

}  // namespace

int main() {
  // A long-tailed ambiguous-topic universe: real logs contain many rare
  // ambiguous queries whose specializations are too infrequent to survive
  // the mining thresholds (min pair support, popularity filter f(q′) ≥
  // f(q)/s) — that tail is what keeps the paper's recall at 61–65%
  // rather than near 100%.
  synth::TopicUniverseConfig ucfg;
  ucfg.num_topics = 900;
  ucfg.topic_zipf_skew = 0.55;
  synth::TopicUniverse universe = synth::GenerateTopicUniverse(ucfg, 400);

  util::TablePrinter tp;
  tp.SetHeader({"log", "refinement events", "covered", "recall",
                "paper"});

  RecallResult aol = MeasureRecall(querylog::AolLikeConfig(), universe);
  tp.AddRow({"AOL-like", std::to_string(aol.events),
             std::to_string(aol.covered),
             util::TablePrinter::Num(100.0 * aol.recall(), 1) + "%",
             "61%"});

  RecallResult msn = MeasureRecall(querylog::MsnLikeConfig(), universe);
  tp.AddRow({"MSN-like", std::to_string(msn.events),
             std::to_string(msn.covered),
             util::TablePrinter::Num(100.0 * msn.recall(), 1) + "%",
             "65%"});

  std::printf("Appendix C recall reproduction: fraction of in-session "
              "refinement events whose root\nquery is detected as "
              "ambiguous by the train-split mining stack.\n\n%s\n",
              tp.ToString().c_str());
  return 0;
}
