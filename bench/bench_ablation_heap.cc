// Ablation A1: the bounded-heap selection at the heart of OptSelect
// ("all the heap operations are carried out on data structures having a
// constant size bounded by k", Section 4) versus the obvious alternative
// of fully sorting all n candidates by overall utility.
//
// The heap variant is O(n·|S_q|·log k); the sort variant O(n·log n +
// n·|S_q|). The gap widens as n grows at fixed k — exactly the regime of
// Table 2's rightmost column.

#include <algorithm>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/optselect.h"
#include "util/rng.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)
using bench::MakeTimingInstance;
using bench::TimingInstance;

// Full-sort reference implementation of the MaxUtility selection: same
// quotas and fill rule as OptSelect but over globally sorted candidates.
std::vector<size_t> SortBasedSelect(const core::DiversificationInput& input,
                                    const core::UtilityMatrix& utilities,
                                    const core::DiversifyParams& params) {
  const size_t n = input.candidates.size();
  const size_t m = input.specializations.size();
  const size_t k = std::min(params.k, n);
  if (k == 0) return {};

  std::vector<double> overall(n);
  for (size_t i = 0; i < n; ++i) {
    overall[i] = core::OptSelectDiversifier::OverallUtility(
        input, utilities, i, params.lambda);
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (overall[a] != overall[b]) return overall[a] > overall[b];
    return a < b;
  });

  std::vector<size_t> selected;
  selected.reserve(k);
  std::vector<char> taken(n, 0);
  for (size_t j = 0; j < m && selected.size() < k; ++j) {
    size_t quota = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(k) *
                               input.specializations[j].probability));
    size_t got = 0;
    for (size_t i : order) {
      if (got >= quota || selected.size() >= k) break;
      if (utilities.At(i, j) <= 0.0) continue;
      ++got;
      if (taken[i]) continue;
      taken[i] = 1;
      selected.push_back(i);
    }
  }
  for (size_t i : order) {
    if (selected.size() >= k) break;
    if (!taken[i]) {
      taken[i] = 1;
      selected.push_back(i);
    }
  }
  std::stable_sort(selected.begin(), selected.end(), [&](size_t a, size_t b) {
    return overall[a] > overall[b];
  });
  return selected;
}

void BM_OptSelectBoundedHeap(benchmark::State& state) {
  util::Rng rng(42);
  TimingInstance ti =
      MakeTimingInstance(&rng, static_cast<size_t>(state.range(0)), 6);
  core::OptSelectDiversifier algo;
  core::DiversifyParams params;
  params.k = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto picks = algo.Select(ti.input, ti.utilities, params);
    benchmark::DoNotOptimize(picks);
  }
  state.SetComplexityN(state.range(0));
}

void BM_OptSelectFullSort(benchmark::State& state) {
  util::Rng rng(42);
  TimingInstance ti =
      MakeTimingInstance(&rng, static_cast<size_t>(state.range(0)), 6);
  core::DiversifyParams params;
  params.k = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto picks = SortBasedSelect(ti.input, ti.utilities, params);
    benchmark::DoNotOptimize(picks);
  }
  state.SetComplexityN(state.range(0));
}

}  // namespace

BENCHMARK(BM_OptSelectBoundedHeap)
    ->Args({1000, 10})
    ->Args({10000, 10})
    ->Args({100000, 10})
    ->Args({1000, 100})
    ->Args({10000, 100})
    ->Args({100000, 100})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_OptSelectFullSort)
    ->Args({1000, 10})
    ->Args({10000, 10})
    ->Args({100000, 10})
    ->Args({1000, 100})
    ->Args({10000, 100})
    ->Args({100000, 100})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
