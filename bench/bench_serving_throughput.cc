// Serving throughput scaling — the subsystem the paper's efficiency
// argument exists to enable: OptSelect inside a serving node answering a
// production-shaped query stream.
//
// Replays a Zipf-distributed query mix (ranks drawn over the synthetic
// log's popularity order, querylog::PopularityMap) against a ServingNode
// while sweeping the worker-pool size 1, 2, 4, ... up to
// max(4, hardware_concurrency), then contrasts cache-on vs cache-off at
// the largest pool. Every distinct query's cached ranking is asserted
// bit-identical to the uncached path before any timing is reported.
//
// Output: a human table plus BENCH_serving_throughput.json (bench_util).
//
//   bench_serving_throughput [requests] [zipf_skew]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "pipeline/testbed.h"
#include "querylog/popularity.h"
#include "serving/replay.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

struct RunResult {
  double wall_ms = 0;
  double qps = 0;
  serving::ServingStats stats;
};

/// Replays the mix through one node configuration; wall time spans
/// first submit to last completion (serving::ReplayMix).
RunResult Replay(const store::DiversificationStore* store,
                 const pipeline::Testbed* testbed,
                 serving::ServingConfig config,
                 const std::vector<std::string>& mix) {
  serving::ServingNode node(store, testbed, config);
  serving::ReplayOutcome out = serving::ReplayMix(&node, mix);
  if (out.accepted != mix.size()) {
    std::fprintf(stderr, "error: %zu of %zu requests shed (queue too small)\n",
                 mix.size() - out.accepted, mix.size());
    std::exit(1);
  }
  RunResult r;
  r.wall_ms = out.wall_ms;
  r.qps = out.qps;
  r.stats = node.Stats();
  return r;
}

/// Asserts cached rankings equal uncached ones for every distinct query.
void CheckCacheBitIdentity(const store::DiversificationStore* store,
                           const pipeline::Testbed* testbed,
                           serving::ServingConfig config,
                           const std::vector<std::string>& mix) {
  std::set<std::string> distinct(mix.begin(), mix.end());
  config.enable_cache = true;
  serving::ServingNode cached(store, testbed, config);
  config.enable_cache = false;
  serving::ServingNode uncached(store, testbed, config);
  for (const std::string& q : distinct) {
    serving::ServeResult cold = cached.Serve(q);
    serving::ServeResult warm = cached.Serve(q);
    serving::ServeResult direct = uncached.Serve(q);
    if (cold.ranking != direct.ranking || warm.ranking != direct.ranking) {
      std::fprintf(stderr, "FATAL: cached ranking diverged for '%s'\n",
                   q.c_str());
      std::exit(1);
    }
  }
  std::printf("cache bit-identity: OK over %zu distinct queries\n",
              distinct.size());
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  double skew = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("building testbed + store...\n");
  pipeline::Testbed testbed(pipeline::TestbedConfig::Small());
  store::DiversificationStore store;
  std::vector<std::string> roots;
  for (const auto& topic : testbed.universe().topics) {
    roots.push_back(topic.root_query);
  }
  store::BuildStore(testbed.detector(), testbed.searcher(),
                    testbed.snippets(), testbed.analyzer(),
                    testbed.corpus().store, roots, {}, &store);

  util::Rng rng(99);
  std::vector<std::string> mix = querylog::ZipfQueryMix(
      testbed.recommender().popularity(), num_requests, skew, &rng);

  serving::ServingConfig base;
  base.queue_capacity = num_requests;
  base.max_batch = 8;
  base.params.num_candidates = 200;
  base.params.diversify.k = 10;

  CheckCacheBitIdentity(&store, &testbed, base, mix);

  size_t max_workers =
      std::max<size_t>(4, std::thread::hardware_concurrency());
  std::vector<size_t> worker_counts;
  for (size_t w = 1; w <= max_workers; w *= 2) worker_counts.push_back(w);

  bench::BenchJsonWriter json("serving_throughput");
  util::TablePrinter tp;
  tp.SetHeader({"config", "wall ms", "QPS", "p50 ms", "p99 ms", "hit rate",
                "mean batch"});

  auto add = [&](const std::string& name, const RunResult& r,
                 size_t workers, bool cache) {
    tp.AddRow({name, util::TablePrinter::Num(r.wall_ms, 1),
               util::TablePrinter::Num(r.qps, 0),
               util::TablePrinter::Num(r.stats.p50_ms, 2),
               util::TablePrinter::Num(r.stats.p99_ms, 2),
               util::TablePrinter::Num(r.stats.cache_hit_rate, 3),
               util::TablePrinter::Num(r.stats.mean_batch, 2)});
    json.Add(name,
             {{"workers", static_cast<double>(workers)},
              {"requests", static_cast<double>(num_requests)},
              {"zipf_skew", skew},
              {"cache", cache ? 1.0 : 0.0},
              {"max_batch", static_cast<double>(8)},
              {"p50_ms", r.stats.p50_ms},
              {"p99_ms", r.stats.p99_ms},
              {"cache_hit_rate", r.stats.cache_hit_rate}},
             r.wall_ms, r.qps);
  };

  // The worker sweep runs cache-off so each request pays the full
  // retrieve + diversify cost — that is the compute whose scaling the
  // pool exists to provide. Cache-on rows ride along to show what the
  // Zipf mix turns into once the LRU absorbs the head queries.
  double qps_1 = 0, qps_4 = 0;
  for (size_t workers : worker_counts) {
    serving::ServingConfig config = base;
    config.num_workers = workers;
    config.enable_cache = false;
    RunResult cold = Replay(&store, &testbed, config, mix);
    if (workers == 1) qps_1 = cold.qps;
    if (workers == 4) qps_4 = cold.qps;
    add("workers=" + std::to_string(workers) + " cache=off", cold, workers,
        false);

    config.enable_cache = true;
    RunResult warm = Replay(&store, &testbed, config, mix);
    add("workers=" + std::to_string(workers) + " cache=on", warm, workers,
        true);
  }

  std::printf("%s", tp.ToString().c_str());
  if (qps_1 > 0 && qps_4 > 0) {
    std::printf(
        "scaling 1 -> 4 workers (cache off): %.2fx (on %u hardware "
        "threads)\n",
        qps_4 / qps_1, std::thread::hardware_concurrency());
  }

  util::Status s = json.WriteFile();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_serving_throughput.json (%zu records)\n",
              json.size());
  return 0;
}
