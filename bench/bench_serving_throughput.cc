// Serving throughput scaling — the subsystem the paper's efficiency
// argument exists to enable: OptSelect inside a serving node answering a
// production-shaped query stream.
//
// Replays a Zipf-distributed query mix (ranks drawn over the synthetic
// log's popularity order, querylog::PopularityMap) against a ServingNode
// while sweeping the worker-pool size 1, 2, 4, ... up to
// max(4, hardware_concurrency), then contrasts cache-on vs cache-off at
// the largest pool. Every distinct query's cached ranking is asserted
// bit-identical to the uncached path before any timing is reported.
//
// Output: a human table plus BENCH_serving_throughput.json (bench_util).
//
//   bench_serving_throughput [requests] [zipf_skew]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/parallel_optselect.h"
#include "core/select_view.h"
#include "core/utility.h"
#include "pipeline/diversification_pipeline.h"
#include "pipeline/testbed.h"
#include "querylog/popularity.h"
#include "serving/replay.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

struct RunResult {
  double wall_ms = 0;
  double qps = 0;
  serving::ServingStats stats;
  /// The node's full registry dump (obs::MetricsRegistry::RenderJson):
  /// the last run's copy is embedded into the BENCH json as context.
  std::string metrics_json;
};

/// Replays the mix through one node configuration; wall time spans
/// first submit to last completion (serving::ReplayMix).
RunResult Replay(const store::DiversificationStore* store,
                 const pipeline::Testbed* testbed,
                 serving::ServingConfig config,
                 const std::vector<std::string>& mix) {
  serving::ServingNode node(store, testbed, config);
  serving::ReplayOutcome out = serving::ReplayMix(&node, mix);
  if (out.accepted != mix.size()) {
    std::fprintf(stderr, "error: %zu of %zu requests shed (queue too small)\n",
                 mix.size() - out.accepted, mix.size());
    std::exit(1);
  }
  RunResult r;
  r.wall_ms = out.wall_ms;
  r.qps = out.qps;
  r.stats = node.Stats();
  node.Shutdown();  // drain so the registry dump is post-quiescence
  r.metrics_json = node.metrics().RenderJson();
  return r;
}

/// Flat-scaling diagnosis probe: the exact fallback compute a cache-off
/// request pays (retrieve R_q ─> utilities ─> SelectInto, or plain
/// retrieval for passthrough queries), run by N plain threads pulling
/// from a shared atomic cursor — no request queue, no micro-batcher,
/// no cache anywhere in the loop. If this probe scales with N while
/// the node's cache-off sweep stays flat, the node serializes requests
/// somewhere; if both are flat, the host has no spare cores and the
/// worker pool has nothing to scale onto (the 1-hardware-thread case —
/// see docs/BENCH.md).
double ComputeOnlyQps(const store::DiversificationStore* store,
                      const pipeline::Testbed* testbed,
                      const pipeline::PipelineParams& params,
                      const std::vector<std::string>& mix,
                      size_t num_threads) {
  core::ParallelOptSelectDiversifier diversifier(1);
  std::atomic<size_t> cursor{0};
  util::WallTimer timer;
  std::vector<std::thread> pool;
  pool.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    pool.emplace_back([&] {
      core::SelectScratch scratch;
      for (size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
           i < mix.size();
           i = cursor.fetch_add(1, std::memory_order_relaxed)) {
        const std::string& query = mix[i];
        std::vector<text::TermId> terms =
            testbed->analyzer().AnalyzeReadOnly(query);
        index::ResultList rq =
            testbed->searcher().SearchTerms(terms, params.num_candidates);
        if (rq.empty()) continue;
        const store::StoredEntry* entry = store->Find(query);
        if (entry == nullptr || entry->specializations.size() < 2) {
          // Passthrough work: the truncated DPH ranking.
          std::vector<DocId> ranking;
          size_t k = std::min(params.diversify.k, rq.size());
          ranking.reserve(k);
          for (size_t r = 0; r < k; ++r) ranking.push_back(rq[r].doc);
          continue;
        }
        core::DiversificationInput input;
        input.query = query;
        input.candidates = pipeline::BuildCandidates(
            rq, testbed->snippets(), testbed->corpus().store, terms);
        input.specializations =
            store::DiversificationStore::ToProfiles(*entry);
        core::UtilityComputer computer(
            core::UtilityComputer::Options{params.threshold_c});
        core::UtilityMatrix utilities = computer.Compute(input);
        core::DiversificationView view =
            core::MakeView(input, utilities, &scratch);
        diversifier.SelectInto(view, params.diversify, &scratch,
                               &scratch.picks);
        pipeline::AssembleRanking(input, scratch.picks,
                                  params.diversify.k);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  double wall_ms = timer.ElapsedMillis();
  return wall_ms > 0 ? 1000.0 * static_cast<double>(mix.size()) / wall_ms
                     : 0.0;
}

/// Asserts cached rankings equal uncached ones for every distinct query.
void CheckCacheBitIdentity(const store::DiversificationStore* store,
                           const pipeline::Testbed* testbed,
                           serving::ServingConfig config,
                           const std::vector<std::string>& mix) {
  std::set<std::string> distinct(mix.begin(), mix.end());
  config.enable_cache = true;
  serving::ServingNode cached(store, testbed, config);
  config.enable_cache = false;
  serving::ServingNode uncached(store, testbed, config);
  for (const std::string& q : distinct) {
    serving::ServeResult cold = cached.Serve(q);
    serving::ServeResult warm = cached.Serve(q);
    serving::ServeResult direct = uncached.Serve(q);
    if (cold.ranking != direct.ranking || warm.ranking != direct.ranking) {
      std::fprintf(stderr, "FATAL: cached ranking diverged for '%s'\n",
                   q.c_str());
      std::exit(1);
    }
  }
  std::printf("cache bit-identity: OK over %zu distinct queries\n",
              distinct.size());
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  double skew = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("building testbed + store...\n");
  pipeline::Testbed testbed(pipeline::TestbedConfig::Small());
  store::DiversificationStore store;
  std::vector<std::string> roots;
  for (const auto& topic : testbed.universe().topics) {
    roots.push_back(topic.root_query);
  }
  // Plans off: this bench measures the *per-request* retrieve +
  // diversify compute the worker pool exists to scale (and that the
  // compute_only diagnosis probe reproduces); with compiled plans the
  // cache-off rows would measure the microsecond plan path instead,
  // which bench_plan_serving owns.
  store::StoreBuilderOptions store_opts;
  store_opts.compile_plans = false;
  store::BuildStore(testbed.detector(), testbed.searcher(),
                    testbed.snippets(), testbed.analyzer(),
                    testbed.corpus().store, roots, store_opts, &store);

  util::Rng rng(99);
  std::vector<std::string> mix = querylog::ZipfQueryMix(
      testbed.recommender().popularity(), num_requests, skew, &rng);

  serving::ServingConfig base;
  base.queue_capacity = num_requests;
  base.max_batch = 8;
  base.params.num_candidates = 200;
  base.params.diversify.k = 10;

  CheckCacheBitIdentity(&store, &testbed, base, mix);

  size_t max_workers =
      std::max<size_t>(4, std::thread::hardware_concurrency());
  std::vector<size_t> worker_counts;
  for (size_t w = 1; w <= max_workers; w *= 2) worker_counts.push_back(w);

  bench::BenchJsonWriter json("serving_throughput");
  util::TablePrinter tp;
  tp.SetHeader({"config", "wall ms", "QPS", "p50 ms", "p99 ms", "hit rate",
                "mean batch"});

  auto add = [&](const std::string& name, const RunResult& r,
                 size_t workers, bool cache) {
    tp.AddRow({name, util::TablePrinter::Num(r.wall_ms, 1),
               util::TablePrinter::Num(r.qps, 0),
               util::TablePrinter::Num(r.stats.p50_ms, 2),
               util::TablePrinter::Num(r.stats.p99_ms, 2),
               util::TablePrinter::Num(r.stats.cache_hit_rate, 3),
               util::TablePrinter::Num(r.stats.mean_batch, 2)});
    json.Add(name,
             {{"workers", static_cast<double>(workers)},
              {"requests", static_cast<double>(num_requests)},
              {"zipf_skew", skew},
              {"cache", cache ? 1.0 : 0.0},
              {"max_batch", static_cast<double>(8)},
              {"hw_threads",
               static_cast<double>(std::thread::hardware_concurrency())},
              {"p50_ms", r.stats.p50_ms},
              {"p99_ms", r.stats.p99_ms},
              {"cache_hit_rate", r.stats.cache_hit_rate}},
             r.wall_ms, r.qps,
             // Which selection backend the cold path used: the node's
             // default (streaming scan-and-maintain) unless configured
             // off. Descriptive — the regression gate ignores strings.
             {{"backend", base.streaming_cold_path ? "streaming"
                                                   : "materialized"}});
  };

  // The worker sweep runs cache-off so each request pays the full
  // retrieve + diversify cost — that is the compute whose scaling the
  // pool exists to provide. Cache-on rows ride along to show what the
  // Zipf mix turns into once the LRU absorbs the head queries.
  double qps_1 = 0, qps_4 = 0;
  for (size_t workers : worker_counts) {
    serving::ServingConfig config = base;
    config.num_workers = workers;
    config.enable_cache = false;
    RunResult cold = Replay(&store, &testbed, config, mix);
    if (workers == 1) qps_1 = cold.qps;
    if (workers == 4) qps_4 = cold.qps;
    add("workers=" + std::to_string(workers) + " cache=off", cold, workers,
        false);

    config.enable_cache = true;
    RunResult warm = Replay(&store, &testbed, config, mix);
    add("workers=" + std::to_string(workers) + " cache=on", warm, workers,
        true);
    // Last sweep row's registry becomes the document's metrics block.
    json.SetMetricsJson(warm.metrics_json);
  }

  std::printf("%s", tp.ToString().c_str());
  if (qps_1 > 0 && qps_4 > 0) {
    std::printf(
        "scaling 1 -> 4 workers (cache off): %.2fx (on %u hardware "
        "threads)\n",
        qps_4 / qps_1, std::thread::hardware_concurrency());
  }

  // ---- flat-scaling diagnosis (queue-free compute probe) -------------
  // Answers "is the flat cache-off sweep the node's fault?" with a
  // measurement: the same per-request compute with the queue and
  // batcher removed entirely. Emitted to the JSON so the diagnosis is
  // a bench record, not an anecdote.
  double compute_qps_1 = 0, compute_qps_4 = 0;
  for (size_t threads : worker_counts) {
    double qps =
        ComputeOnlyQps(&store, &testbed, base.params, mix, threads);
    if (threads == 1) compute_qps_1 = qps;
    if (threads == 4) compute_qps_4 = qps;
    std::printf("compute_only threads=%zu: %.0f QPS (no queue/batcher)\n",
                threads, qps);
    json.Add("compute_only threads=" + std::to_string(threads),
             {{"threads", static_cast<double>(threads)},
              {"requests", static_cast<double>(num_requests)},
              {"zipf_skew", skew},
              {"hw_threads",
               static_cast<double>(std::thread::hardware_concurrency())}},
             qps > 0 ? 1000.0 * static_cast<double>(num_requests) / qps
                     : 0.0,
             qps, {{"backend", "materialized"}});
  }
  if (compute_qps_1 > 0 && compute_qps_4 > 0 && qps_1 > 0 && qps_4 > 0) {
    double node_scaling = qps_4 / qps_1;
    double compute_scaling = compute_qps_4 / compute_qps_1;
    std::printf(
        "diagnosis: node scaling %.2fx vs queue-free compute scaling "
        "%.2fx — %s\n",
        node_scaling, compute_scaling,
        compute_scaling < 1.5
            ? "both flat: the host's cores, not the node's queue, are "
              "the serialization point"
            : node_scaling < compute_scaling / 1.5
                  ? "node serializes: investigate the queue/batcher"
                  : "node tracks the hardware: no internal "
                    "serialization point");
  }

  util::Status s = json.WriteFile();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_serving_throughput.json (%zu records)\n",
              json.size());
  return 0;
}
