// Reproduces Table 2: "Execution time (in msec.) of OptSelect, xQuAD, and
// IASelect by varying both the size of the initial set of documents to
// diversify (|R_q|), and the size of the diversified result set (k)".
//
// The paper times the *diversification step* over the 50 TREC queries
// (utility values already available); this harness does the same over
// synthetic cluster-structured instances with |S_q| drawn from the TREC
// range. Absolute milliseconds differ from the 2011 Core 2 Quad testbed;
// the claims to verify are:
//   (1) every method is linear in |R_q| at fixed k,
//   (2) xQuAD/IASelect grow ~linearly in k while OptSelect grows ~log k,
//   (3) OptSelect ends up around two orders of magnitude faster at
//       k = 1000.
//
// Usage: bench_table2_timing [--queries N] [--full]
//   --queries N  number of repetitions per cell (default 10)
//   --full       use the paper's 50 repetitions and the full |R_q| grid

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/factory.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using optselect::bench::MakeTimingInstance;
using optselect::bench::TimingInstance;
using optselect::core::DiversifyParams;
using optselect::core::Diversifier;
using optselect::core::MakeDiversifier;
using optselect::util::Rng;
using optselect::util::TablePrinter;
using optselect::util::WallTimer;

struct Cell {
  double mean_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  size_t queries = 10;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = static_cast<size_t>(std::atoi(argv[++i]));
    }
  }
  if (full) queries = 50;

  const std::vector<size_t> n_values = {1000, 10000, 100000};
  const std::vector<size_t> k_values = {10, 50, 100, 500, 1000};
  const std::vector<std::string> algos = {"optselect", "xquad", "iaselect"};

  std::printf("Table 2 reproduction: mean diversification time (ms), "
              "%zu queries per cell, |S_q| in [3,8]\n\n",
              queries);

  // results[algo][n][k]
  std::map<std::string, std::map<size_t, std::map<size_t, Cell>>> results;

  Rng rng(2011);
  for (size_t n : n_values) {
    // One instance batch per |R_q|; |S_q| varies per query like the TREC
    // topics (3..8 subtopics).
    std::vector<TimingInstance> instances;
    instances.reserve(queries);
    for (size_t q = 0; q < queries; ++q) {
      size_t m = 3 + rng.Uniform(6);
      instances.push_back(MakeTimingInstance(&rng, n, m));
    }
    for (const std::string& name : algos) {
      std::unique_ptr<Diversifier> algo =
          std::move(MakeDiversifier(name)).value();
      for (size_t k : k_values) {
        DiversifyParams params;
        params.k = k;
        params.lambda = 0.15;
        WallTimer timer;
        size_t guard = 0;
        for (const TimingInstance& ti : instances) {
          guard += algo->Select(ti.input, ti.utilities, params).size();
        }
        double total = timer.ElapsedMillis();
        if (guard == 0) std::fprintf(stderr, "warning: empty selections\n");
        results[name][n][k].mean_ms = total / static_cast<double>(queries);
      }
    }
  }

  // Paper-style layout: one block per algorithm, rows |R_q|, columns k.
  TablePrinter tp;
  tp.SetHeader({"|Rq|", "k=10", "k=50", "k=100", "k=500", "k=1000"});
  for (const std::string& name : algos) {
    tp.AddRow({name});
    for (size_t n : n_values) {
      std::vector<std::string> row{std::to_string(n)};
      for (size_t k : k_values) {
        row.push_back(TablePrinter::Num(results[name][n][k].mean_ms, 3));
      }
      tp.AddRow(std::move(row));
    }
    tp.AddSeparator();
  }
  std::printf("%s\n", tp.ToString().c_str());

  // Shape checks the paper's Section 4 asserts.
  std::printf("Shape checks:\n");
  for (const std::string& name : algos) {
    // Linearity in |R_q| at k = 100: time(100k)/time(1k) ≈ 100.
    double r_n =
        results[name][100000][100].mean_ms / results[name][1000][100].mean_ms;
    // Growth in k at |R_q| = 100k: time(k=1000)/time(k=10).
    double r_k =
        results[name][100000][1000].mean_ms / results[name][100000][10].mean_ms;
    std::printf("  %-10s time(n=100k)/time(n=1k) @k=100 = %7.1f   "
                "time(k=1000)/time(k=10) @n=100k = %6.1f\n",
                name.c_str(), r_n, r_k);
  }
  double speedup_x = results["xquad"][100000][1000].mean_ms /
                     results["optselect"][100000][1000].mean_ms;
  double speedup_i = results["iaselect"][100000][1000].mean_ms /
                     results["optselect"][100000][1000].mean_ms;
  std::printf("\nOptSelect speedup at |Rq|=100k, k=1000:  vs xQuAD %.0fx, "
              "vs IASelect %.0fx  (paper: ~two orders of magnitude)\n",
              speedup_x, speedup_i);
  return 0;
}
