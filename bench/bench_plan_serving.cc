// Compiled-plan serving (store v3) vs per-request computation (v2) —
// the offline/online split of Sections 3.1.3 / 4.1 pushed to its limit.
// Two ServingNodes answer the same Zipf mix over the same store content:
//
//   cold      — entries without plans; every diversified request pays
//               retrieval + snippet extraction + the O(n·m·|R_q′|)
//               cosine sums + selection;
//   compiled  — entries carry store-v3 query plans; requests run pure
//               selection over the precomputed utility blocks with a
//               per-worker scratch (no retrieval, no recompute, no
//               per-request allocation).
//
// Measured claims, all asserted, not just printed:
//
//   - every stored query's ranking is bit-identical between the two
//     paths (the plan compiler runs the fallback's exact code);
//   - compiled p50 latency beats cold p50;
//   - across a hot reload that re-mines ONE dirty entry (its plan is
//     the only one recompiled — this bench compiles exactly one), every
//     unchanged query keeps a bit-identical, still-plan-served ranking.
//
// Output: a human table plus BENCH_plan_serving.json (bench_util).
//
//   bench_plan_serving [requests] [zipf_skew]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pipeline/testbed.h"
#include "serving/latency_histogram.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"
#include "store/store_snapshot.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "util/zipf.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

struct PhaseResult {
  double wall_ms = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t failures = 0;
};

/// Replays `mix` against `node`, recording per-request latency locally.
PhaseResult RunPhase(serving::ServingNode* node,
                     const std::vector<std::string>& mix) {
  PhaseResult out;
  serving::LatencyHistogram hist;
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  size_t accepted = 0;
  std::atomic<size_t> failures{0};

  util::WallTimer timer;
  for (const std::string& query : mix) {
    auto enqueue = std::chrono::steady_clock::now();
    bool ok = node->Submit(query, [&, enqueue](serving::ServeResult r) {
      auto now = std::chrono::steady_clock::now();
      hist.Record(std::chrono::duration_cast<std::chrono::microseconds>(
                      now - enqueue)
                      .count());
      if (!r.ok) failures.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_one();
    });
    if (ok) {
      ++accepted;
    } else {
      failures.fetch_add(1, std::memory_order_relaxed);
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == accepted; });
  }
  out.wall_ms = timer.ElapsedMillis();
  out.qps = out.wall_ms > 0
                ? 1000.0 * static_cast<double>(accepted) / out.wall_ms
                : 0.0;
  out.p50_ms = hist.PercentileMicros(0.50) / 1000.0;
  out.p99_ms = hist.PercentileMicros(0.99) / 1000.0;
  out.failures = failures.load();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  double skew = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("building testbed + stores...\n");
  pipeline::Testbed testbed(pipeline::TestbedConfig::Small());
  std::vector<std::string> roots;
  for (const auto& topic : testbed.universe().topics) {
    roots.push_back(topic.root_query);
  }

  serving::ServingConfig config;
  config.queue_capacity = num_requests;
  config.max_batch = 8;
  config.enable_cache = false;  // isolate the compute path
  config.params.num_candidates = 200;
  config.params.diversify.k = 10;

  store::PlanCompileOptions plan_opts;
  plan_opts.num_candidates = config.params.num_candidates;
  plan_opts.threshold_c = config.params.threshold_c;

  // Same mined content, once without plans (the v2 serving behaviour),
  // once with (store v3). The detector is deterministic, so the two
  // stores differ only in the plan blocks.
  store::StoreBuilderOptions cold_opts;
  cold_opts.compile_plans = false;
  store::StoreBuilderOptions compiled_opts;
  compiled_opts.compile_plans = true;
  compiled_opts.plan = plan_opts;

  store::DiversificationStore cold_store, compiled_store;
  store::BuildStore(testbed.detector(), testbed.searcher(),
                    testbed.snippets(), testbed.analyzer(),
                    testbed.corpus().store, roots, cold_opts, &cold_store);
  store::BuildStore(testbed.detector(), testbed.searcher(),
                    testbed.snippets(), testbed.analyzer(),
                    testbed.corpus().store, roots, compiled_opts,
                    &compiled_store);
  if (compiled_store.size() < 2) {
    std::fprintf(stderr, "error: need >= 2 stored entries\n");
    return 1;
  }

  // The replay mix is Zipf over the *stored* queries: this bench
  // measures the diversified path, not passthrough retrieval (which is
  // identical in both configurations).
  std::vector<std::string> stored_keys;
  for (const auto& [key, entry] : compiled_store.entries()) {
    stored_keys.push_back(key);
  }
  std::sort(stored_keys.begin(), stored_keys.end());
  util::Rng rng(99);
  util::ZipfSampler sampler(stored_keys.size(), skew);
  std::vector<std::string> mix;
  mix.reserve(num_requests);
  for (size_t r = 0; r < num_requests; ++r) {
    mix.push_back(stored_keys[sampler.Sample(&rng)]);
  }

  serving::ServingNode cold_node(&cold_store, &testbed, config);
  serving::ServingNode compiled_node(&compiled_store, &testbed, config);

  // ---- bit-identical rankings across the two paths ------------------
  size_t mismatches = 0;
  size_t plan_served = 0;
  std::vector<std::vector<DocId>> references(stored_keys.size());
  for (size_t i = 0; i < stored_keys.size(); ++i) {
    serving::ServeResult cold = cold_node.Serve(stored_keys[i]);
    serving::ServeResult fast = compiled_node.Serve(stored_keys[i]);
    references[i] = fast.ranking;
    if (cold.ranking != fast.ranking) ++mismatches;
    if (fast.plan_served) ++plan_served;
  }
  std::printf("%zu stored queries: %zu plan-served, %zu mismatches\n",
              stored_keys.size(), plan_served, mismatches);

  // ---- latency phases ----------------------------------------------
  std::printf("replaying %zu requests (skew %.2f)...\n", num_requests,
              skew);
  PhaseResult cold = RunPhase(&cold_node, mix);
  PhaseResult compiled = RunPhase(&compiled_node, mix);

  // ---- hot reload recompiling only the dirty entry ------------------
  // Perturb one entry's specialization distribution (what a log refresh
  // does) and recompile *its* plan alone; every other entry rides along
  // untouched through the snapshot copy.
  const std::string& dirty_key = stored_keys.front();
  store::StoredEntry variant = *compiled_store.Find(dirty_key);
  double norm = 0;
  variant.specializations[0].probability *= 0.5;
  for (const auto& sp : variant.specializations) norm += sp.probability;
  for (auto& sp : variant.specializations) sp.probability /= norm;
  variant.plan = store::CompileQueryPlan(
      variant, testbed.searcher(), testbed.snippets(), testbed.analyzer(),
      testbed.corpus().store, plan_opts);  // the ONE recompile

  store::StoreDelta delta;
  delta.upserts.push_back(std::move(variant));
  std::shared_ptr<const store::StoreSnapshot> base =
      compiled_node.snapshot();
  store::SnapshotBuildResult built =
      store::BuildSnapshot(base.get(), delta);
  compiled_node.ReloadStore(built.snapshot, built.changed_keys);

  size_t reload_mismatches = 0;
  size_t reload_plan_served = 0;
  for (size_t i = 0; i < stored_keys.size(); ++i) {
    serving::ServeResult r = compiled_node.Serve(stored_keys[i]);
    if (r.plan_served) ++reload_plan_served;
    if (stored_keys[i] == dirty_key) continue;  // legitimately changed
    if (r.ranking != references[i]) ++reload_mismatches;
  }
  PhaseResult after_reload = RunPhase(&compiled_node, mix);

  // ---- report -------------------------------------------------------
  util::TablePrinter tp;
  tp.SetHeader({"phase", "wall ms", "QPS", "p50 ms", "p99 ms",
                "failures"});
  auto row = [&](const char* name, const PhaseResult& r) {
    tp.AddRow({name, util::TablePrinter::Num(r.wall_ms, 1),
               util::TablePrinter::Num(r.qps, 0),
               util::TablePrinter::Num(r.p50_ms, 3),
               util::TablePrinter::Num(r.p99_ms, 3),
               std::to_string(r.failures)});
  };
  row("cold_v2", cold);
  row("compiled_v3", compiled);
  row("compiled_after_reload", after_reload);
  std::printf("%s", tp.ToString().c_str());
  double speedup =
      compiled.p50_ms > 0 ? cold.p50_ms / compiled.p50_ms : 0.0;
  std::printf("p50 speedup: %.1fx\n", speedup);

  bench::BenchJsonWriter json("plan_serving");
  auto record = [&](const char* name, const PhaseResult& r) {
    json.Add(name,
             {{"requests", static_cast<double>(num_requests)},
              {"zipf_skew", skew},
              {"stored_queries", static_cast<double>(stored_keys.size())},
              {"failures", static_cast<double>(r.failures)},
              {"p50_ms", r.p50_ms},
              {"p99_ms", r.p99_ms}},
             r.wall_ms, r.qps);
  };
  record("cold_v2", cold);
  record("compiled_v3", compiled);
  record("compiled_after_reload", after_reload);
  // Context block: the measured node's full registry (counters, cache,
  // stage histograms when tracing is compiled in). Never gated on.
  json.SetMetricsJson(compiled_node.metrics().RenderJson());
  util::Status s = json.WriteFile();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_plan_serving.json (%zu records)\n", json.size());

  // ---- asserted claims ---------------------------------------------
  if (cold.failures + compiled.failures + after_reload.failures > 0) {
    std::fprintf(stderr, "FATAL: failed requests\n");
    return 1;
  }
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "FATAL: %zu rankings diverged between the cold and "
                 "compiled paths\n",
                 mismatches);
    return 1;
  }
  if (plan_served != stored_keys.size()) {
    std::fprintf(stderr, "FATAL: only %zu/%zu stored queries plan-served\n",
                 plan_served, stored_keys.size());
    return 1;
  }
  if (reload_mismatches > 0) {
    std::fprintf(stderr,
                 "FATAL: %zu unchanged rankings diverged across the "
                 "dirty-only reload\n",
                 reload_mismatches);
    return 1;
  }
  if (reload_plan_served != stored_keys.size()) {
    std::fprintf(stderr,
                 "FATAL: only %zu/%zu queries plan-served after reload\n",
                 reload_plan_served, stored_keys.size());
    return 1;
  }
  if (compiled.p50_ms >= cold.p50_ms) {
    std::fprintf(stderr,
                 "FATAL: compiled p50 %.3f ms did not beat cold p50 "
                 "%.3f ms\n",
                 compiled.p50_ms, cold.p50_ms);
    return 1;
  }
  std::printf("bit-identical rankings, dirty-only reload clean, "
              "compiled p50 beats cold: OK\n");
  return 0;
}
