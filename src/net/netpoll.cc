#include "net/netpoll.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <utility>

namespace optselect {
namespace net {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Reactor::Reactor() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (ok()) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

Reactor::~Reactor() {
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

bool Reactor::Add(int fd, uint32_t events, IoCallback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  auto handler = std::make_shared<Handler>();
  handler->callback = std::move(callback);
  handlers_[fd] = std::move(handler);
  return true;
}

bool Reactor::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void Reactor::Remove(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  auto it = handlers_.find(fd);
  if (it != handlers_.end()) {
    // Mark first: the dispatch loop may still hold a reference to this
    // handler for an event in the current batch.
    it->second->dead = true;
    handlers_.erase(it);
  }
}

void Reactor::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  uint64_t one = 1;
  // Best-effort wake; EAGAIN means the counter is already nonzero and
  // the loop will wake anyway.
  ssize_t ignored = write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

void Reactor::Stop() {
  stop_.store(true, std::memory_order_release);
  Post([] {});  // wake
}

void Reactor::DrainWake() {
  uint64_t count = 0;
  while (read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

void Reactor::Run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout_ms=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        DrainWake();
        continue;
      }
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      // Hold a reference across the call: the callback may Remove(fd)
      // or close other connections in the same batch.
      std::shared_ptr<Handler> handler = it->second;
      if (!handler->dead) handler->callback(events[i].events);
    }
    // Cross-thread tasks, in post order.
    std::vector<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(tasks_mu_);
      tasks.swap(tasks_);
    }
    for (auto& task : tasks) task();
  }
  // Final drain so a Post racing Stop is not silently dropped.
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks.swap(tasks_);
  }
  for (auto& task : tasks) task();
}

}  // namespace net
}  // namespace optselect
