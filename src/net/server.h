// Async TCP front-end: the wire protocol served off an epoll reactor,
// answering from any serving::Frontend (a ServingNode shard, a whole
// ShardedCluster — the server cannot tell).
//
//   client ──TCP──> Reactor thread                    worker pool
//     accept ── admission (max_connections) ──┐
//     read ── FrameParser ── admission        │
//       (max in-flight per conn) ── SubmitAsync ──> Frontend
//     write <── write queue <── Post(response) <── completion callback
//
// Load shedding is *always* an explicit error frame, never a silent
// drop: a connection over the in-flight cap — or a request the
// frontend's bounded queue refuses — gets ErrorCode::kShed with the
// request id echoed, and the connection stays usable. Only protocol
// violations (FrameParser poisoning) close the connection, after a
// best-effort error frame. A full accept backlog over max_connections
// is answered with a shed error frame and an immediate close.
//
// Thread model: all connection state belongs to the reactor thread.
// Frontend completion callbacks (worker threads) Post() the encoded
// response bytes back by connection *id* — never by pointer — so a
// connection that died mid-request simply drops the bytes.

#ifndef OPTSELECT_NET_SERVER_H_
#define OPTSELECT_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/netpoll.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "serving/frontend.h"

namespace optselect {
namespace net {

/// Server sizing + admission knobs.
struct NetServerConfig {
  /// Listen address (loopback by default — shard fleets on one host).
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Accepted-connection ceiling; further accepts are answered with a
  /// shed error frame and closed.
  size_t max_connections = 64;
  /// Per-connection in-flight request ceiling; beyond it each request
  /// is shed with an error frame (connection stays open).
  size_t max_inflight_per_conn = 128;
  /// Per-frame payload ceiling fed to the FrameParser.
  size_t max_payload = kMaxPayload;
  /// Optional registry for net_* counters (non-owned, must outlive the
  /// server).
  obs::MetricsRegistry* registry = nullptr;
};

/// Point-in-time server counters (all monotone).
struct NetServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  // over max_connections
  uint64_t connections_closed = 0;
  uint64_t requests = 0;        // well-formed request frames admitted
  uint64_t responses = 0;       // response frames queued
  uint64_t shed = 0;            // error frames with ErrorCode::kShed
  uint64_t protocol_errors = 0;  // poisoned streams (closed)
};

/// One listening socket speaking the wire protocol for one Frontend.
class NetServer {
 public:
  /// `frontend` is non-owned and must outlive the server; it must also
  /// not be shut down until after Stop() returns (completion callbacks
  /// reference server state).
  NetServer(serving::Frontend* frontend, NetServerConfig config);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the reactor thread. False on bind or
  /// reactor failure (error in last_error()).
  bool Start();

  /// Closes the listener and every connection, stops the reactor, and
  /// waits until every in-flight frontend completion has landed.
  /// Idempotent.
  void Stop();

  /// Bound port (after Start; useful with config.port == 0).
  uint16_t port() const { return bound_port_; }

  const std::string& last_error() const { return last_error_; }

  NetServerStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    FrameParser parser;
    std::string outbuf;       // queued bytes; [outoff, size) not yet sent
    size_t outoff = 0;        // sent prefix of outbuf (write cursor)
    size_t inflight = 0;      // requests submitted, response not queued
    bool writable_armed = false;
    bool draining = false;    // close once outbuf flushes
    Connection() : parser(kMaxPayload) {}
    explicit Connection(size_t max_payload) : parser(max_payload) {}
  };

  void OnAcceptable();
  void OnConnEvent(uint64_t conn_id, uint32_t events);
  void HandleFrame(uint64_t conn_id, Connection* conn, Frame frame);
  /// Queues bytes and flushes what the socket will take now; arms
  /// EPOLLOUT for the rest.
  void QueueWrite(uint64_t conn_id, Connection* conn, std::string bytes);
  void FlushWrites(uint64_t conn_id, Connection* conn);
  void CloseConn(uint64_t conn_id);
  /// Called on the reactor thread when a frontend completion arrives.
  void OnCompletion(uint64_t conn_id, uint64_t request_id,
                    const serving::Response& response);

  serving::Frontend* frontend_;
  NetServerConfig config_;
  Reactor reactor_;
  std::thread reactor_thread_;
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::string last_error_;
  bool started_ = false;
  bool stopped_ = false;

  // Reactor-thread-only connection table.
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;

  // In-flight frontend requests whose completion has not yet been
  // posted; Stop() blocks on this so callbacks never outlive us.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  size_t inflight_total_ = 0;

  // Counters (atomics: bumped on reactor + worker threads).
  std::atomic<uint64_t> n_accepted_{0};
  std::atomic<uint64_t> n_rejected_{0};
  std::atomic<uint64_t> n_closed_{0};
  std::atomic<uint64_t> n_requests_{0};
  std::atomic<uint64_t> n_responses_{0};
  std::atomic<uint64_t> n_shed_{0};
  std::atomic<uint64_t> n_protocol_errors_{0};
};

}  // namespace net
}  // namespace optselect

#endif  // OPTSELECT_NET_SERVER_H_
