// Minimal epoll reactor for the network serving edge.
//
// One Reactor = one epoll instance + one eventfd, driven by a single
// thread calling Run(). Everything that touches fds or per-connection
// state happens on that thread; other threads interact only through
// Post() (enqueue a closure, wake the loop via the eventfd) and
// Stop(). That single-writer discipline is what lets the NetServer
// keep all connection state lock-free: worker-pool completion
// callbacks never touch a connection directly — they Post() the
// response bytes back to the reactor thread.
//
//        accept/read/write ──┐
//   epoll_wait ── dispatch ──┼── per-fd callbacks (reactor thread)
//        eventfd wakeup ─────┘        ▲
//                                     │ Post(closure)
//                     worker threads ─┘   (mutex + eventfd write)
//
// Level-triggered epoll: read callbacks drain until EAGAIN, write
// interest is registered only while a connection has queued bytes.

#ifndef OPTSELECT_NET_NETPOLL_H_
#define OPTSELECT_NET_NETPOLL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace optselect {
namespace net {

/// Puts `fd` into non-blocking mode. Returns false on fcntl failure.
bool SetNonBlocking(int fd);

/// Single-threaded epoll event loop with a cross-thread task queue.
class Reactor {
 public:
  /// Called with the ready epoll event mask (EPOLLIN/EPOLLOUT/...).
  using IoCallback = std::function<void(uint32_t events)>;

  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// False when epoll/eventfd creation failed (the loop cannot run).
  bool ok() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  /// Registers `fd` for `events`; `callback` fires on the Run() thread.
  /// Reactor-thread only (or before Run starts).
  bool Add(int fd, uint32_t events, IoCallback callback);

  /// Changes the event interest set for a registered fd.
  bool Modify(int fd, uint32_t events);

  /// Deregisters `fd` (does not close it). Safe to call from inside
  /// the fd's own callback; pending events for it are dropped.
  void Remove(int fd);

  /// Runs the loop on the calling thread until Stop().
  void Run();

  /// Enqueues `task` for the Run() thread and wakes it. Thread-safe;
  /// tasks run in post order.
  void Post(std::function<void()> task);

  /// Asks the loop to exit after the current dispatch round and wakes
  /// it. Thread-safe, idempotent.
  void Stop();

 private:
  struct Handler {
    IoCallback callback;
    bool dead = false;  // Remove() during dispatch defers the erase
  };

  void DrainWake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::unordered_map<int, std::shared_ptr<Handler>> handlers_;
  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;
};

}  // namespace net
}  // namespace optselect

#endif  // OPTSELECT_NET_NETPOLL_H_
