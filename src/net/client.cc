#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "serving/cache_key.h"
#include "store/store_builder.h"

namespace optselect {
namespace net {

bool ParseEndpoint(const std::string& spec, Endpoint* out) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos) return false;
  std::string host = spec.substr(0, colon);
  std::string port_text = spec.substr(colon + 1);
  if (port_text.empty()) return false;
  unsigned long port = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') return false;
    port = port * 10 + static_cast<unsigned long>(c - '0');
    if (port > 65535) return false;
  }
  if (port == 0) return false;
  out->host = host.empty() ? "127.0.0.1" : host;
  out->port = static_cast<uint16_t>(port);
  return true;
}

bool ParseEndpointList(const std::string& spec, std::vector<Endpoint>* out) {
  out->clear();
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    size_t end = comma == std::string::npos ? spec.size() : comma;
    Endpoint endpoint;
    if (!ParseEndpoint(spec.substr(start, end - start), &endpoint)) {
      return false;
    }
    out->push_back(std::move(endpoint));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out->empty();
}

RemoteClient::~RemoteClient() { Close(); }

bool RemoteClient::Connect(const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  CloseLocked();
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    last_error_ = "socket(): " + std::string(strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    last_error_ = "bad host: " + host;
    close(fd);
    return false;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    last_error_ = "connect(): " + std::string(strerror(errno));
    close(fd);
    return false;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  parser_ = FrameParser(kMaxPayload);
  last_error_.clear();
  return true;
}

void RemoteClient::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  CloseLocked();
}

void RemoteClient::CloseLocked() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

bool RemoteClient::SendAll(const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    last_error_ = "send(): " + std::string(strerror(errno));
    return false;
  }
  return true;
}

bool RemoteClient::ReadFrame(Frame* frame) {
  char buf[16 * 1024];
  while (true) {
    if (parser_.HasFrame()) {
      *frame = parser_.Next();
      return true;
    }
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!parser_.Feed(buf, static_cast<size_t>(n))) {
        last_error_ = "protocol error: " + parser_.error();
        return false;
      }
      continue;
    }
    if (n == 0) {
      last_error_ = "server closed connection";
      return false;
    }
    if (errno == EINTR) continue;
    last_error_ = "recv(): " + std::string(strerror(errno));
    return false;
  }
}

serving::Response RemoteClient::Submit(const serving::Request& request) {
  std::lock_guard<std::mutex> lock(mu_);
  serving::Response failed;  // ok == false
  if (fd_ < 0) {
    last_error_ = "not connected";
    return failed;
  }
  serving::Request wire_request = request;
  if (wire_request.id == 0) wire_request.id = next_id_++;
  std::string frame_bytes = EncodeRequestFrame(wire_request);
  if (!SendAll(frame_bytes.data(), frame_bytes.size())) {
    CloseLocked();
    return failed;
  }
  // One request in flight under the lock, so the next frame on the
  // stream answers it — but tolerate (skip) stray ids defensively.
  while (true) {
    Frame frame;
    if (!ReadFrame(&frame)) {
      CloseLocked();
      return failed;
    }
    if (frame.request_id != wire_request.id) continue;
    if (frame.type == FrameType::kError) {
      WireError err;
      if (DecodeErrorPayload(frame, &err)) {
        last_code_ = err.code;
        last_error_ = err.message;
      }
      return failed;  // shed / bad request: connection stays usable
    }
    serving::Response response;
    if (!DecodeResponsePayload(frame, &response)) {
      last_error_ = "malformed response payload";
      CloseLocked();
      return failed;
    }
    return response;
  }
}

std::vector<serving::Response> RemoteClient::SubmitPipelined(
    const std::vector<std::string>& queries, size_t window) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<serving::Response> responses(queries.size());
  if (window == 0) window = 1;
  if (fd_ < 0 || queries.empty()) return responses;

  // id → query index for the in-flight window.
  std::unordered_map<uint64_t, size_t> inflight;
  size_t next_to_send = 0;
  size_t answered = 0;
  bool dead = false;
  while (answered < queries.size() && !dead) {
    // Fill the window.
    while (next_to_send < queries.size() && inflight.size() < window) {
      serving::Request request(queries[next_to_send], next_id_++);
      std::string bytes = EncodeRequestFrame(request);
      if (!SendAll(bytes.data(), bytes.size())) {
        dead = true;
        break;
      }
      inflight[request.id] = next_to_send++;
    }
    if (dead || inflight.empty()) break;
    // Drain one answer.
    Frame frame;
    if (!ReadFrame(&frame)) {
      dead = true;
      break;
    }
    auto it = inflight.find(frame.request_id);
    if (it == inflight.end()) continue;  // stray id: ignore
    size_t index = it->second;
    inflight.erase(it);
    ++answered;
    if (frame.type == FrameType::kError) {
      WireError err;
      if (DecodeErrorPayload(frame, &err)) {
        last_code_ = err.code;
        last_error_ = err.message;
      }
      continue;  // responses[index] stays ok == false
    }
    if (!DecodeResponsePayload(frame, &responses[index])) {
      last_error_ = "malformed response payload";
      dead = true;
      break;
    }
  }
  if (dead) CloseLocked();  // unanswered tail stays ok == false
  return responses;
}

const char* EndpointStateName(EndpointState state) {
  switch (state) {
    case EndpointState::kClosed:
      return "closed";
    case EndpointState::kOpen:
      return "open";
    case EndpointState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

RemoteFrontend::RemoteFrontend(std::vector<Endpoint> endpoints,
                               RemoteFrontendConfig config)
    : endpoints_(std::move(endpoints)),
      config_(config),
      health_(endpoints_.size()) {
  clients_.reserve(endpoints_.size());
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    clients_.push_back(std::make_unique<RemoteClient>());
  }
  if (config_.registry != nullptr) {
    obs::MetricsRegistry* reg = config_.registry;
    // Effect before cause, same discipline as the in-process router.
    reg->AddCounterFn("remote_degraded_total", {}, [this] {
      std::lock_guard<std::mutex> lock(health_mu_);
      return counters_.degraded;
    });
    reg->AddCounterFn("remote_dropped_total", {}, [this] {
      std::lock_guard<std::mutex> lock(health_mu_);
      return counters_.dropped;
    });
    reg->AddCounterFn("remote_breaker_opens_total", {}, [this] {
      std::lock_guard<std::mutex> lock(health_mu_);
      return counters_.breaker_opens;
    });
    reg->AddCounterFn("remote_reconnects_total", {}, [this] {
      std::lock_guard<std::mutex> lock(health_mu_);
      return counters_.reconnects;
    });
    reg->AddCounterFn("remote_serves_total", {}, [this] {
      std::lock_guard<std::mutex> lock(health_mu_);
      return counters_.serves;
    });
  }
}

RemoteFrontend::~RemoteFrontend() = default;

size_t RemoteFrontend::OwnerOf(const std::string& query) const {
  return store::ShardFilter::OwnerShard(serving::NormalizeQuery(query),
                                        endpoints_.size());
}

EndpointState RemoteFrontend::endpoint_state(size_t i) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_[i].state;
}

RemoteFrontendStats RemoteFrontend::stats() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return counters_;
}

void RemoteFrontend::DisconnectEndpoint(size_t i) { clients_[i]->Close(); }

bool RemoteFrontend::AllowAttempt(size_t i) {
  std::lock_guard<std::mutex> lock(health_mu_);
  EndpointHealth& health = health_[i];
  switch (health.state) {
    case EndpointState::kClosed:
    case EndpointState::kHalfOpen:
      return true;
    case EndpointState::kOpen:
      // Count-based, strictly-greater: identical to the in-process
      // router, so replays are deterministic.
      if (++health.skips_while_open > config_.breaker_probe_after) {
        health.state = EndpointState::kHalfOpen;
        health.skips_while_open = 0;
        ++counters_.probes;
        return true;
      }
      return false;
  }
  return true;
}

void RemoteFrontend::RecordOutcome(size_t i, bool ok) {
  std::lock_guard<std::mutex> lock(health_mu_);
  EndpointHealth& health = health_[i];
  if (ok) {
    health.consecutive_failures = 0;
    health.state = EndpointState::kClosed;
    return;
  }
  ++health.consecutive_failures;
  if (health.state == EndpointState::kHalfOpen) {
    health.state = EndpointState::kOpen;
    health.skips_while_open = 0;
  } else if (health.state == EndpointState::kClosed &&
             health.consecutive_failures >= config_.breaker_threshold) {
    health.state = EndpointState::kOpen;
    health.skips_while_open = 0;
    ++counters_.breaker_opens;
  }
}

serving::Response RemoteFrontend::AttemptOn(size_t i,
                                            const serving::Request& request) {
  RemoteClient* client = clients_[i].get();
  if (!client->connected()) {
    if (!client->Connect(endpoints_[i].host, endpoints_[i].port)) {
      serving::Response failed;
      return failed;
    }
    std::lock_guard<std::mutex> lock(health_mu_);
    ++counters_.reconnects;
  }
  return client->Submit(request);
}

serving::Response RemoteFrontend::Submit(const serving::Request& request) {
  const size_t n = endpoints_.size();
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    ++counters_.serves;
  }
  const size_t owner = OwnerOf(request.query);
  std::vector<char> attempted(n, 0);
  size_t attempts = 0;
  auto finish = [&](serving::Response response) {
    if (attempts > 1) {
      std::lock_guard<std::mutex> lock(health_mu_);
      ++counters_.retried;
    }
    return response;
  };

  // Phase 1 — the owner, breaker-gated.
  if (AllowAttempt(owner)) {
    attempted[owner] = 1;
    ++attempts;
    serving::Response response = AttemptOn(owner, request);
    RecordOutcome(owner, response.ok);
    if (response.ok) return finish(std::move(response));
  }

  // Phase 2 — any live endpoint; non-owner answers are passthrough
  // (the shard lacks the entry) and tagged degraded, per the PR 5
  // contract. Second pass ignores open breakers rather than drop.
  for (int respect_breaker = 1; respect_breaker >= 0; --respect_breaker) {
    for (size_t step = 0; step < n; ++step) {
      size_t i = (owner + 1 + step) % n;
      if (attempted[i]) continue;
      if (respect_breaker && !AllowAttempt(i)) continue;
      attempted[i] = 1;
      ++attempts;
      serving::Response response = AttemptOn(i, request);
      RecordOutcome(i, response.ok);
      if (response.ok) {
        if (i != owner) {
          response.degraded = true;
          std::lock_guard<std::mutex> lock(health_mu_);
          ++counters_.degraded;
        }
        return finish(std::move(response));
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(health_mu_);
    ++counters_.dropped;
  }
  serving::Response failed;
  return finish(failed);
}

}  // namespace net
}  // namespace optselect
