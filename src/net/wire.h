// Binary wire protocol for the network serving edge.
//
// One frame = one 32-byte header + payload. All integers are
// little-endian, composed byte-by-byte (no struct punning), so the
// format is identical across hosts and sanitizer-clean:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic            0x4F53454Cu ("LESO" on the wire)
//        4     1  version          kWireVersion (1)
//        5     1  type             1=request 2=response 3=error
//        6     2  flags            response: Response bools (below)
//        8     8  request_id       echoed request → response
//       16     4  payload_len      bytes after the header (bounded)
//       20     4  reserved         must be 0
//       24     8  checksum         FNV-1a over header[0..24) + payload
//
// Payloads:
//   request   raw (un-normalized) query bytes
//   response  u64 store_version · u32 num_specializations ·
//             u32 count · count × u32 doc ids
//   error     u16 code (ErrorCode) · message bytes
//
// Response flag bits mirror serving::Response exactly — a remote
// answer decodes to the same struct a local call returns, which is
// what makes local and remote serving interchangeable behind
// serving::Frontend:
//   bit 0 ok · 1 diversified · 2 cache_hit · 3 batch_dedup ·
//   4 plan_served · 5 streaming_served · 6 degraded · 7 hedged
//
// The FrameParser is an incremental, bounded deframer for async reads:
// feed it whatever recv() produced; it never over-reads past a frame
// boundary and rejects the stream (fatal, close the connection) on bad
// magic/version/reserved bytes, an oversized declared length, or a
// checksum mismatch. Truncated input is simply "no frame yet" — that
// is what makes slow-loris partial writes safe.

#ifndef OPTSELECT_NET_WIRE_H_
#define OPTSELECT_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

#include "serving/frontend.h"

namespace optselect {
namespace net {

inline constexpr uint32_t kMagic = 0x4F53454Cu;
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kHeaderSize = 32;
/// Declared-length ceiling: a header announcing more than this is a
/// protocol violation (protects the per-connection read buffer).
inline constexpr uint32_t kMaxPayload = 1u << 20;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
};

/// Machine-readable cause carried by an error frame.
enum class ErrorCode : uint16_t {
  /// Admission control refused the request (queue full / too many
  /// in-flight); retry later. The connection stays open.
  kShed = 1,
  /// The request frame decoded but was semantically unusable.
  kBadRequest = 2,
  /// The server is draining; no further requests will be answered.
  kShutdown = 3,
  /// The serving path itself failed (Response.ok == false upstream).
  kServeFailed = 4,
};

// Response flag bits (wire ↔ serving::Response).
inline constexpr uint16_t kFlagOk = 1u << 0;
inline constexpr uint16_t kFlagDiversified = 1u << 1;
inline constexpr uint16_t kFlagCacheHit = 1u << 2;
inline constexpr uint16_t kFlagBatchDedup = 1u << 3;
inline constexpr uint16_t kFlagPlanServed = 1u << 4;
inline constexpr uint16_t kFlagStreamingServed = 1u << 5;
inline constexpr uint16_t kFlagDegraded = 1u << 6;
inline constexpr uint16_t kFlagHedged = 1u << 7;

/// One decoded frame (header fields + raw payload bytes).
struct Frame {
  FrameType type = FrameType::kRequest;
  uint16_t flags = 0;
  uint64_t request_id = 0;
  std::string payload;
};

/// Decoded error-frame payload.
struct WireError {
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
};

/// Serializes an arbitrary frame (header + checksum + payload).
std::string EncodeFrame(const Frame& frame);

/// Request → one request frame (payload = raw query bytes).
std::string EncodeRequestFrame(const serving::Request& request);

/// Response → one response frame for `request_id` (flags from the
/// Response bools, payload = version/specializations/ranking).
std::string EncodeResponseFrame(uint64_t request_id,
                                const serving::Response& response);

/// Error → one error frame for `request_id`.
std::string EncodeErrorFrame(uint64_t request_id, ErrorCode code,
                             const std::string& message);

/// Payload decoders; false when the payload bytes are malformed
/// (short, inconsistent count, trailing bytes). The frame must have
/// the matching type.
bool DecodeRequestPayload(const Frame& frame, serving::Request* out);
bool DecodeResponsePayload(const Frame& frame, serving::Response* out);
bool DecodeErrorPayload(const Frame& frame, WireError* out);

/// Incremental, bounded stream deframer (one per connection).
class FrameParser {
 public:
  explicit FrameParser(size_t max_payload = kMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends `size` raw stream bytes and extracts every complete
  /// frame. Returns false on a fatal protocol violation (bad
  /// magic/version/reserved, oversized length, checksum mismatch) —
  /// the stream is poisoned and the connection should be closed;
  /// every later Feed also returns false. Partial frames return true
  /// and wait for more bytes.
  bool Feed(const char* data, size_t size);

  /// Complete frames parsed so far, in stream order.
  bool HasFrame() const { return !frames_.empty(); }

  /// Pops the oldest parsed frame. HasFrame() must be true.
  Frame Next();

  /// Why the stream was rejected (empty until Feed returns false).
  const std::string& error() const { return error_; }

  /// Bytes buffered waiting for a frame boundary (bounded by
  /// kHeaderSize + max_payload by construction).
  size_t buffered() const { return buffer_.size(); }

 private:
  size_t max_payload_;
  std::string buffer_;
  std::deque<Frame> frames_;
  std::string error_;
  bool poisoned_ = false;
};

/// serving::Response bools → wire flags and back.
uint16_t PackResponseFlags(const serving::Response& response);
void UnpackResponseFlags(uint16_t flags, serving::Response* response);

}  // namespace net
}  // namespace optselect

#endif  // OPTSELECT_NET_WIRE_H_
