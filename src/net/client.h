// Client side of the wire protocol: one-connection RemoteClient and
// the multi-endpoint RemoteFrontend router.
//
// RemoteClient is a blocking request/response client over one TCP
// connection — the remote twin of calling ServingNode::Submit in
// process. It also exposes a pipelined mode (`SubmitPipelined`) that
// keeps a window of requests in flight and matches answers by request
// id, since the server's worker pool may answer out of order.
//
// RemoteFrontend is the client-side analogue of the cluster's
// QueryRouter::ServeWithFailover over N shard *processes*: it routes
// by the same owner hash (NormalizeQuery + ShardFilter::OwnerShard,
// so a remote fleet and an in-process ShardedCluster pick the same
// shard for every query), gates endpoints behind the same count-based
// circuit breakers (threshold consecutive failures → open;
// probe_after skipped decisions → one half-open probe, which is also
// the reconnect point), and falls back to any live endpoint when the
// owner is down — the non-owner shard lacks the store entry and
// serves the plain DPH passthrough, which the frontend tags
// `degraded`, exactly the PR 5 contract. Count-based probing keeps
// sequential replays deterministic, which the process-level chaos
// harness depends on.
//
// Both implement serving::Frontend, so the replay drivers, loadtest,
// and chaos cannot tell remote serving from local.

#ifndef OPTSELECT_NET_CLIENT_H_
#define OPTSELECT_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "obs/metrics.h"
#include "serving/frontend.h"

namespace optselect {
namespace net {

/// One host:port shard server address.
struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

/// Parses "host:port" (host may be empty ⇒ 127.0.0.1). False on a
/// missing/invalid port.
bool ParseEndpoint(const std::string& spec, Endpoint* out);

/// Parses "host:port,host:port,...". False if any element fails.
bool ParseEndpointList(const std::string& spec, std::vector<Endpoint>* out);

/// Blocking wire-protocol client over one TCP connection. Thread-safe
/// (a mutex serializes requests — use one client per thread, or the
/// pipelined mode, for concurrency). Implements serving::Frontend via
/// the default inline SubmitAsync adapter.
class RemoteClient : public serving::Frontend {
 public:
  RemoteClient() = default;
  ~RemoteClient() override;
  RemoteClient(const RemoteClient&) = delete;
  RemoteClient& operator=(const RemoteClient&) = delete;

  /// Blocking connect. False on failure (reason in last_error()).
  bool Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One blocking request/response round trip. ok == false when the
  /// connection is down/dies mid-request, the server answers with an
  /// error frame (shed, bad request), or the response is malformed
  /// (connection closed in that case — the stream is unsynchronized).
  serving::Response Submit(const serving::Request& request) override;

  /// Pipelined replay of `queries`: keeps up to `window` requests in
  /// flight, matches out-of-order answers by id, returns responses in
  /// query order. A dead connection fails the remaining tail
  /// (ok == false), never blocks forever.
  std::vector<serving::Response> SubmitPipelined(
      const std::vector<std::string>& queries, size_t window = 32);

  /// Error-frame code of the last failed Submit (meaningful only when
  /// the returned Response had ok == false and the server answered).
  ErrorCode last_error_code() const { return last_code_; }
  const std::string& last_error() const { return last_error_; }

 private:
  bool SendAll(const char* data, size_t size);
  /// Blocks until one frame parses (or the stream dies/poisons).
  bool ReadFrame(Frame* frame);
  void CloseLocked();

  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t next_id_ = 1;
  FrameParser parser_;
  ErrorCode last_code_ = ErrorCode::kBadRequest;
  std::string last_error_;
};

/// Breaker + sizing knobs for RemoteFrontend (mirrors the in-process
/// FailoverConfig; no hedging — remote answers are matched by id, and
/// chaos determinism forbids wall-time races).
struct RemoteFrontendConfig {
  /// Consecutive failed attempts that trip an endpoint's breaker open.
  size_t breaker_threshold = 3;
  /// Routing decisions skipped past an open endpoint before one probe
  /// (which is also when reconnection is attempted).
  size_t breaker_probe_after = 8;
  /// Optional registry for remote_* counters (non-owned).
  obs::MetricsRegistry* registry = nullptr;
};

/// Per-endpoint breaker state (same machine as cluster::BreakerState;
/// redeclared here so net/ does not depend on cluster/).
enum class EndpointState { kClosed, kOpen, kHalfOpen };
const char* EndpointStateName(EndpointState state);

/// RemoteFrontend counters.
struct RemoteFrontendStats {
  uint64_t serves = 0;
  uint64_t retried = 0;   ///< needed > 1 attempt
  uint64_t degraded = 0;  ///< answered by a non-owner, tagged
  uint64_t dropped = 0;   ///< no endpoint answered
  uint64_t probes = 0;    ///< half-open probe admissions
  uint64_t breaker_opens = 0;
  uint64_t reconnects = 0;  ///< successful re-Connect() calls
};

/// Client-side router over N remote shard endpoints; the remote
/// implementation of the fault-tolerant serving path.
class RemoteFrontend : public serving::Frontend {
 public:
  RemoteFrontend(std::vector<Endpoint> endpoints,
                 RemoteFrontendConfig config = {});
  ~RemoteFrontend() override;

  /// Owner endpoint of `query` under the shared shard hash.
  size_t OwnerOf(const std::string& query) const;

  /// Fault-tolerant blocking request: owner first (breaker-gated),
  /// then any live endpoint, degraded-tagging non-owner answers.
  serving::Response Submit(const serving::Request& request) override;

  size_t num_endpoints() const { return endpoints_.size(); }
  EndpointState endpoint_state(size_t i) const;
  RemoteFrontendStats stats() const;

  /// Drops endpoint i's connection (test hook: simulates a dead shard
  /// without OS cooperation; the next attempt will fail fast).
  void DisconnectEndpoint(size_t i);

 private:
  struct EndpointHealth {
    EndpointState state = EndpointState::kClosed;
    size_t consecutive_failures = 0;
    size_t skips_while_open = 0;
  };

  bool AllowAttempt(size_t i);
  void RecordOutcome(size_t i, bool ok);
  /// Ensures a connection and performs one round trip; ok == false on
  /// connect or serve failure.
  serving::Response AttemptOn(size_t i, const serving::Request& request);

  std::vector<Endpoint> endpoints_;
  RemoteFrontendConfig config_;
  std::vector<std::unique_ptr<RemoteClient>> clients_;
  mutable std::mutex health_mu_;
  std::vector<EndpointHealth> health_;
  // Counters under health_mu_ (stats() snapshots them together).
  RemoteFrontendStats counters_;
};

}  // namespace net
}  // namespace optselect

#endif  // OPTSELECT_NET_CLIENT_H_
