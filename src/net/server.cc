#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace optselect {
namespace net {

NetServer::NetServer(serving::Frontend* frontend, NetServerConfig config)
    : frontend_(frontend), config_(std::move(config)) {
  if (config_.registry != nullptr) {
    obs::MetricsRegistry* reg = config_.registry;
    // Effect before cause: responses/shed before requests, requests
    // before accepts — per snapshot, effects never exceed causes.
    reg->AddCounterFn("net_responses_total", {},
                      [this] { return n_responses_.load(); });
    reg->AddCounterFn("net_shed_total", {}, [this] { return n_shed_.load(); });
    reg->AddCounterFn("net_protocol_errors_total", {},
                      [this] { return n_protocol_errors_.load(); });
    reg->AddCounterFn("net_requests_total", {},
                      [this] { return n_requests_.load(); });
    reg->AddCounterFn("net_connections_closed_total", {},
                      [this] { return n_closed_.load(); });
    reg->AddCounterFn("net_connections_rejected_total", {},
                      [this] { return n_rejected_.load(); });
    reg->AddCounterFn("net_connections_accepted_total", {},
                      [this] { return n_accepted_.load(); });
    reg->AddGaugeFn("net_connections_open", {}, [this] {
      return static_cast<double>(n_accepted_.load() - n_closed_.load());
    });
  }
}

NetServer::~NetServer() { Stop(); }

bool NetServer::Start() {
  if (started_) return true;
  if (!reactor_.ok()) {
    last_error_ = "reactor setup failed (epoll/eventfd)";
    return false;
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    last_error_ = "socket(): " + std::string(strerror(errno));
    return false;
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    last_error_ = "bad listen host: " + config_.host;
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    last_error_ = "bind(): " + std::string(strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (listen(listen_fd_, SOMAXCONN) != 0) {
    last_error_ = "listen(): " + std::string(strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);

  SetNonBlocking(listen_fd_);
  reactor_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { OnAcceptable(); });
  reactor_thread_ = std::thread([this] { reactor_.Run(); });
  started_ = true;
  return true;
}

void NetServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  reactor_.Post([this] {
    if (listen_fd_ >= 0) {
      reactor_.Remove(listen_fd_);
      close(listen_fd_);
      listen_fd_ = -1;
    }
    // Collect ids first: CloseConn mutates conns_.
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& entry : conns_) ids.push_back(entry.first);
    for (uint64_t id : ids) CloseConn(id);
  });
  reactor_.Stop();
  if (reactor_thread_.joinable()) reactor_thread_.join();
  // Frontend completion callbacks reference `this`; wait them out so
  // destruction is safe even if the frontend is still draining.
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [this] { return inflight_total_ == 0; });
}

NetServerStats NetServer::stats() const {
  NetServerStats s;
  s.connections_accepted = n_accepted_.load();
  s.connections_rejected = n_rejected_.load();
  s.connections_closed = n_closed_.load();
  s.requests = n_requests_.load();
  s.responses = n_responses_.load();
  s.shed = n_shed_.load();
  s.protocol_errors = n_protocol_errors_.load();
  return s;
}

void NetServer::OnAcceptable() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; epoll will re-arm
    }
    if (conns_.size() >= config_.max_connections) {
      // Admission control: explicit refusal, not a silent RST. The
      // socket is fresh so a short best-effort blocking-ish write of
      // the error frame almost always lands in the send buffer.
      n_rejected_.fetch_add(1);
      n_shed_.fetch_add(1);
      std::string frame = EncodeErrorFrame(0, ErrorCode::kShed,
                                           "connection limit reached");
      ssize_t ignored = send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      (void)ignored;
      close(fd);
      continue;
    }
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    uint64_t conn_id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(config_.max_payload);
    conn->fd = fd;
    conns_[conn_id] = std::move(conn);
    n_accepted_.fetch_add(1);
    reactor_.Add(fd, EPOLLIN, [this, conn_id](uint32_t events) {
      OnConnEvent(conn_id, events);
    });
  }
}

void NetServer::OnConnEvent(uint64_t conn_id, uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();

  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(conn_id);
    return;
  }
  if (events & EPOLLOUT) {
    FlushWrites(conn_id, conn);
    if (conns_.find(conn_id) == conns_.end()) return;  // closed by flush
  }
  if (!(events & EPOLLIN)) return;

  char buf[16 * 1024];
  while (true) {
    ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!conn->parser.Feed(buf, static_cast<size_t>(n))) {
        // Poisoned stream: best-effort error frame, then close. The
        // parser never hands out frames past the violation, so no
        // partial/corrupt request reaches the frontend.
        n_protocol_errors_.fetch_add(1);
        std::string frame = EncodeErrorFrame(0, ErrorCode::kBadRequest,
                                             conn->parser.error());
        ssize_t ignored =
            send(conn->fd, frame.data(), frame.size(), MSG_NOSIGNAL);
        (void)ignored;
        CloseConn(conn_id);
        return;
      }
      while (conn->parser.HasFrame()) {
        HandleFrame(conn_id, conn, conn->parser.Next());
        if (conns_.find(conn_id) == conns_.end()) return;
      }
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConn(conn_id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConn(conn_id);
    return;
  }
}

void NetServer::HandleFrame(uint64_t conn_id, Connection* conn, Frame frame) {
  if (frame.type != FrameType::kRequest) {
    // Clients must not send response/error frames; answer and move on.
    QueueWrite(conn_id, conn,
               EncodeErrorFrame(frame.request_id, ErrorCode::kBadRequest,
                                "unexpected frame type"));
    return;
  }
  serving::Request request;
  DecodeRequestPayload(frame, &request);

  if (conn->inflight >= config_.max_inflight_per_conn) {
    n_shed_.fetch_add(1);
    QueueWrite(conn_id, conn,
               EncodeErrorFrame(frame.request_id, ErrorCode::kShed,
                                "per-connection in-flight limit"));
    return;
  }

  conn->inflight++;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_total_++;
  }
  n_requests_.fetch_add(1);
  uint64_t request_id = frame.request_id;
  bool accepted = frontend_->SubmitAsync(
      std::move(request), [this, conn_id, request_id](serving::Response r) {
        // Worker thread: hand the answer to the reactor by id.
        reactor_.Post([this, conn_id, request_id, r = std::move(r)] {
          OnCompletion(conn_id, request_id, r);
        });
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_total_--;
        inflight_cv_.notify_all();
      });
  if (!accepted) {
    // The frontend's bounded queue shed it: the callback never fires.
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_total_--;
      inflight_cv_.notify_all();
    }
    conn->inflight--;
    n_shed_.fetch_add(1);
    QueueWrite(conn_id, conn,
               EncodeErrorFrame(request_id, ErrorCode::kShed,
                                "serving queue full"));
  }
}

void NetServer::OnCompletion(uint64_t conn_id, uint64_t request_id,
                             const serving::Response& response) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // connection died mid-request
  Connection* conn = it->second.get();
  if (conn->inflight > 0) conn->inflight--;
  n_responses_.fetch_add(1);
  QueueWrite(conn_id, conn, EncodeResponseFrame(request_id, response));
}

void NetServer::QueueWrite(uint64_t conn_id, Connection* conn,
                           std::string bytes) {
  conn->outbuf += bytes;
  FlushWrites(conn_id, conn);
}

void NetServer::FlushWrites(uint64_t conn_id, Connection* conn) {
  // A write cursor instead of erase(0, n) per partial send: erasing the
  // sent prefix memmoves the whole remainder every time the socket
  // takes a partial write, which is O(n²) under backpressure with
  // pipelined clients. The cursor advances in O(1); the buffer is
  // compacted only when it drains (below) or when the dead prefix
  // dominates a parked buffer (the EAGAIN branch) — both amortized
  // O(1) per byte queued.
  while (conn->outoff < conn->outbuf.size()) {
    ssize_t n = send(conn->fd, conn->outbuf.data() + conn->outoff,
                     conn->outbuf.size() - conn->outoff, MSG_NOSIGNAL);
    if (n > 0) {
      conn->outoff += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (conn->outoff >= 4096 && conn->outoff >= conn->outbuf.size() / 2) {
        conn->outbuf.erase(0, conn->outoff);
        conn->outoff = 0;
      }
      if (!conn->writable_armed) {
        conn->writable_armed = true;
        reactor_.Modify(conn->fd, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn_id);
    return;
  }
  conn->outbuf.clear();
  conn->outoff = 0;
  if (conn->writable_armed) {
    conn->writable_armed = false;
    reactor_.Modify(conn->fd, EPOLLIN);
  }
}

void NetServer::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  int fd = it->second->fd;
  reactor_.Remove(fd);
  close(fd);
  conns_.erase(it);
  n_closed_.fetch_add(1);
}

}  // namespace net
}  // namespace optselect
