#include "net/wire.h"

#include <cstring>

#include "util/hash.h"

namespace optselect {
namespace net {
namespace {

// Explicit little-endian byte composition — no aliasing, no
// host-endianness dependence.
void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out->push_back(static_cast<char>((v >> shift) & 0xff));
}

void PutU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out->push_back(static_cast<char>((v >> shift) & 0xff));
}

uint16_t GetU16(const unsigned char* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// Checksum = FNV-1a over the first 24 header bytes (everything before
// the checksum field) chained over the payload.
uint64_t FrameChecksum(const std::string& header_prefix,
                       const std::string& payload) {
  uint64_t state = util::Fnv1a64(header_prefix.data(), 24);
  return util::Fnv1a64(payload.data(), payload.size(), state);
}

}  // namespace

uint16_t PackResponseFlags(const serving::Response& response) {
  uint16_t flags = 0;
  if (response.ok) flags |= kFlagOk;
  if (response.diversified) flags |= kFlagDiversified;
  if (response.cache_hit) flags |= kFlagCacheHit;
  if (response.batch_dedup) flags |= kFlagBatchDedup;
  if (response.plan_served) flags |= kFlagPlanServed;
  if (response.streaming_served) flags |= kFlagStreamingServed;
  if (response.degraded) flags |= kFlagDegraded;
  if (response.hedged) flags |= kFlagHedged;
  return flags;
}

void UnpackResponseFlags(uint16_t flags, serving::Response* response) {
  response->ok = (flags & kFlagOk) != 0;
  response->diversified = (flags & kFlagDiversified) != 0;
  response->cache_hit = (flags & kFlagCacheHit) != 0;
  response->batch_dedup = (flags & kFlagBatchDedup) != 0;
  response->plan_served = (flags & kFlagPlanServed) != 0;
  response->streaming_served = (flags & kFlagStreamingServed) != 0;
  response->degraded = (flags & kFlagDegraded) != 0;
  response->hedged = (flags & kFlagHedged) != 0;
}

std::string EncodeFrame(const Frame& frame) {
  std::string header;
  header.reserve(kHeaderSize);
  PutU32(&header, kMagic);
  header.push_back(static_cast<char>(kWireVersion));
  header.push_back(static_cast<char>(frame.type));
  PutU16(&header, frame.flags);
  PutU64(&header, frame.request_id);
  PutU32(&header, static_cast<uint32_t>(frame.payload.size()));
  PutU32(&header, 0);  // reserved

  std::string out;
  out.reserve(kHeaderSize + frame.payload.size());
  out += header;
  PutU64(&out, FrameChecksum(header, frame.payload));
  out += frame.payload;
  return out;
}

std::string EncodeRequestFrame(const serving::Request& request) {
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.request_id = request.id;
  frame.payload = request.query;
  return EncodeFrame(frame);
}

std::string EncodeResponseFrame(uint64_t request_id,
                                const serving::Response& response) {
  Frame frame;
  frame.type = FrameType::kResponse;
  frame.flags = PackResponseFlags(response);
  frame.request_id = request_id;
  frame.payload.reserve(16 + 4 * response.ranking.size());
  PutU64(&frame.payload, response.store_version);
  PutU32(&frame.payload, static_cast<uint32_t>(response.num_specializations));
  PutU32(&frame.payload, static_cast<uint32_t>(response.ranking.size()));
  for (DocId doc : response.ranking) PutU32(&frame.payload, doc);
  return EncodeFrame(frame);
}

std::string EncodeErrorFrame(uint64_t request_id, ErrorCode code,
                             const std::string& message) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.request_id = request_id;
  PutU16(&frame.payload, static_cast<uint16_t>(code));
  frame.payload += message;
  return EncodeFrame(frame);
}

bool DecodeRequestPayload(const Frame& frame, serving::Request* out) {
  if (frame.type != FrameType::kRequest) return false;
  out->query = frame.payload;
  out->id = frame.request_id;
  return true;
}

bool DecodeResponsePayload(const Frame& frame, serving::Response* out) {
  if (frame.type != FrameType::kResponse) return false;
  const std::string& p = frame.payload;
  if (p.size() < 16) return false;
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(p.data());
  *out = serving::Response();
  UnpackResponseFlags(frame.flags, out);
  out->store_version = GetU64(bytes);
  out->num_specializations = GetU32(bytes + 8);
  uint32_t count = GetU32(bytes + 12);
  // The declared ranking must account for exactly the remaining bytes.
  if (p.size() != 16 + static_cast<size_t>(count) * 4) return false;
  out->ranking.reserve(count);
  for (uint32_t i = 0; i < count; ++i)
    out->ranking.push_back(GetU32(bytes + 16 + i * 4));
  return true;
}

bool DecodeErrorPayload(const Frame& frame, WireError* out) {
  if (frame.type != FrameType::kError) return false;
  const std::string& p = frame.payload;
  if (p.size() < 2) return false;
  out->code = static_cast<ErrorCode>(
      GetU16(reinterpret_cast<const unsigned char*>(p.data())));
  out->message.assign(p, 2, p.size() - 2);
  return true;
}

bool FrameParser::Feed(const char* data, size_t size) {
  if (poisoned_) return false;
  buffer_.append(data, size);
  while (buffer_.size() >= kHeaderSize) {
    const unsigned char* h =
        reinterpret_cast<const unsigned char*>(buffer_.data());
    if (GetU32(h) != kMagic) {
      error_ = "bad magic";
    } else if (h[4] != kWireVersion) {
      error_ = "unsupported version";
    } else if (h[5] < 1 || h[5] > 3) {
      error_ = "unknown frame type";
    } else if (GetU32(h + 20) != 0) {
      error_ = "nonzero reserved field";
    } else if (GetU32(h + 16) > max_payload_) {
      error_ = "oversized payload length";
    }
    if (!error_.empty()) {
      poisoned_ = true;
      return false;
    }
    uint32_t payload_len = GetU32(h + 16);
    if (buffer_.size() < kHeaderSize + payload_len) break;  // need more

    Frame frame;
    frame.type = static_cast<FrameType>(h[5]);
    frame.flags = GetU16(h + 6);
    frame.request_id = GetU64(h + 8);
    frame.payload.assign(buffer_, kHeaderSize, payload_len);

    uint64_t declared = GetU64(h + 24);
    uint64_t actual = util::Fnv1a64(buffer_.data(), 24);
    actual = util::Fnv1a64(frame.payload.data(), frame.payload.size(), actual);
    if (declared != actual) {
      error_ = "checksum mismatch";
      poisoned_ = true;
      return false;
    }
    frames_.push_back(std::move(frame));
    buffer_.erase(0, kHeaderSize + payload_len);
  }
  return true;
}

Frame FrameParser::Next() {
  Frame frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

}  // namespace net
}  // namespace optselect
