// Superstring recommender: an alternative `A` for Algorithm 1.
//
// Suggests the log queries whose token set strictly contains the input
// query's tokens, scored by popularity — no session model at all, only
// the query strings and their frequencies. It demonstrates the paper's
// pluggability claim (Section 3.1: any related-query algorithm over the
// log can drive AmbiguousQueryDetect) and doubles as a baseline: it sees
// every lexical refinement but, unlike Search Shortcuts, cannot find
// non-superstring reformulations and has no behavioural evidence that
// users actually follow the refinement.

#ifndef OPTSELECT_RECOMMEND_SUPERSTRING_RECOMMENDER_H_
#define OPTSELECT_RECOMMEND_SUPERSTRING_RECOMMENDER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "querylog/popularity.h"
#include "querylog/query_log.h"
#include "recommend/recommender.h"

namespace optselect {
namespace recommend {

/// Frequency-scored lexical-refinement recommender.
class SuperstringRecommender : public Recommender {
 public:
  struct Options {
    /// Suggestions must have at most this many tokens more than the
    /// input query (long tails are rarely useful refinements).
    size_t max_extra_tokens = 3;
    /// Queries seen fewer times than this are not suggested.
    uint64_t min_frequency = 2;
  };

  SuperstringRecommender() : SuperstringRecommender(Options{}) {}
  explicit SuperstringRecommender(Options options) : options_(options) {}

  /// Indexes every distinct query of the log by its tokens.
  void Train(const querylog::QueryLog& log);

  std::vector<Suggestion> Recommend(std::string_view query,
                                    size_t max_suggestions) const override;

  uint64_t Frequency(std::string_view query) const override {
    return popularity_.Frequency(query);
  }

  size_t num_indexed_queries() const { return num_indexed_; }

 private:
  Options options_;
  querylog::PopularityMap popularity_;
  /// token → distinct queries containing it (by index into queries_).
  std::unordered_map<std::string, std::vector<uint32_t>> token_index_;
  std::vector<std::string> queries_;
  size_t num_indexed_ = 0;
};

}  // namespace recommend
}  // namespace optselect

#endif  // OPTSELECT_RECOMMEND_SUPERSTRING_RECOMMENDER_H_
