#include "recommend/superstring_recommender.h"

#include <algorithm>
#include <unordered_set>

#include "recommend/ambiguity_detector.h"
#include "util/strings.h"

namespace optselect {
namespace recommend {

void SuperstringRecommender::Train(const querylog::QueryLog& log) {
  popularity_ = querylog::PopularityMap(log);
  token_index_.clear();
  queries_.clear();

  std::unordered_set<std::string> seen;
  for (const auto& [query, freq] : popularity_.counts()) {
    if (freq < options_.min_frequency) continue;
    uint32_t id = static_cast<uint32_t>(queries_.size());
    queries_.push_back(query);
    for (const std::string& token : util::SplitWhitespace(query)) {
      std::vector<uint32_t>& bucket = token_index_[token];
      if (bucket.empty() || bucket.back() != id) bucket.push_back(id);
    }
  }
  num_indexed_ = queries_.size();
}

std::vector<Suggestion> SuperstringRecommender::Recommend(
    std::string_view query, size_t max_suggestions) const {
  std::vector<std::string> tokens =
      util::SplitWhitespace(query);
  if (tokens.empty() || max_suggestions == 0) return {};

  // Probe the rarest token's bucket, then verify the superset property.
  const std::vector<uint32_t>* smallest = nullptr;
  for (const std::string& token : tokens) {
    auto it = token_index_.find(token);
    if (it == token_index_.end()) return {};
    if (smallest == nullptr || it->second.size() < smallest->size()) {
      smallest = &it->second;
    }
  }

  std::vector<Suggestion> out;
  for (uint32_t id : *smallest) {
    const std::string& candidate = queries_[id];
    if (candidate == query) continue;
    std::vector<std::string> cand_tokens =
        util::SplitWhitespace(candidate);
    if (cand_tokens.size() <= tokens.size() ||
        cand_tokens.size() > tokens.size() + options_.max_extra_tokens) {
      continue;
    }
    if (!IsTermSuperset(candidate, query)) continue;
    Suggestion s;
    s.query = candidate;
    s.frequency = popularity_.Frequency(candidate);
    s.score = static_cast<double>(s.frequency);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const Suggestion& a,
                                       const Suggestion& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.query < b.query;
  });
  if (out.size() > max_suggestions) out.resize(max_suggestions);
  return out;
}

}  // namespace recommend
}  // namespace optselect
