#include "recommend/shortcuts_recommender.h"

#include <algorithm>
#include <cmath>

namespace optselect {
namespace recommend {

void ShortcutsRecommender::Train(
    const querylog::QueryLog& log,
    const std::vector<querylog::Session>& sessions) {
  model_.clear();
  popularity_ = querylog::PopularityMap(log, options_.click_weight);
  max_pair_weight_ = 1.0;
  AccumulateSessions(log, sessions);
}

void ShortcutsRecommender::TrainIncremental(
    const querylog::QueryLog& delta,
    const std::vector<querylog::Session>& delta_sessions) {
  for (const querylog::QueryRecord& r : delta.records()) {
    popularity_.Increment(
        r.query, querylog::ClickMass(options_.click_weight,
                                     r.clicks.size()));
  }
  AccumulateSessions(delta, delta_sessions);
}

void ShortcutsRecommender::AccumulateSessions(
    const querylog::QueryLog& log,
    const std::vector<querylog::Session>& sessions) {
  for (const querylog::Session& session : sessions) {
    const auto& idxs = session.record_indices;
    for (size_t i = 0; i < idxs.size(); ++i) {
      const std::string& source = log.record(idxs[i]).query;
      double discount = 1.0;
      for (size_t j = i + 1; j < idxs.size(); ++j) {
        const std::string& follower = log.record(idxs[j]).query;
        if (follower != source) {
          CandidateStats& stats = model_[source][follower];
          stats.weight += discount;
          stats.support += 1;
          max_pair_weight_ = std::max(max_pair_weight_, stats.weight);
        }
        discount *= options_.distance_discount;
      }
    }
  }
}

std::vector<Suggestion> ShortcutsRecommender::Recommend(
    std::string_view query, size_t max_suggestions) const {
  auto it = model_.find(std::string(query));
  if (it == model_.end() || max_suggestions == 0) return {};

  double max_freq = 1.0;
  for (const auto& [cand, stats] : it->second) {
    max_freq = std::max(
        max_freq, static_cast<double>(popularity_.Frequency(cand)));
  }

  std::vector<Suggestion> out;
  out.reserve(it->second.size());
  const double cw = options_.cooccurrence_weight;
  for (const auto& [cand, stats] : it->second) {
    if (stats.support < options_.min_pair_support) continue;
    uint64_t freq = popularity_.Frequency(cand);
    Suggestion s;
    s.query = cand;
    s.frequency = freq;
    double cooc = stats.weight / max_pair_weight_;
    double pop = static_cast<double>(freq) / max_freq;
    s.score = cw * cooc + (1.0 - cw) * pop;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const Suggestion& a,
                                       const Suggestion& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.query < b.query;  // deterministic tie-break
  });
  if (out.size() > max_suggestions) out.resize(max_suggestions);
  return out;
}

}  // namespace recommend
}  // namespace optselect
