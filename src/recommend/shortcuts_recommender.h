// Query recommendation in the style of Search Shortcuts (Broccolo et al.,
// CNR-ISTI TR 2010 — reference [7] of the paper): "The algorithm used
// learns the suggestion model from the query log, and returns as related
// specializations, only queries that are present in Q, and for which
// related probabilities can be, thus, easily computed."
//
// Model: within each logical session, every query q is associated with the
// queries that *followed* it (the user's own refinements, ending in the
// "satisfactory" final query of the session). The suggestion score of a
// candidate q′ for q aggregates (a) how often q′ followed q across
// sessions, discounted by the in-session distance, and (b) the global
// popularity of q′. Candidates are returned most-scored first.

#ifndef OPTSELECT_RECOMMEND_SHORTCUTS_RECOMMENDER_H_
#define OPTSELECT_RECOMMEND_SHORTCUTS_RECOMMENDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "querylog/popularity.h"
#include "querylog/query_log.h"
#include "querylog/session_segmenter.h"
#include "recommend/recommender.h"

namespace optselect {
namespace recommend {

/// Session-trained query recommender.
class ShortcutsRecommender : public Recommender {
 public:
  struct Options {
    /// Positional discount base: a follower at distance d contributes
    /// discount^(d-1) to the co-occurrence weight.
    double distance_discount = 0.6;
    /// Mixing of session co-occurrence vs global popularity in the final
    /// score (1 = co-occurrence only).
    double cooccurrence_weight = 0.8;
    /// Drop (q, q′) pairs observed fewer times than this.
    uint32_t min_pair_support = 2;
    /// Click-through weighting of the popularity function f(·) — the
    /// paper's future work (ii). 0 disables; w adds w per clicked result
    /// to a query's frequency mass.
    double click_weight = 0.0;
  };

  ShortcutsRecommender() : ShortcutsRecommender(Options{}) {}
  explicit ShortcutsRecommender(Options options) : options_(options) {}

  /// Trains the suggestion model from segmented sessions over `log`.
  /// Also ingests global query frequencies from the log. Replaces any
  /// previous model.
  void Train(const querylog::QueryLog& log,
             const std::vector<querylog::Session>& sessions);

  /// Folds a log *delta* (e.g. one LogIngestor poll) into the existing
  /// model without retraining: popularity and pair weights are pure
  /// accumulations, so new sessions simply add their increments.
  /// `delta_sessions` must index into `delta`, not into any earlier
  /// log. With a non-zero click_weight the per-record popularity mass
  /// is rounded per record instead of per query batch — a ±0.5
  /// difference versus a full Train, which the incremental store
  /// refresh accepts for never re-reading the full log.
  void TrainIncremental(const querylog::QueryLog& delta,
                        const std::vector<querylog::Session>& delta_sessions);

  /// Returns up to `max_suggestions` suggestions for `query`, best first.
  /// Unknown queries get an empty list.
  std::vector<Suggestion> Recommend(std::string_view query,
                                    size_t max_suggestions) const override;

  /// Global frequency of a query in the training log (f(·)).
  uint64_t Frequency(std::string_view query) const override {
    return popularity_.Frequency(query);
  }

  const querylog::PopularityMap& popularity() const { return popularity_; }
  size_t num_source_queries() const { return model_.size(); }

 private:
  /// Shared accumulation core of Train / TrainIncremental.
  void AccumulateSessions(const querylog::QueryLog& log,
                          const std::vector<querylog::Session>& sessions);

  Options options_;
  querylog::PopularityMap popularity_;
  // q → (q′ → accumulated discounted co-occurrence weight, support count)
  struct CandidateStats {
    double weight = 0.0;
    uint32_t support = 0;
  };
  std::unordered_map<std::string,
                     std::unordered_map<std::string, CandidateStats>>
      model_;
  double max_pair_weight_ = 1.0;  // normalization constant
};

}  // namespace recommend
}  // namespace optselect

#endif  // OPTSELECT_RECOMMEND_SHORTCUTS_RECOMMENDER_H_
