// Algorithm 1 — AmbiguousQueryDetect(q, A, f(), s).
//
//   1. Ŝq ← A(q)                          (candidate specializations)
//   2. Sq ← { q′ ∈ Ŝq | f(q′) ≥ f(q)/s }  (popularity filter)
//   3. if |Sq| ≥ 2 return Sq else ∅
//
// plus the probability estimate of Definition 1:
//   P(q′|q) = f(q′) / Σ_{q″∈Sq} f(q″).

#ifndef OPTSELECT_RECOMMEND_AMBIGUITY_DETECTOR_H_
#define OPTSELECT_RECOMMEND_AMBIGUITY_DETECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "recommend/recommender.h"

namespace optselect {
namespace recommend {

/// One detected specialization with its mined probability.
struct Specialization {
  std::string query;       ///< specialization string q′
  uint64_t frequency = 0;  ///< f(q′)
  double probability = 0;  ///< P(q′|q), Definition 1
};

/// The set S_q for an ambiguous query (empty ⇒ not ambiguous).
struct SpecializationSet {
  std::string root_query;
  std::vector<Specialization> items;  ///< sorted by probability, desc.

  bool ambiguous() const { return items.size() >= 2; }
  size_t size() const { return items.size(); }
};

/// Detects ambiguous queries and mines their specialization distribution.
class AmbiguityDetector {
 public:
  struct Options {
    /// The `s` divisor of Algorithm 1's popularity filter f(q′) ≥ f(q)/s.
    double popularity_divisor = 10.0;
    /// Maximum candidates requested from the recommender (|Ŝq| cap).
    size_t max_candidates = 50;
    /// Maximum retained specializations. When more survive the filter,
    /// the most probable ones are kept ("if |Sq| > k we select from Sq
    /// the k specializations with the largest probabilities").
    size_t max_specializations = 32;
    /// Require every specialization to contain all terms of the root
    /// query (the "stated more precisely" reading of [6]); disable to
    /// accept any related query as a facet.
    bool require_term_superset = true;
  };

  AmbiguityDetector(const Recommender* recommender, Options options)
      : recommender_(recommender), options_(options) {}

  explicit AmbiguityDetector(const Recommender* recommender)
      : AmbiguityDetector(recommender, Options{}) {}

  /// Runs Algorithm 1 for `query`. The returned set is empty when the
  /// query is not ambiguous.
  SpecializationSet Detect(std::string_view query) const;

  const Options& options() const { return options_; }

 private:
  const Recommender* recommender_;  // not owned
  Options options_;
};

/// True if every whitespace token of `root` also appears in `candidate`.
bool IsTermSuperset(std::string_view candidate, std::string_view root);

}  // namespace recommend
}  // namespace optselect

#endif  // OPTSELECT_RECOMMEND_AMBIGUITY_DETECTOR_H_
