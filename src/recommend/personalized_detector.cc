#include "recommend/personalized_detector.h"

#include <algorithm>

namespace optselect {
namespace recommend {

UserProfileStore::UserProfileStore(const querylog::QueryLog& log) {
  for (const querylog::QueryRecord& r : log.records()) {
    ++profiles_[r.user][r.query];
  }
}

uint64_t UserProfileStore::Frequency(querylog::UserId user,
                                     std::string_view query) const {
  auto it = profiles_.find(user);
  if (it == profiles_.end()) return 0;
  auto jt = it->second.find(std::string(query));
  return jt == it->second.end() ? 0 : jt->second;
}

SpecializationSet PersonalizedDetector::Detect(querylog::UserId user,
                                               std::string_view query) const {
  SpecializationSet set = base_->Detect(query);
  if (!set.ambiguous() || options_.beta <= 0.0) return set;

  const double fu_root =
      static_cast<double>(profiles_->Frequency(user, query));
  double total = 0.0;
  for (Specialization& sp : set.items) {
    double fu = static_cast<double>(profiles_->Frequency(user, sp.query));
    sp.probability *= 1.0 + options_.beta * fu / (1.0 + fu_root);
    total += sp.probability;
  }
  if (total > 0.0) {
    for (Specialization& sp : set.items) sp.probability /= total;
  }
  // Keep the most-probable-first ordering after re-weighting.
  std::sort(set.items.begin(), set.items.end(),
            [](const Specialization& a, const Specialization& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.query < b.query;
            });
  return set;
}

}  // namespace recommend
}  // namespace optselect
