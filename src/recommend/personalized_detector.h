// Personalized ambiguity detection — the paper's future work (i): "the
// exploitation of users' search history for personalizing result
// diversification".
//
// The global distribution P(q′|q) of Definition 1 is re-weighted by the
// issuing user's own history: a user who has repeatedly searched within
// one interpretation of an ambiguous query gets that interpretation
// boosted,
//
//   P_u(q′|q) ∝ P(q′|q) · (1 + β · f_u(q′) / (1 + f_u(q)))
//
// where f_u counts the user's own past submissions. β = 0 recovers the
// global distribution exactly.

#ifndef OPTSELECT_RECOMMEND_PERSONALIZED_DETECTOR_H_
#define OPTSELECT_RECOMMEND_PERSONALIZED_DETECTOR_H_

#include <string_view>
#include <unordered_map>

#include "querylog/query_log.h"
#include "recommend/ambiguity_detector.h"

namespace optselect {
namespace recommend {

/// Per-user query-frequency profiles learned from a log.
class UserProfileStore {
 public:
  UserProfileStore() = default;

  /// Counts every (user, query) pair in `log`.
  explicit UserProfileStore(const querylog::QueryLog& log);

  /// The user's own frequency of `query` (0 for unseen pairs).
  uint64_t Frequency(querylog::UserId user, std::string_view query) const;

  /// Number of users with at least one recorded query.
  size_t num_users() const { return profiles_.size(); }

 private:
  std::unordered_map<querylog::UserId,
                     std::unordered_map<std::string, uint64_t>>
      profiles_;
};

/// Wraps an AmbiguityDetector and personalizes its distribution.
class PersonalizedDetector {
 public:
  struct Options {
    /// Strength of the personal boost; 0 = global behaviour.
    double beta = 1.0;
  };

  /// Neither pointer is owned; both must outlive this object.
  PersonalizedDetector(const AmbiguityDetector* base,
                       const UserProfileStore* profiles, Options options)
      : base_(base), profiles_(profiles), options_(options) {}

  PersonalizedDetector(const AmbiguityDetector* base,
                       const UserProfileStore* profiles)
      : PersonalizedDetector(base, profiles, Options{}) {}

  /// Algorithm 1 with the user's history folded into P(q′|q). The
  /// *detection* outcome (ambiguous or not) is unchanged — only the
  /// probabilities shift, hence only the diversified mixture.
  SpecializationSet Detect(querylog::UserId user,
                           std::string_view query) const;

  const Options& options() const { return options_; }

 private:
  const AmbiguityDetector* base_;
  const UserProfileStore* profiles_;
  Options options_;
};

}  // namespace recommend
}  // namespace optselect

#endif  // OPTSELECT_RECOMMEND_PERSONALIZED_DETECTOR_H_
