// The recommendation-algorithm interface `A` of Algorithm 1.
//
// "any algorithm that exploits the knowledge present in query log
//  sessions to provide users with useful suggestions of related queries,
//  can be easily adapted to the purpose of devising specializations of
//  submitted queries" (Section 3.1) — AmbiguousQueryDetect is
//  parameterized by A and the popularity function f(·); this interface
//  is that parameterization. ShortcutsRecommender is the paper's choice
//  [7]; SuperstringRecommender is an alternative demonstrating the
//  pluggability claim.

#ifndef OPTSELECT_RECOMMEND_RECOMMENDER_H_
#define OPTSELECT_RECOMMEND_RECOMMENDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace optselect {
namespace recommend {

/// One suggestion produced by a recommender.
struct Suggestion {
  std::string query;       ///< suggested query string (present in the log)
  double score = 0.0;      ///< model score (higher = better)
  uint64_t frequency = 0;  ///< global popularity f(q′) in the training log
};

/// Abstract query recommender + popularity function.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Returns up to `max_suggestions` suggestions for `query`, best
  /// first. Unknown queries get an empty list.
  virtual std::vector<Suggestion> Recommend(std::string_view query,
                                            size_t max_suggestions) const = 0;

  /// Global frequency f(q) of a query in the training log.
  virtual uint64_t Frequency(std::string_view query) const = 0;
};

}  // namespace recommend
}  // namespace optselect

#endif  // OPTSELECT_RECOMMEND_RECOMMENDER_H_
