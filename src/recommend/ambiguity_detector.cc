#include "recommend/ambiguity_detector.h"

#include <algorithm>
#include <unordered_set>

#include "util/strings.h"

namespace optselect {
namespace recommend {

bool IsTermSuperset(std::string_view candidate, std::string_view root) {
  std::vector<std::string> ct = util::SplitWhitespace(candidate);
  std::unordered_set<std::string> cset(ct.begin(), ct.end());
  for (const std::string& t : util::SplitWhitespace(root)) {
    if (cset.count(t) == 0) return false;
  }
  return true;
}

SpecializationSet AmbiguityDetector::Detect(std::string_view query) const {
  SpecializationSet set;
  set.root_query = std::string(query);

  // Step 1: Ŝq ← A(q).
  std::vector<Suggestion> candidates =
      recommender_->Recommend(query, options_.max_candidates);
  if (candidates.empty()) return set;

  // Step 2: popularity filter f(q′) ≥ f(q)/s.
  const double root_freq =
      static_cast<double>(recommender_->Frequency(query));
  const double threshold = root_freq / options_.popularity_divisor;

  for (const Suggestion& cand : candidates) {
    if (static_cast<double>(cand.frequency) < threshold) continue;
    if (cand.frequency == 0) continue;
    if (options_.require_term_superset &&
        !IsTermSuperset(cand.query, query)) {
      continue;
    }
    Specialization sp;
    sp.query = cand.query;
    sp.frequency = cand.frequency;
    set.items.push_back(std::move(sp));
  }

  // Step 3: |Sq| ≥ 2 or give up.
  if (set.items.size() < 2) {
    set.items.clear();
    return set;
  }

  // Keep the most frequent ones when the set is oversized.
  std::sort(set.items.begin(), set.items.end(),
            [](const Specialization& a, const Specialization& b) {
              if (a.frequency != b.frequency) return a.frequency > b.frequency;
              return a.query < b.query;
            });
  if (set.items.size() > options_.max_specializations) {
    set.items.resize(options_.max_specializations);
  }

  // Definition 1: P(q′|q) = f(q′) / Σ f(·) over the retained set.
  uint64_t total = 0;
  for (const Specialization& sp : set.items) total += sp.frequency;
  for (Specialization& sp : set.items) {
    sp.probability =
        static_cast<double>(sp.frequency) / static_cast<double>(total);
  }
  return set;
}

}  // namespace recommend
}  // namespace optselect
