#include "store/diversification_store.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iterator>

#include "store/mapped_store.h"
#include "util/hash.h"
#include "util/strings.h"

namespace optselect {
namespace store {
namespace {

// Legacy binary layout, formats v1–v3 (little-endian, as written by
// this process). The current format is v4 — a flat mmap-able columnar
// layout owned by store/mapped_store.h ("OSV4" magic); Save writes it
// and Load dispatches on the magic, so everything below is read-only
// compatibility code for files written by older builds:
//   magic "OSDS" | u32 format_version | [v2+: u64 store_version]
//                | u64 entry_count
//   per entry:   u32 query_len | bytes | u32 spec_count
//   per spec:    u32 query_len | bytes | f64 probability | u32 n_surrogates
//   per vector:  u32 n_entries | (u32 term, f64 weight)*
//   [v3+: per entry, after its specs — the compiled query plan]
//     u8 has_plan; when 1:
//       u32 num_candidates_requested | f64 threshold_c | u32 n | u32 m
//       n×u32 docs | n×f64 relevance | m×f64 probability
//       m×u32 spec_order | (n·m)×f64 utilities | n×f64 weighted
//   trailer:     u64 fnv1a checksum of everything after the header magic.
//
// Format v1 (the original `store.bin`) has no store_version field and
// is checksummed with the legacy basis below; it still loads (as
// content version 0). Format v2 adds the monotonic store_version that
// the snapshot-rebuild lifecycle bumps on every swap, and moves to the
// standard FNV-1a offset basis. Format v3 appends the compiled query
// plan blocks (store/query_plan.h) after each entry's specializations;
// v1/v2 files load with empty plans and serve via per-request
// computation until store::CompilePlans upgrades them.
constexpr char kMagic[4] = {'O', 'S', 'D', 'S'};
constexpr uint32_t kLegacyVersion = 1;
constexpr uint32_t kV2Version = 2;
constexpr uint32_t kVersion = 3;

class Writer {
 public:
  void U8(uint8_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void U32Array(const uint32_t* p, size_t count) {
    if (count > 0) Raw(p, count * sizeof(uint32_t));
  }
  void F64Array(const double* p, size_t count) {
    if (count > 0) Raw(p, count * sizeof(double));
  }
  const std::string& buffer() const { return buf_; }

 private:
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool U32Array(std::vector<uint32_t>* out, size_t count) {
    out->clear();
    if (count == 0) return true;
    if (count > (size_ - pos_) / sizeof(uint32_t)) return false;
    out->resize(count);
    return Raw(out->data(), count * sizeof(uint32_t));
  }
  bool F64Array(std::vector<double>* out, size_t count) {
    out->clear();
    if (count == 0) return true;
    if (count > (size_ - pos_) / sizeof(double)) return false;
    out->resize(count);
    return Raw(out->data(), count * sizeof(double));
  }
  bool Str(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (pos_ + len > size_) return false;
    s->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }
  size_t pos() const { return pos_; }

 private:
  bool Raw(void* p, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Historical quirk, kept for reading v1 files: they were checksummed
// with this offset basis (the standard FNV-1a basis with its last
// decimal digit dropped). v2 files use the standard basis; the reader
// picks the basis from the format version it finds in the body.
constexpr uint64_t kV1ChecksumBasis = 1469598103934665603ull;

uint64_t ChecksumFor(uint32_t format_version, const char* data,
                     size_t size) {
  uint64_t basis = format_version <= kLegacyVersion
                       ? kV1ChecksumBasis
                       : util::kFnv1aOffsetBasis;
  return util::Fnv1a64(data, size, basis);
}

// A plan is valid for its entry iff its blocks are internally
// consistent and its probability copy matches the entry's mined
// distribution exactly (the utilities/weighted/spec_order blocks are
// all functions of it). Anything else is a stale compile.
bool PlanMatchesEntry(const QueryPlan& plan, const StoredEntry& entry) {
  if (!plan.SizesConsistent()) return false;
  if (plan.num_specializations() != entry.specializations.size()) {
    return false;
  }
  for (size_t j = 0; j < entry.specializations.size(); ++j) {
    if (plan.probability[j] != entry.specializations[j].probability) {
      return false;
    }
  }
  return true;
}

}  // namespace

util::Status DiversificationStore::Put(StoredEntry entry) {
  if (entry.specializations.size() < 2) {
    return util::Status::InvalidArgument(
        "entry for '" + entry.query + "' has " +
        std::to_string(entry.specializations.size()) +
        " specializations; an ambiguous query needs at least 2");
  }
  // Drop, rather than store, a plan that no longer matches the mined
  // content — serving falls back to per-request computation, which is
  // slower but always correct.
  if (!entry.plan.empty() && !PlanMatchesEntry(entry.plan, entry)) {
    entry.plan = QueryPlan();
  }
  // Keys are normalized so serving-time lookups are insensitive to
  // casing/spacing; entry.query keeps the original string.
  std::string key = util::NormalizeQueryText(entry.query);
  entries_[std::move(key)] = std::move(entry);
  return util::Status::Ok();
}

const StoredEntry* DiversificationStore::Find(std::string_view query) const {
  auto it = entries_.find(util::NormalizeQueryText(query));
  return it == entries_.end() ? nullptr : &it->second;
}

bool DiversificationStore::Remove(std::string_view query) {
  return entries_.erase(util::NormalizeQueryText(query)) > 0;
}

bool StoredEntriesEqual(const StoredEntry& a, const StoredEntry& b) {
  if (a.query != b.query ||
      a.specializations.size() != b.specializations.size()) {
    return false;
  }
  for (size_t s = 0; s < a.specializations.size(); ++s) {
    const StoredSpecialization& sa = a.specializations[s];
    const StoredSpecialization& sb = b.specializations[s];
    if (sa.query != sb.query || sa.probability != sb.probability ||
        sa.surrogates.size() != sb.surrogates.size()) {
      return false;
    }
    for (size_t v = 0; v < sa.surrogates.size(); ++v) {
      if (sa.surrogates[v].entries() != sb.surrogates[v].entries()) {
        return false;
      }
    }
  }
  return true;
}

std::vector<core::SpecializationProfile> DiversificationStore::ToProfiles(
    const StoredEntry& entry) {
  std::vector<core::SpecializationProfile> profiles;
  profiles.reserve(entry.specializations.size());
  for (const StoredSpecialization& sp : entry.specializations) {
    core::SpecializationProfile p;
    p.query = sp.query;
    p.probability = sp.probability;
    p.results = sp.surrogates;
    profiles.push_back(std::move(p));
  }
  return profiles;
}

uint64_t DiversificationStore::SurrogatePayloadBytes() const {
  uint64_t bytes = 0;
  for (const auto& [query, entry] : entries_) {
    for (const StoredSpecialization& sp : entry.specializations) {
      for (const text::TermVector& v : sp.surrogates) {
        bytes += v.entries().size() *
                 (sizeof(text::TermId) + sizeof(double));
      }
    }
  }
  return bytes;
}

util::Status DiversificationStore::Save(const std::string& path) const {
  // The current on-disk format is v4 (store/mapped_store.h): flat,
  // checksummed, mmap-able. Loading any older format and saving is the
  // upgrade path — same content, new layout.
  return MappedStoreFile::WriteV4(*this, path);
}

util::Status DiversificationStore::SaveLegacyV3(
    const std::string& path) const {
  Writer w;
  w.U32(kVersion);
  w.U64(version_);
  w.U64(entries_.size());
  // Deterministic order: sort keys (useful for byte-identical snapshots).
  std::vector<const StoredEntry*> ordered;
  ordered.reserve(entries_.size());
  for (const auto& [query, entry] : entries_) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const StoredEntry* a, const StoredEntry* b) {
              return a->query < b->query;
            });
  for (const StoredEntry* entry : ordered) {
    w.Str(entry->query);
    w.U32(static_cast<uint32_t>(entry->specializations.size()));
    for (const StoredSpecialization& sp : entry->specializations) {
      w.Str(sp.query);
      w.F64(sp.probability);
      w.U32(static_cast<uint32_t>(sp.surrogates.size()));
      for (const text::TermVector& v : sp.surrogates) {
        w.U32(static_cast<uint32_t>(v.entries().size()));
        for (const auto& [term, weight] : v.entries()) {
          w.U32(term);
          w.F64(weight);
        }
      }
    }
    const QueryPlan& plan = entry->plan;
    w.U8(plan.empty() ? 0 : 1);
    if (!plan.empty()) {
      w.U32(plan.num_candidates_requested);
      w.F64(plan.threshold_c);
      w.U32(static_cast<uint32_t>(plan.num_candidates()));
      w.U32(static_cast<uint32_t>(plan.num_specializations()));
      w.U32Array(plan.docs.data(), plan.docs.size());
      w.F64Array(plan.relevance.data(), plan.relevance.size());
      w.F64Array(plan.probability.data(), plan.probability.size());
      w.U32Array(plan.spec_order.data(), plan.spec_order.size());
      w.F64Array(plan.utilities.data(), plan.utilities.size());
      w.F64Array(plan.weighted.data(), plan.weighted.size());
    }
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::string& body = w.buffer();
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  uint64_t checksum = ChecksumFor(kVersion, body.data(), body.size());
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Result<DiversificationStore> DiversificationStore::Load(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open for read: " + path);
  // Dispatch on the magic: v4 files ("OSV4") go through the mmap
  // reader + materialize (one shared parse/validate implementation);
  // v1–v3 ("OSDS") through the legacy stream reader below.
  {
    char probe[4] = {0, 0, 0, 0};
    in.read(probe, sizeof(probe));
    if (in.gcount() == sizeof(probe) &&
        std::memcmp(probe, "OSV4", sizeof(probe)) == 0) {
      auto mapped = MappedStoreFile::Map(path);
      if (!mapped.ok()) return mapped.status();
      return mapped.value()->Materialize();
    }
    in.clear();
    in.seekg(0);
  }
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (blob.size() < sizeof(kMagic) + sizeof(uint64_t)) {
    return util::Status::Corruption("file too short: " + path);
  }
  if (std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return util::Status::Corruption("bad magic: " + path);
  }
  size_t body_size = blob.size() - sizeof(kMagic) - sizeof(uint64_t);
  const char* body = blob.data() + sizeof(kMagic);
  uint64_t stored_checksum;
  std::memcpy(&stored_checksum, body + body_size, sizeof(stored_checksum));

  // The format version picks the checksum basis, so read it (it is the
  // first body field) before verifying the trailer.
  Reader r(body, body_size);
  uint32_t version = 0;
  if (!r.U32(&version)) return util::Status::Corruption("truncated header");
  if (version != kLegacyVersion && version != kV2Version &&
      version != kVersion) {
    return util::Status::Corruption(
        util::StrFormat("unsupported version %u", version));
  }
  if (ChecksumFor(version, body, body_size) != stored_checksum) {
    return util::Status::Corruption("checksum mismatch: " + path);
  }

  uint64_t store_version = 0;
  if (version >= kV2Version && !r.U64(&store_version)) {
    return util::Status::Corruption("truncated store version");
  }
  uint64_t count = 0;
  if (!r.U64(&count)) return util::Status::Corruption("truncated count");

  DiversificationStore store;
  store.set_version(store_version);
  for (uint64_t e = 0; e < count; ++e) {
    StoredEntry entry;
    if (!r.Str(&entry.query)) return util::Status::Corruption("entry query");
    uint32_t n_specs = 0;
    if (!r.U32(&n_specs)) return util::Status::Corruption("spec count");
    for (uint32_t s = 0; s < n_specs; ++s) {
      StoredSpecialization sp;
      if (!r.Str(&sp.query) || !r.F64(&sp.probability)) {
        return util::Status::Corruption("spec header");
      }
      uint32_t n_surrogates = 0;
      if (!r.U32(&n_surrogates)) {
        return util::Status::Corruption("surrogate count");
      }
      for (uint32_t v = 0; v < n_surrogates; ++v) {
        uint32_t n_entries = 0;
        if (!r.U32(&n_entries)) {
          return util::Status::Corruption("vector size");
        }
        std::vector<text::TermVector::Entry> vec_entries;
        vec_entries.reserve(n_entries);
        for (uint32_t t = 0; t < n_entries; ++t) {
          uint32_t term = 0;
          double weight = 0;
          if (!r.U32(&term) || !r.F64(&weight)) {
            return util::Status::Corruption("vector entry");
          }
          vec_entries.emplace_back(static_cast<text::TermId>(term), weight);
        }
        sp.surrogates.push_back(
            text::TermVector::FromEntries(std::move(vec_entries)));
      }
      entry.specializations.push_back(std::move(sp));
    }
    if (version >= kVersion) {
      uint8_t has_plan = 0;
      if (!r.U8(&has_plan)) return util::Status::Corruption("plan flag");
      if (has_plan != 0) {
        QueryPlan& plan = entry.plan;
        uint32_t n = 0, m = 0;
        if (!r.U32(&plan.num_candidates_requested) ||
            !r.F64(&plan.threshold_c) || !r.U32(&n) || !r.U32(&m)) {
          return util::Status::Corruption("plan header");
        }
        if (!r.U32Array(&plan.docs, n) || !r.F64Array(&plan.relevance, n) ||
            !r.F64Array(&plan.probability, m) ||
            !r.U32Array(&plan.spec_order, m) ||
            !r.F64Array(&plan.utilities,
                        static_cast<size_t>(n) * static_cast<size_t>(m)) ||
            !r.F64Array(&plan.weighted, n)) {
          return util::Status::Corruption("plan blocks");
        }
        // Put re-validates the plan against the entry and drops a
        // mismatch, so a file with stale plans loads as plan-less.
      }
    }
    OPTSELECT_RETURN_IF_ERROR(store.Put(std::move(entry)));
  }
  return store;
}

}  // namespace store
}  // namespace optselect
