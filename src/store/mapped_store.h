// Store format v4 — one flat mmap-able file, served zero-copy.
//
// Formats v1–v3 are streams: Load parses the byte stream into heap
// StoredEntry maps, duplicating every surrogate into std::vector-backed
// TermVectors (and SplitStore copies them again, once per shard). v4
// is a *layout*: the same information arranged as 32-byte-aligned
// typed columns plus fixed-size descriptor tables, so a serving node
// mmaps the file, validates the checksums, builds a pointer-only index,
// and serves straight off the mapped pages — no per-entry parse, no
// surrogate copies, and one physical mapping shared by every shard.
//
// On-disk layout (little-endian, as written by this process):
//
//   offset 0 ─ 64-byte header
//     char[4]  magic            "OSV4"
//     u32      format_version   4
//     u32      endian_tag       0x01020304 (reader must see this value)
//     u32      alignment        32 (every column offset is a multiple)
//     u64      store_version    DiversificationStore::version()
//     u64      entry_count
//     u64      directory_offset → the directory struct below
//     u64      file_size        total bytes (truncation check)
//     u64      body_checksum    FNV-1a of bytes [64, file_size)
//     u64      header_checksum  FNV-1a of bytes [0, 56)
//
//   body ─ string pool (unaligned bytes: per entry, in key order:
//          normalized key, original query, spec queries)
//        ─ aligned columns, each padded to a 32-byte boundary:
//            per entry:      f64 probability[m]
//            per surrogate:  u32 terms[len] | f64 weights[len]
//            per plan:       u32 docs[n] | f64 relevance[n]
//                            f64 probability[m] | u32 spec_order[m]
//                            f64 utilities[n·m] | f64 weighted[n]
//        ─ descriptor tables (32-byte-aligned starts):
//            VecDesc[total_vecs]    32 B each
//            SpecDesc[total_specs]  32 B each
//            EntryDesc[entry_count] 64 B each, sorted by normalized key
//            PlanDesc[plan_count]   80 B each
//        ─ directory struct (72 B; header.directory_offset points here)
//            u64 entry_desc_off | u64 spec_desc_off | u64 vec_desc_off
//            u64 plan_desc_off  | u64 plan_count    | u64 total_specs
//            u64 total_vecs     | u64 string_pool_off
//            u64 string_pool_len
//
// The offset directory makes every access O(1): EntryDesc i names its
// spec-descriptor range, probability column, and (optionally) plan
// descriptor; SpecDesc names its surrogate-vector descriptor range;
// VecDesc points at the two SoA columns and carries the precomputed L2
// norm — exactly the bits TermVector::RecomputeNorm produced at build
// time, so mapped cosines match heap cosines bitwise.
//
// Lifecycle (RCU): a MappedStoreFile is immutable and refcounted.
// StoreSnapshots (and their EntryRefs, and any spans handed to a
// request in flight) share the mapping via shared_ptr; munmap happens
// in the destructor, i.e. only after the last reader drops — a hot
// reload can retire a snapshot while requests still read old pages.
//
// Writers: DiversificationStore::Save emits this format (WriteV4);
// Load mmaps v4 files and materializes them (older formats parse
// through the legacy stream reader), so v1–v3 upgrade on save.

#ifndef OPTSELECT_STORE_MAPPED_STORE_H_
#define OPTSELECT_STORE_MAPPED_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/candidate.h"
#include "core/select_view.h"
#include "store/diversification_store.h"
#include "util/status.h"
#include "util/types.h"

namespace optselect {
namespace store {

/// One specialization viewed in place: query bytes in the string pool,
/// surrogates as SoA spans over the mapped term/weight columns.
struct MappedSpecialization {
  std::string_view query;
  double probability = 0.0;
  /// Surrogate spans of R_q′ in rank order, pointing at mapped columns.
  std::vector<text::TermVectorSpan> surrogates;
};

/// A compiled query plan viewed in place (the v3 blocks as columns).
struct MappedPlan {
  uint32_t num_candidates_requested = 0;
  double threshold_c = 0.0;
  uint32_t num_candidates = 0;      ///< n
  uint32_t num_specializations = 0; ///< m
  const DocId* docs = nullptr;            ///< [n]
  const double* relevance = nullptr;      ///< [n]
  const double* probability = nullptr;    ///< [m]
  const uint32_t* spec_order = nullptr;   ///< [m]
  const double* utilities = nullptr;      ///< [n·m]
  const double* weighted = nullptr;       ///< [n]

  /// Same compatibility rule as QueryPlan::CompatibleWith.
  bool CompatibleWith(size_t wanted_candidates, double wanted_c) const {
    return num_candidates_requested == wanted_candidates &&
           threshold_c == wanted_c && num_candidates > 0;
  }

  /// Zero-copy selection view — the mapped twin of QueryPlan::View().
  core::DiversificationView View() const {
    core::DiversificationView v;
    v.num_candidates = num_candidates;
    v.num_specializations = num_specializations;
    v.relevance = relevance;
    v.probability = probability;
    v.utilities = utilities;
    v.weighted = weighted;
    v.spec_order = spec_order;
    return v;
  }
};

/// One stored entry viewed in place. Valid while the owning
/// MappedStoreFile is alive.
struct MappedEntry {
  std::string_view key;    ///< normalized query (the lookup key)
  std::string_view query;  ///< original query string
  std::vector<MappedSpecialization> specializations;
  /// [m] specialization probabilities as a contiguous mapped column —
  /// the streaming path's Begin() reads this directly.
  const double* probability_column = nullptr;
  bool has_plan = false;
  MappedPlan plan;
};

/// Page-warming strategy applied to a fresh mapping before serving.
enum class MapWarmup {
  kNone,     ///< demand-fault pages as requests touch them
  kMadvise,  ///< madvise(MADV_WILLNEED): async readahead of the file
  kMlock,    ///< mlock: fault and pin every page (falls back to madvise)
};

/// Parses "none" | "madvise" | "mlock" (the --map-warmup flag values);
/// false on anything else, leaving *out untouched.
bool ParseMapWarmup(std::string_view text, MapWarmup* out);

/// What Warm actually did — kMlock can degrade to kMadvise when
/// RLIMIT_MEMLOCK (or a missing CAP_IPC_LOCK) refuses the pin.
struct MapWarmupOutcome {
  MapWarmup applied = MapWarmup::kNone;
  bool fell_back = false;  ///< the requested mode was refused by the OS
  std::string detail;      ///< strerror text of the refusal, when any
};

/// An immutable, validated mmap of one v4 store file plus its
/// pointer-only index. Create with Map; share via shared_ptr (snapshots,
/// shard views, and in-flight requests all hold references — the
/// mapping is released when the last one drops). The mapping is
/// MAP_SHARED + PROT_READ: separate processes mapping the same file
/// share physical pages through the page cache.
class MappedStoreFile {
 public:
  /// Opens, mmaps (PROT_READ, MAP_SHARED) and fully validates `path`:
  /// header magic/
  /// version/endianness/alignment, both checksums, every descriptor and
  /// column offset bounds- and alignment-checked, ≥ 2 specializations
  /// per entry, and plan blocks consistent with their entry (size and
  /// probability equality — the PlanMatchesEntry rule). Returns
  /// kCorruption for any structural violation, kIoError for OS errors.
  static util::Result<std::shared_ptr<const MappedStoreFile>> Map(
      const std::string& path);

  /// True when the file's first bytes are the v4 magic — i.e. the file
  /// *claims* this format. Lets a caller tell "legacy stream, not ours
  /// to map" (fall back to the heap parser) from "claims v4 but Map
  /// failed" (corruption — a hard error, never a silent downgrade).
  static bool LooksLikeV4(const std::string& path);

  /// Serializes `store` into the v4 layout at `path`. Deterministic:
  /// identical stores produce identical bytes (entries are laid out in
  /// normalized-key order).
  static util::Status WriteV4(const DiversificationStore& store,
                              const std::string& path);

  ~MappedStoreFile();
  MappedStoreFile(const MappedStoreFile&) = delete;
  MappedStoreFile& operator=(const MappedStoreFile&) = delete;

  uint64_t store_version() const { return store_version_; }
  size_t entry_count() const { return entries_.size(); }
  const std::vector<MappedEntry>& entries() const { return entries_; }

  /// Lookup by normalized key; nullptr when absent. O(1).
  const MappedEntry* FindEntry(std::string_view normalized_key) const {
    auto it = index_.find(normalized_key);
    return it == index_.end() ? nullptr : &entries_[it->second];
  }

  /// Deep copy into a heap DiversificationStore (content and version
  /// bit-identical to what Save(v4)→Load produced the file from). Used
  /// by snapshot rebuilds — deltas mutate heap stores, not mappings.
  DiversificationStore Materialize() const;

  size_t mapped_bytes() const { return size_; }

  /// Entries whose compiled plan is absent or incompatible with the
  /// given serving params. Zero means a node can serve this mapping
  /// as-is — the same "nothing to recompile" condition the heap load
  /// path establishes with CompilePlans, checked without materializing.
  size_t MissingPlanCount(size_t num_candidates, double threshold_c) const;

  /// Applies the requested warm-up to the whole mapping. Never fails
  /// startup: a refused mlock degrades to madvise (outcome says so).
  MapWarmupOutcome Warm(MapWarmup requested) const;

 private:
  MappedStoreFile() = default;
  /// Parses + validates the mapped region, building entries_/index_.
  util::Status BuildIndex();

  const char* data_ = nullptr;
  size_t size_ = 0;
  int fd_ = -1;
  uint64_t store_version_ = 0;
  std::vector<MappedEntry> entries_;
  /// Keys are string_views into the mapped string pool.
  std::unordered_map<std::string_view, size_t> index_;
};

/// A lookup result that is either a heap StoredEntry or a mapped
/// MappedEntry, with uniform accessors for the serving hot path. Plain
/// pointers — the snapshot (and its mapping) must outlive the ref,
/// which the per-batch snapshot pin guarantees.
class EntryRef {
 public:
  EntryRef() = default;
  explicit EntryRef(const StoredEntry* heap) : heap_(heap) {}
  explicit EntryRef(const MappedEntry* mapped) : mapped_(mapped) {}

  explicit operator bool() const {
    return heap_ != nullptr || mapped_ != nullptr;
  }
  bool mapped() const { return mapped_ != nullptr; }
  const StoredEntry* heap_entry() const { return heap_; }

  size_t num_specializations() const {
    return heap_ != nullptr ? heap_->specializations.size()
                            : mapped_->specializations.size();
  }
  double spec_probability(size_t j) const {
    return heap_ != nullptr ? heap_->specializations[j].probability
                            : mapped_->specializations[j].probability;
  }
  /// Heap surrogate list for spec j; null when mapped.
  const std::vector<text::TermVector>* heap_surrogates(size_t j) const {
    return heap_ != nullptr ? &heap_->specializations[j].surrogates
                            : nullptr;
  }
  /// Mapped surrogate spans for spec j; null when heap-backed.
  const std::vector<text::TermVectorSpan>* spec_spans(size_t j) const {
    return mapped_ != nullptr ? &mapped_->specializations[j].surrogates
                              : nullptr;
  }

  bool HasCompatiblePlan(size_t num_candidates, double threshold_c) const {
    if (heap_ != nullptr) {
      return !heap_->plan.empty() &&
             heap_->plan.CompatibleWith(num_candidates, threshold_c);
    }
    return mapped_->has_plan &&
           mapped_->plan.CompatibleWith(num_candidates, threshold_c);
  }
  /// Plan accessors; only valid when HasCompatiblePlan (or a non-empty
  /// plan) holds.
  core::DiversificationView PlanView() const {
    return heap_ != nullptr ? heap_->plan.View() : mapped_->plan.View();
  }
  const DocId* PlanDocs() const {
    return heap_ != nullptr ? heap_->plan.docs.data()
                            : mapped_->plan.docs;
  }
  size_t PlanNumCandidates() const {
    return heap_ != nullptr ? heap_->plan.num_candidates()
                            : mapped_->plan.num_candidates;
  }
  size_t PlanNumSpecializations() const {
    return heap_ != nullptr ? heap_->plan.num_specializations()
                            : mapped_->plan.num_specializations;
  }

  /// Materializing fallback (copies surrogates into heap profiles) —
  /// the sharded-selection path needs owned vectors.
  std::vector<core::SpecializationProfile> ToProfiles() const;

 private:
  const StoredEntry* heap_ = nullptr;
  const MappedEntry* mapped_ = nullptr;
};

}  // namespace store
}  // namespace optselect

#endif  // OPTSELECT_STORE_MAPPED_STORE_H_
