// Compiled query plans — the store-v3 utility blocks.
//
// The paper's offline/online split (Sections 3.1.3, 4.1) puts the
// expensive work — mining S_q, fetching R_q′ — into the Shortcuts-style
// preprocessing stage so OptSelect stays cheap online. A QueryPlan
// pushes that split to its limit: since the store builder runs against
// the same immutable retrieval stack the serving node uses, R_q, the
// thresholded utility matrix Ũ, the λ-independent overall scores
// Σ P(q′|q)·Ũ, and the probability-sorted specialization order are all
// known at build time. Compiling them into the store entry turns the
// serving hot path into pure selection over flat, zero-copy blocks —
// no retrieval, no snippet extraction, no O(n·m·|R_q′|) cosine sums,
// no per-request allocation.
//
// A plan is *derived data*: it is valid only for the mined content it
// was compiled from and for the (num_candidates, threshold_c) pair the
// serving node runs with. DiversificationStore::Put drops plans that
// disagree with their entry, and ServingNode falls back to on-the-fly
// computation when the plan is absent or parameter-incompatible — so
// v1/v2 stores keep serving correctly, just without the shortcut.

#ifndef OPTSELECT_STORE_QUERY_PLAN_H_
#define OPTSELECT_STORE_QUERY_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/select_view.h"
#include "util/types.h"

namespace optselect {
namespace store {

/// Plan-compile parameters. Must match the serving node's pipeline
/// params for the plan to be used (ServeResult::plan_served); on
/// mismatch the node silently recomputes per request.
struct PlanCompileOptions {
  /// |R_q| retrieval depth the plan's candidate block is built at.
  size_t num_candidates = 200;
  /// Utility threshold c baked into the compiled Ũ values.
  double threshold_c = 0.0;
};

/// The precomputed selection inputs for one stored ambiguous query.
/// All blocks are flat and sized by n = |R_q| candidates and
/// m = |S_q| specializations (parallel to the entry's specializations).
struct QueryPlan {
  /// The PlanCompileOptions this plan was compiled under.
  uint32_t num_candidates_requested = 0;
  double threshold_c = 0.0;

  /// [n] candidate document ids, R_q rank order.
  std::vector<DocId> docs;
  /// [n] normalized relevance P(d|q) (retrieval score / max score).
  std::vector<double> relevance;
  /// [m] specialization probabilities P(q′|q) (copied from the entry —
  /// Put uses the copy to detect stale plans).
  std::vector<double> probability;
  /// [m] specialization indices sorted by probability descending
  /// (ties: index ascending) — Section 3.1.3's "k most probable" order.
  std::vector<uint32_t> spec_order;
  /// [n·m] row-major thresholded utilities Ũ(d_i|R_{q′_j}).
  std::vector<double> utilities;
  /// [n] λ-independent overall scores Σ_j P(q′_j|q)·Ũ(d_i|R_{q′_j}).
  std::vector<double> weighted;

  bool empty() const { return docs.empty(); }
  size_t num_candidates() const { return docs.size(); }
  size_t num_specializations() const { return probability.size(); }

  /// True when the plan can serve a request running with these pipeline
  /// parameters (bit-identical to computing on the fly).
  bool CompatibleWith(size_t num_candidates, double threshold_c) const;

  /// Internal block-size consistency (docs/relevance/weighted all [n],
  /// spec_order [m], utilities [n·m]). Checked by Put and by the v3
  /// loader; an inconsistent plan is dropped, never served.
  bool SizesConsistent() const;

  /// Zero-copy selection view over the plan's blocks. The plan must
  /// outlive the view. No candidate vectors (view.candidates == null).
  core::DiversificationView View() const;
};

}  // namespace store
}  // namespace optselect

#endif  // OPTSELECT_STORE_QUERY_PLAN_H_
