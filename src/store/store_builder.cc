#include "store/store_builder.h"

namespace optselect {
namespace store {

size_t BuildStore(const recommend::AmbiguityDetector& detector,
                  const index::Searcher& searcher,
                  const index::SnippetExtractor& snippets,
                  const text::Analyzer& analyzer,
                  const corpus::DocumentStore& documents,
                  const std::vector<std::string>& candidate_queries,
                  const StoreBuilderOptions& options,
                  DiversificationStore* out) {
  size_t stored = 0;
  for (const std::string& query : candidate_queries) {
    recommend::SpecializationSet set = detector.Detect(query);
    if (!set.ambiguous()) continue;

    StoredEntry entry;
    entry.query = query;
    for (const recommend::Specialization& sp : set.items) {
      StoredSpecialization stored_sp;
      stored_sp.query = sp.query;
      stored_sp.probability = sp.probability;
      std::vector<text::TermId> terms = analyzer.AnalyzeReadOnly(sp.query);
      index::ResultList results =
          options.conjunctive_reference_lists
              ? searcher.SearchTermsConjunctive(
                    terms, options.results_per_specialization)
              : searcher.SearchTerms(terms,
                                     options.results_per_specialization);
      stored_sp.surrogates.reserve(results.size());
      for (const index::SearchResult& hit : results) {
        stored_sp.surrogates.push_back(
            snippets.ExtractVector(documents.Get(hit.doc), terms));
      }
      entry.specializations.push_back(std::move(stored_sp));
    }
    if (out->Put(std::move(entry)).ok()) ++stored;
  }
  return stored;
}

}  // namespace store
}  // namespace optselect
