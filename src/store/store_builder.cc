#include "store/store_builder.h"

#include <set>
#include <string>
#include <utility>

#include "util/strings.h"

namespace optselect {
namespace store {
namespace {

/// Materializes the stored entry for one detected ambiguous query:
/// specializations with P(q′|q) plus their R_q′ surrogate vectors.
StoredEntry MaterializeEntry(const recommend::SpecializationSet& set,
                             const std::string& query,
                             const index::Searcher& searcher,
                             const index::SnippetExtractor& snippets,
                             const text::Analyzer& analyzer,
                             const corpus::DocumentStore& documents,
                             const StoreBuilderOptions& options) {
  StoredEntry entry;
  entry.query = query;
  for (const recommend::Specialization& sp : set.items) {
    StoredSpecialization stored_sp;
    stored_sp.query = sp.query;
    stored_sp.probability = sp.probability;
    std::vector<text::TermId> terms = analyzer.AnalyzeReadOnly(sp.query);
    index::ResultList results =
        options.conjunctive_reference_lists
            ? searcher.SearchTermsConjunctive(
                  terms, options.results_per_specialization)
            : searcher.SearchTerms(terms,
                                   options.results_per_specialization);
    stored_sp.surrogates.reserve(results.size());
    for (const index::SearchResult& hit : results) {
      stored_sp.surrogates.push_back(
          snippets.ExtractVector(documents.Get(hit.doc), terms));
    }
    entry.specializations.push_back(std::move(stored_sp));
  }
  return entry;
}

}  // namespace

size_t BuildStore(const recommend::AmbiguityDetector& detector,
                  const index::Searcher& searcher,
                  const index::SnippetExtractor& snippets,
                  const text::Analyzer& analyzer,
                  const corpus::DocumentStore& documents,
                  const std::vector<std::string>& candidate_queries,
                  const StoreBuilderOptions& options,
                  DiversificationStore* out) {
  size_t stored = 0;
  for (const std::string& query : candidate_queries) {
    recommend::SpecializationSet set = detector.Detect(query);
    if (!set.ambiguous()) continue;
    StoredEntry entry = MaterializeEntry(set, query, searcher, snippets,
                                         analyzer, documents, options);
    if (out->Put(std::move(entry)).ok()) ++stored;
  }
  return stored;
}

StoreDelta MineDelta(const recommend::AmbiguityDetector& detector,
                     const index::Searcher& searcher,
                     const index::SnippetExtractor& snippets,
                     const text::Analyzer& analyzer,
                     const corpus::DocumentStore& documents,
                     const std::vector<std::string>& dirty_queries,
                     const StoreBuilderOptions& options,
                     const DiversificationStore& base) {
  // Widen the dirty set: a stored entry whose *specialization* got new
  // traffic has a changed P(q′|q) distribution even if its root query
  // never reappeared in the tail.
  std::set<std::string> dirty_keys;
  for (const std::string& q : dirty_queries) {
    dirty_keys.insert(util::NormalizeQueryText(q));
  }
  std::set<std::string> to_mine(dirty_queries.begin(), dirty_queries.end());
  for (const auto& [key, entry] : base.entries()) {
    if (to_mine.count(entry.query) > 0) continue;
    for (const StoredSpecialization& sp : entry.specializations) {
      if (dirty_keys.count(util::NormalizeQueryText(sp.query)) > 0) {
        to_mine.insert(entry.query);
        break;
      }
    }
  }

  StoreDelta delta;
  for (const std::string& query : to_mine) {
    recommend::SpecializationSet set = detector.Detect(query);
    if (set.ambiguous()) {
      delta.upserts.push_back(MaterializeEntry(
          set, query, searcher, snippets, analyzer, documents, options));
    } else if (base.Find(query) != nullptr) {
      delta.removals.push_back(query);
    }
  }
  return delta;
}

}  // namespace store
}  // namespace optselect
