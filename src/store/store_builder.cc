#include "store/store_builder.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "core/utility.h"
#include "pipeline/diversification_pipeline.h"
#include "util/hash.h"
#include "util/strings.h"

namespace optselect {
namespace store {

size_t ShardFilter::OwnerShard(std::string_view normalized_key,
                               size_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<size_t>(
      util::Fnv1a64(normalized_key.data(), normalized_key.size()) %
      num_shards);
}

bool ShardFilter::Keeps(std::string_view normalized_key) const {
  if (OwnerShard(normalized_key, num_shards) == shard_index) return true;
  return replicated.count(std::string(normalized_key)) > 0;
}

DiversificationStore SplitStore(const DiversificationStore& store,
                                const ShardFilter& filter) {
  DiversificationStore shard;
  for (const auto& [key, entry] : store.entries()) {
    if (!filter.Keeps(key)) continue;
    // Put re-validates the copied entry (ambiguity + plan invariants),
    // so a shard store can never hold state a full store could not.
    shard.Put(entry).IgnoreError();
  }
  shard.set_version(store.version());
  return shard;
}

namespace {

/// Materializes the stored entry for one detected ambiguous query:
/// specializations with P(q′|q) plus their R_q′ surrogate vectors.
StoredEntry MaterializeEntry(const recommend::SpecializationSet& set,
                             const std::string& query,
                             const index::Searcher& searcher,
                             const index::SnippetExtractor& snippets,
                             const text::Analyzer& analyzer,
                             const corpus::DocumentStore& documents,
                             const StoreBuilderOptions& options) {
  StoredEntry entry;
  entry.query = query;
  for (const recommend::Specialization& sp : set.items) {
    StoredSpecialization stored_sp;
    stored_sp.query = sp.query;
    stored_sp.probability = sp.probability;
    std::vector<text::TermId> terms = analyzer.AnalyzeReadOnly(sp.query);
    index::ResultList results =
        options.conjunctive_reference_lists
            ? searcher.SearchTermsConjunctive(
                  terms, options.results_per_specialization)
            : searcher.SearchTerms(terms,
                                   options.results_per_specialization);
    stored_sp.surrogates.reserve(results.size());
    for (const index::SearchResult& hit : results) {
      stored_sp.surrogates.push_back(
          snippets.ExtractVector(documents.Get(hit.doc), terms));
    }
    entry.specializations.push_back(std::move(stored_sp));
  }
  if (options.compile_plans) {
    entry.plan = CompileQueryPlan(entry, searcher, snippets, analyzer,
                                  documents, options.plan);
  }
  return entry;
}

}  // namespace

QueryPlan CompileQueryPlan(const StoredEntry& entry,
                           const index::Searcher& searcher,
                           const index::SnippetExtractor& snippets,
                           const text::Analyzer& analyzer,
                           const corpus::DocumentStore& documents,
                           const PlanCompileOptions& options) {
  QueryPlan plan;
  plan.num_candidates_requested =
      static_cast<uint32_t>(options.num_candidates);
  plan.threshold_c = options.threshold_c;

  // Same normalized query, same retrieval, same candidate
  // materialization (pipeline::BuildCandidates — one shared
  // definition), same utility code as the serving fallback — so the
  // compiled blocks are bit-identical to what a request would compute.
  std::vector<text::TermId> query_terms =
      analyzer.AnalyzeReadOnly(util::NormalizeQueryText(entry.query));
  index::ResultList rq =
      searcher.SearchTerms(query_terms, options.num_candidates);
  if (rq.empty()) return plan;  // empty plan ⇒ serve-time fallback

  core::DiversificationInput input;
  input.query = entry.query;
  input.candidates =
      pipeline::BuildCandidates(rq, snippets, documents, query_terms);
  input.specializations = DiversificationStore::ToProfiles(entry);

  core::UtilityComputer computer(
      core::UtilityComputer::Options{options.threshold_c});
  core::UtilityMatrix matrix = computer.Compute(input);

  const size_t n = input.candidates.size();
  const size_t m = input.specializations.size();
  plan.docs.reserve(n);
  plan.relevance.reserve(n);
  for (const core::Candidate& c : input.candidates) {
    plan.docs.push_back(c.doc);
    plan.relevance.push_back(c.relevance);
  }
  plan.probability.reserve(m);
  for (const core::SpecializationProfile& sp : input.specializations) {
    plan.probability.push_back(sp.probability);
  }
  plan.utilities.assign(matrix.data(), matrix.data() + n * m);
  // The λ-independent half of Eq. 9; WeightedRowSum runs the kernels'
  // canonical blocked accumulation — the same order the serve-time row
  // scan uses — so the compiled sums match serve-time bitwise.
  plan.weighted.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    plan.weighted.push_back(
        matrix.WeightedRowSum(i, plan.probability.data()));
  }
  // "the k specializations with the largest probabilities" (3.1.3) —
  // the full order is compiled; selection truncates to its k.
  plan.spec_order.resize(m);
  for (size_t j = 0; j < m; ++j) {
    plan.spec_order[j] = static_cast<uint32_t>(j);
  }
  core::SortSpecOrderByProbability(plan.probability.data(),
                                   &plan.spec_order);
  return plan;
}

size_t CompilePlans(DiversificationStore* store,
                    const index::Searcher& searcher,
                    const index::SnippetExtractor& snippets,
                    const text::Analyzer& analyzer,
                    const corpus::DocumentStore& documents,
                    const PlanCompileOptions& options) {
  // Two phases (collect, then Put) because Put mutates the map being
  // iterated. Entries with a compatible plan are skipped — the
  // incremental property the reload path relies on.
  std::vector<StoredEntry> updated;
  for (const auto& [key, entry] : store->entries()) {
    if (!entry.plan.empty() &&
        entry.plan.CompatibleWith(options.num_candidates,
                                  options.threshold_c)) {
      continue;
    }
    StoredEntry copy = entry;
    copy.plan = CompileQueryPlan(entry, searcher, snippets, analyzer,
                                 documents, options);
    if (copy.plan.empty()) continue;  // retrieval found nothing
    updated.push_back(std::move(copy));
  }
  for (StoredEntry& entry : updated) {
    store->Put(std::move(entry)).IgnoreError();
  }
  return updated.size();
}

size_t BuildStore(const recommend::AmbiguityDetector& detector,
                  const index::Searcher& searcher,
                  const index::SnippetExtractor& snippets,
                  const text::Analyzer& analyzer,
                  const corpus::DocumentStore& documents,
                  const std::vector<std::string>& candidate_queries,
                  const StoreBuilderOptions& options,
                  DiversificationStore* out) {
  size_t stored = 0;
  for (const std::string& query : candidate_queries) {
    recommend::SpecializationSet set = detector.Detect(query);
    if (!set.ambiguous()) continue;
    StoredEntry entry = MaterializeEntry(set, query, searcher, snippets,
                                         analyzer, documents, options);
    if (out->Put(std::move(entry)).ok()) ++stored;
  }
  return stored;
}

StoreDelta MineDelta(const recommend::AmbiguityDetector& detector,
                     const index::Searcher& searcher,
                     const index::SnippetExtractor& snippets,
                     const text::Analyzer& analyzer,
                     const corpus::DocumentStore& documents,
                     const std::vector<std::string>& dirty_queries,
                     const StoreBuilderOptions& options,
                     const DiversificationStore& base) {
  // Widen the dirty set: a stored entry whose *specialization* got new
  // traffic has a changed P(q′|q) distribution even if its root query
  // never reappeared in the tail.
  std::set<std::string> dirty_keys;
  for (const std::string& q : dirty_queries) {
    dirty_keys.insert(util::NormalizeQueryText(q));
  }
  std::set<std::string> to_mine(dirty_queries.begin(), dirty_queries.end());
  for (const auto& [key, entry] : base.entries()) {
    if (to_mine.count(entry.query) > 0) continue;
    for (const StoredSpecialization& sp : entry.specializations) {
      if (dirty_keys.count(util::NormalizeQueryText(sp.query)) > 0) {
        to_mine.insert(entry.query);
        break;
      }
    }
  }

  StoreDelta delta;
  for (const std::string& query : to_mine) {
    recommend::SpecializationSet set = detector.Detect(query);
    if (set.ambiguous()) {
      delta.upserts.push_back(MaterializeEntry(
          set, query, searcher, snippets, analyzer, documents, options));
    } else if (base.Find(query) != nullptr) {
      delta.removals.push_back(query);
    }
  }
  return delta;
}

}  // namespace store
}  // namespace optselect
