#include "store/query_plan.h"

namespace optselect {
namespace store {

bool QueryPlan::CompatibleWith(size_t num_candidates,
                               double threshold) const {
  return num_candidates_requested == num_candidates &&
         threshold_c == threshold;
}

bool QueryPlan::SizesConsistent() const {
  const size_t n = docs.size();
  const size_t m = probability.size();
  if (relevance.size() != n || weighted.size() != n ||
      spec_order.size() != m || utilities.size() != n * m) {
    return false;
  }
  // spec_order must be a permutation of [0, m): this is the only gate
  // between untrusted file bytes and the pointer arithmetic of the
  // serving hot path (PrepareHeaps indexes probability/utilities with
  // these values unchecked).
  std::vector<bool> seen(m, false);
  for (uint32_t j : spec_order) {
    if (j >= m || seen[j]) return false;
    seen[j] = true;
  }
  return true;
}

core::DiversificationView QueryPlan::View() const {
  core::DiversificationView view;
  view.num_candidates = docs.size();
  view.num_specializations = probability.size();
  view.relevance = relevance.data();
  view.probability = probability.data();
  view.utilities = utilities.data();
  view.weighted = weighted.data();
  view.spec_order = spec_order.data();
  return view;
}

}  // namespace store
}  // namespace optselect
