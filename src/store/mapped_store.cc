#include "store/mapped_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "util/hash.h"
#include "util/strings.h"

namespace optselect {
namespace store {
namespace {

constexpr char kV4Magic[4] = {'O', 'S', 'V', '4'};
constexpr uint32_t kV4FormatVersion = 4;
constexpr uint32_t kEndianTag = 0x01020304u;
constexpr uint32_t kAlignment = 32;
constexpr size_t kHeaderSize = 64;
constexpr size_t kDirectorySize = 9 * sizeof(uint64_t);
constexpr size_t kVecDescSize = 32;
constexpr size_t kSpecDescSize = 32;
constexpr size_t kEntryDescSize = 64;
constexpr size_t kPlanDescSize = 80;

/// The directory struct at header.directory_offset (see mapped_store.h
/// for the layout comment). Field-by-field (de)serialized — never
/// memcpy'd as a struct — so padding rules cannot change the format.
struct Directory {
  uint64_t entry_desc_off = 0;
  uint64_t spec_desc_off = 0;
  uint64_t vec_desc_off = 0;
  uint64_t plan_desc_off = 0;
  uint64_t plan_count = 0;
  uint64_t total_specs = 0;
  uint64_t total_vecs = 0;
  uint64_t string_pool_off = 0;
  uint64_t string_pool_len = 0;
};

/// Append-only little-endian buffer with alignment padding — the v4
/// writer's backing. All multi-byte writes are memcpy (host is
/// little-endian by the endian_tag contract).
class Out {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bytes(std::string_view s) { Raw(s.data(), s.size()); }
  void U32Array(const uint32_t* p, size_t count) {
    if (count > 0) Raw(p, count * sizeof(uint32_t));
  }
  void F64Array(const double* p, size_t count) {
    if (count > 0) Raw(p, count * sizeof(double));
  }
  /// Pads with zero bytes to the next multiple of `alignment`.
  void Align(size_t alignment) {
    buf_.append((alignment - buf_.size() % alignment) % alignment, '\0');
  }
  size_t Tell() const { return buf_.size(); }
  std::string& buffer() { return buf_; }

 private:
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked little-endian reads at absolute offsets into the
/// mapped region. Every accessor fails closed (false) on overrun.
class In {
 public:
  In(const char* data, size_t size) : data_(data), size_(size) {}

  bool InRange(uint64_t off, uint64_t len) const {
    return off <= size_ && len <= size_ - off;
  }
  bool U32At(uint64_t off, uint32_t* v) const {
    return CopyAt(off, v, sizeof(*v));
  }
  bool U64At(uint64_t off, uint64_t* v) const {
    return CopyAt(off, v, sizeof(*v));
  }
  bool F64At(uint64_t off, double* v) const {
    return CopyAt(off, v, sizeof(*v));
  }
  bool StrAt(uint64_t off, uint64_t len, std::string_view* s) const {
    if (!InRange(off, len)) return false;
    *s = std::string_view(data_ + off, len);
    return true;
  }
  const char* ptr(uint64_t off) const { return data_ + off; }

 private:
  bool CopyAt(uint64_t off, void* v, size_t n) const {
    if (!InRange(off, n)) return false;
    std::memcpy(v, data_ + off, n);
    return true;
  }
  const char* data_;
  size_t size_;
};

util::Status Corrupt(const std::string& what) {
  return util::Status::Corruption("store v4: " + what);
}

/// A mapped column pointer: offset must be in range for `len` elements
/// and sit on the 32-byte grid the writer guarantees (the mmap base is
/// page-aligned, so in-file alignment is absolute alignment).
template <typename T>
bool Column(const In& in, uint64_t off, uint64_t len, const T** out) {
  if (off % kAlignment != 0) return false;
  if (len > (uint64_t)-1 / sizeof(T)) return false;
  if (!in.InRange(off, len * sizeof(T))) return false;
  *out = reinterpret_cast<const T*>(in.ptr(off));
  return true;
}

}  // namespace

util::Status MappedStoreFile::WriteV4(const DiversificationStore& store,
                                      const std::string& path) {
  // Deterministic layout: entries in normalized-key order (the map key,
  // which EntryDescs must be sorted by for the reader's contract).
  std::vector<std::pair<std::string_view, const StoredEntry*>> ordered;
  ordered.reserve(store.entries().size());
  for (const auto& [key, entry] : store.entries()) {
    ordered.emplace_back(key, &entry);
  }
  std::sort(ordered.begin(), ordered.end());

  struct VecOffsets {
    uint64_t terms_off = 0, weights_off = 0;
    uint32_t len = 0;
    double norm = 0.0;
  };
  struct SpecOffsets {
    uint64_t query_off = 0;
    uint32_t query_len = 0, vec_count = 0;
    uint64_t vec_desc_index = 0;
    double probability = 0.0;
  };
  struct PlanOffsets {
    uint32_t num_candidates_requested = 0, n = 0, m = 0;
    double threshold_c = 0.0;
    uint64_t docs_off = 0, relevance_off = 0, probability_off = 0,
             spec_order_off = 0, utilities_off = 0, weighted_off = 0;
  };
  struct EntryOffsets {
    uint64_t key_off = 0;
    uint32_t key_len = 0, spec_count = 0;
    uint64_t query_off = 0;
    uint32_t query_len = 0, has_plan = 0;
    uint64_t spec_desc_index = 0, prob_col_off = 0, plan_desc_index = 0;
  };

  std::vector<VecOffsets> vecs;
  std::vector<SpecOffsets> specs;
  std::vector<PlanOffsets> plans;
  std::vector<EntryOffsets> entry_offsets;
  entry_offsets.reserve(ordered.size());

  Out out;
  out.buffer().append(kHeaderSize, '\0');  // header backfilled last

  // --- string pool (unaligned) --------------------------------------
  Directory dir;
  dir.string_pool_off = out.Tell();
  for (const auto& [key, entry] : ordered) {
    EntryOffsets eo;
    eo.key_off = out.Tell();
    eo.key_len = static_cast<uint32_t>(key.size());
    out.Bytes(key);
    eo.query_off = out.Tell();
    eo.query_len = static_cast<uint32_t>(entry->query.size());
    out.Bytes(entry->query);
    eo.spec_count = static_cast<uint32_t>(entry->specializations.size());
    eo.spec_desc_index = specs.size();
    for (const StoredSpecialization& sp : entry->specializations) {
      SpecOffsets so;
      so.query_off = out.Tell();
      so.query_len = static_cast<uint32_t>(sp.query.size());
      out.Bytes(sp.query);
      so.probability = sp.probability;
      so.vec_count = static_cast<uint32_t>(sp.surrogates.size());
      specs.push_back(so);
    }
    entry_offsets.push_back(eo);
  }
  dir.string_pool_len = out.Tell() - dir.string_pool_off;

  // --- aligned columns ----------------------------------------------
  // One pass per entry, in the same key order: probability column,
  // surrogate SoA columns, then the plan blocks.
  for (size_t e = 0; e < ordered.size(); ++e) {
    const StoredEntry* entry = ordered[e].second;
    EntryOffsets& eo = entry_offsets[e];

    out.Align(kAlignment);
    eo.prob_col_off = out.Tell();
    for (const StoredSpecialization& sp : entry->specializations) {
      out.F64(sp.probability);
    }

    for (size_t s = 0; s < entry->specializations.size(); ++s) {
      const StoredSpecialization& sp = entry->specializations[s];
      SpecOffsets& so = specs[eo.spec_desc_index + s];
      so.vec_desc_index = vecs.size();
      for (const text::TermVector& v : sp.surrogates) {
        VecOffsets vo;
        vo.len = static_cast<uint32_t>(v.entries().size());
        vo.norm = v.norm();
        out.Align(kAlignment);
        vo.terms_off = out.Tell();
        for (const auto& [term, weight] : v.entries()) {
          (void)weight;
          out.U32(term);
        }
        out.Align(kAlignment);
        vo.weights_off = out.Tell();
        for (const auto& [term, weight] : v.entries()) {
          (void)term;
          out.F64(weight);
        }
        vecs.push_back(vo);
      }
    }

    const QueryPlan& plan = entry->plan;
    if (!plan.empty()) {
      eo.has_plan = 1;
      eo.plan_desc_index = plans.size();
      PlanOffsets po;
      po.num_candidates_requested = plan.num_candidates_requested;
      po.threshold_c = plan.threshold_c;
      po.n = static_cast<uint32_t>(plan.num_candidates());
      po.m = static_cast<uint32_t>(plan.num_specializations());
      out.Align(kAlignment);
      po.docs_off = out.Tell();
      out.U32Array(plan.docs.data(), plan.docs.size());
      out.Align(kAlignment);
      po.relevance_off = out.Tell();
      out.F64Array(plan.relevance.data(), plan.relevance.size());
      out.Align(kAlignment);
      po.probability_off = out.Tell();
      out.F64Array(plan.probability.data(), plan.probability.size());
      out.Align(kAlignment);
      po.spec_order_off = out.Tell();
      out.U32Array(plan.spec_order.data(), plan.spec_order.size());
      out.Align(kAlignment);
      po.utilities_off = out.Tell();
      out.F64Array(plan.utilities.data(), plan.utilities.size());
      out.Align(kAlignment);
      po.weighted_off = out.Tell();
      out.F64Array(plan.weighted.data(), plan.weighted.size());
      plans.push_back(po);
    }
  }

  // --- descriptor tables --------------------------------------------
  out.Align(kAlignment);
  dir.vec_desc_off = out.Tell();
  for (const VecOffsets& vo : vecs) {
    out.U64(vo.terms_off);
    out.U64(vo.weights_off);
    out.U32(vo.len);
    out.U32(0);
    out.F64(vo.norm);
  }
  out.Align(kAlignment);
  dir.spec_desc_off = out.Tell();
  for (const SpecOffsets& so : specs) {
    out.U64(so.query_off);
    out.U32(so.query_len);
    out.U32(so.vec_count);
    out.U64(so.vec_desc_index);
    out.F64(so.probability);
  }
  out.Align(kAlignment);
  dir.entry_desc_off = out.Tell();
  for (const EntryOffsets& eo : entry_offsets) {
    out.U64(eo.key_off);
    out.U32(eo.key_len);
    out.U32(eo.spec_count);
    out.U64(eo.query_off);
    out.U32(eo.query_len);
    out.U32(eo.has_plan);
    out.U64(eo.spec_desc_index);
    out.U64(eo.prob_col_off);
    out.U64(eo.plan_desc_index);
    out.U64(0);  // reserved
  }
  out.Align(kAlignment);
  dir.plan_desc_off = out.Tell();
  for (const PlanOffsets& po : plans) {
    out.U32(po.num_candidates_requested);
    out.U32(po.n);
    out.U32(po.m);
    out.U32(0);
    out.F64(po.threshold_c);
    out.U64(po.docs_off);
    out.U64(po.relevance_off);
    out.U64(po.probability_off);
    out.U64(po.spec_order_off);
    out.U64(po.utilities_off);
    out.U64(po.weighted_off);
    out.U64(0);  // reserved
  }
  dir.plan_count = plans.size();
  dir.total_specs = specs.size();
  dir.total_vecs = vecs.size();

  out.Align(sizeof(uint64_t));
  const uint64_t directory_offset = out.Tell();
  out.U64(dir.entry_desc_off);
  out.U64(dir.spec_desc_off);
  out.U64(dir.vec_desc_off);
  out.U64(dir.plan_desc_off);
  out.U64(dir.plan_count);
  out.U64(dir.total_specs);
  out.U64(dir.total_vecs);
  out.U64(dir.string_pool_off);
  out.U64(dir.string_pool_len);

  // --- header (backfilled) ------------------------------------------
  std::string& buf = out.buffer();
  const uint64_t file_size = buf.size();
  char header[kHeaderSize];
  std::memset(header, 0, sizeof(header));
  size_t pos = 0;
  auto put = [&](const void* p, size_t n) {
    std::memcpy(header + pos, p, n);
    pos += n;
  };
  const uint32_t format_version = kV4FormatVersion;
  const uint32_t endian_tag = kEndianTag;
  const uint32_t alignment = kAlignment;
  const uint64_t store_version = store.version();
  const uint64_t entry_count = entry_offsets.size();
  put(kV4Magic, sizeof(kV4Magic));
  put(&format_version, sizeof(format_version));
  put(&endian_tag, sizeof(endian_tag));
  put(&alignment, sizeof(alignment));
  put(&store_version, sizeof(store_version));
  put(&entry_count, sizeof(entry_count));
  put(&directory_offset, sizeof(directory_offset));
  put(&file_size, sizeof(file_size));
  const uint64_t body_checksum =
      util::Fnv1a64(buf.data() + kHeaderSize, buf.size() - kHeaderSize);
  put(&body_checksum, sizeof(body_checksum));
  const uint64_t header_checksum = util::Fnv1a64(header, pos);
  put(&header_checksum, sizeof(header_checksum));
  std::memcpy(&buf[0], header, sizeof(header));

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return util::Status::IoError("cannot open for write: " + path);
  file.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!file) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Result<std::shared_ptr<const MappedStoreFile>> MappedStoreFile::Map(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return util::Status::IoError("cannot open for map: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return util::Status::IoError("fstat failed: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderSize + kDirectorySize) {
    ::close(fd);
    return Corrupt("file too short: " + path);
  }
  // MAP_SHARED, read-only: every process mapping the same store.bin
  // shares one set of physical pages through the OS page cache, so an
  // N-shard fleet on one host pays for the file once, not N times.
  // (The mapping is PROT_READ, so "shared" never means "writable".)
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    ::close(fd);
    return util::Status::IoError("mmap failed: " + path);
  }

  std::shared_ptr<MappedStoreFile> file(new MappedStoreFile());
  file->data_ = static_cast<const char*>(base);
  file->size_ = size;
  file->fd_ = fd;
  util::Status status = file->BuildIndex();
  if (!status.ok()) return status;  // dtor unmaps + closes
  return std::shared_ptr<const MappedStoreFile>(std::move(file));
}

bool MappedStoreFile::LooksLikeV4(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  char magic[sizeof(kV4Magic)] = {0};
  file.read(magic, sizeof(magic));
  return file.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
         std::memcmp(magic, kV4Magic, sizeof(magic)) == 0;
}

size_t MappedStoreFile::MissingPlanCount(size_t num_candidates,
                                         double threshold_c) const {
  size_t missing = 0;
  for (const MappedEntry& entry : entries_) {
    if (!entry.has_plan ||
        !entry.plan.CompatibleWith(num_candidates, threshold_c)) {
      ++missing;
    }
  }
  return missing;
}

bool ParseMapWarmup(std::string_view text, MapWarmup* out) {
  if (text == "none") {
    *out = MapWarmup::kNone;
  } else if (text == "madvise") {
    *out = MapWarmup::kMadvise;
  } else if (text == "mlock") {
    *out = MapWarmup::kMlock;
  } else {
    return false;
  }
  return true;
}

MapWarmupOutcome MappedStoreFile::Warm(MapWarmup requested) const {
  MapWarmupOutcome out;
  if (requested == MapWarmup::kNone || data_ == nullptr) return out;
  void* base = const_cast<char*>(data_);
  if (requested == MapWarmup::kMlock) {
    if (::mlock(base, size_) == 0) {
      out.applied = MapWarmup::kMlock;
      return out;
    }
    // RLIMIT_MEMLOCK (ENOMEM) or missing CAP_IPC_LOCK (EPERM): degrade
    // to the async readahead hint rather than failing startup.
    out.fell_back = true;
    out.detail = std::strerror(errno);
  }
  if (::madvise(base, size_, MADV_WILLNEED) == 0) {
    out.applied = MapWarmup::kMadvise;
  } else if (!out.fell_back) {
    out.fell_back = true;
    out.detail = std::strerror(errno);
  }
  return out;
}

MappedStoreFile::~MappedStoreFile() {
  // RCU reclamation point: the last shared_ptr (snapshot, shard view,
  // or a request still holding spans) releases the pages here.
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(static_cast<const char*>(data_)), size_);
  }
  if (fd_ >= 0) ::close(fd_);
}

util::Status MappedStoreFile::BuildIndex() {
  In in(data_, size_);

  // --- header --------------------------------------------------------
  if (std::memcmp(data_, kV4Magic, sizeof(kV4Magic)) != 0) {
    return Corrupt("bad magic");
  }
  uint32_t format_version = 0, endian_tag = 0, alignment = 0;
  uint64_t store_version = 0, entry_count = 0, directory_offset = 0,
           file_size = 0, body_checksum = 0, header_checksum = 0;
  in.U32At(4, &format_version);
  in.U32At(8, &endian_tag);
  in.U32At(12, &alignment);
  in.U64At(16, &store_version);
  in.U64At(24, &entry_count);
  in.U64At(32, &directory_offset);
  in.U64At(40, &file_size);
  in.U64At(48, &body_checksum);
  in.U64At(56, &header_checksum);
  if (format_version != kV4FormatVersion) {
    return Corrupt("unsupported format version");
  }
  if (endian_tag != kEndianTag) return Corrupt("endianness mismatch");
  if (alignment != kAlignment) return Corrupt("unexpected alignment");
  if (file_size != size_) return Corrupt("file size mismatch (truncated?)");
  if (util::Fnv1a64(data_, 56) != header_checksum) {
    return Corrupt("header checksum mismatch");
  }
  if (util::Fnv1a64(data_ + kHeaderSize, size_ - kHeaderSize) !=
      body_checksum) {
    return Corrupt("body checksum mismatch");
  }

  // --- directory -----------------------------------------------------
  if (directory_offset < kHeaderSize ||
      !in.InRange(directory_offset, kDirectorySize)) {
    return Corrupt("directory out of range");
  }
  Directory dir;
  in.U64At(directory_offset + 0, &dir.entry_desc_off);
  in.U64At(directory_offset + 8, &dir.spec_desc_off);
  in.U64At(directory_offset + 16, &dir.vec_desc_off);
  in.U64At(directory_offset + 24, &dir.plan_desc_off);
  in.U64At(directory_offset + 32, &dir.plan_count);
  in.U64At(directory_offset + 40, &dir.total_specs);
  in.U64At(directory_offset + 48, &dir.total_vecs);
  in.U64At(directory_offset + 56, &dir.string_pool_off);
  in.U64At(directory_offset + 64, &dir.string_pool_len);

  auto table_ok = [&](uint64_t off, uint64_t count, size_t desc_size) {
    return off % kAlignment == 0 && count <= size_ / desc_size &&
           in.InRange(off, count * desc_size);
  };
  if (!table_ok(dir.entry_desc_off, entry_count, kEntryDescSize)) {
    return Corrupt("entry descriptor table out of range");
  }
  if (!table_ok(dir.spec_desc_off, dir.total_specs, kSpecDescSize)) {
    return Corrupt("spec descriptor table out of range");
  }
  if (!table_ok(dir.vec_desc_off, dir.total_vecs, kVecDescSize)) {
    return Corrupt("vec descriptor table out of range");
  }
  if (!table_ok(dir.plan_desc_off, dir.plan_count, kPlanDescSize)) {
    return Corrupt("plan descriptor table out of range");
  }
  if (!in.InRange(dir.string_pool_off, dir.string_pool_len)) {
    return Corrupt("string pool out of range");
  }

  store_version_ = store_version;
  entries_.clear();
  entries_.reserve(entry_count);
  index_.clear();
  index_.reserve(entry_count);

  std::string_view prev_key;
  for (uint64_t e = 0; e < entry_count; ++e) {
    const uint64_t d = dir.entry_desc_off + e * kEntryDescSize;
    uint64_t key_off = 0, query_off = 0, spec_desc_index = 0,
             prob_col_off = 0, plan_desc_index = 0;
    uint32_t key_len = 0, spec_count = 0, query_len = 0, has_plan = 0;
    in.U64At(d + 0, &key_off);
    in.U32At(d + 8, &key_len);
    in.U32At(d + 12, &spec_count);
    in.U64At(d + 16, &query_off);
    in.U32At(d + 24, &query_len);
    in.U32At(d + 28, &has_plan);
    in.U64At(d + 32, &spec_desc_index);
    in.U64At(d + 40, &prob_col_off);
    in.U64At(d + 48, &plan_desc_index);

    MappedEntry entry;
    if (!in.StrAt(key_off, key_len, &entry.key) ||
        !in.StrAt(query_off, query_len, &entry.query)) {
      return Corrupt("entry strings out of range");
    }
    // The lookup key must be the reader's own normalization of the
    // stored query — otherwise Find would silently miss.
    if (entry.key != util::NormalizeQueryText(entry.query)) {
      return Corrupt("entry key is not the normalized query");
    }
    if (e > 0 && !(prev_key < entry.key)) {
      return Corrupt("entry descriptors not sorted by key");
    }
    prev_key = entry.key;
    if (spec_count < 2) return Corrupt("entry with < 2 specializations");
    if (spec_desc_index > dir.total_specs ||
        spec_count > dir.total_specs - spec_desc_index) {
      return Corrupt("spec descriptor range out of table");
    }
    if (!Column(in, prob_col_off, spec_count, &entry.probability_column)) {
      return Corrupt("probability column out of range or misaligned");
    }

    entry.specializations.reserve(spec_count);
    for (uint32_t s = 0; s < spec_count; ++s) {
      const uint64_t sd = dir.spec_desc_off +
                          (spec_desc_index + s) * kSpecDescSize;
      uint64_t sp_query_off = 0, vec_desc_index = 0;
      uint32_t sp_query_len = 0, vec_count = 0;
      MappedSpecialization spec;
      in.U64At(sd + 0, &sp_query_off);
      in.U32At(sd + 8, &sp_query_len);
      in.U32At(sd + 12, &vec_count);
      in.U64At(sd + 16, &vec_desc_index);
      in.F64At(sd + 24, &spec.probability);
      if (!in.StrAt(sp_query_off, sp_query_len, &spec.query)) {
        return Corrupt("spec query out of range");
      }
      // The AoS probability and the column must carry the same bits —
      // serving reads whichever is closer at hand.
      if (std::memcmp(&spec.probability, &entry.probability_column[s],
                      sizeof(double)) != 0) {
        return Corrupt("spec probability disagrees with column");
      }
      if (vec_desc_index > dir.total_vecs ||
          vec_count > dir.total_vecs - vec_desc_index) {
        return Corrupt("vec descriptor range out of table");
      }
      spec.surrogates.reserve(vec_count);
      for (uint32_t v = 0; v < vec_count; ++v) {
        const uint64_t vd =
            dir.vec_desc_off + (vec_desc_index + v) * kVecDescSize;
        uint64_t terms_off = 0, weights_off = 0;
        uint32_t len = 0;
        text::TermVectorSpan span;
        in.U64At(vd + 0, &terms_off);
        in.U64At(vd + 8, &weights_off);
        in.U32At(vd + 16, &len);
        in.F64At(vd + 24, &span.norm);
        if (!Column(in, terms_off, len, &span.terms) ||
            !Column(in, weights_off, len, &span.weights)) {
          return Corrupt("surrogate columns out of range or misaligned");
        }
        span.size = len;
        // Sorted unique term ids are the dot kernels' precondition;
        // enforce it here, at the only gate between file bytes and the
        // linear-merge pointer walk.
        for (uint32_t t = 1; t < len; ++t) {
          if (span.terms[t - 1] >= span.terms[t]) {
            return Corrupt("surrogate terms not strictly ascending");
          }
        }
        spec.surrogates.push_back(span);
      }
      entry.specializations.push_back(std::move(spec));
    }

    if (has_plan > 1) return Corrupt("bad plan flag");
    if (has_plan == 1) {
      if (plan_desc_index >= dir.plan_count) {
        return Corrupt("plan descriptor index out of table");
      }
      const uint64_t pd =
          dir.plan_desc_off + plan_desc_index * kPlanDescSize;
      MappedPlan& plan = entry.plan;
      uint64_t docs_off = 0, relevance_off = 0, probability_off = 0,
               spec_order_off = 0, utilities_off = 0, weighted_off = 0;
      in.U32At(pd + 0, &plan.num_candidates_requested);
      in.U32At(pd + 4, &plan.num_candidates);
      in.U32At(pd + 8, &plan.num_specializations);
      in.F64At(pd + 16, &plan.threshold_c);
      in.U64At(pd + 24, &docs_off);
      in.U64At(pd + 32, &relevance_off);
      in.U64At(pd + 40, &probability_off);
      in.U64At(pd + 48, &spec_order_off);
      in.U64At(pd + 56, &utilities_off);
      in.U64At(pd + 64, &weighted_off);
      const uint64_t n = plan.num_candidates;
      const uint64_t m = plan.num_specializations;
      if (n == 0 || m != spec_count) {
        return Corrupt("plan shape disagrees with entry");
      }
      if (n > size_ / sizeof(double) / m) {
        return Corrupt("plan utility block overflows file");
      }
      if (!Column(in, docs_off, n, &plan.docs) ||
          !Column(in, relevance_off, n, &plan.relevance) ||
          !Column(in, probability_off, m, &plan.probability) ||
          !Column(in, spec_order_off, m, &plan.spec_order) ||
          !Column(in, utilities_off, n * m, &plan.utilities) ||
          !Column(in, weighted_off, n, &plan.weighted)) {
        return Corrupt("plan columns out of range or misaligned");
      }
      // The PlanMatchesEntry rule, applied once at map time instead of
      // per Put: probabilities must equal the mined distribution, and
      // spec_order must be a permutation of [0, m) — it indexes the
      // probability and utility columns unchecked on the hot path.
      if (std::memcmp(plan.probability, entry.probability_column,
                      m * sizeof(double)) != 0) {
        return Corrupt("plan probabilities disagree with entry");
      }
      std::vector<bool> seen(m, false);
      for (uint64_t j = 0; j < m; ++j) {
        uint32_t o = plan.spec_order[j];
        if (o >= m || seen[o]) {
          return Corrupt("plan spec_order is not a permutation");
        }
        seen[o] = true;
      }
      entry.has_plan = true;
    }
    entries_.push_back(std::move(entry));
  }

  // Index after the vector stops reallocating; keys view the mapped
  // string pool, so this is pointer-only.
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (!index_.emplace(entries_[i].key, i).second) {
      return Corrupt("duplicate entry key");
    }
  }
  return util::Status::Ok();
}

DiversificationStore MappedStoreFile::Materialize() const {
  DiversificationStore store;
  for (const MappedEntry& me : entries_) {
    StoredEntry entry;
    entry.query = std::string(me.query);
    entry.specializations.reserve(me.specializations.size());
    for (const MappedSpecialization& ms : me.specializations) {
      StoredSpecialization sp;
      sp.query = std::string(ms.query);
      sp.probability = ms.probability;
      sp.surrogates.reserve(ms.surrogates.size());
      for (const text::TermVectorSpan& span : ms.surrogates) {
        std::vector<text::TermVector::Entry> vec_entries;
        vec_entries.reserve(span.size);
        for (uint32_t t = 0; t < span.size; ++t) {
          vec_entries.emplace_back(span.terms[t], span.weights[t]);
        }
        // FromEntries on already-sorted unique input reproduces the
        // exact entries and recomputes the exact norm bits the builder
        // stored — materialized twins are StoredEntriesEqual to the
        // originals.
        sp.surrogates.push_back(
            text::TermVector::FromEntries(std::move(vec_entries)));
      }
      entry.specializations.push_back(std::move(sp));
    }
    if (me.has_plan) {
      QueryPlan& plan = entry.plan;
      const MappedPlan& mp = me.plan;
      plan.num_candidates_requested = mp.num_candidates_requested;
      plan.threshold_c = mp.threshold_c;
      plan.docs.assign(mp.docs, mp.docs + mp.num_candidates);
      plan.relevance.assign(mp.relevance,
                            mp.relevance + mp.num_candidates);
      plan.probability.assign(mp.probability,
                              mp.probability + mp.num_specializations);
      plan.spec_order.assign(mp.spec_order,
                             mp.spec_order + mp.num_specializations);
      plan.utilities.assign(
          mp.utilities, mp.utilities + static_cast<size_t>(
                                           mp.num_candidates) *
                                           mp.num_specializations);
      plan.weighted.assign(mp.weighted, mp.weighted + mp.num_candidates);
    }
    store.Put(std::move(entry)).IgnoreError();
  }
  store.set_version(store_version_);
  return store;
}

std::vector<core::SpecializationProfile> EntryRef::ToProfiles() const {
  if (heap_ != nullptr) {
    return DiversificationStore::ToProfiles(*heap_);
  }
  std::vector<core::SpecializationProfile> profiles;
  profiles.reserve(mapped_->specializations.size());
  for (const MappedSpecialization& ms : mapped_->specializations) {
    core::SpecializationProfile p;
    p.query = std::string(ms.query);
    p.probability = ms.probability;
    p.results.reserve(ms.surrogates.size());
    for (const text::TermVectorSpan& span : ms.surrogates) {
      std::vector<text::TermVector::Entry> vec_entries;
      vec_entries.reserve(span.size);
      for (uint32_t t = 0; t < span.size; ++t) {
        vec_entries.emplace_back(span.terms[t], span.weights[t]);
      }
      p.results.push_back(
          text::TermVector::FromEntries(std::move(vec_entries)));
    }
    profiles.push_back(std::move(p));
  }
  return profiles;
}

}  // namespace store
}  // namespace optselect
