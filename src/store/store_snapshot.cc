#include "store/store_snapshot.h"

#include <set>
#include <utility>

#include "util/strings.h"

namespace optselect {
namespace store {

std::shared_ptr<const StoreSnapshot> StoreSnapshot::Own(
    DiversificationStore store) {
  auto owned = std::make_unique<DiversificationStore>(std::move(store));
  return std::shared_ptr<const StoreSnapshot>(
      new StoreSnapshot(std::move(owned), nullptr));
}

std::shared_ptr<const StoreSnapshot> StoreSnapshot::Borrow(
    const DiversificationStore* store) {
  return std::shared_ptr<const StoreSnapshot>(
      new StoreSnapshot(nullptr, store));
}

std::shared_ptr<const StoreSnapshot> StoreSnapshot::FromMapped(
    std::shared_ptr<const MappedStoreFile> file) {
  return std::shared_ptr<const StoreSnapshot>(
      new StoreSnapshot(std::move(file), nullptr));
}

std::shared_ptr<const StoreSnapshot> StoreSnapshot::MappedShard(
    std::shared_ptr<const MappedStoreFile> file,
    std::function<bool(std::string_view)> keep) {
  return std::shared_ptr<const StoreSnapshot>(
      new StoreSnapshot(std::move(file), std::move(keep)));
}

StoreSnapshot::StoreSnapshot(std::shared_ptr<const MappedStoreFile> file,
                             std::function<bool(std::string_view)> keep)
    : file_(std::move(file)), keep_(std::move(keep)), filtered_(keep_ != nullptr) {
  if (filtered_) {
    shard_index_.reserve(file_->entry_count());
    for (const MappedEntry& entry : file_->entries()) {
      if (keep_(entry.key)) shard_index_.emplace(entry.key, &entry);
    }
  }
}

EntryRef StoreSnapshot::Find(std::string_view normalized_key) const {
  if (file_ != nullptr) {
    if (filtered_) {
      auto it = shard_index_.find(normalized_key);
      return it == shard_index_.end() ? EntryRef() : EntryRef(it->second);
    }
    return EntryRef(file_->FindEntry(normalized_key));
  }
  return EntryRef(view_->Find(normalized_key));
}

size_t StoreSnapshot::entry_count() const {
  if (file_ != nullptr) {
    return filtered_ ? shard_index_.size() : file_->entry_count();
  }
  return view_->size();
}

const DiversificationStore& StoreSnapshot::store() const {
  if (file_ == nullptr) return *view_;
  std::call_once(materialize_once_, [this] {
    auto heap =
        std::make_unique<DiversificationStore>(file_->Materialize());
    if (filtered_) {
      // Shard views materialize only their slice, mirroring SplitStore.
      std::vector<std::string> drop;
      for (const auto& [key, entry] : heap->entries()) {
        (void)entry;
        if (!keep_(key)) drop.push_back(key);
      }
      for (const std::string& key : drop) heap->Remove(key);
    }
    materialized_ = std::move(heap);
  });
  return *materialized_;
}

SnapshotBuildResult BuildSnapshot(const StoreSnapshot* base,
                                  const StoreDelta& delta) {
  SnapshotBuildResult out;
  DiversificationStore next =
      base != nullptr ? base->store() : DiversificationStore();
  std::set<std::string> changed;  // sorted ⇒ deterministic output

  for (const StoredEntry& entry : delta.upserts) {
    std::string key = util::NormalizeQueryText(entry.query);
    if (entry.specializations.size() < 2) {
      // No longer ambiguous: an upsert below the invariant is a removal.
      if (next.Remove(entry.query)) {
        changed.insert(std::move(key));
        ++out.removals_applied;
      }
      continue;
    }
    const StoredEntry* existing = next.Find(entry.query);
    if (existing != nullptr && StoredEntriesEqual(*existing, entry)) {
      // Mined content unchanged ⇒ no cache invalidation — but adopt the
      // upsert's compiled plan when the base entry has none (e.g. a
      // v2-loaded base refreshed by a plan-compiling miner). Rankings
      // stay bit-identical either way; only the serving cost drops.
      if (existing->plan.empty() && !entry.plan.empty()) {
        next.Put(entry).IgnoreError();
      }
      ++out.unchanged_skipped;
      continue;
    }
    if (next.Put(entry).ok()) {
      changed.insert(std::move(key));
      ++out.upserts_applied;
    }
  }
  for (const std::string& query : delta.removals) {
    if (next.Remove(query)) {
      changed.insert(util::NormalizeQueryText(query));
      ++out.removals_applied;
    }
  }

  next.set_version((base != nullptr ? base->version() : 0) + 1);
  out.snapshot = StoreSnapshot::Own(std::move(next));
  out.changed_keys.assign(changed.begin(), changed.end());
  return out;
}

}  // namespace store
}  // namespace optselect
