#include "store/store_snapshot.h"

#include <set>
#include <utility>

#include "util/strings.h"

namespace optselect {
namespace store {

std::shared_ptr<const StoreSnapshot> StoreSnapshot::Own(
    DiversificationStore store) {
  auto owned = std::make_unique<DiversificationStore>(std::move(store));
  return std::shared_ptr<const StoreSnapshot>(
      new StoreSnapshot(std::move(owned), nullptr));
}

std::shared_ptr<const StoreSnapshot> StoreSnapshot::Borrow(
    const DiversificationStore* store) {
  return std::shared_ptr<const StoreSnapshot>(
      new StoreSnapshot(nullptr, store));
}

SnapshotBuildResult BuildSnapshot(const StoreSnapshot* base,
                                  const StoreDelta& delta) {
  SnapshotBuildResult out;
  DiversificationStore next =
      base != nullptr ? base->store() : DiversificationStore();
  std::set<std::string> changed;  // sorted ⇒ deterministic output

  for (const StoredEntry& entry : delta.upserts) {
    std::string key = util::NormalizeQueryText(entry.query);
    if (entry.specializations.size() < 2) {
      // No longer ambiguous: an upsert below the invariant is a removal.
      if (next.Remove(entry.query)) {
        changed.insert(std::move(key));
        ++out.removals_applied;
      }
      continue;
    }
    const StoredEntry* existing = next.Find(entry.query);
    if (existing != nullptr && StoredEntriesEqual(*existing, entry)) {
      // Mined content unchanged ⇒ no cache invalidation — but adopt the
      // upsert's compiled plan when the base entry has none (e.g. a
      // v2-loaded base refreshed by a plan-compiling miner). Rankings
      // stay bit-identical either way; only the serving cost drops.
      if (existing->plan.empty() && !entry.plan.empty()) {
        next.Put(entry).IgnoreError();
      }
      ++out.unchanged_skipped;
      continue;
    }
    if (next.Put(entry).ok()) {
      changed.insert(std::move(key));
      ++out.upserts_applied;
    }
  }
  for (const std::string& query : delta.removals) {
    if (next.Remove(query)) {
      changed.insert(util::NormalizeQueryText(query));
      ++out.removals_applied;
    }
  }

  next.set_version((base != nullptr ? base->version() : 0) + 1);
  out.snapshot = StoreSnapshot::Own(std::move(next));
  out.changed_keys.assign(changed.begin(), changed.end());
  return out;
}

}  // namespace store
}  // namespace optselect
