// Offline construction of the serving store from the mining stack and
// the index — the "long-term query log" preprocessing step of Section
// 4.1, run once per log refresh.

#ifndef OPTSELECT_STORE_STORE_BUILDER_H_
#define OPTSELECT_STORE_STORE_BUILDER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "corpus/document_store.h"
#include "index/searcher.h"
#include "index/snippet_extractor.h"
#include "recommend/ambiguity_detector.h"
#include "store/diversification_store.h"
#include "store/query_plan.h"
#include "store/store_snapshot.h"
#include "text/analyzer.h"

namespace optselect {
namespace store {

/// Builder options.
struct StoreBuilderOptions {
  /// |R_q′| surrogates kept per specialization (paper: 20).
  size_t results_per_specialization = 20;
  /// Use conjunctive (AND) retrieval for the reference lists.
  bool conjunctive_reference_lists = true;
  /// Compile a serving QueryPlan (store v3) into every materialized
  /// entry. Off ⇒ entries serve via per-request computation (the v2
  /// behaviour).
  bool compile_plans = true;
  /// Plan-compile knobs; must match the serving node's pipeline params
  /// (num_candidates, threshold_c) or the node ignores the plans.
  PlanCompileOptions plan;
};

/// Deterministic query → shard ownership for the sharded serving
/// cluster (src/cluster): a normalized store key is *owned* by exactly
/// one of `num_shards` shards (FNV-1a hash of the key, mod N), and may
/// additionally be *replicated* onto every shard (the cluster's hot-set
/// load spreading). The same struct carves a full store into per-shard
/// stores (SplitStore) and slices refresh deltas per shard, so the two
/// can never disagree about ownership.
struct ShardFilter {
  size_t num_shards = 1;
  size_t shard_index = 0;
  /// Normalized keys present on every shard regardless of owner.
  std::unordered_set<std::string> replicated;

  /// The shard owning `normalized_key` (stable across runs: FNV-1a).
  static size_t OwnerShard(std::string_view normalized_key,
                           size_t num_shards);

  /// True when this shard holds the key: it owns it or replicates it.
  bool Keeps(std::string_view normalized_key) const;
};

/// Carves the slice of `store` held by one shard: every entry whose
/// normalized key passes `filter.Keeps` is deep-copied (plan included);
/// the content version carries over so all shards of one build report
/// the same version. With an empty `replicated` set the per-shard
/// splits partition the store exactly.
DiversificationStore SplitStore(const DiversificationStore& store,
                                const ShardFilter& filter);

/// Runs Algorithm 1 on every query in `candidate_queries`, and for each
/// detected ambiguous query materializes the specializations with their
/// R_q′ surrogate vectors. Queries that are not ambiguous are skipped.
/// Returns the number of entries stored.
size_t BuildStore(const recommend::AmbiguityDetector& detector,
                  const index::Searcher& searcher,
                  const index::SnippetExtractor& snippets,
                  const text::Analyzer& analyzer,
                  const corpus::DocumentStore& documents,
                  const std::vector<std::string>& candidate_queries,
                  const StoreBuilderOptions& options,
                  DiversificationStore* out);

/// Incremental counterpart of BuildStore: re-mines only `dirty_queries`
/// (queries whose log statistics changed since `base` was built) and
/// returns the resulting delta instead of a full store. For each dirty
/// query: detected ambiguous ⇒ an upsert with freshly materialized
/// surrogates; not ambiguous but present in `base` ⇒ a removal. The
/// dirty set is first widened with every base entry that *references* a
/// dirty query as one of its specializations — their P(q′|q)
/// denominators changed too. Feed the result to store::BuildSnapshot.
StoreDelta MineDelta(const recommend::AmbiguityDetector& detector,
                     const index::Searcher& searcher,
                     const index::SnippetExtractor& snippets,
                     const text::Analyzer& analyzer,
                     const corpus::DocumentStore& documents,
                     const std::vector<std::string>& dirty_queries,
                     const StoreBuilderOptions& options,
                     const DiversificationStore& base);

/// Compiles the store-v3 selection blocks for one entry against the
/// serving retrieval stack: retrieves R_q at options.num_candidates,
/// extracts the candidate surrogates, computes the thresholded utility
/// matrix plus the λ-independent weighted sums, and records the
/// probability-sorted specialization order. Runs exactly the code the
/// serving node's fallback path runs, so plan-served rankings are
/// bit-identical to computing per request. Returns an empty plan when
/// retrieval finds nothing (the node then falls back, cheaply).
QueryPlan CompileQueryPlan(const StoredEntry& entry,
                           const index::Searcher& searcher,
                           const index::SnippetExtractor& snippets,
                           const text::Analyzer& analyzer,
                           const corpus::DocumentStore& documents,
                           const PlanCompileOptions& options);

/// Upgrades a store in place (the v2 → v3 path): compiles a plan for
/// every entry whose plan is missing or incompatible with `options`.
/// Entries that already carry a compatible plan are left untouched —
/// this is what makes a post-reload recompile touch only the dirty
/// queries. Returns the number of plans compiled.
size_t CompilePlans(DiversificationStore* store,
                    const index::Searcher& searcher,
                    const index::SnippetExtractor& snippets,
                    const text::Analyzer& analyzer,
                    const corpus::DocumentStore& documents,
                    const PlanCompileOptions& options);

}  // namespace store
}  // namespace optselect

#endif  // OPTSELECT_STORE_STORE_BUILDER_H_
