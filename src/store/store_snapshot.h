// Versioned, immutable store snapshots — the unit of hot reload.
//
// The serving tier never mutates a DiversificationStore in place: it
// holds a shared_ptr<const StoreSnapshot> and swaps the pointer (RCU
// style) when a rebuilt store is ready. In-flight requests keep their
// reference to the old snapshot until they finish, so a swap is
// zero-downtime by construction; the last reference reclaims the old
// store. BuildSnapshot produces the next snapshot from a base plus a
// delta of freshly mined entries, reports exactly which normalized
// query keys changed (so the serving result cache can be invalidated
// per-key instead of flushed), and bumps the monotonic content version
// that DiversificationStore::Save persists.

#ifndef OPTSELECT_STORE_STORE_SNAPSHOT_H_
#define OPTSELECT_STORE_STORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "store/diversification_store.h"

namespace optselect {
namespace store {

/// An immutable, refcounted view of one store build. Create with Own
/// (snapshot owns the store — the serving deployment shape) or Borrow
/// (aliases an externally owned store that must outlive the snapshot —
/// test and embedding convenience).
class StoreSnapshot {
 public:
  static std::shared_ptr<const StoreSnapshot> Own(
      DiversificationStore store);
  static std::shared_ptr<const StoreSnapshot> Borrow(
      const DiversificationStore* store);

  const DiversificationStore& store() const { return *view_; }
  /// Monotonic content version (DiversificationStore::version()).
  uint64_t version() const { return view_->version(); }

  StoreSnapshot(const StoreSnapshot&) = delete;
  StoreSnapshot& operator=(const StoreSnapshot&) = delete;

 private:
  StoreSnapshot(std::unique_ptr<DiversificationStore> owned,
                const DiversificationStore* view)
      : owned_(std::move(owned)),
        view_(view != nullptr ? view : owned_.get()) {}

  std::unique_ptr<DiversificationStore> owned_;
  const DiversificationStore* view_;
};

/// A set of mined changes to apply on top of a base snapshot.
struct StoreDelta {
  /// Entries to insert or replace (from re-mining dirty queries).
  std::vector<StoredEntry> upserts;
  /// Queries that stopped being ambiguous and must be dropped.
  std::vector<std::string> removals;

  bool empty() const { return upserts.empty() && removals.empty(); }
};

/// Outcome of BuildSnapshot.
struct SnapshotBuildResult {
  std::shared_ptr<const StoreSnapshot> snapshot;
  /// Normalized store keys whose entry changed (upserted with different
  /// contents, newly inserted, or removed) — exactly the keys whose
  /// cached rankings may now be stale.
  std::vector<std::string> changed_keys;
  size_t upserts_applied = 0;
  size_t removals_applied = 0;
  /// Upserts identical to the base entry, skipped without invalidating.
  size_t unchanged_skipped = 0;
};

/// Builds the next snapshot: copies the base store (nullptr base ⇒
/// empty store, version 0), applies the delta, and stamps
/// base version + 1. Upserts that fail the store's ambiguity invariant
/// (< 2 specializations) are treated as removals of that key, matching
/// Algorithm 1's "not ambiguous ⇒ not stored". Content-identical
/// upserts are skipped without invalidating (their cached rankings are
/// still exact), except that a compiled query plan on the upsert is
/// adopted when the base entry had none — a free v2 → v3 upgrade.
SnapshotBuildResult BuildSnapshot(const StoreSnapshot* base,
                                  const StoreDelta& delta);

}  // namespace store
}  // namespace optselect

#endif  // OPTSELECT_STORE_STORE_SNAPSHOT_H_
