// Versioned, immutable store snapshots — the unit of hot reload.
//
// The serving tier never mutates a DiversificationStore in place: it
// holds a shared_ptr<const StoreSnapshot> and swaps the pointer (RCU
// style) when a rebuilt store is ready. In-flight requests keep their
// reference to the old snapshot until they finish, so a swap is
// zero-downtime by construction; the last reference reclaims the old
// store. BuildSnapshot produces the next snapshot from a base plus a
// delta of freshly mined entries, reports exactly which normalized
// query keys changed (so the serving result cache can be invalidated
// per-key instead of flushed), and bumps the monotonic content version
// that DiversificationStore::Save persists.
//
// A snapshot has one of two backings:
//
//   heap   — Own / Borrow over a DiversificationStore (entries parsed
//            into std::vector-backed TermVectors). The delta-rebuild
//            and test shape.
//   mapped — FromMapped / MappedShard over a refcounted
//            MappedStoreFile (store format v4): lookups resolve to
//            EntryRefs whose spans point straight at the mmapped
//            columns. A MappedShard is an offset-filtered *view* over
//            the same single mapping — N shards share one physical
//            copy of the store instead of N SplitStore copies. The
//            mapping is released only when the last snapshot (or
//            in-flight request) holding the file drops, which is what
//            makes hot reload safe while old pages are still read.
//
// Find() is the uniform hot-path lookup for both backings. store()
// remains available everywhere — on a mapped snapshot it materializes
// a heap copy once, lazily (rebuilds and the refresher need owned
// entries; the serving hot path never calls it).

#ifndef OPTSELECT_STORE_STORE_SNAPSHOT_H_
#define OPTSELECT_STORE_STORE_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "store/diversification_store.h"
#include "store/mapped_store.h"

namespace optselect {
namespace store {

/// An immutable, refcounted view of one store build. Create with Own
/// (snapshot owns the store — the serving deployment shape), Borrow
/// (aliases an externally owned store that must outlive the snapshot —
/// test and embedding convenience), FromMapped (zero-copy over a v4
/// mapping) or MappedShard (key-filtered zero-copy view over a shared
/// v4 mapping).
class StoreSnapshot {
 public:
  static std::shared_ptr<const StoreSnapshot> Own(
      DiversificationStore store);
  static std::shared_ptr<const StoreSnapshot> Borrow(
      const DiversificationStore* store);
  /// Zero-copy snapshot over a mapped v4 store. The file is shared,
  /// not copied; it stays mapped while any snapshot (or EntryRef
  /// holder) references it.
  static std::shared_ptr<const StoreSnapshot> FromMapped(
      std::shared_ptr<const MappedStoreFile> file);
  /// Key-filtered zero-copy view over a shared mapping: the snapshot
  /// indexes only the normalized keys `keep` accepts — the mapped twin
  /// of SplitStore, with no per-shard entry copies. `keep` is consulted
  /// once per key at construction.
  static std::shared_ptr<const StoreSnapshot> MappedShard(
      std::shared_ptr<const MappedStoreFile> file,
      std::function<bool(std::string_view)> keep);

  /// True when backed by a MappedStoreFile (v4 zero-copy path).
  bool mapped() const { return file_ != nullptr; }
  /// The mapping backing this snapshot; null for heap snapshots.
  const std::shared_ptr<const MappedStoreFile>& mapped_file() const {
    return file_;
  }

  /// Uniform hot-path lookup by normalized key: a heap or mapped
  /// EntryRef, empty when the key is not stored (⇒ not ambiguous).
  /// The returned ref is valid while this snapshot is alive.
  EntryRef Find(std::string_view normalized_key) const;

  /// Entries visible through this snapshot (after shard filtering).
  size_t entry_count() const;

  /// Heap view of this snapshot's contents. For heap snapshots this is
  /// the backing store; for mapped snapshots the first call
  /// materializes a heap copy (thread-safe, cached) — intended for
  /// rebuilds, refreshers and tests, NOT for the request path.
  const DiversificationStore& store() const;

  /// Monotonic content version.
  uint64_t version() const {
    return file_ != nullptr ? file_->store_version() : view_->version();
  }

  StoreSnapshot(const StoreSnapshot&) = delete;
  StoreSnapshot& operator=(const StoreSnapshot&) = delete;

 private:
  StoreSnapshot(std::unique_ptr<DiversificationStore> owned,
                const DiversificationStore* view)
      : owned_(std::move(owned)),
        view_(view != nullptr ? view : owned_.get()) {}
  StoreSnapshot(std::shared_ptr<const MappedStoreFile> file,
                std::function<bool(std::string_view)> keep);

  std::unique_ptr<DiversificationStore> owned_;
  const DiversificationStore* view_ = nullptr;

  std::shared_ptr<const MappedStoreFile> file_;
  /// Set for MappedShard views; empty ⇒ the whole file is visible.
  std::function<bool(std::string_view)> keep_;
  bool filtered_ = false;
  /// Pointer-only per-shard index (keys view the mapped string pool).
  std::unordered_map<std::string_view, const MappedEntry*> shard_index_;

  /// Lazily materialized heap copy for store() on mapped snapshots.
  mutable std::once_flag materialize_once_;
  mutable std::unique_ptr<DiversificationStore> materialized_;
};

/// A set of mined changes to apply on top of a base snapshot.
struct StoreDelta {
  /// Entries to insert or replace (from re-mining dirty queries).
  std::vector<StoredEntry> upserts;
  /// Queries that stopped being ambiguous and must be dropped.
  std::vector<std::string> removals;

  bool empty() const { return upserts.empty() && removals.empty(); }
};

/// Outcome of BuildSnapshot.
struct SnapshotBuildResult {
  std::shared_ptr<const StoreSnapshot> snapshot;
  /// Normalized store keys whose entry changed (upserted with different
  /// contents, newly inserted, or removed) — exactly the keys whose
  /// cached rankings may now be stale.
  std::vector<std::string> changed_keys;
  size_t upserts_applied = 0;
  size_t removals_applied = 0;
  /// Upserts identical to the base entry, skipped without invalidating.
  size_t unchanged_skipped = 0;
};

/// Builds the next snapshot: copies the base store (nullptr base ⇒
/// empty store, version 0), applies the delta, and stamps
/// base version + 1. A mapped base is materialized to heap first (the
/// rebuild owns its entries; serving swaps to the heap-backed result).
/// Upserts that fail the store's ambiguity invariant
/// (< 2 specializations) are treated as removals of that key, matching
/// Algorithm 1's "not ambiguous ⇒ not stored". Content-identical
/// upserts are skipped without invalidating (their cached rankings are
/// still exact), except that a compiled query plan on the upsert is
/// adopted when the base entry had none — a free v2 → v3 upgrade.
SnapshotBuildResult BuildSnapshot(const StoreSnapshot* base,
                                  const StoreDelta& delta);

}  // namespace store
}  // namespace optselect

#endif  // OPTSELECT_STORE_STORE_SNAPSHOT_H_
