// The serving-side data structure of Section 4.1.
//
// "The only information we need are: the ambiguous queries, the list of
//  their possible specializations mined from a long-term query log, the
//  probabilities associated with such specializations, and the sets R_q′
//  of documents highly relevant for each specialization. [...] only short
//  summaries, and not whole documents, can be used without significative
//  loss in the precision of our method."
//
// A DiversificationStore holds exactly that: per ambiguous query, the
// mined specializations with P(q′|q) and the surrogate term vectors of
// R_q′. It is built offline from the mining stack + index, serialized to
// a compact binary file, and loaded by serving nodes that then answer
// "is q ambiguous, and what is its diversification input?" with no
// query-log or recommender in memory. MaxFootprintBytes (core/footprint)
// gives the paper's back-of-the-envelope bound for its size.

#ifndef OPTSELECT_STORE_DIVERSIFICATION_STORE_H_
#define OPTSELECT_STORE_DIVERSIFICATION_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/candidate.h"
#include "store/query_plan.h"
#include "util/status.h"

namespace optselect {
namespace store {

/// One stored specialization: query string, probability, surrogates.
struct StoredSpecialization {
  std::string query;
  double probability = 0.0;
  /// Surrogate vectors of R_q′ in rank order.
  std::vector<text::TermVector> surrogates;
};

/// Everything needed to diversify one ambiguous query at serving time.
struct StoredEntry {
  std::string query;
  std::vector<StoredSpecialization> specializations;
  /// Compiled selection blocks (store v3). Empty when the entry was
  /// loaded from a v1/v2 file or built with plan compilation off;
  /// serving then computes utilities per request. Derived data — Put
  /// drops a plan that no longer matches the mined content above, and
  /// StoredEntriesEqual deliberately ignores it.
  QueryPlan plan;
};

/// In-memory map of ambiguous queries with binary persistence.
class DiversificationStore {
 public:
  /// Inserts (or replaces) an entry. Entries with fewer than two
  /// specializations are rejected (not ambiguous by definition). The
  /// map key is util::NormalizeQueryText(entry.query) — two entries
  /// differing only in casing/spacing occupy one slot — while
  /// entry.query itself is stored untouched. A non-empty plan whose
  /// blocks are inconsistent or whose probabilities disagree with the
  /// entry's specializations (e.g. the caller perturbed the mined
  /// content without recompiling) is dropped, not stored: a stale plan
  /// would serve rankings computed under the old distribution.
  util::Status Put(StoredEntry entry);

  /// Looks up a query (normalized the same way as Put keys); nullptr
  /// when not stored (⇒ not ambiguous).
  const StoredEntry* Find(std::string_view query) const;

  /// Drops the entry for a query (normalized like Put keys). Returns
  /// false when no such entry existed. Used by delta rebuilds when a
  /// query stops being ambiguous under fresh log statistics.
  bool Remove(std::string_view query);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Monotonic build version of this store's *contents* — bumped by
  /// every snapshot rebuild (store::BuildSnapshot), persisted by Save,
  /// and surfaced by the serving tier so a swap is observable. This is
  /// independent of the on-disk *format* version: a legacy (format v1)
  /// file loads as content version 0.
  uint64_t version() const { return version_; }
  void set_version(uint64_t version) { version_ = version; }

  /// Converts a stored entry into the specialization part of a
  /// DiversificationInput (candidates are filled by the caller from the
  /// live ranking).
  static std::vector<core::SpecializationProfile> ToProfiles(
      const StoredEntry& entry);

  /// Total bytes of surrogate payload currently held (Section 4.1's
  /// N·|S_q̂|·|R_q̂′|·L is the worst case of this number).
  uint64_t SurrogatePayloadBytes() const;

  /// Serializes all entries to `path` in the current v4 format — the
  /// flat, checksummed, mmap-able columnar layout of
  /// store/mapped_store.h, which carries version() and the compiled
  /// query plans and which serving nodes can map without parsing.
  /// Deterministic: identical stores produce identical bytes.
  util::Status Save(const std::string& path) const;

  /// Writes the frozen legacy v3 stream format — kept only so tests
  /// and the fixture generator can produce old-format files; production
  /// code saves v4.
  util::Status SaveLegacyV3(const std::string& path) const;

  /// Loads a store written by Save — the current v4 format (parsed via
  /// the mmap reader, then materialized to heap entries) or the legacy
  /// v3 / v2 (no plan blocks) / v1 (pre-versioning; loads with
  /// version() == 0) stream formats. v1/v2 entries load with empty
  /// plans; store::CompilePlans recompiles them against a retrieval
  /// stack. Loading any older format and saving upgrades the file to
  /// v4 with bit-identical content. Fails with kCorruption on
  /// format-version mismatch, truncation, or checksum failure.
  static util::Result<DiversificationStore> Load(const std::string& path);

  /// Iteration support (read-only).
  const std::unordered_map<std::string, StoredEntry>& entries() const {
    return entries_;
  }

 private:
  std::unordered_map<std::string, StoredEntry> entries_;
  uint64_t version_ = 0;
};

/// Deep equality of two stored entries' *mined content* (query strings,
/// probabilities, surrogate vectors — not the derived plan). Used by
/// delta rebuilds to skip upserts that do not actually change an entry
/// — and therefore to avoid invalidating cached rankings that are still
/// bit-identical.
bool StoredEntriesEqual(const StoredEntry& a, const StoredEntry& b);

}  // namespace store
}  // namespace optselect

#endif  // OPTSELECT_STORE_DIVERSIFICATION_STORE_H_
