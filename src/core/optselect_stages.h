// Internal building blocks shared by the serial and parallel OptSelect
// implementations. Not part of the public API surface — include from
// core/*.cc only.
//
// Algorithm 2 decomposes into (1) a scan stage that pushes candidates
// into bounded heaps and (2) a selection stage that drains them under
// the proportional-coverage quotas. The scan is what the parallel
// variant shards; the selection stage is shared verbatim so both agree
// bit-for-bit.

#ifndef OPTSELECT_CORE_OPTSELECT_STAGES_H_
#define OPTSELECT_CORE_OPTSELECT_STAGES_H_

#include <cstddef>
#include <vector>

#include "core/bounded_heap.h"
#include "core/candidate.h"
#include "core/diversifier.h"

namespace optselect {
namespace core {
namespace internal {

/// The heap set of Algorithm 2: M (global) plus one M_q′ per retained
/// specialization, with the retained specializations and their quotas.
struct OptSelectHeaps {
  BoundedTopK<size_t> global;
  std::vector<BoundedTopK<size_t>> per_spec;  ///< parallel to spec_order
  std::vector<size_t> spec_order;             ///< specialization indices
  std::vector<size_t> quota;                  ///< ⌊k·P(q′|q)⌋ per entry

  explicit OptSelectHeaps(size_t k) : global(k) {}
};

/// Builds empty heaps: retains the k most probable specializations (ties
/// on index), sizes M_q′ to ⌊k·P⌋+1 and M to k.
OptSelectHeaps MakeHeaps(const DiversificationInput& input, size_t k);

/// Scan stage over candidates [begin, end): pushes every candidate into
/// the global heap and into each specialization heap it is useful for.
void ScanRange(const DiversificationInput& input,
               const UtilityMatrix& utilities,
               const std::vector<double>& overall, size_t begin, size_t end,
               OptSelectHeaps* heaps);

/// Selection stage: drains quotas most-probable-specialization first,
/// fills from the global heap, and orders the result by overall utility
/// (ties: candidate rank).
std::vector<size_t> DrainAndFill(const std::vector<double>& overall,
                                 size_t n, size_t k, OptSelectHeaps* heaps);

}  // namespace internal
}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_OPTSELECT_STAGES_H_
