// Internal building blocks shared by the serial and parallel OptSelect
// implementations. Not part of the public API surface — include from
// core/*.cc only.
//
// Algorithm 2 decomposes into (1) a scan stage that pushes candidates
// into bounded heaps and (2) a selection stage that drains them under
// the proportional-coverage quotas. The scan is what the parallel
// variant shards; the selection stage is shared verbatim so both agree
// bit-for-bit. All stages operate on a zero-copy DiversificationView
// and keep their state (heaps, quotas, taken-bitmap) inside a
// SelectScratch, so repeated calls on one scratch allocate nothing once
// the buffers have grown to the workload's steady-state sizes.

#ifndef OPTSELECT_CORE_OPTSELECT_STAGES_H_
#define OPTSELECT_CORE_OPTSELECT_STAGES_H_

#include <cstddef>
#include <vector>

#include "core/select_view.h"

namespace optselect {
namespace core {
namespace internal {

/// (Re)initializes the heap set of Algorithm 2 inside `scratch`:
/// retains the k most probable specializations (ties on index) into
/// scratch->spec_order — taken from view.spec_order when the view
/// carries a compiled order, sorted otherwise — sizes each M_q′ to
/// ⌊k·P⌋+1 and M to k.
void PrepareHeaps(const DiversificationView& view, size_t k,
                  SelectScratch* scratch);

/// Scan stage over candidates [begin, end): pushes every candidate into
/// the global heap and into each specialization heap it is useful for.
/// `overall` is the per-candidate overall utility Ũ(d|q); `scratch`
/// must have been PrepareHeaps'd for this view.
void ScanRange(const DiversificationView& view, const double* overall,
               size_t begin, size_t end, SelectScratch* scratch);

/// Selection stage: drains quotas most-probable-specialization first,
/// fills from the global heap, and orders the result (into `*out`,
/// cleared first) by overall utility (ties: candidate rank). Leaves the
/// scratch heaps sorted, not heap-ordered — PrepareHeaps resets them.
void DrainAndFill(const double* overall, size_t n, size_t k,
                  SelectScratch* scratch, std::vector<size_t>* out);

}  // namespace internal
}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_OPTSELECT_STAGES_H_
