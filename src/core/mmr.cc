#include "core/mmr.h"

#include <algorithm>

namespace optselect {
namespace core {

void MmrDiversifier::SelectInto(const DiversificationView& view,
                                const DiversifyParams& params,
                                SelectScratch* scratch,
                                std::vector<size_t>* out) const {
  out->clear();
  const size_t n = view.num_candidates;
  const size_t k = std::min(params.k, n);
  if (k == 0) return;

  // In MMR convention λ weights relevance; reuse params.lambda as the
  // relevance weight's complement mirror so λ=0.15 keeps the same
  // "mostly relevance" reading as xQuAD: rel weight = 1 − λ.
  const double rel_w = 1.0 - params.lambda;
  const double div_w = params.lambda;

  scratch->overall.assign(n, 0.0);  // max sim to the selected set
  scratch->taken.assign(n, 0);
  std::vector<size_t>& selected = *out;
  selected.reserve(k);

  for (size_t step = 0; step < k; ++step) {
    double best_score = -1e300;
    size_t best = static_cast<size_t>(-1);
    for (size_t i = 0; i < n; ++i) {
      if (scratch->taken[i]) continue;
      double score = rel_w * view.relevance[i] -
                     div_w * (step == 0 ? 0.0 : scratch->overall[i]);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == static_cast<size_t>(-1)) break;
    scratch->taken[best] = 1;
    selected.push_back(best);
    // Incremental update of max-similarity against the grown set. A
    // vector-less view contributes 0 similarity (see header).
    if (view.candidates == nullptr) continue;
    for (size_t i = 0; i < n; ++i) {
      if (scratch->taken[i]) continue;
      double sim = view.candidates[i].vector.Cosine(
          view.candidates[best].vector);
      if (sim > scratch->overall[i]) scratch->overall[i] = sim;
    }
  }
}

}  // namespace core
}  // namespace optselect
