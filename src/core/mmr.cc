#include "core/mmr.h"

#include <algorithm>

namespace optselect {
namespace core {

std::vector<size_t> MmrDiversifier::Select(const DiversificationInput& input,
                                           const UtilityMatrix& utilities,
                                           const DiversifyParams& params) const {
  (void)utilities;
  const size_t n = input.candidates.size();
  const size_t k = std::min(params.k, n);
  if (k == 0) return {};

  // In MMR convention λ weights relevance; reuse params.lambda as the
  // relevance weight's complement mirror so λ=0.15 keeps the same
  // "mostly relevance" reading as xQuAD: rel weight = 1 − λ.
  const double rel_w = 1.0 - params.lambda;
  const double div_w = params.lambda;

  std::vector<double> max_sim(n, 0.0);  // max sim to selected set
  std::vector<char> taken(n, 0);
  std::vector<size_t> selected;
  selected.reserve(k);

  for (size_t step = 0; step < k; ++step) {
    double best_score = -1e300;
    size_t best = static_cast<size_t>(-1);
    for (size_t i = 0; i < n; ++i) {
      if (taken[i]) continue;
      double score = rel_w * input.candidates[i].relevance -
                     div_w * (step == 0 ? 0.0 : max_sim[i]);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == static_cast<size_t>(-1)) break;
    taken[best] = 1;
    selected.push_back(best);
    // Incremental update of max-similarity against the grown set.
    for (size_t i = 0; i < n; ++i) {
      if (taken[i]) continue;
      double sim = input.candidates[i].vector.Cosine(
          input.candidates[best].vector);
      if (sim > max_sim[i]) max_sim[i] = sim;
    }
  }
  return selected;
}

}  // namespace core
}  // namespace optselect
