#include "core/xquad.h"

#include <algorithm>

namespace optselect {
namespace core {

std::vector<size_t> XQuadDiversifier::Select(
    const DiversificationInput& input, const UtilityMatrix& utilities,
    const DiversifyParams& params) const {
  const size_t n = input.candidates.size();
  const size_t m = input.specializations.size();
  const size_t k = std::min(params.k, n);
  if (k == 0) return {};

  // Coverage degree of the current solution per specialization:
  // cov_j = Π_{d_j ∈ S} (1 − Ũ(d_j | R_q′)).
  std::vector<double> coverage(m, 1.0);
  std::vector<char> taken(n, 0);
  std::vector<size_t> selected;
  selected.reserve(k);

  const double lambda = params.lambda;

  for (size_t step = 0; step < k; ++step) {
    double best_score = -1.0;
    size_t best = static_cast<size_t>(-1);
    for (size_t i = 0; i < n; ++i) {
      if (taken[i]) continue;
      double diversity = 0.0;
      for (size_t j = 0; j < m; ++j) {
        diversity += input.specializations[j].probability *
                     utilities.At(i, j) * coverage[j];
      }
      double score =
          (1.0 - lambda) * input.candidates[i].relevance + lambda * diversity;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == static_cast<size_t>(-1)) break;
    taken[best] = 1;
    selected.push_back(best);
    for (size_t j = 0; j < m; ++j) {
      coverage[j] *= 1.0 - utilities.At(best, j);
    }
  }
  return selected;
}

}  // namespace core
}  // namespace optselect
