#include "core/xquad.h"

#include <algorithm>

namespace optselect {
namespace core {

void XQuadDiversifier::SelectInto(const DiversificationView& view,
                                  const DiversifyParams& params,
                                  SelectScratch* scratch,
                                  std::vector<size_t>* out) const {
  out->clear();
  const size_t n = view.num_candidates;
  const size_t m = view.num_specializations;
  const size_t k = std::min(params.k, n);
  if (k == 0) return;

  // Coverage degree of the current solution per specialization:
  // cov_j = Π_{d_j ∈ S} (1 − Ũ(d_j | R_q′)).
  scratch->coverage.assign(m, 1.0);
  scratch->taken.assign(n, 0);
  std::vector<size_t>& selected = *out;
  selected.reserve(k);

  const double lambda = params.lambda;

  for (size_t step = 0; step < k; ++step) {
    double best_score = -1.0;
    size_t best = static_cast<size_t>(-1);
    for (size_t i = 0; i < n; ++i) {
      if (scratch->taken[i]) continue;
      double diversity = 0.0;
      for (size_t j = 0; j < m; ++j) {
        diversity += view.probability[j] * view.UtilityAt(i, j) *
                     scratch->coverage[j];
      }
      double score =
          (1.0 - lambda) * view.relevance[i] + lambda * diversity;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == static_cast<size_t>(-1)) break;
    scratch->taken[best] = 1;
    selected.push_back(best);
    for (size_t j = 0; j < m; ++j) {
      scratch->coverage[j] *= 1.0 - view.UtilityAt(best, j);
    }
  }
}

}  // namespace core
}  // namespace optselect
