#include "core/parallel_optselect.h"

#include <algorithm>
#include <thread>

#include "core/optselect_stages.h"

namespace optselect {
namespace core {

void ParallelOptSelectDiversifier::SelectInto(
    const DiversificationView& view, const DiversifyParams& params,
    SelectScratch* scratch, std::vector<size_t>* out) const {
  out->clear();
  const size_t n = view.num_candidates;
  const size_t k = std::min(params.k, n);
  if (k == 0) return;

  size_t threads = num_threads_;
  if (threads == 0) {
    threads = std::max<unsigned>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<size_t>(n / 1024, 1));

  scratch->overall.resize(n);
  internal::PrepareHeaps(view, k, scratch);

  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) {
      scratch->overall[i] = view.OverallUtility(i, params.lambda);
    }
    internal::ScanRange(view, scratch->overall.data(), 0, n, scratch);
    internal::DrainAndFill(scratch->overall.data(), n, k, scratch, out);
    return;
  }

  // Shard the scan: each worker computes overall utilities and fills its
  // own heap set over a contiguous candidate range. Shard scratches are
  // per-call (the sharded regime only triggers for n ≥ 2048, where their
  // cost is noise); the caller's scratch holds the merged set.
  std::vector<SelectScratch> shards(threads);
  for (size_t t = 0; t < threads; ++t) {
    internal::PrepareHeaps(view, k, &shards[t]);
  }
  double* overall = scratch->overall.data();
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const size_t chunk = (n + threads - 1) / threads;
    for (size_t t = 0; t < threads; ++t) {
      size_t begin = t * chunk;
      size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      workers.emplace_back([&, t, begin, end]() {
        for (size_t i = begin; i < end; ++i) {
          overall[i] = view.OverallUtility(i, params.lambda);
        }
        internal::ScanRange(view, overall, begin, end, &shards[t]);
      });
    }
    for (std::thread& w : workers) w.join();
  }

  // Merge: push every retained entry into the final heap set. Bounded
  // heaps are order-independent (total-ordered keys), so the merged
  // retained sets equal what a serial scan would have kept.
  for (SelectScratch& shard : shards) {
    for (const auto& entry : shard.global.SortDescending()) {
      scratch->global.Push(entry.key, entry.value);
    }
    for (size_t jj = 0; jj < shard.spec_order.size(); ++jj) {
      for (const auto& entry : shard.per_spec[jj].SortDescending()) {
        scratch->per_spec[jj].Push(entry.key, entry.value);
      }
    }
  }
  internal::DrainAndFill(overall, n, k, scratch, out);
}

}  // namespace core
}  // namespace optselect
