#include "core/parallel_optselect.h"

#include <algorithm>
#include <thread>

#include "core/kernels/kernels.h"
#include "core/optselect_stages.h"

namespace optselect {
namespace core {

void ParallelOptSelectDiversifier::SelectInto(
    const DiversificationView& view, const DiversifyParams& params,
    SelectScratch* scratch, std::vector<size_t>* out) const {
  out->clear();
  const size_t n = view.num_candidates;
  const size_t k = std::min(params.k, n);
  if (k == 0) return;

  size_t threads = num_threads_;
  if (threads == 0) {
    threads = std::max<unsigned>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<size_t>(n / 1024, 1));

  const size_t m = view.num_specializations;
  const kernels::Ops& ops = kernels::Active();
  // Batched Eq. 9 evaluation over a candidate subrange; per-element
  // identical to view.OverallUtility, so the sharded scan's overall
  // array matches the serial one bitwise.
  auto eval_overall = [&](size_t begin, size_t end, double* overall) {
    if (view.weighted != nullptr) {
      ops.overall_from_weighted(view.relevance + begin,
                                view.weighted + begin, end - begin,
                                params.lambda, static_cast<double>(m),
                                overall + begin);
    } else {
      ops.overall_from_rows(view.relevance + begin,
                            view.utilities + begin * m, view.probability,
                            end - begin, m, params.lambda,
                            overall + begin);
    }
  };

  scratch->overall.resize(n);
  internal::PrepareHeaps(view, k, scratch);

  if (threads <= 1) {
    eval_overall(0, n, scratch->overall.data());
    internal::ScanRange(view, scratch->overall.data(), 0, n, scratch);
    internal::DrainAndFill(scratch->overall.data(), n, k, scratch, out);
    return;
  }

  // Shard the scan: each worker computes overall utilities and fills its
  // own heap set over a contiguous candidate range. Shard scratches are
  // per-call (the sharded regime only triggers for n ≥ 2048, where their
  // cost is noise); the caller's scratch holds the merged set.
  std::vector<SelectScratch> shards(threads);
  for (size_t t = 0; t < threads; ++t) {
    internal::PrepareHeaps(view, k, &shards[t]);
  }
  double* overall = scratch->overall.data();
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const size_t chunk = (n + threads - 1) / threads;
    for (size_t t = 0; t < threads; ++t) {
      size_t begin = t * chunk;
      size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      workers.emplace_back([&, t, begin, end]() {
        eval_overall(begin, end, overall);
        internal::ScanRange(view, overall, begin, end, &shards[t]);
      });
    }
    for (std::thread& w : workers) w.join();
  }

  // Merge: push every retained entry into the final heap set. Bounded
  // heaps are order-independent (total-ordered keys), so the merged
  // retained sets equal what a serial scan would have kept.
  for (SelectScratch& shard : shards) {
    for (const auto& entry : shard.global.SortDescending()) {
      scratch->global.Push(entry.key, entry.value);
    }
    for (size_t jj = 0; jj < shard.spec_order.size(); ++jj) {
      for (const auto& entry : shard.per_spec[jj].SortDescending()) {
        scratch->per_spec[jj].Push(entry.key, entry.value);
      }
    }
  }
  internal::DrainAndFill(overall, n, k, scratch, out);
}

}  // namespace core
}  // namespace optselect
