#include "core/parallel_optselect.h"

#include <algorithm>
#include <thread>

#include "core/optselect.h"
#include "core/optselect_stages.h"

namespace optselect {
namespace core {

std::vector<size_t> ParallelOptSelectDiversifier::Select(
    const DiversificationInput& input, const UtilityMatrix& utilities,
    const DiversifyParams& params) const {
  const size_t n = input.candidates.size();
  const size_t k = std::min(params.k, n);
  if (k == 0) return {};

  size_t threads = num_threads_;
  if (threads == 0) {
    threads = std::max<unsigned>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<size_t>(n / 1024, 1));

  std::vector<double> overall(n);
  internal::OptSelectHeaps merged = internal::MakeHeaps(input, k);

  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) {
      overall[i] = OptSelectDiversifier::OverallUtility(input, utilities, i,
                                                        params.lambda);
    }
    internal::ScanRange(input, utilities, overall, 0, n, &merged);
    return internal::DrainAndFill(overall, n, k, &merged);
  }

  // Shard the scan: each worker computes overall utilities and fills its
  // own heap set over a contiguous candidate range.
  std::vector<internal::OptSelectHeaps> shard_heaps;
  shard_heaps.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    shard_heaps.push_back(internal::MakeHeaps(input, k));
  }
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const size_t chunk = (n + threads - 1) / threads;
    for (size_t t = 0; t < threads; ++t) {
      size_t begin = t * chunk;
      size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      workers.emplace_back([&, t, begin, end]() {
        for (size_t i = begin; i < end; ++i) {
          overall[i] = OptSelectDiversifier::OverallUtility(
              input, utilities, i, params.lambda);
        }
        internal::ScanRange(input, utilities, overall, begin, end,
                            &shard_heaps[t]);
      });
    }
    for (std::thread& w : workers) w.join();
  }

  // Merge: push every retained entry into the final heap set. Bounded
  // heaps are order-independent (total-ordered keys), so the merged
  // retained sets equal what a serial scan would have kept.
  for (internal::OptSelectHeaps& shard : shard_heaps) {
    for (auto& entry : shard.global.ExtractDescending()) {
      merged.global.Push(entry.key, entry.value);
    }
    for (size_t jj = 0; jj < shard.per_spec.size(); ++jj) {
      for (auto& entry : shard.per_spec[jj].ExtractDescending()) {
        merged.per_spec[jj].Push(entry.key, entry.value);
      }
    }
  }
  return internal::DrainAndFill(overall, n, k, &merged);
}

}  // namespace core
}  // namespace optselect
