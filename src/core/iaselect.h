// IASelect (Agrawal et al., WSDM'09) adapted to query-log specializations —
// the QL Diversify(k) problem of Section 3.1.1.
//
// Objective (Eq. 4): choose S ⊆ R_q, |S| = k, maximizing
//   P(S|q) = Σ_{q′∈S_q} P(q′|q)·(1 − Π_{d∈S}(1 − Ũ(d|R_q′))).
//
// Diversify(k) is NP-hard; the objective is submodular, so the standard
// greedy gives a (1 − 1/e)-approximation [Nemhauser et al. 1978]. Each
// step adds the document with the largest marginal gain
//   g(d|S) = Σ_{q′} P(q′|q)·cov_{q′}(S)·Ũ(d|R_q′),
// where cov_{q′}(S) = Π_{d∈S}(1 − Ũ(d|R_q′)).
//
// Cost: k iterations × n candidates × |S_q| ⇒ O(n·k) (Table 1).

#ifndef OPTSELECT_CORE_IASELECT_H_
#define OPTSELECT_CORE_IASELECT_H_

#include <string>
#include <vector>

#include "core/diversifier.h"

namespace optselect {
namespace core {

/// Greedy IASelect. Note: unlike xQuAD/OptSelect it has no relevance
/// mixing term — λ is ignored (the original formulation is coverage-only,
/// relevance enters through the utility values).
class IaSelectDiversifier : public Diversifier {
 public:
  std::string name() const override { return "IASelect"; }

  void SelectInto(const DiversificationView& view,
                  const DiversifyParams& params, SelectScratch* scratch,
                  std::vector<size_t>* out) const override;

  /// Objective value P(S|q) of Eq. 4 for a given selection; exposed for
  /// the greedy-vs-bruteforce property tests.
  static double Objective(const DiversificationInput& input,
                          const UtilityMatrix& utilities,
                          const std::vector<size_t>& selection);
};

}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_IASELECT_H_
