#include "core/streaming_select.h"

#include <algorithm>
#include <cmath>

#include "core/kernels/kernels.h"

namespace optselect {
namespace core {

namespace {

using HeapEntry = BoundedTopK<size_t>::Entry;

/// The shared total order of the bounded heaps: key descending, index
/// ascending on ties. Must match BoundedTopK's internal comparator so
/// sorted copies of live heaps reproduce SortDescending's order.
bool EntryBetter(const HeapEntry& a, const HeapEntry& b) {
  if (a.key != b.key) return a.key > b.key;
  return a.value < b.value;
}

}  // namespace

void StreamingTopK::Begin(const double* probability,
                          size_t num_specializations, size_t max_k,
                          double lambda) {
  const size_t m = num_specializations;
  lambda_ = lambda;
  num_specializations_ = m;
  max_k_ = max_k;
  offered_ = 0;
  pushed_ = 0;
  pruned_ = 0;

  probability_.assign(probability, probability + m);
  prob_sum_ = 0.0;
  for (size_t j = 0; j < m; ++j) prob_sum_ += probability_[j];

  // "the k most probable specializations" generalized to the max_k
  // reserve: Finalize(k) later uses the first min(m, k) of this order,
  // which is exactly sort-then-truncate at k (the order is a prefix-
  // stable total order shared with PrepareHeaps and the plan compiler).
  order_.resize(m);
  for (size_t j = 0; j < m; ++j) order_[j] = j;
  SortSpecOrderByProbability(probability_.data(), &order_);
  if (order_.size() > max_k) order_.resize(max_k);

  retained_specs_ = order_.size();
  if (slots_.size() < retained_specs_) slots_.resize(retained_specs_);
  for (size_t jj = 0; jj < retained_specs_; ++jj) {
    SpecSlot& slot = slots_[jj];
    slot.spec = order_[jj];
    slot.prob = probability_[slot.spec];
    // Capacity ⌊max_k·P⌋+1 ≥ ⌊k·P⌋+1 for every k ≤ max_k: the sorted
    // prefix this heap retains covers every smaller-k drain exactly.
    slot.heap.Reset(static_cast<size_t>(std::floor(
                        static_cast<double>(max_k) * slot.prob)) +
                    1);
  }
  global_.Reset(max_k);
}

bool StreamingTopK::CanPrune(double relevance) const {
  if (global_.capacity() == 0) return true;  // k == 0: nothing retained
  if (global_.size() < global_.capacity()) return false;
  const double ub = UpperBound(relevance);
  if (!(ub < global_.min_key())) return false;
  for (size_t jj = 0; jj < retained_specs_; ++jj) {
    const BoundedTopK<size_t>& heap = slots_[jj].heap;
    if (heap.size() < heap.capacity()) return false;
    if (!(ub < heap.min_key())) return false;
  }
  return true;
}

double StreamingTopK::Push(size_t index, double relevance,
                           const double* utility_row) {
  // The dispatched kernel's blocked accumulation — the exact FP order
  // of DiversificationView::OverallUtility's fallback row scan and the
  // plan compiler's weighted block.
  double weighted = kernels::WeightedRowSum(
      utility_row, probability_.data(), num_specializations_);
  return PushWeighted(index, relevance, weighted, utility_row);
}

double StreamingTopK::PushWeighted(size_t index, double relevance,
                                   double weighted,
                                   const double* utility_row) {
  const double overall = kernels::CombineOverall(
      relevance, weighted, lambda_,
      static_cast<double>(num_specializations_));
  ++offered_;
  ++pushed_;
  global_.Push(overall, index);
  for (size_t jj = 0; jj < retained_specs_; ++jj) {
    if (utility_row[slots_[jj].spec] > 0.0) {
      slots_[jj].heap.Push(overall, index);
    }
  }
  return overall;
}

size_t StreamingTopK::retained() const {
  size_t total = global_.size();
  for (size_t jj = 0; jj < retained_specs_; ++jj) {
    total += slots_[jj].heap.size();
  }
  return total;
}

size_t StreamingTopK::retained_bound() const {
  size_t total = max_k_;
  for (size_t jj = 0; jj < retained_specs_; ++jj) {
    total += slots_[jj].heap.capacity();
  }
  return total;
}

void StreamingTopK::Finalize(size_t k, std::vector<size_t>* out) const {
  out->clear();
  // The materialized path clamps k to n = |R_q|; offered_ counts every
  // candidate the scan saw, pruned ones included.
  k = std::min(k, offered_);
  k = std::min(k, max_k_);
  if (k == 0) return;

  // (overall, index) pairs — heap entries carry the overall utility as
  // their key, so no per-candidate side array is needed.
  std::vector<std::pair<double, size_t>> selected;
  selected.reserve(k);
  auto taken = [&selected](size_t index) {
    for (const auto& p : selected) {
      if (p.second == index) return true;
    }
    return false;
  };

  // Per-specialization quota drain over the first min(m, k) retained
  // specializations. Sorting a copy keeps the live heaps intact (this
  // is what makes Extend a second Finalize instead of a recompute); the
  // prefix truncation to ⌊k·P⌋+1 reproduces the capacity a fresh run at
  // k would have given this heap.
  std::vector<HeapEntry> sorted;
  const size_t spec_count = std::min(retained_specs_, k);
  for (size_t jj = 0; jj < spec_count && selected.size() < k; ++jj) {
    const SpecSlot& slot = slots_[jj];
    const size_t quota = static_cast<size_t>(
        std::floor(static_cast<double>(k) * slot.prob));
    const size_t want = std::max<size_t>(quota, 1);
    sorted = slot.heap.entries();
    std::sort(sorted.begin(), sorted.end(), EntryBetter);
    if (sorted.size() > quota + 1) sorted.resize(quota + 1);
    size_t got = 0;
    for (const HeapEntry& entry : sorted) {
      if (got >= want || selected.size() >= k) break;
      if (taken(entry.value)) {
        // Consumes this specialization's quota without being re-added,
        // exactly like DrainAndFill.
        ++got;
        continue;
      }
      selected.emplace_back(entry.key, entry.value);
      ++got;
    }
  }

  // Global fill: the capacity-max_k heap's sorted top-k prefix equals
  // the fresh capacity-k heap's full content; the drain below processes
  // at most k entries before `selected` reaches k.
  sorted = global_.entries();
  std::sort(sorted.begin(), sorted.end(), EntryBetter);
  if (sorted.size() > k) sorted.resize(k);
  for (const HeapEntry& entry : sorted) {
    if (selected.size() >= k) break;
    if (taken(entry.value)) continue;
    selected.emplace_back(entry.key, entry.value);
  }

  // SERP order: overall utility descending, ties by candidate index.
  std::sort(selected.begin(), selected.end(),
            [](const std::pair<double, size_t>& a,
               const std::pair<double, size_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  out->reserve(selected.size());
  for (const auto& p : selected) out->push_back(p.second);
}

void StreamingDiversifier::SelectInto(const DiversificationView& view,
                                      const DiversifyParams& params,
                                      SelectScratch* scratch,
                                      std::vector<size_t>* out) const {
  (void)scratch;  // State lives in the stream (see class comment).
  out->clear();
  const size_t n = view.num_candidates;
  const size_t m = view.num_specializations;
  const size_t k = std::min(params.k, n);
  if (k == 0) return;

  StreamingTopK stream;
  stream.Begin(view.probability, m, k, params.lambda);
  for (size_t i = 0; i < n; ++i) {
    if (stream.CanPrune(view.relevance[i])) {
      stream.Skip();
      continue;
    }
    const double* row = view.utilities + i * m;
    if (view.weighted != nullptr) {
      stream.PushWeighted(i, view.relevance[i], view.weighted[i], row);
    } else {
      stream.Push(i, view.relevance[i], row);
    }
  }
  stream.Finalize(k, out);
}

}  // namespace core
}  // namespace optselect
