#include "core/footprint.h"

#include <cstdio>

namespace optselect {
namespace core {

uint64_t MaxFootprintBytes(const FootprintParams& params) {
  return params.num_ambiguous_queries * params.max_specializations *
         params.results_per_specialization * params.surrogate_bytes;
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(units)) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  }
  return buf;
}

}  // namespace core
}  // namespace optselect
