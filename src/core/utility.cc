#include "core/utility.h"

#include "core/kernels/kernels.h"
#include "util/math_util.h"

namespace optselect {
namespace core {

double UtilityMatrix::WeightedRowSum(size_t candidate,
                                     const double* probs) const {
  return kernels::WeightedRowSum(values_.data() + candidate * m_, probs,
                                 m_);
}

void UtilityMatrix::ThresholdInPlace(double c) {
  for (double& v : values_) {
    if (v < c) v = 0.0;
  }
}

UtilityMatrix UtilityMatrix::Thresholded(double c) const {
  UtilityMatrix out = *this;
  out.ThresholdInPlace(c);
  return out;
}

double UtilityComputer::RawUtility(
    const text::TermVector& doc,
    const std::vector<text::TermVector>& rq_prime) {
  double u = 0.0;
  for (size_t r = 0; r < rq_prime.size(); ++r) {
    // (1 − δ(d, d′)) = cosine(d, d′); rank is 1-based.
    u += doc.Cosine(rq_prime[r]) / static_cast<double>(r + 1);
  }
  return u;
}

double UtilityComputer::RawUtility(const text::TermVector& doc,
                                   const text::TermVectorSpan* rq_prime,
                                   size_t count) {
  double u = 0.0;
  for (size_t r = 0; r < count; ++r) {
    u += kernels::CosineAosSoa(doc, rq_prime[r]) /
         static_cast<double>(r + 1);
  }
  return u;
}

double UtilityComputer::NormalizedUtility(
    const text::TermVector& doc,
    const std::vector<text::TermVector>& rq_prime) const {
  if (rq_prime.empty()) return 0.0;
  double u = RawUtility(doc, rq_prime) /
             util::HarmonicNumber(rq_prime.size());
  if (u < options_.threshold_c) u = 0.0;
  return u;
}

UtilityMatrix UtilityComputer::Compute(
    const DiversificationInput& input) const {
  const size_t n = input.candidates.size();
  const size_t m = input.specializations.size();
  UtilityMatrix matrix(n, m);
  // Precompute the normalization constants once per specialization.
  std::vector<double> inv_harmonic(m, 0.0);
  for (size_t j = 0; j < m; ++j) {
    size_t len = input.specializations[j].results.size();
    inv_harmonic[j] = len == 0 ? 0.0 : 1.0 / util::HarmonicNumber(len);
  }
  for (size_t i = 0; i < n; ++i) {
    const text::TermVector& doc = input.candidates[i].vector;
    for (size_t j = 0; j < m; ++j) {
      double u =
          RawUtility(doc, input.specializations[j].results) * inv_harmonic[j];
      if (u < options_.threshold_c) u = 0.0;
      matrix.Set(i, j, u);
    }
  }
  return matrix;
}

}  // namespace core
}  // namespace optselect
