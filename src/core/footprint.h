// The feasibility estimate of Section 4.1: "storing N ambiguous queries
// along with the data needed to assess the similarity among results lists
// incurs in a maximal memory occupancy of N · |S_q̂| · |R_q̂′| · L bytes",
// where q̂ is the ambiguous query with the most specializations and L the
// average surrogate length in bytes.

#ifndef OPTSELECT_CORE_FOOTPRINT_H_
#define OPTSELECT_CORE_FOOTPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace optselect {
namespace core {

/// Inputs of the back-of-the-envelope computation.
struct FootprintParams {
  /// Number of ambiguous queries served from the side data structure.
  uint64_t num_ambiguous_queries = 0;
  /// Largest specialization count |S_q̂|.
  uint64_t max_specializations = 0;
  /// Reference results kept per specialization |R_q̂′|.
  uint64_t results_per_specialization = 0;
  /// Average surrogate (snippet) size in bytes.
  uint64_t surrogate_bytes = 0;
};

/// Upper bound in bytes: N · |S_q̂| · |R_q̂′| · L.
uint64_t MaxFootprintBytes(const FootprintParams& params);

/// Human-readable rendering ("1.5 GiB", "640.0 MiB", ...).
std::string FormatBytes(uint64_t bytes);

}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_FOOTPRINT_H_
