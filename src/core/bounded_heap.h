// Fixed-capacity top-N keeper — the heaps M and M_q′ of Algorithm 2.
//
// "we use a collection of |S_q| heaps each of those keeps the top
//  ⌊k·P(q′|q)⌋+1 most useful documents for that specialization. [...] all
//  the heap operations are carried out on data structures having a
//  constant size bounded by k" (Section 4), giving OptSelect its
//  O(n·log₂k) selection cost.
//
// Implementation: a size-capped min-heap ordered by key; pushing onto a
// full heap evicts the smallest element iff the new key is larger.

#ifndef OPTSELECT_CORE_BOUNDED_HEAP_H_
#define OPTSELECT_CORE_BOUNDED_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace optselect {
namespace core {

/// Keeps the `capacity` entries with the largest keys among all pushes.
///
/// Ties on the key are broken deterministically by the value (smaller
/// value wins — for candidate indices this prefers the earlier rank), so
/// the retained set is a pure function of the multiset of pushes,
/// independent of push order. That property is what lets the sharded
/// parallel OptSelect merge per-shard heaps and still reproduce the
/// serial result exactly. Value must be less-than comparable.
template <typename Value>
class BoundedTopK {
 public:
  struct Entry {
    double key = 0.0;
    Value value{};
  };

  BoundedTopK() = default;
  explicit BoundedTopK(size_t capacity) : capacity_(capacity) {}

  /// Reinitializes for reuse under a new capacity. Keeps the backing
  /// allocation, which is what makes per-worker scratch heaps
  /// allocation-free across requests.
  void Reset(size_t capacity) {
    capacity_ = capacity;
    heap_.clear();
  }

  /// Offers (key, value). O(log capacity). Returns true if retained.
  bool Push(double key, Value value) {
    if (capacity_ == 0) return false;
    Entry entry{key, std::move(value)};
    if (heap_.size() < capacity_) {
      heap_.push_back(std::move(entry));
      std::push_heap(heap_.begin(), heap_.end(), WorstLast);
      return true;
    }
    if (!Better(entry, heap_.front())) return false;
    std::pop_heap(heap_.begin(), heap_.end(), WorstLast);
    heap_.back() = std::move(entry);
    std::push_heap(heap_.begin(), heap_.end(), WorstLast);
    return true;
  }

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  size_t capacity() const { return capacity_; }

  /// Smallest retained key (only valid when non-empty).
  double min_key() const { return heap_.front().key; }

  /// Read-only view of the retained entries in internal heap order
  /// (unsorted). Lets a non-destructive drain sort a *copy* while the
  /// heap keeps accepting pushes — the streaming selector's
  /// Finalize/Extend primitive.
  const std::vector<Entry>& entries() const { return heap_; }

  /// Extracts all retained entries ordered best-first (key descending,
  /// value ascending on ties). The keeper is left empty.
  std::vector<Entry> ExtractDescending() {
    std::vector<Entry> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(), Better);
    return out;
  }

  /// Sorts the retained entries best-first *in place* and returns them,
  /// keeping the backing allocation (unlike ExtractDescending, which
  /// moves it away). The heap invariant is destroyed: the only valid
  /// operation afterwards is Reset. This is the drain primitive of the
  /// scratch-reuse selection path.
  const std::vector<Entry>& SortDescending() {
    std::sort(heap_.begin(), heap_.end(), Better);
    return heap_;
  }

 private:
  /// Strict total order: true iff a ranks ahead of b.
  static bool Better(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key > b.key;
    return a.value < b.value;
  }
  /// std::push_heap comparator ("less"): the worst entry becomes the
  /// heap top.
  static bool WorstLast(const Entry& a, const Entry& b) {
    return Better(a, b);
  }

  size_t capacity_ = 0;
  std::vector<Entry> heap_;
};

}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_BOUNDED_HEAP_H_
