// Parallel OptSelect — the paper's future work (iii): "the study of a
// search architecture performing the diversification task in parallel
// with the document scoring phase".
//
// OptSelect's single pass over R_q is embarrassingly parallel: shard the
// candidates, build per-shard bounded heaps (per specialization plus
// global), then merge the shards' heaps — heap merging costs
// O(shards · (k + |S_q|·k) · log k), independent of n. The selection
// stage over merged heaps is identical to the serial algorithm, so the
// output is *bit-identical* to the serial OptSelect (ties break on
// candidate rank in both).
//
// In the architecture the paper sketches, each shard would live inside a
// posting-scoring worker and push into its heaps while scoring; this
// class reproduces that dataflow with std::thread over an in-memory
// utility matrix.

#ifndef OPTSELECT_CORE_PARALLEL_OPTSELECT_H_
#define OPTSELECT_CORE_PARALLEL_OPTSELECT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/diversifier.h"

namespace optselect {
namespace core {

/// Multi-threaded drop-in replacement for OptSelectDiversifier.
class ParallelOptSelectDiversifier : public Diversifier {
 public:
  /// `num_threads` = 0 picks std::thread::hardware_concurrency().
  explicit ParallelOptSelectDiversifier(size_t num_threads = 0)
      : num_threads_(num_threads) {}

  std::string name() const override { return "ParallelOptSelect"; }

  void SelectInto(const DiversificationView& view,
                  const DiversifyParams& params, SelectScratch* scratch,
                  std::vector<size_t>* out) const override;

  size_t num_threads() const { return num_threads_; }

 private:
  size_t num_threads_;
};

}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_PARALLEL_OPTSELECT_H_
