#include "core/factory.h"

#include "core/iaselect.h"
#include "core/mmr.h"
#include "core/optselect.h"
#include "core/parallel_optselect.h"
#include "core/streaming_select.h"
#include "core/xquad.h"
#include "util/strings.h"

namespace optselect {
namespace core {

std::vector<std::string> AvailableDiversifiers() {
  return {"optselect", "streaming", "xquad", "iaselect", "mmr"};
}

util::Result<std::unique_ptr<Diversifier>> MakeDiversifier(
    std::string_view name) {
  std::string lower = util::ToLower(name);
  if (lower == "optselect") {
    return std::unique_ptr<Diversifier>(new OptSelectDiversifier());
  }
  if (lower == "parallel-optselect") {
    return std::unique_ptr<Diversifier>(new ParallelOptSelectDiversifier());
  }
  if (lower == "streaming") {
    return std::unique_ptr<Diversifier>(new StreamingDiversifier());
  }
  if (lower == "xquad") {
    return std::unique_ptr<Diversifier>(new XQuadDiversifier());
  }
  if (lower == "iaselect") {
    return std::unique_ptr<Diversifier>(new IaSelectDiversifier());
  }
  if (lower == "mmr") {
    return std::unique_ptr<Diversifier>(new MmrDiversifier());
  }
  return util::Status::InvalidArgument("unknown diversifier: " +
                                       std::string(name));
}

}  // namespace core
}  // namespace optselect
