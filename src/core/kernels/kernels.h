// Runtime-dispatched compute kernels for the selection hot loops.
//
// The paper argues OptSelect's scan structure is data-parallel (their
// demonstration is on GPUs); this layer finishes that thought on CPU.
// Four loops dominate serving: the weighted utility row sum (the
// λ-independent half of Eq. 9), the per-candidate overall-utility
// evaluation feeding the OptSelect/StreamingTopK scans, the cosine dot
// products between a candidate surrogate and a specialization's stored
// surrogates, and the batched utility-row computation built from them.
// Each has a scalar reference implementation and optional AVX2/NEON
// variants selected ONCE at startup.
//
// Determinism contract: every variant produces bit-identical doubles to
// the scalar reference, run-to-run and across lane widths. Two rules
// make that possible:
//
//   1. Reductions use a FIXED-ORDER BLOCKED accumulation, not the
//      sequential order: the weighted row sum accumulates stripe
//      acc[j mod 4] += p[j]·u[j] (j ascending) and combines as
//      (acc0+acc1)+(acc2+acc3). A 4-lane vector unit computes exactly
//      this; the scalar reference computes exactly this; a 2-lane NEON
//      unit carries stripes {0,1} and {2,3} in two registers and
//      combines in the same tree. The blocked order is the canonical
//      definition — the plan compiler, the serve-time fallback scan and
//      every SIMD variant all produce the same bits.
//   2. Sparse dot products accumulate matched terms in ascending term
//      order — identical to TermVector::Dot's linear merge. SIMD
//      variants only accelerate the intersection *skipping* (wide
//      compares advancing past non-matching ids); they never reorder or
//      partially sum the products.
//
// All kernel translation units compile with -ffp-contract=off and use
// explicit mul+add (never FMA) so contraction cannot change rounding.
//
// Dispatch: Active() resolves once (thread-safe local static) from CPU
// features, overridable via OPTSELECT_KERNELS=scalar|avx2|neon|auto for
// testing. Requesting an unavailable target warns once and falls back
// to scalar.

#ifndef OPTSELECT_CORE_KERNELS_KERNELS_H_
#define OPTSELECT_CORE_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "text/term_vector.h"

namespace optselect {
namespace core {
namespace kernels {

/// One dispatch target: a named table of kernel entry points. All
/// function pointers are always non-null.
struct Ops {
  const char* name;

  /// Σ_j prob[j]·row[j] in the canonical blocked order (see file
  /// comment): acc[j mod 4] += prob[j]·row[j], result
  /// (acc0+acc1)+(acc2+acc3).
  double (*weighted_row_sum)(const double* row, const double* prob,
                             size_t m);

  /// out[i] = (1−λ)·m_scale·rel[i] + λ·weighted[i] — the Eq. 9 combine
  /// over a precompiled weighted block (the plan-served scan).
  void (*overall_from_weighted)(const double* relevance,
                                const double* weighted, size_t n,
                                double lambda, double m_scale,
                                double* out);

  /// out[i] = (1−λ)·m_scale·rel[i] + λ·Σ_j prob[j]·rows[i·m+j] — the
  /// Eq. 9 combine with an inline blocked row sum (the plan-less scan).
  void (*overall_from_rows)(const double* relevance, const double* rows,
                            const double* prob, size_t n, size_t m,
                            double lambda, double* out);

  /// Sparse dot of an AoS (term,weight) entry list against SoA term and
  /// weight columns; both sides sorted by term id, ids unique. Products
  /// accumulate in ascending matched-term order — bit-identical to
  /// text::TermVector::Dot.
  double (*dot_aos_soa)(const text::TermVector::Entry* a, size_t a_len,
                        const uint32_t* b_terms, const double* b_weights,
                        size_t b_len);
};

/// The scalar reference table (always available; the oracle every other
/// target is asserted against).
const Ops& Scalar();

/// The dispatched table: resolved once on first use from CPU features
/// and the OPTSELECT_KERNELS override, then immutable.
const Ops& Active();

/// Name of the active target ("scalar", "avx2", "neon") for logs and
/// bench metadata.
const char* ActiveName();

namespace internal {
/// Arch-specific tables; null when the build target or the running CPU
/// lacks the feature. Defined in kernels_avx2.cc / kernels_neon.cc
/// (each compiles to a null-returning stub off-architecture).
const Ops* Avx2OrNull();
const Ops* NeonOrNull();
}  // namespace internal

/// The Eq. 9 combine for one candidate:
///   (1−λ)·m_scale·relevance + λ·weighted
/// evaluated left-to-right. Shared by every kernel and by header-inline
/// single-candidate call sites so the expression tree is identical
/// everywhere. (Plain f64 mul/add cannot be FMA-contracted on targets
/// without FMA codegen, and kernel TUs additionally force
/// -ffp-contract=off.)
inline double CombineOverall(double relevance, double weighted,
                             double lambda, double m_scale) {
  return (1.0 - lambda) * m_scale * relevance + lambda * weighted;
}

/// Convenience single-call wrappers through the dispatched table.
inline double WeightedRowSum(const double* row, const double* prob,
                             size_t m) {
  return Active().weighted_row_sum(row, prob, m);
}

inline double DotAosSoa(const text::TermVector::Entry* a, size_t a_len,
                        const uint32_t* b_terms, const double* b_weights,
                        size_t b_len) {
  return Active().dot_aos_soa(a, a_len, b_terms, b_weights, b_len);
}

/// cosine(a, b) ∈ [0,1] between a heap TermVector and an SoA span whose
/// norm was computed by the same build-time recomputation — the clamp
/// and zero-norm handling mirror TermVector::Cosine exactly, so a
/// mapped surrogate scores bit-identically to its heap twin.
inline double CosineAosSoa(const text::TermVector& a,
                           const text::TermVectorSpan& b) {
  if (a.norm() == 0.0 || b.norm == 0.0) return 0.0;
  double c = DotAosSoa(a.entries().data(), a.size(), b.terms, b.weights,
                       b.size) /
             (a.norm() * b.norm);
  if (c < 0.0) return 0.0;
  if (c > 1.0) return 1.0;
  return c;
}

}  // namespace kernels
}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_KERNELS_KERNELS_H_
