// AVX2 kernel variants. Compiled with -mavx2 -ffp-contract=off on
// x86-64 (see CMakeLists); on other architectures this TU collapses to
// a null-returning stub so the dispatcher never sees it.
//
// Bit-identity with the scalar reference (asserted by kernels_test and
// the oracle differential suite) comes from two invariants:
//   * reductions carry one stripe per lane in the canonical blocked
//     order — lane l of the 4-lane accumulator holds exactly the j ≡ l
//     (mod 4) products, and the horizontal combine is the same
//     (acc0+acc1)+(acc2+acc3) tree the scalar path uses;
//   * only explicit _mm256_mul_pd / _mm256_add_pd are used — no FMA
//     intrinsics — so per-element rounding matches scalar mul+add.

#include "core/kernels/kernels.h"

#if defined(__x86_64__) || defined(_M_X64)
#if defined(__AVX2__)

#include <immintrin.h>

namespace optselect {
namespace core {
namespace kernels {
namespace {

double WeightedRowSumAvx2(const double* row, const double* prob,
                          size_t m) {
  __m256d acc = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    __m256d p = _mm256_loadu_pd(prob + j);
    __m256d r = _mm256_loadu_pd(row + j);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(p, r));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  // Tail elements continue their stripes: the vector loop exits at a
  // multiple of 4, so j & 3 walks 0,1,2 — the same lanes the products
  // would have landed in with one more full vector.
  for (; j < m; ++j) lanes[j & 3] += prob[j] * row[j];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void OverallFromWeightedAvx2(const double* relevance,
                             const double* weighted, size_t n,
                             double lambda, double m_scale, double* out) {
  // Elementwise — no reduction, so lanes are independent and identical
  // to scalar by construction. The two scale factors are computed once
  // with the same expressions CombineOverall uses.
  const double rel_scale = (1.0 - lambda) * m_scale;
  const __m256d vrel_scale = _mm256_set1_pd(rel_scale);
  const __m256d vlambda = _mm256_set1_pd(lambda);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d r = _mm256_loadu_pd(relevance + i);
    __m256d w = _mm256_loadu_pd(weighted + i);
    __m256d v = _mm256_add_pd(_mm256_mul_pd(vrel_scale, r),
                              _mm256_mul_pd(vlambda, w));
    _mm256_storeu_pd(out + i, v);
  }
  for (; i < n; ++i) {
    out[i] = CombineOverall(relevance[i], weighted[i], lambda, m_scale);
  }
}

void OverallFromRowsAvx2(const double* relevance, const double* rows,
                         const double* prob, size_t n, size_t m,
                         double lambda, double* out) {
  const double m_scale = static_cast<double>(m);
  for (size_t i = 0; i < n; ++i) {
    double w = WeightedRowSumAvx2(rows + i * m, prob, m);
    out[i] = CombineOverall(relevance[i], w, lambda, m_scale);
  }
}

double DotAosSoaAvx2(const text::TermVector::Entry* a, size_t a_len,
                     const uint32_t* b_terms, const double* b_weights,
                     size_t b_len) {
  // Same merge as the scalar reference; the only acceleration is
  // skipping runs of SoA term ids below the current AoS id with 8-wide
  // compares. Matched products still accumulate one at a time in
  // ascending term order, so the sum is bit-identical.
  const __m256i sign_bias = _mm256_set1_epi32(INT32_MIN);
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a_len && j < b_len) {
    uint32_t ta = a[i].first;
    uint32_t tb = b_terms[j];
    if (ta == tb) {
      dot += a[i].second * b_weights[j];
      ++i;
      ++j;
      continue;
    }
    if (ta < tb) {
      ++i;
      continue;
    }
    // tb < ta: advance j past the run of smaller ids. Dense-overlap
    // vectors (the surrogate-vs-surrogate common case) have runs of
    // length 1–2 where an 8-wide compare is pure overhead, so gallop
    // scalar first and bring in the vector skip only once the run has
    // proven long.
    ++j;
    size_t gallop = 0;
    while (j < b_len && b_terms[j] < ta && gallop < 3) {
      ++j;
      ++gallop;
    }
    if (j >= b_len || b_terms[j] >= ta) continue;
    // Long run: count how many sorted b ids are still below ta, 8 at a
    // time. The compare is unsigned via the sign-bias trick (ids
    // flipped into signed order); lanes below ta form a prefix because
    // b is sorted.
    const __m256i va = _mm256_xor_si256(
        _mm256_set1_epi32(static_cast<int>(ta)), sign_bias);
    while (j + 8 <= b_len) {
      __m256i vb = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b_terms + j));
      vb = _mm256_xor_si256(vb, sign_bias);
      __m256i below = _mm256_cmpgt_epi32(va, vb);
      unsigned mask = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(below)));
      if (mask == 0xFFu) {
        j += 8;
        continue;
      }
      j += static_cast<size_t>(__builtin_popcount(mask));
      break;
    }
    while (j < b_len && b_terms[j] < ta) ++j;
  }
  return dot;
}

const Ops kAvx2Ops = {
    "avx2",          WeightedRowSumAvx2, OverallFromWeightedAvx2,
    OverallFromRowsAvx2, DotAosSoaAvx2,
};

}  // namespace

namespace internal {
const Ops* Avx2OrNull() {
  // Build target supports AVX2 codegen; gate on the running CPU.
  return __builtin_cpu_supports("avx2") ? &kAvx2Ops : nullptr;
}
}  // namespace internal

}  // namespace kernels
}  // namespace core
}  // namespace optselect

#else  // x86-64 but the per-file -mavx2 flag was not applied

namespace optselect {
namespace core {
namespace kernels {
namespace internal {
const Ops* Avx2OrNull() { return nullptr; }
}  // namespace internal
}  // namespace kernels
}  // namespace core
}  // namespace optselect

#endif  // __AVX2__
#else  // non-x86 build target

namespace optselect {
namespace core {
namespace kernels {
namespace internal {
const Ops* Avx2OrNull() { return nullptr; }
}  // namespace internal
}  // namespace kernels
}  // namespace core
}  // namespace optselect

#endif  // __x86_64__
