// Scalar reference kernels + one-time dispatch. Compiled with
// -ffp-contract=off (see CMakeLists): the scalar table is the oracle
// every SIMD variant is asserted bit-identical against, so its rounding
// must not depend on whether the compiler fused a mul+add.

#include "core/kernels/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace optselect {
namespace core {
namespace kernels {

namespace {

double WeightedRowSumScalar(const double* row, const double* prob,
                            size_t m) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t j = 0; j < m; ++j) acc[j & 3] += prob[j] * row[j];
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

void OverallFromWeightedScalar(const double* relevance,
                               const double* weighted, size_t n,
                               double lambda, double m_scale, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = CombineOverall(relevance[i], weighted[i], lambda, m_scale);
  }
}

void OverallFromRowsScalar(const double* relevance, const double* rows,
                           const double* prob, size_t n, size_t m,
                           double lambda, double* out) {
  const double m_scale = static_cast<double>(m);
  for (size_t i = 0; i < n; ++i) {
    double w = WeightedRowSumScalar(rows + i * m, prob, m);
    out[i] = CombineOverall(relevance[i], w, lambda, m_scale);
  }
}

double DotAosSoaScalar(const text::TermVector::Entry* a, size_t a_len,
                       const uint32_t* b_terms, const double* b_weights,
                       size_t b_len) {
  // The exact linear merge of TermVector::Dot, with the b side read
  // from columns instead of pairs.
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a_len && j < b_len) {
    uint32_t ta = a[i].first;
    uint32_t tb = b_terms[j];
    if (ta == tb) {
      dot += a[i].second * b_weights[j];
      ++i;
      ++j;
    } else if (ta < tb) {
      ++i;
    } else {
      ++j;
    }
  }
  return dot;
}

const Ops kScalarOps = {
    "scalar",          WeightedRowSumScalar, OverallFromWeightedScalar,
    OverallFromRowsScalar, DotAosSoaScalar,
};

/// Resolves the dispatch target once. Unknown or unavailable explicit
/// requests warn to stderr and fall back to scalar — a test asking for
/// a specific target should fail loudly in its assertions, not crash
/// the process.
const Ops* Choose() {
  const char* env = std::getenv("OPTSELECT_KERNELS");
  const char* want = (env != nullptr && env[0] != '\0') ? env : "auto";
  if (std::strcmp(want, "scalar") == 0) return &kScalarOps;
  if (std::strcmp(want, "avx2") == 0) {
    const Ops* ops = internal::Avx2OrNull();
    if (ops != nullptr) return ops;
    std::fprintf(stderr,
                 "optselect: OPTSELECT_KERNELS=avx2 unavailable on this "
                 "CPU/build; using scalar kernels\n");
    return &kScalarOps;
  }
  if (std::strcmp(want, "neon") == 0) {
    const Ops* ops = internal::NeonOrNull();
    if (ops != nullptr) return ops;
    std::fprintf(stderr,
                 "optselect: OPTSELECT_KERNELS=neon unavailable on this "
                 "CPU/build; using scalar kernels\n");
    return &kScalarOps;
  }
  if (std::strcmp(want, "auto") != 0) {
    std::fprintf(stderr,
                 "optselect: unknown OPTSELECT_KERNELS='%s'; using "
                 "scalar kernels\n",
                 want);
    return &kScalarOps;
  }
  if (const Ops* ops = internal::Avx2OrNull()) return ops;
  if (const Ops* ops = internal::NeonOrNull()) return ops;
  return &kScalarOps;
}

}  // namespace

const Ops& Scalar() { return kScalarOps; }

const Ops& Active() {
  static const Ops* ops = Choose();
  return *ops;
}

const char* ActiveName() { return Active().name; }

}  // namespace kernels
}  // namespace core
}  // namespace optselect
