// NEON (aarch64) kernel variants. Compiled with -ffp-contract=off; on
// non-ARM targets this TU collapses to a null-returning stub.
//
// NEON's f64 vectors are 2 lanes, so the canonical 4-stripe blocked
// reduction is carried in TWO registers: accA holds stripes {0,1}
// (j ≡ 0,1 mod 4), accB holds stripes {2,3}. Each 4-element step loads
// two f64x2 pairs, multiplies and adds lane-wise — exactly the stripe
// sums the scalar reference keeps — and the horizontal combine is the
// same (acc0+acc1)+(acc2+acc3) tree. Only vmulq/vaddq are used (no
// vfmaq), so per-element rounding matches scalar mul+add.

#include "core/kernels/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace optselect {
namespace core {
namespace kernels {
namespace {

double WeightedRowSumNeon(const double* row, const double* prob,
                          size_t m) {
  float64x2_t acc_a = vdupq_n_f64(0.0);  // stripes 0,1
  float64x2_t acc_b = vdupq_n_f64(0.0);  // stripes 2,3
  size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    acc_a = vaddq_f64(acc_a,
                      vmulq_f64(vld1q_f64(prob + j), vld1q_f64(row + j)));
    acc_b = vaddq_f64(
        acc_b, vmulq_f64(vld1q_f64(prob + j + 2), vld1q_f64(row + j + 2)));
  }
  double lanes[4] = {vgetq_lane_f64(acc_a, 0), vgetq_lane_f64(acc_a, 1),
                     vgetq_lane_f64(acc_b, 0), vgetq_lane_f64(acc_b, 1)};
  for (; j < m; ++j) lanes[j & 3] += prob[j] * row[j];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void OverallFromWeightedNeon(const double* relevance,
                             const double* weighted, size_t n,
                             double lambda, double m_scale, double* out) {
  const double rel_scale = (1.0 - lambda) * m_scale;
  const float64x2_t vrel_scale = vdupq_n_f64(rel_scale);
  const float64x2_t vlambda = vdupq_n_f64(lambda);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float64x2_t r = vld1q_f64(relevance + i);
    float64x2_t w = vld1q_f64(weighted + i);
    vst1q_f64(out + i, vaddq_f64(vmulq_f64(vrel_scale, r),
                                 vmulq_f64(vlambda, w)));
  }
  for (; i < n; ++i) {
    out[i] = CombineOverall(relevance[i], weighted[i], lambda, m_scale);
  }
}

void OverallFromRowsNeon(const double* relevance, const double* rows,
                         const double* prob, size_t n, size_t m,
                         double lambda, double* out) {
  const double m_scale = static_cast<double>(m);
  for (size_t i = 0; i < n; ++i) {
    double w = WeightedRowSumNeon(rows + i * m, prob, m);
    out[i] = CombineOverall(relevance[i], w, lambda, m_scale);
  }
}

double DotAosSoaNeon(const text::TermVector::Entry* a, size_t a_len,
                     const uint32_t* b_terms, const double* b_weights,
                     size_t b_len) {
  // Scalar merge with 4-wide unsigned skips over the sorted SoA ids;
  // matched products accumulate one at a time in ascending term order.
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a_len && j < b_len) {
    uint32_t ta = a[i].first;
    uint32_t tb = b_terms[j];
    if (ta == tb) {
      dot += a[i].second * b_weights[j];
      ++i;
      ++j;
      continue;
    }
    if (ta < tb) {
      ++i;
      continue;
    }
    const uint32x4_t va = vdupq_n_u32(ta);
    while (j + 4 <= b_len) {
      uint32x4_t vb = vld1q_u32(b_terms + j);
      uint32x4_t below = vcltq_u32(vb, va);
      // Lanes below ta form a prefix (b sorted); count them.
      uint32_t count = vaddvq_u32(vshrq_n_u32(below, 31));
      j += count;
      if (count < 4) break;
    }
    while (j < b_len && b_terms[j] < ta) ++j;
  }
  return dot;
}

const Ops kNeonOps = {
    "neon",          WeightedRowSumNeon, OverallFromWeightedNeon,
    OverallFromRowsNeon, DotAosSoaNeon,
};

}  // namespace

namespace internal {
// NEON is architecturally guaranteed on aarch64.
const Ops* NeonOrNull() { return &kNeonOps; }
}  // namespace internal

}  // namespace kernels
}  // namespace core
}  // namespace optselect

#else  // non-aarch64 build target

namespace optselect {
namespace core {
namespace kernels {
namespace internal {
const Ops* NeonOrNull() { return nullptr; }
}  // namespace internal
}  // namespace kernels
}  // namespace core
}  // namespace optselect

#endif  // __aarch64__
