#include "core/diversifier.h"

namespace optselect {
namespace core {

std::vector<size_t> Diversifier::Select(const DiversificationInput& input,
                                        const UtilityMatrix& utilities,
                                        const DiversifyParams& params) const {
  SelectScratch scratch;
  DiversificationView view = MakeView(input, utilities, &scratch);
  std::vector<size_t> out;
  SelectInto(view, params, &scratch, &out);
  return out;
}

}  // namespace core
}  // namespace optselect
