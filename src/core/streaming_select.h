// Streaming diversified top-k maintenance — the cold-path counterpart
// of the materialize-then-select OptSelect flow.
//
// OptSelect (core/optselect.cc) assumes the full candidate block R_q is
// materialized before selection starts: every surrogate extracted,
// every utility row computed, then one scan fills the bounded heaps.
// For queries served out of the store that is the right shape — the
// blocks are precompiled — but on the cold path the materialization
// *is* the cost: snippet extraction plus O(m·|R_q′|) cosine sums per
// candidate, for candidates that mostly never reach the top k.
//
// StreamingTopK maintains Algorithm 2's heap set incrementally as
// candidates arrive from the index scan, with two additions in the
// spirit of the incremental algorithms of Qin et al., "Diversifying
// Top-K Results" (div-astar / div-dp):
//
//   1. A sound pruning bound. Ũ(d|R_q′) ∈ [0,1] (Definition 2), so
//
//        Ũ(d|q) = (1−λ)·m·P(d|q) + λ·Σ_j P(q′_j|q)·Ũ(d|R_q′_j)
//               ≤ (1−λ)·m·P(d|q) + λ·Σ_j P(q′_j|q)  =:  UB(d)
//
//      depends only on the candidate's relevance — known *before* its
//      surrogate is extracted or its utility row computed. Once every
//      heap is full, a candidate with UB strictly below every heap's
//      minimum retained key provably cannot displace anything (the
//      heaps' tie-break is key-then-index, and UB < min beats any tie),
//      so the scan skips its materialization entirely. Because index
//      scans deliver candidates in descending relevance order, the
//      bound turns monotone and the tail of R_q is skipped wholesale.
//
//   2. Capacity reserve for incremental extension. Begin(max_k) sizes
//      the heaps for max_k; Finalize(k) then reproduces the
//      materialized selection *bit-identically* for any k ≤ max_k, and
//      is non-destructive — a pager's Extend(k → k+Δ) is just a second
//      Finalize on the retained state, with zero new candidate
//      materializations (pushed() does not move).
//
// Bit-identity argument (vs OptSelectDiversifier::SelectInto at k):
// BoundedTopK's retained set is a pure function of the push multiset
// under the total order (key desc, index asc). A capacity-c₂ heap with
// c₂ ≥ c₁ retains a superset of the capacity-c₁ heap whose sorted
// prefix of length min(size, c₁) is exactly the c₁ heap's sorted
// content. Finalize(k) drains only those prefixes: per-specialization
// at most want = max(⌊k·P⌋, 1) ≤ ⌊k·P⌋+1 entries, global at most k —
// so every entry it visits, in the order it visits them, matches the
// materialized DrainAndFill at k. Pruned candidates were provably
// rejected by every heap, so skipping them changes nothing.

#ifndef OPTSELECT_CORE_STREAMING_SELECT_H_
#define OPTSELECT_CORE_STREAMING_SELECT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/bounded_heap.h"
#include "core/diversifier.h"

namespace optselect {
namespace core {

/// Incremental bounded-state maintenance of Algorithm 2's heap set.
/// One instance per worker thread; Begin resets it for a new problem
/// while keeping every backing allocation, so steady-state requests
/// allocate nothing inside the state itself.
class StreamingTopK {
 public:
  /// Starts a new problem instance: `probability` has one P(q′|q) per
  /// specialization (original index order, length m). Heaps are sized
  /// for Finalize at any k ≤ max_k: global capacity max_k, one heap of
  /// capacity ⌊max_k·P⌋+1 for each of the min(m, max_k) most probable
  /// specializations (SortSpecOrderByProbability order).
  void Begin(const double* probability, size_t num_specializations,
             size_t max_k, double lambda);

  /// Upper bound UB(d) on the overall utility of a candidate with this
  /// relevance (header doc). Sound whenever utilities are normalized to
  /// [0,1] — true for every Ũ this library computes (Definition 2).
  double UpperBound(double relevance) const {
    return (1.0 - lambda_) * static_cast<double>(num_specializations_) *
               relevance +
           lambda_ * prob_sum_;
  }

  /// True when a candidate with this relevance provably cannot be
  /// retained by any heap: all heaps are full and UB(d) is *strictly*
  /// below each one's minimum key (strictness makes ties safe — an
  /// equal key could still displace a higher-index entry). Skipping
  /// such a candidate leaves every heap bit-identical to pushing it.
  bool CanPrune(double relevance) const;

  /// Offers candidate `index` with its thresholded utility row (length
  /// m, original specialization order). Computes the Eq. 9 overall
  /// utility with the same ascending-j accumulation as
  /// DiversificationView::OverallUtility and returns it.
  double Push(size_t index, double relevance, const double* utility_row);

  /// Same, with the weighted sum Σ_j P_j·Ũ_ij precomputed (compiled
  /// plan blocks carry it); the row is still needed for the per-
  /// specialization usefulness tests.
  double PushWeighted(size_t index, double relevance, double weighted,
                      const double* utility_row);

  /// Records a candidate that was offered but pruned, keeping the
  /// effective-k clamp in Finalize (k ≤ candidates offered) correct.
  void Skip() {
    ++offered_;
    ++pruned_;
  }

  /// Drains the retained state into `*out` (cleared first) exactly as
  /// the materialized path would at this k: per-specialization quota
  /// drain over the min(m, k) most probable specializations, global
  /// fill, final order by overall utility (ties: candidate index).
  /// Non-destructive and callable repeatedly — Extend(k → k+Δ) is
  /// Finalize(k+Δ) on the same state. Requires k ≤ max_k (clamped).
  void Finalize(size_t k, std::vector<size_t>* out) const;

  /// Candidates offered so far (Push* + Skip).
  size_t offered() const { return offered_; }
  /// Candidates actually materialized into the heaps. Finalize never
  /// moves this — the bench's no-recompute assertion for Extend.
  size_t pushed() const { return pushed_; }
  /// Candidates skipped by the pruning bound.
  size_t pruned() const { return pruned_; }
  size_t max_k() const { return max_k_; }

  /// Entries currently held across all heaps.
  size_t retained() const;
  /// The configured cap: max_k + Σ_j (⌊max_k·P_j⌋ + 1) over retained
  /// specializations. retained() ≤ retained_bound() is the bounded-
  /// state invariant, independent of how many candidates streamed by.
  size_t retained_bound() const;

 private:
  /// One retained specialization: original index, probability, and its
  /// bounded heap M_q′.
  struct SpecSlot {
    size_t spec = 0;
    double prob = 0.0;
    BoundedTopK<size_t> heap;
  };

  double lambda_ = 0.0;
  size_t num_specializations_ = 0;
  size_t max_k_ = 0;
  double prob_sum_ = 0.0;

  /// [m] probabilities, copied so the caller's buffer can die after
  /// Begin (the stream outlives per-request store reads).
  std::vector<double> probability_;
  /// Retained specializations, probability-descending; only the first
  /// `retained_specs_` slots are live (grow-only, like SelectScratch's
  /// per_spec, to keep heap allocations across requests).
  std::vector<SpecSlot> slots_;
  size_t retained_specs_ = 0;
  /// The global heap M, capacity max_k.
  BoundedTopK<size_t> global_;

  size_t offered_ = 0;
  size_t pushed_ = 0;
  size_t pruned_ = 0;

  /// Scratch for Begin's specialization sort.
  std::vector<size_t> order_;
};

/// Diversifier facade over StreamingTopK: SelectInto streams the view's
/// candidates (in index order, pruning with the relevance bound) and
/// Finalizes at k. Selections are bit-identical to OptSelect for the
/// same view; registered in the factory as "streaming". Unlike the
/// other backends it keeps a small amount of call-local state (the
/// stream itself), so it allocates beyond the scratch — callers that
/// need allocation-free steady state (the serving cold path) drive a
/// per-worker StreamingTopK directly instead.
class StreamingDiversifier : public Diversifier {
 public:
  std::string name() const override { return "StreamingOptSelect"; }

  void SelectInto(const DiversificationView& view,
                  const DiversifyParams& params, SelectScratch* scratch,
                  std::vector<size_t>* out) const override;
};

}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_STREAMING_SELECT_H_
