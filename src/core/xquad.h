// xQuAD (Santos et al., WWW'10) adapted to query-log specializations —
// the xQuAD Diversify(k) problem of Section 3.1.2.
//
// Greedy selection: at each step pick the candidate d ∈ R_q \ S maximizing
//   (1−λ)·P(d|q) + λ·P(d, S̄|q)                                   (Eq. 5)
//   P(d, S̄|q) = Σ_{q′∈S_q} P(q′|q)·P(d|q′)·Π_{d_j∈S}(1 − P(d_j|q′)) (Eq. 6)
// where P(d|q′) is measured by Ũ(d|R_q′) ("we measure P(dj|q′) using
// Ũ(d|R_q′)", Section 3.1.2).
//
// Cost: k iterations × n candidates × |S_q| ⇒ O(n·k) with |S_q| constant
// (Table 1).

#ifndef OPTSELECT_CORE_XQUAD_H_
#define OPTSELECT_CORE_XQUAD_H_

#include <string>
#include <vector>

#include "core/diversifier.h"

namespace optselect {
namespace core {

/// Greedy xQuAD re-ranker.
class XQuadDiversifier : public Diversifier {
 public:
  std::string name() const override { return "xQuAD"; }

  void SelectInto(const DiversificationView& view,
                  const DiversifyParams& params, SelectScratch* scratch,
                  std::vector<size_t>* out) const override;
};

}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_XQUAD_H_
