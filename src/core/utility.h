// Results' utility (Definition 2) and its normalized, thresholded form.
//
//   U(d|R_q′)  = Σ_{d′ ∈ R_q′} (1 − δ(d, d′)) / rank(d′, R_q′)
//   Ũ(d|R_q′)  = U(d|R_q′) / H_{|R_q′|}            ∈ [0, 1]
//
// with δ(d₁, d₂) = 1 − cosine(d₁, d₂) (Equation 2). The evaluation in
// Section 5 additionally forces Ũ to 0 when it falls below a threshold c;
// the threshold is applied here so every algorithm sees the same utility.

#ifndef OPTSELECT_CORE_UTILITY_H_
#define OPTSELECT_CORE_UTILITY_H_

#include <cstddef>
#include <vector>

#include "core/candidate.h"

namespace optselect {
namespace core {

/// Dense n×m matrix of Ũ(d_i | R_{q′_j}) values.
class UtilityMatrix {
 public:
  UtilityMatrix() = default;
  UtilityMatrix(size_t n_candidates, size_t n_specializations)
      : n_(n_candidates),
        m_(n_specializations),
        values_(n_candidates * n_specializations, 0.0) {}

  double At(size_t candidate, size_t specialization) const {
    return values_[candidate * m_ + specialization];
  }
  void Set(size_t candidate, size_t specialization, double v) {
    values_[candidate * m_ + specialization] = v;
  }

  size_t num_candidates() const { return n_; }
  size_t num_specializations() const { return m_; }

  /// Raw row-major [candidate][specialization] storage — the span a
  /// zero-copy DiversificationView points at.
  const double* data() const { return values_.data(); }

  /// Row view helper: sum over specializations of P(q′|q)·Ũ(d|R_q′),
  /// evaluated by the dispatched kernel's canonical blocked reduction
  /// (core/kernels). Takes a raw pointer so plan- and mmap-backed
  /// probability columns feed it without a vector copy; `probs` must
  /// have at least num_specializations() elements.
  double WeightedRowSum(size_t candidate, const double* probs) const;

  /// Forces every value below `c` to 0 in place, allocation-free.
  /// Thresholding is idempotent and monotone in c (re-applying a larger
  /// cutoff to an already-thresholded matrix equals thresholding the
  /// original), so ascending sweeps can reuse one working copy.
  void ThresholdInPlace(double c);

  /// Copy with every value below `c` forced to 0 — lets experiments sweep
  /// the threshold (Table 3) without recomputing the cosine sums. Prefer
  /// ThresholdInPlace when the pre-threshold values are not needed again.
  UtilityMatrix Thresholded(double c) const;

 private:
  size_t n_ = 0;
  size_t m_ = 0;
  std::vector<double> values_;  // row-major [candidate][specialization]
};

/// Computes utilities from surrogate vectors.
class UtilityComputer {
 public:
  struct Options {
    /// The threshold c of Section 5: Ũ values below c are forced to 0.
    double threshold_c = 0.0;
  };

  UtilityComputer() : UtilityComputer(Options{}) {}
  explicit UtilityComputer(Options options) : options_(options) {}

  /// Raw U(d|R_q′) for one document surrogate against one result list.
  static double RawUtility(const text::TermVector& doc,
                           const std::vector<text::TermVector>& rq_prime);

  /// Span overload for mmap-backed result lists (store format v4): the
  /// same ascending-rank sum over kernels::CosineAosSoa, bit-identical
  /// to the vector overload on equal term/weight/norm bits.
  static double RawUtility(const text::TermVector& doc,
                           const text::TermVectorSpan* rq_prime,
                           size_t count);

  /// Normalized Ũ = U / H_{|R_q′|}, thresholded at c.
  double NormalizedUtility(
      const text::TermVector& doc,
      const std::vector<text::TermVector>& rq_prime) const;

  /// Full matrix for a problem instance: O(n · m · |R_q′|) cosines.
  UtilityMatrix Compute(const DiversificationInput& input) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_UTILITY_H_
