// Maximal Marginal Relevance (Carbonell & Goldstein, SIGIR'98) — the
// pioneering diversification method the paper's related work opens with
// (reference [8]). Included as an additional baseline: it needs no mined
// specializations, only pairwise candidate similarity.
//
// Greedy: at each step pick
//   argmax_{d ∈ R\S} [ λ·rel(d) − (1−λ)·max_{d_j∈S} sim(d, d_j) ].
//
// Cost: O(n·k) with incremental max-similarity bookkeeping.

#ifndef OPTSELECT_CORE_MMR_H_
#define OPTSELECT_CORE_MMR_H_

#include <string>
#include <vector>

#include "core/diversifier.h"

namespace optselect {
namespace core {

/// MMR re-ranker. Ignores the specialization profiles and the utility
/// matrix (passes are accepted for interface compatibility).
class MmrDiversifier : public Diversifier {
 public:
  std::string name() const override { return "MMR"; }

  std::vector<size_t> Select(const DiversificationInput& input,
                             const UtilityMatrix& utilities,
                             const DiversifyParams& params) const override;
};

}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_MMR_H_
