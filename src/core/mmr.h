// Maximal Marginal Relevance (Carbonell & Goldstein, SIGIR'98) — the
// pioneering diversification method the paper's related work opens with
// (reference [8]). Included as an additional baseline: it needs no mined
// specializations, only pairwise candidate similarity.
//
// Greedy: at each step pick
//   argmax_{d ∈ R\S} [ λ·rel(d) − (1−λ)·max_{d_j∈S} sim(d, d_j) ].
//
// Cost: O(n·k) with incremental max-similarity bookkeeping.

#ifndef OPTSELECT_CORE_MMR_H_
#define OPTSELECT_CORE_MMR_H_

#include <string>
#include <vector>

#include "core/diversifier.h"

namespace optselect {
namespace core {

/// MMR re-ranker. Ignores the specialization profiles and the utility
/// matrix (passes are accepted for interface compatibility). Pairwise
/// similarity needs the candidate surrogate vectors, so the view must
/// carry `candidates` (true on the shim path); on a vector-less view
/// (e.g. a compiled query plan) similarity degrades to 0 and MMR
/// reduces to top-k by relevance.
class MmrDiversifier : public Diversifier {
 public:
  std::string name() const override { return "MMR"; }

  void SelectInto(const DiversificationView& view,
                  const DiversifyParams& params, SelectScratch* scratch,
                  std::vector<size_t>* out) const override;
};

}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_MMR_H_
