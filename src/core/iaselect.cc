#include "core/iaselect.h"

#include <algorithm>

namespace optselect {
namespace core {

double IaSelectDiversifier::Objective(const DiversificationInput& input,
                                      const UtilityMatrix& utilities,
                                      const std::vector<size_t>& selection) {
  double total = 0.0;
  for (size_t j = 0; j < input.specializations.size(); ++j) {
    double miss = 1.0;
    for (size_t i : selection) miss *= 1.0 - utilities.At(i, j);
    total += input.specializations[j].probability * (1.0 - miss);
  }
  return total;
}

void IaSelectDiversifier::SelectInto(const DiversificationView& view,
                                     const DiversifyParams& params,
                                     SelectScratch* scratch,
                                     std::vector<size_t>* out) const {
  out->clear();
  const size_t n = view.num_candidates;
  const size_t m = view.num_specializations;
  const size_t k = std::min(params.k, n);
  if (k == 0) return;

  scratch->coverage.assign(m, 1.0);  // Π (1 − Ũ) over current S
  scratch->taken.assign(n, 0);
  std::vector<size_t>& selected = *out;
  selected.reserve(k);

  for (size_t step = 0; step < k; ++step) {
    double best_gain = -1.0;
    size_t best = static_cast<size_t>(-1);
    for (size_t i = 0; i < n; ++i) {
      if (scratch->taken[i]) continue;
      double gain = 0.0;
      for (size_t j = 0; j < m; ++j) {
        gain += view.probability[j] * scratch->coverage[j] *
                view.UtilityAt(i, j);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == static_cast<size_t>(-1)) break;
    scratch->taken[best] = 1;
    selected.push_back(best);
    for (size_t j = 0; j < m; ++j) {
      scratch->coverage[j] *= 1.0 - view.UtilityAt(best, j);
    }
  }
}

}  // namespace core
}  // namespace optselect
