#include "core/iaselect.h"

#include <algorithm>

namespace optselect {
namespace core {

double IaSelectDiversifier::Objective(const DiversificationInput& input,
                                      const UtilityMatrix& utilities,
                                      const std::vector<size_t>& selection) {
  double total = 0.0;
  for (size_t j = 0; j < input.specializations.size(); ++j) {
    double miss = 1.0;
    for (size_t i : selection) miss *= 1.0 - utilities.At(i, j);
    total += input.specializations[j].probability * (1.0 - miss);
  }
  return total;
}

std::vector<size_t> IaSelectDiversifier::Select(
    const DiversificationInput& input, const UtilityMatrix& utilities,
    const DiversifyParams& params) const {
  const size_t n = input.candidates.size();
  const size_t m = input.specializations.size();
  const size_t k = std::min(params.k, n);
  if (k == 0) return {};

  std::vector<double> coverage(m, 1.0);  // Π (1 − Ũ) over current S
  std::vector<char> taken(n, 0);
  std::vector<size_t> selected;
  selected.reserve(k);

  for (size_t step = 0; step < k; ++step) {
    double best_gain = -1.0;
    size_t best = static_cast<size_t>(-1);
    for (size_t i = 0; i < n; ++i) {
      if (taken[i]) continue;
      double gain = 0.0;
      for (size_t j = 0; j < m; ++j) {
        gain += input.specializations[j].probability * coverage[j] *
                utilities.At(i, j);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == static_cast<size_t>(-1)) break;
    taken[best] = 1;
    selected.push_back(best);
    for (size_t j = 0; j < m; ++j) {
      coverage[j] *= 1.0 - utilities.At(best, j);
    }
  }
  return selected;
}

}  // namespace core
}  // namespace optselect
