// OptSelect — Algorithm 2, solving MaxUtility Diversify(k) (Section 3.1.3).
//
// The objective (Eq. 7) is additive over selected documents:
//   Ũ(S|q) = Σ_{d∈S} Ũ(d|q),
//   Ũ(d|q) = Σ_{q′∈S_q} (1−λ)·P(d|q) + λ·P(q′|q)·Ũ(d|R_q′)
//          = (1−λ)·|S_q|·P(d|q) + λ·Σ_{q′} P(q′|q)·Ũ(d|R_q′),
// subject to proportional coverage: |R_q ⋈ q′| ≥ ⌊k·P(q′|q)⌋ where
// R_q ⋈ q′ = {d ∈ S : U(d|R_q′) > 0}.
//
// One pass pushes every candidate into the per-specialization bounded
// heaps M_q′ (capacity ⌊k·P(q′|q)⌋+1, only candidates useful for q′) and
// into the global heap M (capacity k), all keyed by the overall utility
// Ũ(d|q). Selection then drains each M_q′ up to its quota — the printed
// pseudocode pops a single element per specialization; we pop up to
// ⌊k·P(q′|q)⌋ (and at least one) to honor the coverage constraint stated
// in the problem definition — and fills the remainder of S from M.
//
// Cost: n·|S_q| bounded-heap pushes of log₂k each ⇒ O(n·|S_q|·log₂k);
// with |S_q| constant, O(n·log₂k) (Table 1).

#ifndef OPTSELECT_CORE_OPTSELECT_H_
#define OPTSELECT_CORE_OPTSELECT_H_

#include <string>
#include <vector>

#include "core/diversifier.h"

namespace optselect {
namespace core {

/// The paper's algorithm. Deterministic: ties break on candidate rank.
class OptSelectDiversifier : public Diversifier {
 public:
  std::string name() const override { return "OptSelect"; }

  void SelectInto(const DiversificationView& view,
                  const DiversifyParams& params, SelectScratch* scratch,
                  std::vector<size_t>* out) const override;

  /// The overall per-document utility Ũ(d|q) of Eq. 9 for candidate i.
  /// Exposed for tests and for the Figure 1 utility-ratio experiment.
  static double OverallUtility(const DiversificationInput& input,
                               const UtilityMatrix& utilities, size_t i,
                               double lambda);
};

}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_OPTSELECT_H_
