// Construction of diversifiers by name.

#ifndef OPTSELECT_CORE_FACTORY_H_
#define OPTSELECT_CORE_FACTORY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/diversifier.h"
#include "util/status.h"

namespace optselect {
namespace core {

/// Names accepted by MakeDiversifier.
std::vector<std::string> AvailableDiversifiers();

/// Creates a diversifier by case-insensitive name ("optselect", "xquad",
/// "iaselect", "mmr"). Returns an error status for unknown names.
util::Result<std::unique_ptr<Diversifier>> MakeDiversifier(
    std::string_view name);

}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_FACTORY_H_
