// Common interface of the diversification algorithms.

#ifndef OPTSELECT_CORE_DIVERSIFIER_H_
#define OPTSELECT_CORE_DIVERSIFIER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/candidate.h"
#include "core/select_view.h"
#include "core/utility.h"

namespace optselect {
namespace core {

/// Algorithm parameters shared across methods.
struct DiversifyParams {
  /// Size of the diversified result list S.
  size_t k = 10;
  /// Relevance/diversity mixing parameter λ (xQuAD Eq. 5, MaxUtility
  /// Eq. 7). The paper uses 0.15, "the value maximizing α-NDCG@20 in
  /// [24]".
  double lambda = 0.15;
};

/// A diversification algorithm: selects (and orders) k candidates.
class Diversifier {
 public:
  virtual ~Diversifier() = default;

  /// Human-readable algorithm name (e.g. "OptSelect").
  virtual std::string name() const = 0;

  /// Selects min(k, n) candidate indices in output-ranking order into
  /// `*out` (cleared first). Reads only through `view` and allocates
  /// only through `scratch`, so a worker that reuses one scratch and
  /// one output vector runs allocation-free after warmup. `scratch`
  /// must not be shared concurrently; its contents are clobbered.
  virtual void SelectInto(const DiversificationView& view,
                          const DiversifyParams& params,
                          SelectScratch* scratch,
                          std::vector<size_t>* out) const = 0;

  /// Legacy value-returning form: builds a view over the input pair
  /// with a call-local scratch and forwards to SelectInto. Selections
  /// are bit-identical to SelectInto over the same data; existing
  /// pipeline/tool/experiment call sites keep working unchanged.
  std::vector<size_t> Select(const DiversificationInput& input,
                             const UtilityMatrix& utilities,
                             const DiversifyParams& params) const;
};

}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_DIVERSIFIER_H_
