// Zero-copy selection inputs and per-worker scratch.
//
// The diversification algorithms never need to *own* a problem instance:
// selection reads candidate relevances, specialization probabilities and
// the (already thresholded) utility matrix, all of which either live in a
// DiversificationInput + UtilityMatrix (the offline/experiment path) or
// in a store-compiled QueryPlan's flat blocks (the serving path). A
// DiversificationView is a non-owning bundle of spans over whichever
// backing storage is at hand; a SelectScratch is the reusable working
// memory (heaps, taken-bitmap, overall vector) a worker thread keeps
// across requests so the hot path allocates nothing.

#ifndef OPTSELECT_CORE_SELECT_VIEW_H_
#define OPTSELECT_CORE_SELECT_VIEW_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/bounded_heap.h"
#include "core/candidate.h"
#include "core/kernels/kernels.h"

namespace optselect {
namespace core {

class UtilityMatrix;
class SelectScratch;

/// Non-owning view of one diversification problem instance. All spans
/// must stay valid for the duration of a SelectInto call; the view
/// itself is trivially copyable.
struct DiversificationView {
  size_t num_candidates = 0;      ///< n = |R_q|
  size_t num_specializations = 0; ///< m = |S_q|

  /// [n] normalized relevance P(d|q), candidate rank order.
  const double* relevance = nullptr;
  /// [m] specialization probabilities P(q′|q).
  const double* probability = nullptr;
  /// [n·m] row-major thresholded utilities Ũ(d_i|R_{q′_j}).
  const double* utilities = nullptr;
  /// Optional [n] precomputed Σ_j P(q′_j|q)·Ũ(d_i|R_{q′_j}) — the
  /// λ-independent half of Eq. 9, compiled into store-v3 query plans.
  /// When null, OverallUtility falls back to an O(m) row scan.
  const double* weighted = nullptr;
  /// Optional [m] specialization indices sorted by probability
  /// descending (ties: index ascending) — compiled into query plans so
  /// selection skips the per-request sort. When null, algorithms sort
  /// into their scratch.
  const uint32_t* spec_order = nullptr;
  /// Optional [n] candidate records; carries the surrogate term vectors
  /// that pairwise-distance algorithms (MMR) need. Null on the
  /// plan-compiled path, which stores no candidate vectors.
  const Candidate* candidates = nullptr;

  double UtilityAt(size_t candidate, size_t specialization) const {
    return utilities[candidate * num_specializations + specialization];
  }

  /// The overall per-document utility Ũ(d|q) of Eq. 9:
  /// (1−λ)·m·P(d|q) + λ·Σ_j P(q′_j|q)·Ũ(d|R_{q′_j}). Uses the
  /// precomputed weighted block when present; the fallback row scan
  /// runs the dispatched kernel's canonical blocked reduction — the
  /// same order the plan compiler and every batch scan use, so all
  /// paths are bit-identical.
  double OverallUtility(size_t candidate, double lambda) const {
    double w = weighted != nullptr
                   ? weighted[candidate]
                   : kernels::WeightedRowSum(
                         utilities + candidate * num_specializations,
                         probability, num_specializations);
    return kernels::CombineOverall(
        relevance[candidate], w, lambda,
        static_cast<double>(num_specializations));
  }
};

/// Reusable working memory for SelectInto. One instance per worker
/// thread; safe to reuse across calls and across algorithms (each call
/// re-Prepares exactly the state it touches). Never shared concurrently.
class SelectScratch {
 public:
  // --- OptSelect stage state (core/optselect_stages.h) ---------------
  /// The global heap M of Algorithm 2 (capacity k).
  BoundedTopK<size_t> global{0};
  /// One M_q′ per retained specialization (capacity ⌊k·P⌋+1).
  std::vector<BoundedTopK<size_t>> per_spec;
  /// Retained specialization indices, probability-descending, ≤ k.
  std::vector<size_t> spec_order;
  /// ⌊k·P(q′|q)⌋ per retained specialization.
  std::vector<size_t> quota;

  // --- shared per-candidate / per-specialization buffers -------------
  /// [n] overall utilities (OptSelect); max-similarity-to-selected (MMR).
  std::vector<double> overall;
  /// [n] selected-bitmap shared by every algorithm.
  std::vector<char> taken;
  /// [m] coverage products Π(1−Ũ) (xQuAD, IASelect).
  std::vector<double> coverage;

  // --- shim gather buffers (MakeView) ---------------------------------
  /// [n] relevances gathered out of DiversificationInput's AoS.
  std::vector<double> relevance;
  /// [m] probabilities gathered out of the specialization profiles.
  std::vector<double> probability;

  /// Caller-owned reusable output buffer — SelectInto writes into any
  /// vector; workers that want zero allocation pass this one.
  std::vector<size_t> picks;
};

/// Sorts specialization indices by probability descending, ties by
/// index ascending — Section 3.1.3's "k most probable" order. The one
/// comparator shared by the per-request sort and the store-time plan
/// compiler, so compiled spec_order blocks match serve-time sorts
/// exactly.
template <typename Index>
void SortSpecOrderByProbability(const double* probability,
                                std::vector<Index>* order) {
  std::sort(order->begin(), order->end(), [probability](Index a, Index b) {
    double pa = probability[a];
    double pb = probability[b];
    if (pa != pb) return pa > pb;
    return a < b;
  });
}

/// Builds a view over a DiversificationInput + UtilityMatrix pair,
/// gathering the AoS relevances/probabilities into `scratch`'s flat
/// buffers (the spans point into the scratch, so the scratch must
/// outlive the view). This is the legacy-shim path; compiled query
/// plans build their views directly over stored blocks with no copy.
DiversificationView MakeView(const DiversificationInput& input,
                             const UtilityMatrix& utilities,
                             SelectScratch* scratch);

}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_SELECT_VIEW_H_
