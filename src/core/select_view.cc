#include "core/select_view.h"

#include "core/utility.h"

namespace optselect {
namespace core {

DiversificationView MakeView(const DiversificationInput& input,
                             const UtilityMatrix& utilities,
                             SelectScratch* scratch) {
  const size_t n = input.candidates.size();
  const size_t m = input.specializations.size();
  scratch->relevance.resize(n);
  for (size_t i = 0; i < n; ++i) {
    scratch->relevance[i] = input.candidates[i].relevance;
  }
  scratch->probability.resize(m);
  for (size_t j = 0; j < m; ++j) {
    scratch->probability[j] = input.specializations[j].probability;
  }

  DiversificationView view;
  view.num_candidates = n;
  view.num_specializations = m;
  view.relevance = scratch->relevance.data();
  view.probability = scratch->probability.data();
  view.utilities = utilities.data();
  view.candidates = input.candidates.data();
  return view;
}

}  // namespace core
}  // namespace optselect
