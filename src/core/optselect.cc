#include "core/optselect.h"

#include <algorithm>
#include <cmath>

#include "core/optselect_stages.h"

namespace optselect {
namespace core {

namespace internal {

void PrepareHeaps(const DiversificationView& view, size_t k,
                  SelectScratch* scratch) {
  const size_t m = view.num_specializations;

  // "if |S_q| > k we select from S_q the k specializations with the
  // largest probabilities" (Section 3.1.3). A compiled plan carries the
  // full probability-sorted order; otherwise sort here.
  scratch->spec_order.resize(m);
  if (view.spec_order != nullptr) {
    for (size_t j = 0; j < m; ++j) {
      scratch->spec_order[j] = view.spec_order[j];
    }
  } else {
    for (size_t j = 0; j < m; ++j) scratch->spec_order[j] = j;
    SortSpecOrderByProbability(view.probability, &scratch->spec_order);
  }
  if (scratch->spec_order.size() > k) scratch->spec_order.resize(k);

  const size_t retained = scratch->spec_order.size();
  scratch->global.Reset(k);
  scratch->quota.resize(retained);
  if (scratch->per_spec.size() < retained) {
    scratch->per_spec.resize(retained);
  }
  for (size_t jj = 0; jj < retained; ++jj) {
    double p = view.probability[scratch->spec_order[jj]];
    scratch->quota[jj] =
        static_cast<size_t>(std::floor(static_cast<double>(k) * p));
    scratch->per_spec[jj].Reset(scratch->quota[jj] + 1);
  }
}

void ScanRange(const DiversificationView& view, const double* overall,
               size_t begin, size_t end, SelectScratch* scratch) {
  const size_t retained = scratch->spec_order.size();
  for (size_t i = begin; i < end; ++i) {
    scratch->global.Push(overall[i], i);
    for (size_t jj = 0; jj < retained; ++jj) {
      if (view.UtilityAt(i, scratch->spec_order[jj]) > 0.0) {
        scratch->per_spec[jj].Push(overall[i], i);
      }
    }
  }
}

void DrainAndFill(const double* overall, size_t n, size_t k,
                  SelectScratch* scratch, std::vector<size_t>* out) {
  std::vector<size_t>& selected = *out;
  selected.clear();
  selected.reserve(k);
  scratch->taken.assign(n, 0);

  // Drain per-specialization heaps: quota each (≥ 1 for coverage), most
  // probable specialization first (Algorithm 2 lines 07-09 generalized to
  // the ⌊k·P⌋ coverage constraint).
  for (size_t jj = 0;
       jj < scratch->spec_order.size() && selected.size() < k; ++jj) {
    size_t want = std::max<size_t>(scratch->quota[jj], 1);
    size_t got = 0;
    for (const auto& entry : scratch->per_spec[jj].SortDescending()) {
      if (got >= want || selected.size() >= k) break;
      if (scratch->taken[entry.value]) {
        // A document useful for several specializations counts for each
        // of them; it consumes this specialization's quota without being
        // re-added.
        ++got;
        continue;
      }
      scratch->taken[entry.value] = 1;
      selected.push_back(entry.value);
      ++got;
    }
  }

  // Fill the remainder from the global heap (Algorithm 2 lines 10-12).
  for (const auto& entry : scratch->global.SortDescending()) {
    if (selected.size() >= k) break;
    if (scratch->taken[entry.value]) continue;
    scratch->taken[entry.value] = 1;
    selected.push_back(entry.value);
  }

  // The SERP is ordered by overall utility (ties: original rank).
  std::sort(selected.begin(), selected.end(), [&](size_t a, size_t b) {
    if (overall[a] != overall[b]) return overall[a] > overall[b];
    return a < b;
  });
}

}  // namespace internal

double OptSelectDiversifier::OverallUtility(
    const DiversificationInput& input, const UtilityMatrix& utilities,
    size_t i, double lambda) {
  const size_t m = input.specializations.size();
  double weighted = 0.0;
  for (size_t j = 0; j < m; ++j) {
    weighted += input.specializations[j].probability * utilities.At(i, j);
  }
  return (1.0 - lambda) * static_cast<double>(m) *
             input.candidates[i].relevance +
         lambda * weighted;
}

void OptSelectDiversifier::SelectInto(const DiversificationView& view,
                                      const DiversifyParams& params,
                                      SelectScratch* scratch,
                                      std::vector<size_t>* out) const {
  out->clear();
  const size_t n = view.num_candidates;
  const size_t k = std::min(params.k, n);
  if (k == 0) return;

  // Ũ(d|q) for every candidate — one O(m) row scan each, or a single
  // read when the view carries the compiled weighted block.
  scratch->overall.resize(n);
  for (size_t i = 0; i < n; ++i) {
    scratch->overall[i] = view.OverallUtility(i, params.lambda);
  }

  internal::PrepareHeaps(view, k, scratch);
  internal::ScanRange(view, scratch->overall.data(), 0, n, scratch);
  internal::DrainAndFill(scratch->overall.data(), n, k, scratch, out);
}

}  // namespace core
}  // namespace optselect
