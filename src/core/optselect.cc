#include "core/optselect.h"

#include <algorithm>
#include <cmath>

#include "core/optselect_stages.h"

namespace optselect {
namespace core {

namespace internal {

OptSelectHeaps MakeHeaps(const DiversificationInput& input, size_t k) {
  OptSelectHeaps heaps(k);
  const size_t m = input.specializations.size();

  // "if |S_q| > k we select from S_q the k specializations with the
  // largest probabilities" (Section 3.1.3).
  heaps.spec_order.resize(m);
  for (size_t j = 0; j < m; ++j) heaps.spec_order[j] = j;
  std::sort(heaps.spec_order.begin(), heaps.spec_order.end(),
            [&](size_t a, size_t b) {
              double pa = input.specializations[a].probability;
              double pb = input.specializations[b].probability;
              if (pa != pb) return pa > pb;
              return a < b;
            });
  if (heaps.spec_order.size() > k) heaps.spec_order.resize(k);

  heaps.quota.resize(heaps.spec_order.size());
  heaps.per_spec.reserve(heaps.spec_order.size());
  for (size_t jj = 0; jj < heaps.spec_order.size(); ++jj) {
    double p = input.specializations[heaps.spec_order[jj]].probability;
    heaps.quota[jj] =
        static_cast<size_t>(std::floor(static_cast<double>(k) * p));
    heaps.per_spec.emplace_back(heaps.quota[jj] + 1);
  }
  return heaps;
}

void ScanRange(const DiversificationInput& input,
               const UtilityMatrix& utilities,
               const std::vector<double>& overall, size_t begin, size_t end,
               OptSelectHeaps* heaps) {
  (void)input;
  for (size_t i = begin; i < end; ++i) {
    heaps->global.Push(overall[i], i);
    for (size_t jj = 0; jj < heaps->spec_order.size(); ++jj) {
      if (utilities.At(i, heaps->spec_order[jj]) > 0.0) {
        heaps->per_spec[jj].Push(overall[i], i);
      }
    }
  }
}

std::vector<size_t> DrainAndFill(const std::vector<double>& overall,
                                 size_t n, size_t k,
                                 OptSelectHeaps* heaps) {
  std::vector<size_t> selected;
  selected.reserve(k);
  std::vector<char> taken(n, 0);

  // Drain per-specialization heaps: quota each (≥ 1 for coverage), most
  // probable specialization first (Algorithm 2 lines 07-09 generalized to
  // the ⌊k·P⌋ coverage constraint).
  for (size_t jj = 0;
       jj < heaps->spec_order.size() && selected.size() < k; ++jj) {
    size_t want = std::max<size_t>(heaps->quota[jj], 1);
    size_t got = 0;
    for (auto& entry : heaps->per_spec[jj].ExtractDescending()) {
      if (got >= want || selected.size() >= k) break;
      if (taken[entry.value]) {
        // A document useful for several specializations counts for each
        // of them; it consumes this specialization's quota without being
        // re-added.
        ++got;
        continue;
      }
      taken[entry.value] = 1;
      selected.push_back(entry.value);
      ++got;
    }
  }

  // Fill the remainder from the global heap (Algorithm 2 lines 10-12).
  for (auto& entry : heaps->global.ExtractDescending()) {
    if (selected.size() >= k) break;
    if (taken[entry.value]) continue;
    taken[entry.value] = 1;
    selected.push_back(entry.value);
  }

  // The SERP is ordered by overall utility (ties: original rank).
  std::sort(selected.begin(), selected.end(), [&](size_t a, size_t b) {
    if (overall[a] != overall[b]) return overall[a] > overall[b];
    return a < b;
  });
  return selected;
}

}  // namespace internal

double OptSelectDiversifier::OverallUtility(
    const DiversificationInput& input, const UtilityMatrix& utilities,
    size_t i, double lambda) {
  const size_t m = input.specializations.size();
  double weighted = 0.0;
  for (size_t j = 0; j < m; ++j) {
    weighted += input.specializations[j].probability * utilities.At(i, j);
  }
  return (1.0 - lambda) * static_cast<double>(m) *
             input.candidates[i].relevance +
         lambda * weighted;
}

std::vector<size_t> OptSelectDiversifier::Select(
    const DiversificationInput& input, const UtilityMatrix& utilities,
    const DiversifyParams& params) const {
  const size_t n = input.candidates.size();
  const size_t k = std::min(params.k, n);
  if (k == 0) return {};

  // Ũ(d|q) for every candidate — one O(m) row scan each.
  std::vector<double> overall(n);
  for (size_t i = 0; i < n; ++i) {
    overall[i] = OverallUtility(input, utilities, i, params.lambda);
  }

  internal::OptSelectHeaps heaps = internal::MakeHeaps(input, k);
  internal::ScanRange(input, utilities, overall, 0, n, &heaps);
  return internal::DrainAndFill(overall, n, k, &heaps);
}

}  // namespace core
}  // namespace optselect
