#include "core/optselect.h"

#include <algorithm>
#include <cmath>

#include "core/kernels/kernels.h"
#include "core/optselect_stages.h"

namespace optselect {
namespace core {

namespace internal {

void PrepareHeaps(const DiversificationView& view, size_t k,
                  SelectScratch* scratch) {
  const size_t m = view.num_specializations;

  // "if |S_q| > k we select from S_q the k specializations with the
  // largest probabilities" (Section 3.1.3). A compiled plan carries the
  // full probability-sorted order; otherwise sort here.
  scratch->spec_order.resize(m);
  if (view.spec_order != nullptr) {
    for (size_t j = 0; j < m; ++j) {
      scratch->spec_order[j] = view.spec_order[j];
    }
  } else {
    for (size_t j = 0; j < m; ++j) scratch->spec_order[j] = j;
    SortSpecOrderByProbability(view.probability, &scratch->spec_order);
  }
  if (scratch->spec_order.size() > k) scratch->spec_order.resize(k);

  const size_t retained = scratch->spec_order.size();
  scratch->global.Reset(k);
  scratch->quota.resize(retained);
  if (scratch->per_spec.size() < retained) {
    scratch->per_spec.resize(retained);
  }
  for (size_t jj = 0; jj < retained; ++jj) {
    double p = view.probability[scratch->spec_order[jj]];
    scratch->quota[jj] =
        static_cast<size_t>(std::floor(static_cast<double>(k) * p));
    scratch->per_spec[jj].Reset(scratch->quota[jj] + 1);
  }
}

void ScanRange(const DiversificationView& view, const double* overall,
               size_t begin, size_t end, SelectScratch* scratch) {
  const size_t retained = scratch->spec_order.size();
  for (size_t i = begin; i < end; ++i) {
    scratch->global.Push(overall[i], i);
    for (size_t jj = 0; jj < retained; ++jj) {
      if (view.UtilityAt(i, scratch->spec_order[jj]) > 0.0) {
        scratch->per_spec[jj].Push(overall[i], i);
      }
    }
  }
}

void DrainAndFill(const double* overall, size_t n, size_t k,
                  SelectScratch* scratch, std::vector<size_t>* out) {
  std::vector<size_t>& selected = *out;
  selected.clear();
  selected.reserve(k);
  scratch->taken.assign(n, 0);

  // Drain per-specialization heaps: quota each (≥ 1 for coverage), most
  // probable specialization first (Algorithm 2 lines 07-09 generalized to
  // the ⌊k·P⌋ coverage constraint).
  for (size_t jj = 0;
       jj < scratch->spec_order.size() && selected.size() < k; ++jj) {
    size_t want = std::max<size_t>(scratch->quota[jj], 1);
    size_t got = 0;
    for (const auto& entry : scratch->per_spec[jj].SortDescending()) {
      if (got >= want || selected.size() >= k) break;
      if (scratch->taken[entry.value]) {
        // A document useful for several specializations counts for each
        // of them; it consumes this specialization's quota without being
        // re-added.
        ++got;
        continue;
      }
      scratch->taken[entry.value] = 1;
      selected.push_back(entry.value);
      ++got;
    }
  }

  // Fill the remainder from the global heap (Algorithm 2 lines 10-12).
  for (const auto& entry : scratch->global.SortDescending()) {
    if (selected.size() >= k) break;
    if (scratch->taken[entry.value]) continue;
    scratch->taken[entry.value] = 1;
    selected.push_back(entry.value);
  }

  // The SERP is ordered by overall utility (ties: original rank).
  std::sort(selected.begin(), selected.end(), [&](size_t a, size_t b) {
    if (overall[a] != overall[b]) return overall[a] > overall[b];
    return a < b;
  });
}

}  // namespace internal

double OptSelectDiversifier::OverallUtility(
    const DiversificationInput& input, const UtilityMatrix& utilities,
    size_t i, double lambda) {
  // Gather the AoS probabilities, then evaluate through the same kernel
  // path every serving scan uses — this function is the reference
  // oracle of the differential tests, so it must share the canonical
  // blocked accumulation order bit for bit.
  const size_t m = input.specializations.size();
  double probs_stack[16];
  std::vector<double> probs_heap;
  double* probs = probs_stack;
  if (m > 16) {
    probs_heap.resize(m);
    probs = probs_heap.data();
  }
  for (size_t j = 0; j < m; ++j) {
    probs[j] = input.specializations[j].probability;
  }
  double weighted = utilities.WeightedRowSum(i, probs);
  return kernels::CombineOverall(input.candidates[i].relevance, weighted,
                                 lambda, static_cast<double>(m));
}

void OptSelectDiversifier::SelectInto(const DiversificationView& view,
                                      const DiversifyParams& params,
                                      SelectScratch* scratch,
                                      std::vector<size_t>* out) const {
  out->clear();
  const size_t n = view.num_candidates;
  const size_t k = std::min(params.k, n);
  if (k == 0) return;

  // Ũ(d|q) for every candidate in one batched kernel call — the
  // weighted-block combine when the view carries the compiled block,
  // the blocked row-sum scan otherwise. Both are bit-identical to
  // per-candidate view.OverallUtility calls.
  const size_t m = view.num_specializations;
  scratch->overall.resize(n);
  const kernels::Ops& ops = kernels::Active();
  if (view.weighted != nullptr) {
    ops.overall_from_weighted(view.relevance, view.weighted, n,
                              params.lambda, static_cast<double>(m),
                              scratch->overall.data());
  } else {
    ops.overall_from_rows(view.relevance, view.utilities,
                          view.probability, n, m, params.lambda,
                          scratch->overall.data());
  }

  internal::PrepareHeaps(view, k, scratch);
  internal::ScanRange(view, scratch->overall.data(), 0, n, scratch);
  internal::DrainAndFill(scratch->overall.data(), n, k, scratch, out);
}

}  // namespace core
}  // namespace optselect
