// Shared input model of all diversification algorithms.
//
// Diversification operates on:
//   R_q   — the candidate ranking returned for the ambiguous query q,
//           each candidate carrying a normalized relevance P(d|q) and a
//           term-vector surrogate (its snippet);
//   S_q   — the mined specializations with P(q′|q) and the surrogate
//           vectors of their result lists R_q′ (|R_q′| is small, e.g. 20).

#ifndef OPTSELECT_CORE_CANDIDATE_H_
#define OPTSELECT_CORE_CANDIDATE_H_

#include <string>
#include <vector>

#include "text/term_vector.h"
#include "util/types.h"

namespace optselect {
namespace core {

/// One candidate document d ∈ R_q.
struct Candidate {
  DocId doc = kInvalidDocId;
  /// Normalized relevance P(d|q) ∈ [0, 1] (retrieval score / max score).
  double relevance = 0.0;
  /// Surrogate (snippet) term vector used by the distance function δ.
  text::TermVector vector;
};

/// One mined specialization q′ ∈ S_q with its reference results R_q′.
struct SpecializationProfile {
  std::string query;
  /// P(q′|q) from Definition 1.
  double probability = 0.0;
  /// Surrogate vectors of R_q′ in rank order (index i ⇒ rank i+1).
  std::vector<text::TermVector> results;
};

/// Full problem instance.
struct DiversificationInput {
  std::string query;
  std::vector<Candidate> candidates;                  ///< R_q, rank order
  std::vector<SpecializationProfile> specializations; ///< S_q
};

}  // namespace core
}  // namespace optselect

#endif  // OPTSELECT_CORE_CANDIDATE_H_
