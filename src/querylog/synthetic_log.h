// Synthetic query-log generator — the stand-in for the AOL and MSN logs.
//
// The paper mines specializations from real logs; those logs are not
// redistributable, so this generator produces a log with the same
// *statistical interface*: per-user chronological query streams, sessions
// containing refinement chains (root query followed by one of its
// specializations), heavy-tailed query popularity, clicks, and background
// noise traffic. Because the planted TopicSpec ground truth is known,
// mining quality is measurable (precision/recall of Algorithm 1), which is
// impossible with opaque real logs.
//
// Two presets mimic the scale *shape* of the paper's datasets:
//   AolLikeConfig() — longer period, more users (AOL: 20M queries, 650k
//   users over 3 months), scaled down to run in seconds;
//   MsnLikeConfig() — one month, fewer users (MSN: 15M queries).

#ifndef OPTSELECT_QUERYLOG_SYNTHETIC_LOG_H_
#define OPTSELECT_QUERYLOG_SYNTHETIC_LOG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "querylog/query_log.h"
#include "synth/topic_spec.h"
#include "util/rng.h"

namespace optselect {
namespace querylog {

/// Knobs of the synthetic log generator.
struct SyntheticLogConfig {
  uint64_t seed = 42;
  /// Number of distinct simulated users.
  size_t num_users = 2000;
  /// Number of sessions to emit (each session yields 1..5 records).
  size_t num_sessions = 30000;
  /// Fraction of sessions that start with an ambiguous root query.
  double ambiguous_session_fraction = 0.35;
  /// Probability that a root query is refined into a specialization within
  /// the same session (the behaviour Appendix C's recall measure counts).
  double refinement_probability = 0.7;
  /// Probability of chaining one more specialization after the first.
  double extra_refinement_probability = 0.2;
  /// Probability that a result is clicked for a given record.
  double click_probability = 0.6;
  /// Results returned per query (|V_i|).
  size_t results_per_query = 10;
  /// Zipf skew over topics when picking the session's topic.
  double topic_zipf_skew = 1.0;
  /// Zipf skew over noise queries.
  double noise_zipf_skew = 1.2;
  /// Epoch of the first session (2006-03-01, matching AOL's period).
  int64_t start_timestamp = 1141171200;
  /// Mean in-session gap between consecutive queries, seconds.
  double in_session_gap_mean = 45.0;
  /// Minimum gap between two sessions of the same user, seconds.
  int64_t inter_session_gap = 6 * 3600;
};

/// AOL-shaped preset (3-month window, larger user base).
SyntheticLogConfig AolLikeConfig(uint64_t seed = 42);

/// MSN-shaped preset (1-month window, smaller user base, peakier topics).
SyntheticLogConfig MsnLikeConfig(uint64_t seed = 43);

/// Generator output: the log plus the ground truth used to create it.
struct SyntheticLogResult {
  QueryLog log;
  /// The planted topics (shared pointer semantics not needed: copied in).
  std::vector<synth::TopicSpec> topics;
  /// For each record index, the topic it was drawn from (-1 for noise).
  std::vector<int32_t> record_topic;
  /// Number of refinement events (root immediately followed, in-session,
  /// by one of its specializations) actually emitted — the denominator of
  /// the Appendix C recall measure.
  size_t refinement_events = 0;
};

/// Generates a log from planted topics plus noise queries.
class SyntheticLogGenerator {
 public:
  explicit SyntheticLogGenerator(SyntheticLogConfig config)
      : config_(config) {}

  /// Emits `config.num_sessions` sessions. `noise_queries` supplies the
  /// unambiguous background traffic (must be non-empty if
  /// ambiguous_session_fraction < 1).
  SyntheticLogResult Generate(
      const std::vector<synth::TopicSpec>& topics,
      const std::vector<std::string>& noise_queries) const;

  const SyntheticLogConfig& config() const { return config_; }

 private:
  SyntheticLogConfig config_;
};

}  // namespace querylog
}  // namespace optselect

#endif  // OPTSELECT_QUERYLOG_SYNTHETIC_LOG_H_
