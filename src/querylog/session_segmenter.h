// Logical-session extraction ("by processing a query log Q we obtain the
// set of logical user sessions exploited by our result diversification
// solution", Section 3).
//
// A user's chronological stream is cut whenever (a) the time gap exceeds
// the session window, or (b) the query-flow-graph chaining probability of
// the transition falls below a threshold — i.e. the random surfer would
// likely not have walked that edge.

#ifndef OPTSELECT_QUERYLOG_SESSION_SEGMENTER_H_
#define OPTSELECT_QUERYLOG_SESSION_SEGMENTER_H_

#include <cstdint>
#include <vector>

#include "querylog/query_flow_graph.h"
#include "querylog/query_log.h"

namespace optselect {
namespace querylog {

/// One logical session: indices into the QueryLog, in time order.
struct Session {
  UserId user = 0;
  std::vector<size_t> record_indices;
};

/// Splits user streams into logical sessions.
class SessionSegmenter {
 public:
  struct Options {
    /// Hard time cut: a gap above this always starts a new session.
    int64_t max_gap_seconds = 1800;
    /// QFG cut: transitions with chaining probability below this start a
    /// new session. Set to 0 to disable the QFG signal (time-only
    /// splitting).
    double min_chain_probability = 0.02;
  };

  SessionSegmenter() : SessionSegmenter(Options{}) {}
  explicit SessionSegmenter(Options options) : options_(options) {}

  /// Segments the log. `graph` may be null, in which case only the time
  /// rule applies.
  std::vector<Session> Segment(const QueryLog& log,
                               const QueryFlowGraph* graph) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace querylog
}  // namespace optselect

#endif  // OPTSELECT_QUERYLOG_SESSION_SEGMENTER_H_
