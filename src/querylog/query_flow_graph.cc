#include "querylog/query_flow_graph.h"

#include <algorithm>
#include <unordered_set>

#include "util/strings.h"

namespace optselect {
namespace querylog {

double QueryFlowGraph::LexicalAffinity(std::string_view q1,
                                       std::string_view q2) {
  std::vector<std::string> t1 = util::SplitWhitespace(q1);
  std::vector<std::string> t2 = util::SplitWhitespace(q2);
  if (t1.empty() || t2.empty()) return 0.0;
  std::unordered_set<std::string> s1(t1.begin(), t1.end());
  std::unordered_set<std::string> s2(t2.begin(), t2.end());
  size_t inter = 0;
  for (const std::string& t : s1) inter += s2.count(t);
  size_t uni = s1.size() + s2.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

QueryFlowGraph QueryFlowGraph::Build(const QueryLog& log,
                                     const Options& options) {
  QueryFlowGraph g;

  auto intern = [&g](const std::string& q) -> QueryNodeId {
    auto it = g.node_index_.find(q);
    if (it != g.node_index_.end()) return it->second;
    QueryNodeId id = static_cast<QueryNodeId>(g.queries_.size());
    g.queries_.push_back(q);
    g.node_index_.emplace(q, id);
    g.adjacency_.emplace_back();
    return id;
  };

  // Raw counts: out_count[u][v], plus per-node totals including terminal
  // transitions (stream end or window break counts as terminal).
  std::vector<std::unordered_map<QueryNodeId, uint32_t>> counts;
  std::vector<uint32_t> terminal_counts;
  std::vector<uint32_t> total_counts;
  auto ensure = [&](QueryNodeId id) {
    if (counts.size() <= id) {
      counts.resize(id + 1);
      terminal_counts.resize(id + 1, 0);
      total_counts.resize(id + 1, 0);
    }
  };

  for (const std::vector<size_t>& stream : log.UserStreams()) {
    for (size_t i = 0; i < stream.size(); ++i) {
      const QueryRecord& cur = log.record(stream[i]);
      QueryNodeId u = intern(cur.query);
      ensure(u);
      bool chained = false;
      if (i + 1 < stream.size()) {
        const QueryRecord& nxt = log.record(stream[i + 1]);
        int64_t gap = nxt.timestamp - cur.timestamp;
        if (gap >= 0 && gap <= options.max_gap_seconds &&
            nxt.query != cur.query) {
          QueryNodeId v = intern(nxt.query);
          ensure(v);
          ++counts[u][v];
          ++total_counts[u];
          chained = true;
        } else if (gap >= 0 && gap <= options.max_gap_seconds) {
          // Identical resubmission: self-loops carry no reformulation
          // signal; treat as a continuation without an edge.
          chained = true;
        }
      }
      if (!chained) {
        ++terminal_counts[u];
        ++total_counts[u];
      }
    }
  }

  ensure(static_cast<QueryNodeId>(
      g.queries_.empty() ? 0 : g.queries_.size() - 1));

  // Normalize into chaining probabilities, blending in lexical affinity.
  g.adjacency_.assign(g.queries_.size(), {});
  g.termination_.assign(g.queries_.size(), 1.0);
  const double lw = options.lexical_weight;
  for (QueryNodeId u = 0; u < g.queries_.size(); ++u) {
    if (u >= counts.size() || total_counts[u] == 0) continue;
    double total = static_cast<double>(total_counts[u]);
    g.termination_[u] = static_cast<double>(terminal_counts[u]) / total;
    auto& edges = g.adjacency_[u];
    edges.reserve(counts[u].size());
    for (const auto& [v, c] : counts[u]) {
      Edge e;
      e.to = v;
      e.count = c;
      double freq = static_cast<double>(c) / total;
      double lex = LexicalAffinity(g.queries_[u], g.queries_[v]);
      e.chain_prob = (1.0 - lw) * freq + lw * lex;
      edges.push_back(e);
      ++g.num_edges_;
    }
    std::sort(edges.begin(), edges.end(),
              [](const Edge& a, const Edge& b) { return a.to < b.to; });
  }
  return g;
}

QueryNodeId QueryFlowGraph::NodeOf(std::string_view query) const {
  auto it = node_index_.find(std::string(query));
  return it == node_index_.end() ? kInvalidQueryNode : it->second;
}

double QueryFlowGraph::ChainingProbability(std::string_view q1,
                                           std::string_view q2) const {
  QueryNodeId u = NodeOf(q1);
  QueryNodeId v = NodeOf(q2);
  if (u == kInvalidQueryNode || v == kInvalidQueryNode) return 0.0;
  const auto& edges = adjacency_[u];
  auto it = std::lower_bound(
      edges.begin(), edges.end(), v,
      [](const Edge& e, QueryNodeId target) { return e.to < target; });
  if (it == edges.end() || it->to != v) return 0.0;
  return it->chain_prob;
}

double QueryFlowGraph::TerminationProbability(std::string_view q) const {
  QueryNodeId u = NodeOf(q);
  if (u == kInvalidQueryNode) return 1.0;
  return termination_[u];
}

}  // namespace querylog
}  // namespace optselect
