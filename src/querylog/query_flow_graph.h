// Query-Flow Graph (Boldi et al., CIKM'08) — the session model the paper
// uses to split user streams into logical sessions ("It consists of
// building a Markov Chain model of the query log and subsequently finding
// paths in the graph which are more likely to be followed by random
// surfers", Section 3).
//
// Nodes are distinct query strings; a directed edge (q, q′) aggregates the
// times q′ was submitted right after q by the same user within a time
// window. The chaining probability combines the observed transition
// frequency with a lexical-affinity prior (term overlap), mirroring the
// feature set of the original QFG classifier in a closed form.

#ifndef OPTSELECT_QUERYLOG_QUERY_FLOW_GRAPH_H_
#define OPTSELECT_QUERYLOG_QUERY_FLOW_GRAPH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "querylog/query_log.h"

namespace optselect {
namespace querylog {

using QueryNodeId = uint32_t;
inline constexpr QueryNodeId kInvalidQueryNode = static_cast<QueryNodeId>(-1);

/// Immutable query-flow graph built from a log.
class QueryFlowGraph {
 public:
  struct Options {
    /// Consecutive submissions farther apart than this do not create an
    /// edge (the classic 30-minute session window prior).
    int64_t max_gap_seconds = 1800;
    /// Mixing weight of lexical affinity vs observed frequency in the
    /// chaining probability (0 = frequency only).
    double lexical_weight = 0.4;
  };

  struct Edge {
    QueryNodeId to = kInvalidQueryNode;
    uint32_t count = 0;        ///< raw transition count
    double chain_prob = 0.0;   ///< normalized chaining probability
  };

  /// Builds the graph by one pass over per-user chronological streams.
  static QueryFlowGraph Build(const QueryLog& log, const Options& options);

  /// Node id of a query string, or kInvalidQueryNode.
  QueryNodeId NodeOf(std::string_view query) const;

  /// Query string of a node.
  const std::string& QueryOf(QueryNodeId id) const { return queries_[id]; }

  size_t num_nodes() const { return queries_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Outgoing edges of a node (unsorted).
  const std::vector<Edge>& OutEdges(QueryNodeId id) const {
    return adjacency_[id];
  }

  /// Chaining probability of the transition q1 → q2; 0 when either query
  /// is unknown or no edge exists. This is the score the session
  /// segmenter thresholds on.
  double ChainingProbability(std::string_view q1, std::string_view q2) const;

  /// Probability mass of "the user abandons the chain after q" (terminal
  /// transition of the Markov model).
  double TerminationProbability(std::string_view q) const;

  /// Jaccard similarity of the whitespace token sets of two queries —
  /// the lexical-affinity feature. Exposed for tests.
  static double LexicalAffinity(std::string_view q1, std::string_view q2);

 private:
  std::unordered_map<std::string, QueryNodeId> node_index_;
  std::vector<std::string> queries_;
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<double> termination_;  // per node
  size_t num_edges_ = 0;
};

}  // namespace querylog
}  // namespace optselect

#endif  // OPTSELECT_QUERYLOG_QUERY_FLOW_GRAPH_H_
