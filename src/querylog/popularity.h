// Query popularity f(·) — the frequency function used by Algorithm 1 to
// filter specialization candidates and derive P(q′|q).

#ifndef OPTSELECT_QUERYLOG_POPULARITY_H_
#define OPTSELECT_QUERYLOG_POPULARITY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "querylog/query_log.h"
#include "util/rng.h"

namespace optselect {
namespace querylog {

/// Frequency table of distinct query strings in a log.
///
/// Optionally click-weighted (the paper's future work (ii): "the use of
/// click-through data to improve our effectiveness results"): a record
/// with clicks signals a satisfied information need, so each click adds
/// `click_weight` to the query's mass on top of the submission count.
class PopularityMap {
 public:
  PopularityMap() = default;

  /// Counts every record in `log`; clicks are ignored.
  explicit PopularityMap(const QueryLog& log) : PopularityMap(log, 0.0) {}

  /// Counts every record, adding `click_weight` per clicked result.
  /// Weighted frequencies are rounded to the nearest integer.
  PopularityMap(const QueryLog& log, double click_weight);

  /// Frequency f(q); 0 for unseen queries.
  uint64_t Frequency(std::string_view query) const;

  /// Number of distinct queries.
  size_t distinct() const { return counts_.size(); }

  /// Total number of counted submissions.
  uint64_t total() const { return total_; }

  /// Manually bumps a query (used by incremental construction in tests).
  void Increment(std::string_view query, uint64_t by = 1);

  const std::unordered_map<std::string, uint64_t>& counts() const {
    return counts_;
  }

 private:
  std::unordered_map<std::string, uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Popularity mass of one record under per-record rounding: the
/// submission itself plus `click_weight` per clicked result, rounded
/// to the nearest integer. Shared by the incremental ingestion paths
/// (LogIngestor, ShortcutsRecommender::TrainIncremental) so their
/// counts can never drift apart; the batch PopularityMap constructor
/// instead accumulates fractional mass per query and rounds once,
/// which may differ by ±0.5 per query (documented at the call sites).
inline uint64_t ClickMass(double click_weight, size_t num_clicks) {
  if (click_weight <= 0.0) return 1;
  return static_cast<uint64_t>(
      1.0 + click_weight * static_cast<double>(num_clicks) + 0.5);
}

/// Replay traffic for load tests and serving benchmarks: draws
/// `num_requests` queries by sampling Zipf(skew)-distributed ranks over
/// the popularity order (most frequent query = rank 0; frequency ties
/// break lexicographically for determinism). `popularity` must be
/// non-empty.
std::vector<std::string> ZipfQueryMix(const PopularityMap& popularity,
                                      size_t num_requests, double skew,
                                      util::Rng* rng);

}  // namespace querylog
}  // namespace optselect

#endif  // OPTSELECT_QUERYLOG_POPULARITY_H_
