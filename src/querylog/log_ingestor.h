// Incremental query-log ingestion — the freshness half of Section 4.1.
//
// The paper mines the diversification store from a "long-term query log"
// as an offline batch job. A live system's log never stops growing, so a
// serving node that wants fresh specializations must not re-read (let
// alone re-mine) the full log on every refresh. A LogIngestor tails one
// TSV log file (the QueryLog::SaveTsv format) from a remembered byte
// offset: each Poll() parses only the bytes appended since the last
// call, folds the new records into an incrementally maintained
// PopularityMap, and reports which queries are now *dirty* — i.e. whose
// mined statistics (frequency f(·), and hence P(q′|q)) may have changed
// and should be re-mined by the store refresh loop.
//
// Tail-safety: a concurrent writer may be mid-line at poll time. Poll()
// consumes only complete ('\n'-terminated) lines and leaves a trailing
// partial line in the file for the next poll; the offset never advances
// past unconsumed bytes. Malformed complete lines are counted and
// skipped rather than failing the poll (a live tail must not wedge on
// one bad record).

#ifndef OPTSELECT_QUERYLOG_LOG_INGESTOR_H_
#define OPTSELECT_QUERYLOG_LOG_INGESTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "querylog/popularity.h"
#include "querylog/query_log.h"
#include "util/status.h"

namespace optselect {
namespace querylog {

/// Outcome of one Poll(): the appended records plus dirty bookkeeping.
struct IngestDelta {
  /// Newly ingested records, in file order.
  QueryLog log;
  /// Distinct query strings observed in this delta, sorted. These are
  /// the queries whose popularity changed; the refresh loop extends the
  /// set with stored entries that *reference* them (see
  /// store::MineDelta) before re-mining.
  std::vector<std::string> dirty_queries;
  /// Complete lines that failed to parse and were skipped.
  size_t malformed_lines = 0;
  /// Bytes consumed by this poll (diagnostics).
  uint64_t bytes_consumed = 0;

  bool empty() const { return log.empty(); }
};

/// Tails one TSV query-log file incrementally.
class LogIngestor {
 public:
  struct Options {
    /// Click-through weight folded into the popularity increments
    /// (matches PopularityMap(log, click_weight); 0 counts submissions
    /// only).
    double click_weight = 0.0;
  };

  explicit LogIngestor(std::string path);
  LogIngestor(std::string path, Options options);

  /// Reads every complete line between the current offset and EOF.
  /// Returns the delta (possibly empty — polling an unchanged file is
  /// not an error). Fails with kIoError only when the file cannot be
  /// opened or read at all.
  util::Result<IngestDelta> Poll();

  /// Moves the offset to the current end of the file without ingesting
  /// anything. Call after constructing an ingestor for a log whose
  /// current contents are already reflected in the mined store, so the
  /// first Poll() sees only genuinely new traffic.
  util::Status SkipToEnd();

  /// Cumulative popularity over everything ingested so far, maintained
  /// by pure increments (never recomputed from the full log).
  const PopularityMap& popularity() const { return popularity_; }

  /// Byte offset of the next unread record.
  uint64_t offset() const { return offset_; }

  /// Totals across all polls.
  uint64_t records_ingested() const { return records_ingested_; }
  uint64_t malformed_lines() const { return malformed_lines_; }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  Options options_;
  uint64_t offset_ = 0;
  uint64_t records_ingested_ = 0;
  uint64_t malformed_lines_ = 0;
  PopularityMap popularity_;
};

}  // namespace querylog
}  // namespace optselect

#endif  // OPTSELECT_QUERYLOG_LOG_INGESTOR_H_
