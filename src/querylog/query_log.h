// Query log model (paper Section 3.1).
//
// A query log Q is a set of records ⟨q_i, u_i, t_i, V_i, C_i⟩ storing, for
// each submitted query: the anonymized user, the submission timestamp, the
// URLs returned as top-k results, and the clicked results.

#ifndef OPTSELECT_QUERYLOG_QUERY_LOG_H_
#define OPTSELECT_QUERYLOG_QUERY_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace optselect {
namespace querylog {

using UserId = uint32_t;
using DocUrlId = uint32_t;

/// One log record ⟨q, u, t, V, C⟩.
struct QueryRecord {
  std::string query;             ///< normalized query string q_i
  UserId user = 0;               ///< anonymized user u_i
  int64_t timestamp = 0;         ///< submission time t_i (seconds)
  std::vector<DocUrlId> results; ///< V_i: returned top-k result ids
  std::vector<DocUrlId> clicks;  ///< C_i ⊆ V_i: clicked result ids
};

/// Append-only in-memory query log with TSV persistence.
class QueryLog {
 public:
  void Add(QueryRecord record) { records_.push_back(std::move(record)); }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const QueryRecord& record(size_t i) const { return records_[i]; }
  const std::vector<QueryRecord>& records() const { return records_; }

  /// Indices of all records, grouped by user and sorted by (user, time).
  /// The result is a partition of [0, size()): one vector per user stream.
  std::vector<std::vector<size_t>> UserStreams() const;

  /// Splits records chronologically: the first `fraction` (by timestamp
  /// order) go to `train`, the rest to `test`. Used by the Appendix C
  /// evaluation (70/30 split).
  void SplitChronological(double fraction, QueryLog* train,
                          QueryLog* test) const;

  /// Serializes to a TSV file: query \t user \t time \t v1,v2 \t c1,c2.
  util::Status SaveTsv(const std::string& path) const;

  /// Parses a TSV file written by SaveTsv.
  static util::Result<QueryLog> LoadTsv(const std::string& path);

  /// Parses one SaveTsv line (no trailing newline). Shared by LoadTsv
  /// and the incremental tail reader (LogIngestor).
  static util::Result<QueryRecord> ParseTsvLine(const std::string& line);

 private:
  std::vector<QueryRecord> records_;
};

}  // namespace querylog
}  // namespace optselect

#endif  // OPTSELECT_QUERYLOG_QUERY_LOG_H_
