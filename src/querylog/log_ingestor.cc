#include "querylog/log_ingestor.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <set>
#include <utility>

namespace optselect {
namespace querylog {

LogIngestor::LogIngestor(std::string path)
    : LogIngestor(std::move(path), Options{}) {}

LogIngestor::LogIngestor(std::string path, Options options)
    : path_(std::move(path)), options_(options) {}

util::Status LogIngestor::SkipToEnd() {
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  if (!in) return util::Status::IoError("cannot open for read: " + path_);
  offset_ = static_cast<uint64_t>(in.tellg());
  return util::Status::Ok();
}

util::Result<IngestDelta> LogIngestor::Poll() {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open for read: " + path_);

  in.seekg(0, std::ios::end);
  uint64_t size = static_cast<uint64_t>(in.tellg());
  IngestDelta delta;
  if (size <= offset_) {
    // Nothing appended (or the file was truncated/rotated — in that
    // case restart from the top rather than reading past EOF forever).
    if (size < offset_) offset_ = 0;
    if (size <= offset_) return delta;
  }

  in.seekg(static_cast<std::streamoff>(offset_));
  std::string tail(static_cast<size_t>(size - offset_), '\0');
  in.read(tail.data(), static_cast<std::streamsize>(tail.size()));
  if (in.gcount() != static_cast<std::streamsize>(tail.size())) {
    tail.resize(static_cast<size_t>(in.gcount()));
  }

  // Consume only complete lines; a trailing partial line (concurrent
  // writer mid-record) stays in the file for the next poll.
  size_t consumed = tail.rfind('\n');
  if (consumed == std::string::npos) return delta;  // no complete line yet
  consumed += 1;

  std::set<std::string> dirty;
  size_t line_start = 0;
  while (line_start < consumed) {
    size_t line_end = tail.find('\n', line_start);
    std::string line = tail.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto record = QueryLog::ParseTsvLine(line);
    if (!record.ok()) {
      ++delta.malformed_lines;
      ++malformed_lines_;
      continue;
    }
    QueryRecord r = std::move(record).value();
    popularity_.Increment(
        r.query, ClickMass(options_.click_weight, r.clicks.size()));
    dirty.insert(r.query);
    delta.log.Add(std::move(r));
  }

  offset_ += consumed;
  records_ingested_ += delta.log.size();
  delta.bytes_consumed = consumed;
  delta.dirty_queries.assign(dirty.begin(), dirty.end());
  return delta;
}

}  // namespace querylog
}  // namespace optselect
