#include "querylog/synthetic_log.h"

#include <cassert>

#include "util/zipf.h"

namespace optselect {
namespace querylog {
namespace {

// Stable pseudo-URL ids per query string: hash-derived so that the same
// query always "returns" the same result page across the log.
uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<DocUrlId> ResultsFor(const std::string& query, size_t n) {
  std::vector<DocUrlId> v;
  v.reserve(n);
  uint64_t base = HashString(query);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<DocUrlId>((base + i * 2654435761ull) & 0x7FFFFFFF));
  }
  return v;
}

}  // namespace

SyntheticLogConfig AolLikeConfig(uint64_t seed) {
  SyntheticLogConfig c;
  c.seed = seed;
  c.num_users = 3000;
  c.num_sessions = 40000;
  c.ambiguous_session_fraction = 0.35;
  c.refinement_probability = 0.61;  // matches the AOL recall band
  c.topic_zipf_skew = 1.0;
  c.start_timestamp = 1141171200;  // 2006-03-01 (AOL window start)
  return c;
}

SyntheticLogConfig MsnLikeConfig(uint64_t seed) {
  SyntheticLogConfig c;
  c.seed = seed;
  c.num_users = 1800;
  c.num_sessions = 30000;
  c.ambiguous_session_fraction = 0.40;
  c.refinement_probability = 0.65;  // matches the MSN recall band
  c.topic_zipf_skew = 1.15;         // peakier topic distribution
  c.start_timestamp = 1146528000;   // 2006-05-01 (one-month window)
  return c;
}

SyntheticLogResult SyntheticLogGenerator::Generate(
    const std::vector<synth::TopicSpec>& topics,
    const std::vector<std::string>& noise_queries) const {
  assert(!topics.empty() || config_.ambiguous_session_fraction == 0.0);
  assert(!noise_queries.empty() || config_.ambiguous_session_fraction >= 1.0);

  util::Rng rng(config_.seed);
  SyntheticLogResult out;
  out.topics = topics;

  const util::ZipfSampler topic_dist(std::max<size_t>(topics.size(), 1),
                                     config_.topic_zipf_skew);
  const util::ZipfSampler noise_dist(std::max<size_t>(noise_queries.size(), 1),
                                     config_.noise_zipf_skew);

  // Per-topic specialization samplers reuse the ground-truth probabilities.
  std::vector<std::vector<double>> intent_weights(topics.size());
  for (size_t t = 0; t < topics.size(); ++t) {
    for (const synth::SubIntent& si : topics[t].intents) {
      intent_weights[t].push_back(si.probability);
    }
  }

  std::vector<int64_t> user_clock(config_.num_users, 0);
  for (size_t u = 0; u < config_.num_users; ++u) {
    user_clock[u] =
        config_.start_timestamp + rng.UniformInt(0, 24 * 3600);
  }

  auto emit = [&](UserId user, const std::string& query, int64_t ts,
                  int32_t topic_idx) {
    QueryRecord r;
    r.query = query;
    r.user = user;
    r.timestamp = ts;
    r.results = ResultsFor(query, config_.results_per_query);
    for (DocUrlId doc : r.results) {
      if (rng.Bernoulli(config_.click_probability / 3.0)) {
        r.clicks.push_back(doc);
      }
    }
    out.log.Add(std::move(r));
    out.record_topic.push_back(topic_idx);
  };

  for (size_t s = 0; s < config_.num_sessions; ++s) {
    UserId user = static_cast<UserId>(rng.Uniform(config_.num_users));
    // Advance this user's clock to a fresh session.
    user_clock[user] += config_.inter_session_gap +
                        rng.UniformInt(0, config_.inter_session_gap);
    int64_t ts = user_clock[user];

    auto next_ts = [&]() {
      // Exponential-ish in-session gap, always well under the 30-minute
      // session threshold used by the segmenter.
      double gap = 1.0 + config_.in_session_gap_mean * rng.UniformDouble() *
                             2.0 * rng.UniformDouble();
      ts += static_cast<int64_t>(gap) + 1;
      user_clock[user] = ts;
      return ts;
    };

    bool ambiguous =
        !topics.empty() && rng.Bernoulli(config_.ambiguous_session_fraction);
    if (ambiguous) {
      size_t t = topic_dist.Sample(&rng);
      const synth::TopicSpec& topic = topics[t];
      emit(user, topic.root_query, ts, static_cast<int32_t>(t));
      if (rng.Bernoulli(config_.refinement_probability) &&
          !topic.intents.empty()) {
        size_t i = rng.Categorical(intent_weights[t]);
        emit(user, topic.intents[i].query, next_ts(),
             static_cast<int32_t>(t));
        ++out.refinement_events;
        while (rng.Bernoulli(config_.extra_refinement_probability)) {
          size_t j = rng.Categorical(intent_weights[t]);
          if (j == i) break;
          emit(user, topic.intents[j].query, next_ts(),
               static_cast<int32_t>(t));
        }
      }
    } else {
      size_t n = noise_dist.Sample(&rng);
      emit(user, noise_queries[n], ts, -1);
      // Occasional noise reformulation (same query resubmitted).
      if (rng.Bernoulli(0.15)) {
        emit(user, noise_queries[n], next_ts(), -1);
      }
    }
  }
  return out;
}

}  // namespace querylog
}  // namespace optselect
