#include "querylog/session_segmenter.h"

namespace optselect {
namespace querylog {

std::vector<Session> SessionSegmenter::Segment(
    const QueryLog& log, const QueryFlowGraph* graph) const {
  std::vector<Session> sessions;
  for (const std::vector<size_t>& stream : log.UserStreams()) {
    Session current;
    for (size_t pos = 0; pos < stream.size(); ++pos) {
      size_t idx = stream[pos];
      const QueryRecord& rec = log.record(idx);
      bool cut = false;
      if (!current.record_indices.empty()) {
        const QueryRecord& prev = log.record(current.record_indices.back());
        int64_t gap = rec.timestamp - prev.timestamp;
        if (gap > options_.max_gap_seconds) {
          cut = true;
        } else if (graph != nullptr && options_.min_chain_probability > 0 &&
                   prev.query != rec.query) {
          double p = graph->ChainingProbability(prev.query, rec.query);
          if (p < options_.min_chain_probability) cut = true;
        }
      }
      if (cut) {
        sessions.push_back(std::move(current));
        current = Session{};
      }
      if (current.record_indices.empty()) current.user = rec.user;
      current.record_indices.push_back(idx);
    }
    if (!current.record_indices.empty()) {
      sessions.push_back(std::move(current));
    }
  }
  return sessions;
}

}  // namespace querylog
}  // namespace optselect
