#include "querylog/popularity.h"

#include <algorithm>
#include <utility>

#include "util/zipf.h"

namespace optselect {
namespace querylog {

PopularityMap::PopularityMap(const QueryLog& log, double click_weight) {
  if (click_weight <= 0.0) {
    for (const QueryRecord& r : log.records()) Increment(r.query);
    return;
  }
  // Accumulate fractional mass per query, then round once.
  std::unordered_map<std::string, double> mass;
  for (const QueryRecord& r : log.records()) {
    mass[r.query] +=
        1.0 + click_weight * static_cast<double>(r.clicks.size());
  }
  for (const auto& [query, m] : mass) {
    Increment(query, static_cast<uint64_t>(m + 0.5));
  }
}

uint64_t PopularityMap::Frequency(std::string_view query) const {
  auto it = counts_.find(std::string(query));
  return it == counts_.end() ? 0 : it->second;
}

void PopularityMap::Increment(std::string_view query, uint64_t by) {
  counts_[std::string(query)] += by;
  total_ += by;
}

std::vector<std::string> ZipfQueryMix(const PopularityMap& popularity,
                                      size_t num_requests, double skew,
                                      util::Rng* rng) {
  std::vector<std::pair<uint64_t, std::string>> by_freq;
  by_freq.reserve(popularity.counts().size());
  for (const auto& [query, freq] : popularity.counts()) {
    by_freq.emplace_back(freq, query);
  }
  std::sort(by_freq.begin(), by_freq.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  util::ZipfSampler sampler(by_freq.size(), skew);
  std::vector<std::string> mix;
  mix.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i) {
    mix.push_back(by_freq[sampler.Sample(rng)].second);
  }
  return mix;
}

}  // namespace querylog
}  // namespace optselect
