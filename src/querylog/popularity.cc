#include "querylog/popularity.h"

namespace optselect {
namespace querylog {

PopularityMap::PopularityMap(const QueryLog& log, double click_weight) {
  if (click_weight <= 0.0) {
    for (const QueryRecord& r : log.records()) Increment(r.query);
    return;
  }
  // Accumulate fractional mass per query, then round once.
  std::unordered_map<std::string, double> mass;
  for (const QueryRecord& r : log.records()) {
    mass[r.query] +=
        1.0 + click_weight * static_cast<double>(r.clicks.size());
  }
  for (const auto& [query, m] : mass) {
    Increment(query, static_cast<uint64_t>(m + 0.5));
  }
}

uint64_t PopularityMap::Frequency(std::string_view query) const {
  auto it = counts_.find(std::string(query));
  return it == counts_.end() ? 0 : it->second;
}

void PopularityMap::Increment(std::string_view query, uint64_t by) {
  counts_[std::string(query)] += by;
  total_ += by;
}

}  // namespace querylog
}  // namespace optselect
