#include "querylog/query_log.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace optselect {
namespace querylog {
namespace {

std::string JoinIds(const std::vector<DocUrlId>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ids[i]);
  }
  return out;
}

util::Result<std::vector<DocUrlId>> ParseIds(const std::string& field) {
  std::vector<DocUrlId> ids;
  if (field.empty()) return ids;
  for (const std::string& piece : util::Split(field, ',')) {
    if (piece.empty()) {
      return util::Status::Corruption("empty id in list: " + field);
    }
    char* end = nullptr;
    unsigned long v = std::strtoul(piece.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return util::Status::Corruption("bad id: " + piece);
    }
    ids.push_back(static_cast<DocUrlId>(v));
  }
  return ids;
}

}  // namespace

std::vector<std::vector<size_t>> QueryLog::UserStreams() const {
  std::map<UserId, std::vector<size_t>> by_user;
  for (size_t i = 0; i < records_.size(); ++i) {
    by_user[records_[i].user].push_back(i);
  }
  std::vector<std::vector<size_t>> streams;
  streams.reserve(by_user.size());
  for (auto& [user, idxs] : by_user) {
    std::stable_sort(idxs.begin(), idxs.end(), [this](size_t a, size_t b) {
      return records_[a].timestamp < records_[b].timestamp;
    });
    streams.push_back(std::move(idxs));
  }
  return streams;
}

void QueryLog::SplitChronological(double fraction, QueryLog* train,
                                  QueryLog* test) const {
  std::vector<size_t> order(records_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return records_[a].timestamp < records_[b].timestamp;
  });
  size_t cut = static_cast<size_t>(fraction * static_cast<double>(order.size()));
  for (size_t i = 0; i < order.size(); ++i) {
    (i < cut ? train : test)->Add(records_[order[i]]);
  }
}

util::Status QueryLog::SaveTsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  for (const QueryRecord& r : records_) {
    out << r.query << '\t' << r.user << '\t' << r.timestamp << '\t'
        << JoinIds(r.results) << '\t' << JoinIds(r.clicks) << '\n';
  }
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Result<QueryRecord> QueryLog::ParseTsvLine(const std::string& line) {
  std::vector<std::string> fields = util::Split(line, '\t');
  if (fields.size() != 5) {
    return util::Status::Corruption(util::StrFormat(
        "expected 5 fields, got %zu", fields.size()));
  }
  QueryRecord r;
  r.query = fields[0];
  r.user = static_cast<UserId>(std::strtoul(fields[1].c_str(), nullptr, 10));
  r.timestamp = std::strtoll(fields[2].c_str(), nullptr, 10);
  auto results = ParseIds(fields[3]);
  if (!results.ok()) return results.status();
  auto clicks = ParseIds(fields[4]);
  if (!clicks.ok()) return clicks.status();
  r.results = std::move(results).value();
  r.clicks = std::move(clicks).value();
  return r;
}

util::Result<QueryLog> QueryLog::LoadTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for read: " + path);
  QueryLog log;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto record = ParseTsvLine(line);
    if (!record.ok()) {
      return util::Status::Corruption(
          util::StrFormat("line %zu: ", lineno) +
          record.status().message());
    }
    log.Add(std::move(record).value());
  }
  return log;
}

}  // namespace querylog
}  // namespace optselect
