#include "cluster/query_router.h"

#include <condition_variable>
#include <mutex>
#include <utility>

#include "serving/cache_key.h"
#include "store/store_builder.h"
#include "util/hash.h"

namespace optselect {
namespace cluster {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

QueryRouter::QueryRouter(std::vector<serving::ServingNode*> shards,
                         std::unordered_set<std::string> replicated,
                         FailoverConfig failover,
                         obs::MetricsRegistry* registry)
    : shards_(std::move(shards)),
      replicated_(std::move(replicated)),
      failover_(failover),
      owned_registry_(registry == nullptr
                          ? std::make_unique<obs::MetricsRegistry>()
                          : nullptr),
      registry_(registry != nullptr ? registry : owned_registry_.get()),
      health_(shards_.size()) {
  if (failover_.breaker_threshold == 0) failover_.breaker_threshold = 1;
  if (failover_.breaker_probe_after == 0) failover_.breaker_probe_after = 1;
  RegisterMetrics();
}

void QueryRouter::RegisterMetrics() {
  // Effect-before-cause: stats() and registry Collect() read in this
  // order, so degraded/dropped/retried <= failover_serves and
  // hedges_won <= hedges_launched hold in every snapshot. (The
  // pre-registry stats() read failover_serves first and could observe
  // degraded > failover_serves under concurrent failover traffic.)
  retried_ = registry_->AddCounter("optselect_router_retried_total");
  degraded_ = registry_->AddCounter("optselect_router_degraded_total");
  dropped_ = registry_->AddCounter("optselect_router_dropped_total");
  hedges_won_ = registry_->AddCounter("optselect_router_hedges_won_total");
  hedges_launched_ =
      registry_->AddCounter("optselect_router_hedges_launched_total");
  failover_serves_ =
      registry_->AddCounter("optselect_router_failover_serves_total");
  replicated_routed_ =
      registry_->AddCounter("optselect_router_replicated_routed_total");
  routed_ = registry_->AddCounter("optselect_router_routed_total");
  batches_ = registry_->AddCounter("optselect_router_batches_total");
  batch_requests_ =
      registry_->AddCounter("optselect_router_batch_requests_total");
  per_shard_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    per_shard_.push_back(registry_->AddCounter(
        "optselect_router_shard_routed_total",
        obs::Labels{{"shard", std::to_string(i)}}));
  }
  // Probe/open tallies live under health_mu_ with the breaker state;
  // exported as foreign-read counters (the lambda takes the lock).
  registry_->AddCounterFn("optselect_router_probes_total", {}, [this] {
    std::lock_guard<std::mutex> lock(health_mu_);
    return probes_;
  });
  registry_->AddCounterFn("optselect_router_breaker_opens_total", {},
                          [this] {
                            std::lock_guard<std::mutex> lock(health_mu_);
                            return breaker_opens_;
                          });
}

size_t QueryRouter::OwnerOf(std::string_view raw_query) const {
  return store::ShardFilter::OwnerShard(serving::NormalizeQuery(raw_query),
                                        shards_.size());
}

bool QueryRouter::IsReplicated(std::string_view raw_query) const {
  return replicated_.count(serving::NormalizeQuery(raw_query)) > 0;
}

size_t QueryRouter::Route(std::string_view raw_query) {
  std::string normalized = serving::NormalizeQuery(raw_query);
  size_t shard;
  if (replicated_.count(normalized) > 0) {
    shard = static_cast<size_t>(
        round_robin_.fetch_add(1, std::memory_order_relaxed) %
        shards_.size());
    replicated_routed_->Add();
  } else {
    shard = store::ShardFilter::OwnerShard(normalized, shards_.size());
  }
  routed_->Add();
  per_shard_[shard]->Add();
  return shard;
}

serving::ServeResult QueryRouter::Serve(const std::string& query) {
  return shards_[Route(query)]->Serve(query);
}

bool QueryRouter::Submit(
    std::string query, std::function<void(serving::ServeResult)> callback) {
  serving::ServingNode* shard = shards_[Route(query)];
  return shard->Submit(std::move(query), std::move(callback));
}

std::vector<serving::ServeResult> QueryRouter::ServeBatch(
    const std::vector<std::string>& queries) {
  batches_->Add();
  batch_requests_->Add(queries.size());

  std::vector<serving::ServeResult> results(queries.size());
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  size_t accepted = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    serving::ServingNode* shard = shards_[Route(queries[i])];
    bool ok = shard->Submit(queries[i], [&, i](serving::ServeResult r) {
      std::lock_guard<std::mutex> lock(mu);
      results[i] = std::move(r);
      ++done;
      cv.notify_one();
    });
    if (ok) ++accepted;  // shed requests keep the default ok == false
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == accepted; });
  return results;
}

// ------------------------------------------------------- failure domains

void QueryRouter::TransitionLocked(ShardHealth* health, size_t shard,
                                   BreakerState to) {
  BreakerTransition t;
  t.seq = transition_seq_++;
  t.shard = shard;
  t.from = health->state;
  t.to = to;
  if (transitions_.size() >= kMaxBreakerTransitions) {
    transitions_.pop_front();  // bounded log; seq stays global
  }
  transitions_.push_back(t);
  if (obs::TracingCompiledIn()) {
    // Mirror every transition (not sampled) into the tracer's breaker
    // log — the chaos harness asserts the mirror matches this log
    // entry-for-entry. Lock order: health_mu_ (held here) → tracer mu;
    // the tracer never calls back into the router.
    obs::Tracer* tracer = tracer_.load(std::memory_order_acquire);
    if (tracer != nullptr) {
      tracer->RecordBreakerTransition(shard, static_cast<int>(t.from),
                                      static_cast<int>(to));
    }
  }
  health->state = to;
  if (to == BreakerState::kOpen) ++breaker_opens_;
}

BreakerState QueryRouter::shard_state(size_t shard) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_[shard].state;
}

std::vector<BreakerTransition> QueryRouter::breaker_transitions() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return std::vector<BreakerTransition>(transitions_.begin(),
                                        transitions_.end());
}

bool QueryRouter::BreakerClosed(size_t shard) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_[shard].state == BreakerState::kClosed;
}

bool QueryRouter::AllowAttempt(size_t shard) {
  std::lock_guard<std::mutex> lock(health_mu_);
  ShardHealth& health = health_[shard];
  switch (health.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      // A probe is already deciding this shard's fate; further requests
      // ride along (their outcomes feed the breaker too).
      return true;
    case BreakerState::kOpen:
      // Strictly-greater: the probe is admitted on the decision *after*
      // breaker_probe_after skipped ones, as documented — and
      // breaker_probe_after == 1 still skips once (kOpen is never
      // behaviorally identical to kHalfOpen).
      if (++health.skips_while_open > failover_.breaker_probe_after) {
        TransitionLocked(&health, shard, BreakerState::kHalfOpen);
        health.skips_while_open = 0;
        ++probes_;
        return true;
      }
      return false;
  }
  return true;
}

void QueryRouter::RecordOutcome(size_t shard, bool ok) {
  std::lock_guard<std::mutex> lock(health_mu_);
  ShardHealth& health = health_[shard];
  if (ok) {
    // Any successful answer proves the shard serves; close immediately
    // (half-open probe success, or a late hedge straggler).
    health.consecutive_failures = 0;
    if (health.state != BreakerState::kClosed) {
      TransitionLocked(&health, shard, BreakerState::kClosed);
    }
    return;
  }
  ++health.consecutive_failures;
  if (health.state == BreakerState::kHalfOpen) {
    // Failed probe: back to open, restart the skip countdown.
    TransitionLocked(&health, shard, BreakerState::kOpen);
    health.skips_while_open = 0;
  } else if (health.state == BreakerState::kClosed &&
             health.consecutive_failures >= failover_.breaker_threshold) {
    TransitionLocked(&health, shard, BreakerState::kOpen);
    health.skips_while_open = 0;
  }
}

QueryRouter::Attempt QueryRouter::AttemptOn(size_t shard,
                                            const std::string& query,
                                            size_t hedge_shard) {
  // Shared between this thread and up to two shard-worker callbacks;
  // shared_ptr so a hedge straggler that answers after we returned
  // still has somewhere safe to write.
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending = 0;
    bool have = false;
    size_t winner = kNoShard;
    serving::ServeResult result;
  };
  auto state = std::make_shared<State>();

  // Hedge submissions never feed the breaker (record == false): a
  // hedge fires on wall time, so letting its outcome touch the
  // count-based health state would make breaker transitions — and
  // therefore chaos replays — timing-dependent. Health is judged by
  // first-class attempts only; the hedge is a latency optimization.
  auto submit_to = [&](size_t target, bool record) -> bool {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->pending;
    }
    bool accepted = shards_[target]->Submit(
        query, [this, state, target, record](serving::ServeResult r) {
          // Breaker first, state lock second — RecordOutcome never
          // nests inside state->mu, so lock order is single-level.
          if (record) RecordOutcome(target, r.ok);
          std::lock_guard<std::mutex> lock(state->mu);
          --state->pending;
          if (!state->have && r.ok) {
            state->have = true;
            state->winner = target;
            state->result = std::move(r);
          }
          state->cv.notify_all();
        });
    if (!accepted) {
      // Synchronous rejection: dead shard or full queue — the callback
      // will never fire.
      if (record) RecordOutcome(target, false);
      std::lock_guard<std::mutex> lock(state->mu);
      --state->pending;
    }
    return accepted;
  };

  Attempt attempt;
  if (!submit_to(shard, /*record=*/true)) {
    // Synchronous rejection: no hedge — the caller's failover loop
    // tries the next holder as a first-class attempt instead.
    return attempt;
  }

  std::unique_lock<std::mutex> lock(state->mu);
  if (hedge_shard != kNoShard) {
    bool primary_done =
        state->cv.wait_for(lock, failover_.hedge_delay, [&] {
          return state->have || state->pending == 0;
        });
    if (!primary_done) {
      // Primary is slow: re-issue on the next replica and take
      // whichever answers first (the loser's callback is discarded).
      lock.unlock();
      if (submit_to(hedge_shard, /*record=*/false)) {
        attempt.hedge_used = true;
        hedges_launched_->Add();
      }
      lock.lock();
    }
  }
  state->cv.wait(lock, [&] { return state->have || state->pending == 0; });
  if (!state->have) return attempt;  // every submission failed

  attempt.ok = true;
  attempt.result = std::move(state->result);
  if (attempt.hedge_used && state->winner == hedge_shard) {
    attempt.result.hedged = true;
    hedges_won_->Add();
  }
  return attempt;
}

serving::ServeResult QueryRouter::ServeWithFailover(
    const std::string& query) {
  failover_serves_->Add();
  const size_t n = shards_.size();
  const std::string normalized = serving::NormalizeQuery(query);
  const bool replicated = replicated_.count(normalized) > 0;
  const size_t owner = store::ShardFilter::OwnerShard(normalized, n);

#if OPTSELECT_TRACING
  // Router-level trace: sampled on the router's own sequence counter
  // (incremented only while a tracer is installed), so under the
  // sequential chaos replay seq equals the request index and the
  // sampled set is identical across runs A and B.
  obs::Trace trace;
  obs::Trace* tr = nullptr;
  obs::Tracer* tracer = tracer_.load(std::memory_order_acquire);
  if (tracer != nullptr) {
    uint64_t seq = trace_seq_.fetch_add(1, std::memory_order_relaxed);
    if (tracer->ShouldSample(seq)) {
      trace.seq = seq;
      trace.query = query;
      trace.start = std::chrono::steady_clock::now();
      tr = &trace;
    }
  }
#else
  obs::Trace* tr = nullptr;
#endif
  auto commit = [&](const serving::ServeResult& result) {
#if OPTSELECT_TRACING
    if (tr != nullptr) {
      tr->ok = result.ok;
      tr->degraded = result.degraded;
      tr->hedged = result.hedged;
      tr->diversified = result.diversified;
      tr->cache_hit = result.cache_hit;
      tr->plan_served = result.plan_served;
      tr->total_us = tr->ElapsedMicros();
      tr->ranking_hash = util::Fnv1a64(
          result.ranking.data(), result.ranking.size() * sizeof(DocId));
      tracer->Commit(std::move(*tr));
    }
#else
    (void)result;
#endif
  };

  // Holders of the key's store entry: the owner alone, or — replicated
  // — every shard, starting at the round-robin cursor so healthy-path
  // traffic keeps spreading exactly like Route().
  std::vector<size_t> holders;
  if (replicated) {
    replicated_routed_->Add();
    size_t start = static_cast<size_t>(
        round_robin_.fetch_add(1, std::memory_order_relaxed) % n);
    holders.reserve(n);
    for (size_t i = 0; i < n; ++i) holders.push_back((start + i) % n);
  } else {
    holders.push_back(owner);
  }

  std::vector<char> attempted(n, 0);
  std::vector<char> is_holder(n, 0);
  for (size_t shard : holders) is_holder[shard] = 1;
  size_t attempts = 0;
  auto finish = [&](serving::ServeResult result,
                    size_t shard) -> serving::ServeResult {
    routed_->Add();
    per_shard_[shard]->Add();
    if (attempts > 1) retried_->Add();
    commit(result);
    return result;
  };

  // Phase 1 — holders, healthy-first, hedged. The hedge target is the
  // next breaker-closed holder (never probes an open shard on spec).
  for (size_t idx = 0; idx < holders.size(); ++idx) {
    size_t shard = holders[idx];
    if (attempted[shard] || !AllowAttempt(shard)) continue;
    size_t hedge = kNoShard;
    if (failover_.hedging && replicated) {
      for (size_t j = idx + 1; j < holders.size(); ++j) {
        if (!attempted[holders[j]] && BreakerClosed(holders[j])) {
          hedge = holders[j];
          break;
        }
      }
    }
    attempted[shard] = 1;
    ++attempts;
    obs::TraceSpan attempt_span(tr, obs::TraceStage::kAttempt, shard);
    Attempt attempt = AttemptOn(shard, query, hedge);
    attempt_span.End();
#if OPTSELECT_TRACING
    // Hedge launches depend on wall time; the event is narrative only
    // and excluded from every determinism comparison (like the hedged
    // flag in ChaosRequestOutcome).
    if (tr != nullptr && attempt.hedge_used) {
      tr->events.push_back(obs::TraceEvent{
          obs::TraceStage::kHedge, tr->ElapsedMicros(), 0, hedge});
    }
#endif
    // A launched hedge already queried its replica — don't re-attempt
    // it (its outcome deliberately never touched the breaker).
    if (attempt.hedge_used) attempted[hedge] = 1;
    if (attempt.ok) {
      size_t winner = attempt.result.hedged ? hedge : shard;
      return finish(std::move(attempt.result), winner);
    }
  }

  // Phase 2 — every holder is down or gated: fall back to any shard
  // that answers. A non-holder lacks the entry but shares the immutable
  // retrieval stack, so it serves the plain DPH top-k — a correct,
  // non-diversified ranking, tagged `degraded` so the caller can tell.
  // The sweep can also reach a breaker-gated *holder* (its probe turn,
  // or the last-resort pass): a holder's answer is full quality and is
  // never tagged. Healthy shards first; phase 3 ignores open breakers
  // rather than drop (a success also closes the breaker early).
  for (int respect_breaker = 1; respect_breaker >= 0; --respect_breaker) {
    for (size_t i = 0; i < n; ++i) {
      size_t shard = (owner + 1 + i) % n;
      if (attempted[shard]) continue;
      if (respect_breaker && !AllowAttempt(shard)) continue;
      attempted[shard] = 1;
      ++attempts;
      obs::TraceSpan failover_span(tr, obs::TraceStage::kFailover, shard);
      Attempt attempt = AttemptOn(shard, query, kNoShard);
      failover_span.End();
      if (attempt.ok) {
        if (!is_holder[shard]) {
          attempt.result.degraded = true;
          degraded_->Add();
        }
        return finish(std::move(attempt.result), shard);
      }
    }
  }

  // Nothing in the cluster answered.
  dropped_->Add();
  routed_->Add();
  serving::ServeResult failed;  // ok == false
  commit(failed);
  return failed;
}

RouterStats QueryRouter::stats() const {
  RouterStats s;
  // Thin view over the registry handles, read in registration
  // (effect-before-cause) order: retried/degraded/dropped before
  // failover_serves, hedges_won before hedges_launched — the
  // corresponding <= invariants hold in every snapshot.
  s.retried = retried_->value();
  s.degraded = degraded_->value();
  s.dropped = dropped_->value();
  s.hedges_won = hedges_won_->value();
  s.hedges_launched = hedges_launched_->value();
  s.failover_serves = failover_serves_->value();
  s.replicated_routed = replicated_routed_->value();
  s.routed = routed_->value();
  s.batches = batches_->value();
  s.batch_requests = batch_requests_->value();
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    s.probes = probes_;
    s.breaker_opens = breaker_opens_;
  }
  s.per_shard.reserve(per_shard_.size());
  for (const obs::Counter* counter : per_shard_) {
    s.per_shard.push_back(counter->value());
  }
  return s;
}

}  // namespace cluster
}  // namespace optselect
