#include "cluster/query_router.h"

#include <condition_variable>
#include <mutex>
#include <utility>

#include "serving/cache_key.h"
#include "store/store_builder.h"

namespace optselect {
namespace cluster {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

QueryRouter::QueryRouter(std::vector<serving::ServingNode*> shards,
                         std::unordered_set<std::string> replicated,
                         FailoverConfig failover)
    : shards_(std::move(shards)),
      replicated_(std::move(replicated)),
      failover_(failover),
      health_(shards_.size()) {
  if (failover_.breaker_threshold == 0) failover_.breaker_threshold = 1;
  if (failover_.breaker_probe_after == 0) failover_.breaker_probe_after = 1;
  per_shard_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    per_shard_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

size_t QueryRouter::OwnerOf(std::string_view raw_query) const {
  return store::ShardFilter::OwnerShard(serving::NormalizeQuery(raw_query),
                                        shards_.size());
}

bool QueryRouter::IsReplicated(std::string_view raw_query) const {
  return replicated_.count(serving::NormalizeQuery(raw_query)) > 0;
}

size_t QueryRouter::Route(std::string_view raw_query) {
  std::string normalized = serving::NormalizeQuery(raw_query);
  size_t shard;
  if (replicated_.count(normalized) > 0) {
    shard = static_cast<size_t>(
        round_robin_.fetch_add(1, std::memory_order_relaxed) %
        shards_.size());
    replicated_routed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    shard = store::ShardFilter::OwnerShard(normalized, shards_.size());
  }
  routed_.fetch_add(1, std::memory_order_relaxed);
  per_shard_[shard]->fetch_add(1, std::memory_order_relaxed);
  return shard;
}

serving::ServeResult QueryRouter::Serve(const std::string& query) {
  return shards_[Route(query)]->Serve(query);
}

bool QueryRouter::Submit(
    std::string query, std::function<void(serving::ServeResult)> callback) {
  serving::ServingNode* shard = shards_[Route(query)];
  return shard->Submit(std::move(query), std::move(callback));
}

std::vector<serving::ServeResult> QueryRouter::ServeBatch(
    const std::vector<std::string>& queries) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_requests_.fetch_add(queries.size(), std::memory_order_relaxed);

  std::vector<serving::ServeResult> results(queries.size());
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  size_t accepted = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    serving::ServingNode* shard = shards_[Route(queries[i])];
    bool ok = shard->Submit(queries[i], [&, i](serving::ServeResult r) {
      std::lock_guard<std::mutex> lock(mu);
      results[i] = std::move(r);
      ++done;
      cv.notify_one();
    });
    if (ok) ++accepted;  // shed requests keep the default ok == false
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == accepted; });
  return results;
}

// ------------------------------------------------------- failure domains

void QueryRouter::TransitionLocked(ShardHealth* health, size_t shard,
                                   BreakerState to) {
  BreakerTransition t;
  t.seq = transition_seq_++;
  t.shard = shard;
  t.from = health->state;
  t.to = to;
  if (transitions_.size() >= kMaxBreakerTransitions) {
    transitions_.pop_front();  // bounded log; seq stays global
  }
  transitions_.push_back(t);
  health->state = to;
  if (to == BreakerState::kOpen) ++breaker_opens_;
}

BreakerState QueryRouter::shard_state(size_t shard) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_[shard].state;
}

std::vector<BreakerTransition> QueryRouter::breaker_transitions() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return std::vector<BreakerTransition>(transitions_.begin(),
                                        transitions_.end());
}

bool QueryRouter::BreakerClosed(size_t shard) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_[shard].state == BreakerState::kClosed;
}

bool QueryRouter::AllowAttempt(size_t shard) {
  std::lock_guard<std::mutex> lock(health_mu_);
  ShardHealth& health = health_[shard];
  switch (health.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      // A probe is already deciding this shard's fate; further requests
      // ride along (their outcomes feed the breaker too).
      return true;
    case BreakerState::kOpen:
      // Strictly-greater: the probe is admitted on the decision *after*
      // breaker_probe_after skipped ones, as documented — and
      // breaker_probe_after == 1 still skips once (kOpen is never
      // behaviorally identical to kHalfOpen).
      if (++health.skips_while_open > failover_.breaker_probe_after) {
        TransitionLocked(&health, shard, BreakerState::kHalfOpen);
        health.skips_while_open = 0;
        ++probes_;
        return true;
      }
      return false;
  }
  return true;
}

void QueryRouter::RecordOutcome(size_t shard, bool ok) {
  std::lock_guard<std::mutex> lock(health_mu_);
  ShardHealth& health = health_[shard];
  if (ok) {
    // Any successful answer proves the shard serves; close immediately
    // (half-open probe success, or a late hedge straggler).
    health.consecutive_failures = 0;
    if (health.state != BreakerState::kClosed) {
      TransitionLocked(&health, shard, BreakerState::kClosed);
    }
    return;
  }
  ++health.consecutive_failures;
  if (health.state == BreakerState::kHalfOpen) {
    // Failed probe: back to open, restart the skip countdown.
    TransitionLocked(&health, shard, BreakerState::kOpen);
    health.skips_while_open = 0;
  } else if (health.state == BreakerState::kClosed &&
             health.consecutive_failures >= failover_.breaker_threshold) {
    TransitionLocked(&health, shard, BreakerState::kOpen);
    health.skips_while_open = 0;
  }
}

QueryRouter::Attempt QueryRouter::AttemptOn(size_t shard,
                                            const std::string& query,
                                            size_t hedge_shard) {
  // Shared between this thread and up to two shard-worker callbacks;
  // shared_ptr so a hedge straggler that answers after we returned
  // still has somewhere safe to write.
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending = 0;
    bool have = false;
    size_t winner = kNoShard;
    serving::ServeResult result;
  };
  auto state = std::make_shared<State>();

  // Hedge submissions never feed the breaker (record == false): a
  // hedge fires on wall time, so letting its outcome touch the
  // count-based health state would make breaker transitions — and
  // therefore chaos replays — timing-dependent. Health is judged by
  // first-class attempts only; the hedge is a latency optimization.
  auto submit_to = [&](size_t target, bool record) -> bool {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->pending;
    }
    bool accepted = shards_[target]->Submit(
        query, [this, state, target, record](serving::ServeResult r) {
          // Breaker first, state lock second — RecordOutcome never
          // nests inside state->mu, so lock order is single-level.
          if (record) RecordOutcome(target, r.ok);
          std::lock_guard<std::mutex> lock(state->mu);
          --state->pending;
          if (!state->have && r.ok) {
            state->have = true;
            state->winner = target;
            state->result = std::move(r);
          }
          state->cv.notify_all();
        });
    if (!accepted) {
      // Synchronous rejection: dead shard or full queue — the callback
      // will never fire.
      if (record) RecordOutcome(target, false);
      std::lock_guard<std::mutex> lock(state->mu);
      --state->pending;
    }
    return accepted;
  };

  Attempt attempt;
  if (!submit_to(shard, /*record=*/true)) {
    // Synchronous rejection: no hedge — the caller's failover loop
    // tries the next holder as a first-class attempt instead.
    return attempt;
  }

  std::unique_lock<std::mutex> lock(state->mu);
  if (hedge_shard != kNoShard) {
    bool primary_done =
        state->cv.wait_for(lock, failover_.hedge_delay, [&] {
          return state->have || state->pending == 0;
        });
    if (!primary_done) {
      // Primary is slow: re-issue on the next replica and take
      // whichever answers first (the loser's callback is discarded).
      lock.unlock();
      if (submit_to(hedge_shard, /*record=*/false)) {
        attempt.hedge_used = true;
        hedges_launched_.fetch_add(1, std::memory_order_relaxed);
      }
      lock.lock();
    }
  }
  state->cv.wait(lock, [&] { return state->have || state->pending == 0; });
  if (!state->have) return attempt;  // every submission failed

  attempt.ok = true;
  attempt.result = std::move(state->result);
  if (attempt.hedge_used && state->winner == hedge_shard) {
    attempt.result.hedged = true;
    hedges_won_.fetch_add(1, std::memory_order_relaxed);
  }
  return attempt;
}

serving::ServeResult QueryRouter::ServeWithFailover(
    const std::string& query) {
  failover_serves_.fetch_add(1, std::memory_order_relaxed);
  const size_t n = shards_.size();
  const std::string normalized = serving::NormalizeQuery(query);
  const bool replicated = replicated_.count(normalized) > 0;
  const size_t owner = store::ShardFilter::OwnerShard(normalized, n);

  // Holders of the key's store entry: the owner alone, or — replicated
  // — every shard, starting at the round-robin cursor so healthy-path
  // traffic keeps spreading exactly like Route().
  std::vector<size_t> holders;
  if (replicated) {
    replicated_routed_.fetch_add(1, std::memory_order_relaxed);
    size_t start = static_cast<size_t>(
        round_robin_.fetch_add(1, std::memory_order_relaxed) % n);
    holders.reserve(n);
    for (size_t i = 0; i < n; ++i) holders.push_back((start + i) % n);
  } else {
    holders.push_back(owner);
  }

  std::vector<char> attempted(n, 0);
  std::vector<char> is_holder(n, 0);
  for (size_t shard : holders) is_holder[shard] = 1;
  size_t attempts = 0;
  auto finish = [&](serving::ServeResult result,
                    size_t shard) -> serving::ServeResult {
    routed_.fetch_add(1, std::memory_order_relaxed);
    per_shard_[shard]->fetch_add(1, std::memory_order_relaxed);
    if (attempts > 1) retried_.fetch_add(1, std::memory_order_relaxed);
    return result;
  };

  // Phase 1 — holders, healthy-first, hedged. The hedge target is the
  // next breaker-closed holder (never probes an open shard on spec).
  for (size_t idx = 0; idx < holders.size(); ++idx) {
    size_t shard = holders[idx];
    if (attempted[shard] || !AllowAttempt(shard)) continue;
    size_t hedge = kNoShard;
    if (failover_.hedging && replicated) {
      for (size_t j = idx + 1; j < holders.size(); ++j) {
        if (!attempted[holders[j]] && BreakerClosed(holders[j])) {
          hedge = holders[j];
          break;
        }
      }
    }
    attempted[shard] = 1;
    ++attempts;
    Attempt attempt = AttemptOn(shard, query, hedge);
    // A launched hedge already queried its replica — don't re-attempt
    // it (its outcome deliberately never touched the breaker).
    if (attempt.hedge_used) attempted[hedge] = 1;
    if (attempt.ok) {
      size_t winner = attempt.result.hedged ? hedge : shard;
      return finish(std::move(attempt.result), winner);
    }
  }

  // Phase 2 — every holder is down or gated: fall back to any shard
  // that answers. A non-holder lacks the entry but shares the immutable
  // retrieval stack, so it serves the plain DPH top-k — a correct,
  // non-diversified ranking, tagged `degraded` so the caller can tell.
  // The sweep can also reach a breaker-gated *holder* (its probe turn,
  // or the last-resort pass): a holder's answer is full quality and is
  // never tagged. Healthy shards first; phase 3 ignores open breakers
  // rather than drop (a success also closes the breaker early).
  for (int respect_breaker = 1; respect_breaker >= 0; --respect_breaker) {
    for (size_t i = 0; i < n; ++i) {
      size_t shard = (owner + 1 + i) % n;
      if (attempted[shard]) continue;
      if (respect_breaker && !AllowAttempt(shard)) continue;
      attempted[shard] = 1;
      ++attempts;
      Attempt attempt = AttemptOn(shard, query, kNoShard);
      if (attempt.ok) {
        if (!is_holder[shard]) {
          attempt.result.degraded = true;
          degraded_.fetch_add(1, std::memory_order_relaxed);
        }
        return finish(std::move(attempt.result), shard);
      }
    }
  }

  // Nothing in the cluster answered.
  dropped_.fetch_add(1, std::memory_order_relaxed);
  routed_.fetch_add(1, std::memory_order_relaxed);
  return serving::ServeResult{};  // ok == false
}

RouterStats QueryRouter::stats() const {
  RouterStats s;
  s.routed = routed_.load(std::memory_order_relaxed);
  s.replicated_routed = replicated_routed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batch_requests = batch_requests_.load(std::memory_order_relaxed);
  s.failover_serves = failover_serves_.load(std::memory_order_relaxed);
  s.retried = retried_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.hedges_launched = hedges_launched_.load(std::memory_order_relaxed);
  s.hedges_won = hedges_won_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    s.probes = probes_;
    s.breaker_opens = breaker_opens_;
  }
  s.per_shard.reserve(per_shard_.size());
  for (const auto& counter : per_shard_) {
    s.per_shard.push_back(counter->load(std::memory_order_relaxed));
  }
  return s;
}

}  // namespace cluster
}  // namespace optselect
