#include "cluster/query_router.h"

#include <condition_variable>
#include <mutex>
#include <utility>

#include "serving/cache_key.h"
#include "store/store_builder.h"

namespace optselect {
namespace cluster {

QueryRouter::QueryRouter(std::vector<serving::ServingNode*> shards,
                         std::unordered_set<std::string> replicated)
    : shards_(std::move(shards)), replicated_(std::move(replicated)) {
  per_shard_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    per_shard_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

size_t QueryRouter::OwnerOf(std::string_view raw_query) const {
  return store::ShardFilter::OwnerShard(serving::NormalizeQuery(raw_query),
                                        shards_.size());
}

bool QueryRouter::IsReplicated(std::string_view raw_query) const {
  return replicated_.count(serving::NormalizeQuery(raw_query)) > 0;
}

size_t QueryRouter::Route(std::string_view raw_query) {
  std::string normalized = serving::NormalizeQuery(raw_query);
  size_t shard;
  if (replicated_.count(normalized) > 0) {
    shard = static_cast<size_t>(
        round_robin_.fetch_add(1, std::memory_order_relaxed) %
        shards_.size());
    replicated_routed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    shard = store::ShardFilter::OwnerShard(normalized, shards_.size());
  }
  routed_.fetch_add(1, std::memory_order_relaxed);
  per_shard_[shard]->fetch_add(1, std::memory_order_relaxed);
  return shard;
}

serving::ServeResult QueryRouter::Serve(const std::string& query) {
  return shards_[Route(query)]->Serve(query);
}

bool QueryRouter::Submit(
    std::string query, std::function<void(serving::ServeResult)> callback) {
  serving::ServingNode* shard = shards_[Route(query)];
  return shard->Submit(std::move(query), std::move(callback));
}

std::vector<serving::ServeResult> QueryRouter::ServeBatch(
    const std::vector<std::string>& queries) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_requests_.fetch_add(queries.size(), std::memory_order_relaxed);

  std::vector<serving::ServeResult> results(queries.size());
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  size_t accepted = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    serving::ServingNode* shard = shards_[Route(queries[i])];
    bool ok = shard->Submit(queries[i], [&, i](serving::ServeResult r) {
      std::lock_guard<std::mutex> lock(mu);
      results[i] = std::move(r);
      ++done;
      cv.notify_one();
    });
    if (ok) ++accepted;  // shed requests keep the default ok == false
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == accepted; });
  return results;
}

RouterStats QueryRouter::stats() const {
  RouterStats s;
  s.routed = routed_.load(std::memory_order_relaxed);
  s.replicated_routed = replicated_routed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batch_requests = batch_requests_.load(std::memory_order_relaxed);
  s.per_shard.reserve(per_shard_.size());
  for (const auto& counter : per_shard_) {
    s.per_shard.push_back(counter->load(std::memory_order_relaxed));
  }
  return s;
}

}  // namespace cluster
}  // namespace optselect
