#include "cluster/chaos.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "serving/cache_key.h"
#include "serving/replay.h"
#include "util/hash.h"
#include "util/rng.h"

namespace optselect {
namespace cluster {

uint64_t RankingHash(const std::vector<DocId>& ranking) {
  return util::Fnv1a64(ranking.data(), ranking.size() * sizeof(DocId));
}

std::vector<std::string> BuildChaosMix(
    const querylog::PopularityMap& popularity, const ChaosConfig& config) {
  util::Rng rng(config.seed);
  return querylog::ZipfQueryMix(popularity, config.requests,
                                config.zipf_skew, &rng);
}

std::vector<ChaosEvent> DefaultChaosSchedule(size_t requests,
                                             size_t num_shards) {
  using Action = ChaosEvent::Action;
  std::vector<ChaosEvent> schedule;
  if (requests == 0 || num_shards < 2) return schedule;
  auto at = [&](size_t num, size_t den) { return requests * num / den; };

  // Slow window on shard 0: long enough to fire hedges on replicated
  // keys, short enough that stragglers drain long before the first
  // kill (shard 0 is never killed — see ChaosConfig::schedule).
  schedule.push_back({at(1, 8), Action::kSlowReads, 0});
  schedule.push_back({at(3, 16), Action::kFastReads, 0});

  // Kill shard 1 for a quarter of the run, then revive it.
  schedule.push_back({at(1, 4), Action::kKill, 1});
  schedule.push_back({at(1, 2), Action::kRevive, 1});

  // With a third shard available, a second, shorter outage.
  if (num_shards >= 3) {
    schedule.push_back({at(5, 8), Action::kKill, 2});
    schedule.push_back({at(3, 4), Action::kRevive, 2});
  }
  return schedule;
}

namespace {

/// Shared sizing for both scenario entry points.
ClusterConfig ChaosClusterConfig(const ChaosConfig& config) {
  ClusterConfig cluster_config;
  cluster_config.num_shards = std::max<size_t>(1, config.num_shards);
  cluster_config.replicate_hot = config.replicate_hot;
  cluster_config.failover = config.failover;
  cluster_config.node = config.node;
  // The runner is strictly sequential (one request in flight, plus at
  // most one hedge), so a small queue suffices; size it anyway so an
  // injected slowdown can never turn into accidental load shedding.
  cluster_config.node.queue_capacity =
      std::max<size_t>(cluster_config.node.queue_capacity, 64);
  return cluster_config;
}

/// The scenario body, over an already-built cluster (heap or mapped —
/// the schedule, replay, and report are backing-agnostic, which is the
/// point: the acceptance checks must hold bit-for-bit either way).
ChaosReport RunChaosOnCluster(ShardedCluster& cluster,
                              const std::vector<std::string>& mix,
                              const ChaosConfig& config) {
  // Router-only tracer: with the sequential replay the router's trace
  // sequence number IS the request index, so sampled traces line up
  // with the outcome vector by seq. Installed on the router alone —
  // shard-level traces run on independent sequence counters and would
  // interleave into the ring. Ring sized to the run: nothing evicted.
  std::unique_ptr<obs::Tracer> tracer;
  if (obs::TracingCompiledIn()) {
    obs::TracerConfig trace_config;
    trace_config.sample_every = config.trace_sample_every;
    trace_config.seed = config.trace_seed;
    trace_config.ring_capacity = mix.size() + 1;
    tracer = std::make_unique<obs::Tracer>(trace_config);
    cluster.router().set_tracer(tracer.get());
  }

  std::vector<std::unique_ptr<serving::ScriptedFaultInjector>> injectors;
  injectors.reserve(cluster.num_shards());
  for (size_t i = 0; i < cluster.num_shards(); ++i) {
    injectors.push_back(std::make_unique<serving::ScriptedFaultInjector>());
    cluster.shard(i)->set_fault_injector(injectors.back().get());
  }

  std::vector<ChaosEvent> schedule = config.schedule;
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at_request < b.at_request;
                   });

  ChaosReport report;
  report.outcomes.resize(mix.size());
  size_t next_event = 0;
  auto apply_due = [&](size_t request_index) {
    while (next_event < schedule.size() &&
           schedule[next_event].at_request <= request_index) {
      const ChaosEvent& event = schedule[next_event++];
      if (event.shard >= injectors.size()) continue;
      serving::ScriptedFaultInjector* injector =
          injectors[event.shard].get();
      switch (event.action) {
        case ChaosEvent::Action::kKill:
          injector->SetDead(true);
          break;
        case ChaosEvent::Action::kRevive:
          injector->SetDead(false);
          break;
        case ChaosEvent::Action::kSlowReads:
          injector->SetStoreReadDelay(config.slow_read_delay);
          break;
        case ChaosEvent::Action::kFastReads:
          injector->SetStoreReadDelay(std::chrono::microseconds(0));
          break;
      }
    }
  };

  serving::ReplayOutcome replay = serving::ReplaySequential(
      [&](const std::string& query) {
        return cluster.ServeWithFailover(query);
      },
      mix, apply_due,
      [&](size_t i, const serving::ServeResult& result) {
        ChaosRequestOutcome& outcome = report.outcomes[i];
        outcome.answered = result.ok;
        outcome.degraded = result.degraded;
        outcome.diversified = result.diversified;
        outcome.ranking_hash = RankingHash(result.ranking);
        if (!result.ok) ++report.dropped;
        if (result.degraded) ++report.degraded;
      });
  report.wall_ms = replay.wall_ms;
  report.qps = replay.qps;

  // Drain the shards before reading the transition log so a hedge
  // straggler cannot append after the copy.
  cluster.Shutdown();
  report.transitions = cluster.router().breaker_transitions();
  report.router = cluster.router().stats();
  for (size_t i = 0; i < cluster.num_shards(); ++i) {
    report.streaming_served += cluster.shard(i)->Stats().streaming_served;
  }
  if (tracer != nullptr) {
    report.traces = tracer->Recent();
    report.trace_breakers = tracer->breaker_events();
    cluster.router().set_tracer(nullptr);
  }
  return report;
}

}  // namespace

ChaosReport RunChaosScenario(const store::DiversificationStore& full_store,
                             const pipeline::Testbed* testbed,
                             const querylog::PopularityMap* popularity,
                             const std::vector<std::string>& mix,
                             const ChaosConfig& config) {
  ShardedCluster cluster(full_store, testbed, popularity,
                         ChaosClusterConfig(config));
  return RunChaosOnCluster(cluster, mix, config);
}

ChaosReport RunChaosScenario(
    std::shared_ptr<const store::MappedStoreFile> mapped_store,
    const pipeline::Testbed* testbed,
    const querylog::PopularityMap* popularity,
    const std::vector<std::string>& mix, const ChaosConfig& config) {
  ShardedCluster cluster(std::move(mapped_store), &testbed->searcher(),
                         &testbed->snippets(), &testbed->analyzer(),
                         &testbed->corpus().store, popularity,
                         ChaosClusterConfig(config));
  return RunChaosOnCluster(cluster, mix, config);
}

size_t CountHedgeOpportunities(const store::DiversificationStore& store,
                               const querylog::PopularityMap& popularity,
                               const std::vector<std::string>& mix,
                               const ChaosConfig& config) {
  const size_t n = std::max<size_t>(1, config.num_shards);
  if (!config.failover.hedging || config.replicate_hot == 0 || n < 2) {
    return 0;
  }
  // A hedge fires only if the slowed primary is still unanswered after
  // hedge_delay; require 2x headroom before promising one.
  if (config.slow_read_delay < 2 * config.failover.hedge_delay) return 0;

  std::vector<std::string> hot =
      HottestStoredKeys(store, popularity, config.replicate_hot);
  std::unordered_set<std::string> replicated(hot.begin(), hot.end());

  std::vector<ChaosEvent> schedule = config.schedule;
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at_request < b.at_request;
                   });
  std::vector<char> slowed(n, 0);
  size_t next_event = 0;
  uint64_t round_robin = 0;
  size_t opportunities = 0;
  for (size_t r = 0; r < mix.size(); ++r) {
    while (next_event < schedule.size() &&
           schedule[next_event].at_request <= r) {
      const ChaosEvent& event = schedule[next_event++];
      if (event.shard >= n) continue;
      if (event.action == ChaosEvent::Action::kSlowReads) {
        slowed[event.shard] = 1;
      } else if (event.action == ChaosEvent::Action::kFastReads) {
        slowed[event.shard] = 0;
      }
    }
    if (replicated.count(serving::NormalizeQuery(mix[r])) == 0) continue;
    size_t pick = static_cast<size_t>(round_robin++ % n);
    if (slowed[pick]) ++opportunities;
  }
  return opportunities;
}

std::unordered_map<std::string, uint64_t> BuildPassthroughHashes(
    const pipeline::Testbed* testbed, const serving::ServingConfig& node,
    const std::vector<std::string>& mix) {
  store::DiversificationStore empty;
  serving::ServingNode plain(&empty, testbed, node);
  std::unordered_map<std::string, uint64_t> hashes;
  for (const std::string& query : mix) {
    if (hashes.count(query) > 0) continue;
    hashes[query] = RankingHash(plain.Serve(query).ranking);
  }
  return hashes;
}

ChaosVerdict VerifyChaosRuns(
    const ChaosReport& run_a, const ChaosReport& run_b,
    const ChaosReport& no_fault, const std::vector<std::string>& mix,
    const std::unordered_map<std::string, uint64_t>& passthrough_hashes) {
  ChaosVerdict verdict;
  verdict.dropped = run_a.dropped + run_b.dropped;
  verdict.breaker_opened = run_a.router.breaker_opens > 0;

  // Determinism: same seed, same outcomes, same breaker story.
  size_t n = std::max(run_a.outcomes.size(), run_b.outcomes.size());
  for (size_t i = 0; i < n; ++i) {
    if (i >= run_a.outcomes.size() || i >= run_b.outcomes.size() ||
        run_a.outcomes[i] != run_b.outcomes[i]) {
      ++verdict.outcome_mismatches;
    }
  }
  size_t t = std::max(run_a.transitions.size(), run_b.transitions.size());
  for (size_t i = 0; i < t; ++i) {
    if (i >= run_a.transitions.size() || i >= run_b.transitions.size() ||
        !(run_a.transitions[i] == run_b.transitions[i])) {
      ++verdict.transition_mismatches;
    }
  }

  // Correctness against the references, per request.
  for (size_t i = 0; i < run_a.outcomes.size(); ++i) {
    const ChaosRequestOutcome& outcome = run_a.outcomes[i];
    if (!outcome.answered) continue;  // already counted as dropped
    if (!outcome.degraded) {
      // Healthy keys: bit-identical to the no-fault run, wherever the
      // answer came from (owner, replica, or hedge winner).
      if (i >= no_fault.outcomes.size() ||
          outcome.ranking_hash != no_fault.outcomes[i].ranking_hash) {
        ++verdict.healthy_divergences;
      }
    } else {
      // Dead keys: the tagged partial result must be exactly the plain
      // DPH passthrough any shard computes over the shared index.
      auto it = passthrough_hashes.find(mix[i]);
      if (it == passthrough_hashes.end() ||
          outcome.ranking_hash != it->second) {
        ++verdict.degraded_divergences;
      }
    }
  }
  return verdict;
}

namespace {

// Per-run half of VerifyTraceInvariants; accumulates into the verdict.
void CheckRunTraces(const ChaosReport& run, const ChaosConfig& config,
                    size_t* sampled, TraceVerdict* verdict) {
  *sampled = run.traces.size();

  // Each trace must agree with the report's outcome vector at its seq.
  // The hedged flag is excluded, like in ChaosRequestOutcome: which
  // copy wins a hedge race is the one sanctioned non-determinism.
  for (const obs::Trace& trace : run.traces) {
    if (trace.seq >= run.outcomes.size()) {
      ++verdict->outcome_mismatches;
      continue;
    }
    const ChaosRequestOutcome& outcome = run.outcomes[trace.seq];
    if (trace.ok != outcome.answered || trace.degraded != outcome.degraded ||
        trace.diversified != outcome.diversified ||
        trace.ranking_hash != outcome.ranking_hash) {
      ++verdict->outcome_mismatches;
    }
    // Sampling rule: only requests in the sampled residue class may
    // appear (seq % N == seed % N).
    uint64_t n = config.trace_sample_every;
    if (n > 1 && trace.seq % n != config.trace_seed % n) {
      ++verdict->outcome_mismatches;
    }
  }

  // The tracer's breaker log is appended under the same lock as the
  // router's transition log — entry for entry, or something is racing.
  size_t t = std::max(run.transitions.size(), run.trace_breakers.size());
  for (size_t i = 0; i < t; ++i) {
    if (i >= run.transitions.size() || i >= run.trace_breakers.size()) {
      ++verdict->breaker_mismatches;
      continue;
    }
    const BreakerTransition& want = run.transitions[i];
    const obs::Tracer::BreakerEvent& got = run.trace_breakers[i];
    if (got.shard != want.shard ||
        got.from != static_cast<int>(want.from) ||
        got.to != static_cast<int>(want.to)) {
      ++verdict->breaker_mismatches;
    }
  }
}

}  // namespace

TraceVerdict VerifyTraceInvariants(const ChaosReport& run_a,
                                   const ChaosReport& run_b,
                                   const ChaosConfig& config) {
  TraceVerdict verdict;
  if (!obs::TracingCompiledIn()) return verdict;  // nothing to check

  // How many requests the sampling rule selects out of the run.
  uint64_t n = config.trace_sample_every;
  size_t requests = run_a.outcomes.size();
  if (n <= 1) {
    verdict.sampled_expected = requests;
  } else {
    uint64_t residue = config.trace_seed % n;
    verdict.sampled_expected =
        requests > residue ? (requests - 1 - residue) / n + 1 : 0;
  }

  CheckRunTraces(run_a, config, &verdict.sampled_a, &verdict);
  CheckRunTraces(run_b, config, &verdict.sampled_b, &verdict);

  // Determinism across runs: same sampled seqs, same outcomes per
  // trace. (Stage timings differ — they are wall time — and are not
  // compared.)
  size_t m = std::max(run_a.traces.size(), run_b.traces.size());
  for (size_t i = 0; i < m; ++i) {
    if (i >= run_a.traces.size() || i >= run_b.traces.size()) {
      ++verdict.cross_run_mismatches;
      continue;
    }
    const obs::Trace& a = run_a.traces[i];
    const obs::Trace& b = run_b.traces[i];
    if (a.seq != b.seq || a.query != b.query || a.ok != b.ok ||
        a.degraded != b.degraded || a.diversified != b.diversified ||
        a.ranking_hash != b.ranking_hash) {
      ++verdict.cross_run_mismatches;
    }
  }
  return verdict;
}

}  // namespace cluster
}  // namespace optselect
