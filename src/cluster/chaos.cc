#include "cluster/chaos.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "serving/cache_key.h"
#include "serving/replay.h"
#include "util/hash.h"
#include "util/rng.h"

namespace optselect {
namespace cluster {

uint64_t RankingHash(const std::vector<DocId>& ranking) {
  return util::Fnv1a64(ranking.data(), ranking.size() * sizeof(DocId));
}

std::vector<std::string> BuildChaosMix(
    const querylog::PopularityMap& popularity, const ChaosConfig& config) {
  util::Rng rng(config.seed);
  return querylog::ZipfQueryMix(popularity, config.requests,
                                config.zipf_skew, &rng);
}

std::vector<ChaosEvent> DefaultChaosSchedule(size_t requests,
                                             size_t num_shards) {
  using Action = ChaosEvent::Action;
  std::vector<ChaosEvent> schedule;
  if (requests == 0 || num_shards < 2) return schedule;
  auto at = [&](size_t num, size_t den) { return requests * num / den; };

  // Slow window on shard 0: long enough to fire hedges on replicated
  // keys, short enough that stragglers drain long before the first
  // kill (shard 0 is never killed — see ChaosConfig::schedule).
  schedule.push_back({at(1, 8), Action::kSlowReads, 0});
  schedule.push_back({at(3, 16), Action::kFastReads, 0});

  // Kill shard 1 for a quarter of the run, then revive it.
  schedule.push_back({at(1, 4), Action::kKill, 1});
  schedule.push_back({at(1, 2), Action::kRevive, 1});

  // With a third shard available, a second, shorter outage.
  if (num_shards >= 3) {
    schedule.push_back({at(5, 8), Action::kKill, 2});
    schedule.push_back({at(3, 4), Action::kRevive, 2});
  }
  return schedule;
}

ChaosReport RunChaosScenario(const store::DiversificationStore& full_store,
                             const pipeline::Testbed* testbed,
                             const querylog::PopularityMap* popularity,
                             const std::vector<std::string>& mix,
                             const ChaosConfig& config) {
  ClusterConfig cluster_config;
  cluster_config.num_shards = std::max<size_t>(1, config.num_shards);
  cluster_config.replicate_hot = config.replicate_hot;
  cluster_config.failover = config.failover;
  cluster_config.node = config.node;
  // The runner is strictly sequential (one request in flight, plus at
  // most one hedge), so a small queue suffices; size it anyway so an
  // injected slowdown can never turn into accidental load shedding.
  cluster_config.node.queue_capacity =
      std::max<size_t>(cluster_config.node.queue_capacity, 64);

  ShardedCluster cluster(full_store, testbed, popularity, cluster_config);
  std::vector<std::unique_ptr<serving::ScriptedFaultInjector>> injectors;
  injectors.reserve(cluster.num_shards());
  for (size_t i = 0; i < cluster.num_shards(); ++i) {
    injectors.push_back(std::make_unique<serving::ScriptedFaultInjector>());
    cluster.shard(i)->set_fault_injector(injectors.back().get());
  }

  std::vector<ChaosEvent> schedule = config.schedule;
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at_request < b.at_request;
                   });

  ChaosReport report;
  report.outcomes.resize(mix.size());
  size_t next_event = 0;
  auto apply_due = [&](size_t request_index) {
    while (next_event < schedule.size() &&
           schedule[next_event].at_request <= request_index) {
      const ChaosEvent& event = schedule[next_event++];
      if (event.shard >= injectors.size()) continue;
      serving::ScriptedFaultInjector* injector =
          injectors[event.shard].get();
      switch (event.action) {
        case ChaosEvent::Action::kKill:
          injector->SetDead(true);
          break;
        case ChaosEvent::Action::kRevive:
          injector->SetDead(false);
          break;
        case ChaosEvent::Action::kSlowReads:
          injector->SetStoreReadDelay(config.slow_read_delay);
          break;
        case ChaosEvent::Action::kFastReads:
          injector->SetStoreReadDelay(std::chrono::microseconds(0));
          break;
      }
    }
  };

  serving::ReplayOutcome replay = serving::ReplaySequential(
      [&](const std::string& query) {
        return cluster.ServeWithFailover(query);
      },
      mix, apply_due,
      [&](size_t i, const serving::ServeResult& result) {
        ChaosRequestOutcome& outcome = report.outcomes[i];
        outcome.answered = result.ok;
        outcome.degraded = result.degraded;
        outcome.diversified = result.diversified;
        outcome.ranking_hash = RankingHash(result.ranking);
        if (!result.ok) ++report.dropped;
        if (result.degraded) ++report.degraded;
      });
  report.wall_ms = replay.wall_ms;
  report.qps = replay.qps;

  // Drain the shards before reading the transition log so a hedge
  // straggler cannot append after the copy.
  cluster.Shutdown();
  report.transitions = cluster.router().breaker_transitions();
  report.router = cluster.router().stats();
  return report;
}

size_t CountHedgeOpportunities(const store::DiversificationStore& store,
                               const querylog::PopularityMap& popularity,
                               const std::vector<std::string>& mix,
                               const ChaosConfig& config) {
  const size_t n = std::max<size_t>(1, config.num_shards);
  if (!config.failover.hedging || config.replicate_hot == 0 || n < 2) {
    return 0;
  }
  // A hedge fires only if the slowed primary is still unanswered after
  // hedge_delay; require 2x headroom before promising one.
  if (config.slow_read_delay < 2 * config.failover.hedge_delay) return 0;

  std::vector<std::string> hot =
      HottestStoredKeys(store, popularity, config.replicate_hot);
  std::unordered_set<std::string> replicated(hot.begin(), hot.end());

  std::vector<ChaosEvent> schedule = config.schedule;
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at_request < b.at_request;
                   });
  std::vector<char> slowed(n, 0);
  size_t next_event = 0;
  uint64_t round_robin = 0;
  size_t opportunities = 0;
  for (size_t r = 0; r < mix.size(); ++r) {
    while (next_event < schedule.size() &&
           schedule[next_event].at_request <= r) {
      const ChaosEvent& event = schedule[next_event++];
      if (event.shard >= n) continue;
      if (event.action == ChaosEvent::Action::kSlowReads) {
        slowed[event.shard] = 1;
      } else if (event.action == ChaosEvent::Action::kFastReads) {
        slowed[event.shard] = 0;
      }
    }
    if (replicated.count(serving::NormalizeQuery(mix[r])) == 0) continue;
    size_t pick = static_cast<size_t>(round_robin++ % n);
    if (slowed[pick]) ++opportunities;
  }
  return opportunities;
}

std::unordered_map<std::string, uint64_t> BuildPassthroughHashes(
    const pipeline::Testbed* testbed, const serving::ServingConfig& node,
    const std::vector<std::string>& mix) {
  store::DiversificationStore empty;
  serving::ServingNode plain(&empty, testbed, node);
  std::unordered_map<std::string, uint64_t> hashes;
  for (const std::string& query : mix) {
    if (hashes.count(query) > 0) continue;
    hashes[query] = RankingHash(plain.Serve(query).ranking);
  }
  return hashes;
}

ChaosVerdict VerifyChaosRuns(
    const ChaosReport& run_a, const ChaosReport& run_b,
    const ChaosReport& no_fault, const std::vector<std::string>& mix,
    const std::unordered_map<std::string, uint64_t>& passthrough_hashes) {
  ChaosVerdict verdict;
  verdict.dropped = run_a.dropped + run_b.dropped;
  verdict.breaker_opened = run_a.router.breaker_opens > 0;

  // Determinism: same seed, same outcomes, same breaker story.
  size_t n = std::max(run_a.outcomes.size(), run_b.outcomes.size());
  for (size_t i = 0; i < n; ++i) {
    if (i >= run_a.outcomes.size() || i >= run_b.outcomes.size() ||
        run_a.outcomes[i] != run_b.outcomes[i]) {
      ++verdict.outcome_mismatches;
    }
  }
  size_t t = std::max(run_a.transitions.size(), run_b.transitions.size());
  for (size_t i = 0; i < t; ++i) {
    if (i >= run_a.transitions.size() || i >= run_b.transitions.size() ||
        !(run_a.transitions[i] == run_b.transitions[i])) {
      ++verdict.transition_mismatches;
    }
  }

  // Correctness against the references, per request.
  for (size_t i = 0; i < run_a.outcomes.size(); ++i) {
    const ChaosRequestOutcome& outcome = run_a.outcomes[i];
    if (!outcome.answered) continue;  // already counted as dropped
    if (!outcome.degraded) {
      // Healthy keys: bit-identical to the no-fault run, wherever the
      // answer came from (owner, replica, or hedge winner).
      if (i >= no_fault.outcomes.size() ||
          outcome.ranking_hash != no_fault.outcomes[i].ranking_hash) {
        ++verdict.healthy_divergences;
      }
    } else {
      // Dead keys: the tagged partial result must be exactly the plain
      // DPH passthrough any shard computes over the shared index.
      auto it = passthrough_hashes.find(mix[i]);
      if (it == passthrough_hashes.end() ||
          outcome.ranking_hash != it->second) {
        ++verdict.degraded_divergences;
      }
    }
  }
  return verdict;
}

}  // namespace cluster
}  // namespace optselect
