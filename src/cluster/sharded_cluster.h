// Sharded multi-node serving cluster — horizontal scale for the
// paper's serving architecture.
//
// Section 4.1 sizes the diversification store for a single node; a web
// search engine runs the same design on many machines. A ShardedCluster
// models that deployment inside one process: the full store is carved
// by query hash into N disjoint per-shard stores (store::SplitStore),
// and each shard is a complete, independent `ServingNode` — its own
// immutable snapshot, result cache, bounded queue, worker pool, and
// (when the CLI wires one) store refresher. Nothing is shared between
// shards except the immutable retrieval stack, which is read-only by
// construction.
//
//       full store ──SplitStore──> store₀  store₁ … store_{N-1}
//                                    │       │         │
//   request ──> QueryRouter ──────> node₀   node₁ …  node_{N-1}
//      │   (hash owner; hot keys      │       │         │
//      │    round-robin over the      └───────┴────┬────┘
//      │    replicas)                       ClusterStats
//      └─ batch: fan out + gather        (summed counters +
//                                         merged histograms)
//
// The top `replicate_hot` hottest *stored* queries (by PopularityMap
// frequency) are additionally copied onto every shard, and the router
// spreads their traffic round-robin — the head of the Zipf distribution
// would otherwise serialize on one shard. Replica rankings are
// bit-identical to the owner's: same entry bytes, same immutable index.
//
// Refresh deltas flow through ApplyDelta: each shard applies exactly
// the slice of the delta it holds (owner or replica), through the same
// BuildSnapshot → ReloadStore path a single node uses, so per-shard hot
// reload stays dirty-only and zero-downtime. Live tailing uses one
// `StoreRefresher` per shard with `key_filter` set to the shard's
// ShardFilter (see store_refresher.h).

#ifndef OPTSELECT_CLUSTER_SHARDED_CLUSTER_H_
#define OPTSELECT_CLUSTER_SHARDED_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "cluster/query_router.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/testbed.h"
#include "querylog/popularity.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"
#include "store/store_snapshot.h"

namespace optselect {
namespace cluster {

/// Cluster sizing knobs.
struct ClusterConfig {
  /// Independent ServingNode shards (0 clamps to 1).
  size_t num_shards = 2;
  /// Top-K hottest stored queries replicated onto every shard for
  /// round-robin load spreading (0 disables; needs a PopularityMap).
  size_t replicate_hot = 0;
  /// Breaker + hedging knobs for the fault-tolerant serving path
  /// (QueryRouter::ServeWithFailover).
  FailoverConfig failover;
  /// Per-shard serving configuration (queue, workers, cache, params) —
  /// every shard is configured identically, like a homogeneous fleet.
  serving::ServingConfig node;
  /// Metrics registry every shard and the router register into (each
  /// shard under a `shard=<i>` label). Non-owned; null makes the
  /// cluster create a private one, reachable via metrics().
  obs::MetricsRegistry* registry = nullptr;
};

/// Cluster-level stats snapshot: summed counters plus latency quantiles
/// recomputed from the *merged* per-shard histograms (averaging
/// per-shard p99s would understate the tail).
struct ClusterStats {
  size_t num_shards = 0;
  serving::ServingStats total;
  std::vector<serving::ServingStats> per_shard;
  RouterStats router;
};

/// N independent serving shards behind one router. Implements the
/// unified serving::Frontend contract: blocking Submit takes the
/// fault-tolerant failover path (the production answer path), async
/// SubmitAsync takes the router's hash-routed fast path.
class ShardedCluster : public serving::Frontend {
 public:
  /// Carves `full_store` into per-shard stores and starts one node per
  /// shard. All pointers are non-owned, used read-only, and must
  /// outlive the cluster. `popularity` may be null when
  /// `config.replicate_hot == 0`; `config.node.num_workers` is
  /// per-shard (0 ⇒ hardware concurrency *per shard* — usually set it
  /// explicitly for clusters).
  ShardedCluster(const store::DiversificationStore& full_store,
                 const index::Searcher* searcher,
                 const index::SnippetExtractor* snippets,
                 const text::Analyzer* analyzer,
                 const corpus::DocumentStore* documents,
                 const querylog::PopularityMap* popularity,
                 ClusterConfig config);

  /// Zero-copy cluster over a mapped v4 store: every shard serves an
  /// offset-filtered StoreSnapshot::MappedShard view of the *same*
  /// shared mapping — no SplitStore, no per-shard entry copies, and
  /// startup cost is one mmap + validate regardless of shard count.
  /// ApplyDelta still works: a shard's first delta materializes its
  /// slice to heap (BuildSnapshot) and swaps to a heap-backed snapshot.
  ShardedCluster(std::shared_ptr<const store::MappedStoreFile> mapped_store,
                 const index::Searcher* searcher,
                 const index::SnippetExtractor* snippets,
                 const text::Analyzer* analyzer,
                 const corpus::DocumentStore* documents,
                 const querylog::PopularityMap* popularity,
                 ClusterConfig config);

  /// Convenience wiring from a fully built testbed.
  ShardedCluster(const store::DiversificationStore& full_store,
                 const pipeline::Testbed* testbed,
                 const querylog::PopularityMap* popularity,
                 ClusterConfig config);

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  /// Shuts every shard down (drain semantics, like ServingNode).
  ~ShardedCluster() override;

  /// Frontend: blocking request through the fault-tolerant path
  /// (breakers, hedging, degraded fallback) — same as ServeWithFailover.
  serving::Response Submit(const serving::Request& request) override;

  /// Frontend: async request on the router's hash-routed fast path
  /// (load shedding; false ⇒ shed, callback never fires).
  bool SubmitAsync(serving::Request request,
                   std::function<void(serving::Response)> callback) override;

  /// Deprecated shim: single query through the router (blocking,
  /// backpressure, no failover) — the pre-Frontend fast path.
  serving::ServeResult Serve(const std::string& query);

  /// Deprecated shim for SubmitAsync (old callback-submit signature).
  bool Submit(std::string query,
              std::function<void(serving::ServeResult)> callback) {
    return SubmitAsync(serving::Request(std::move(query)),
                       std::move(callback));
  }

  /// Multi-query fan-out + gather; see QueryRouter::ServeBatch.
  std::vector<serving::ServeResult> ServeBatch(
      const std::vector<std::string>& queries);

  /// Fault-tolerant single query: breaker-gated holder attempts, hedged
  /// retries on slow replicas, degraded passthrough fallback when every
  /// holder of the key is down. See QueryRouter::ServeWithFailover.
  serving::ServeResult ServeWithFailover(const std::string& query);

  /// Stops admission on every shard and drains them. Idempotent.
  void Shutdown();

  /// Outcome of one ApplyDelta call.
  struct ApplyOutcome {
    /// Shards that actually swapped a snapshot (held a changed key).
    size_t shards_reloaded = 0;
    /// Shards whose reload was refused (injected kReload fault): their
    /// slice did NOT land — replicas may briefly diverge from the
    /// owner's content until the retry. Re-calling ApplyDelta with the
    /// same delta is the retry: shards already up to date build a
    /// content-identical slice and skip, only the failed shards swap.
    size_t shards_failed = 0;
    /// Cache entries invalidated across all shards.
    size_t invalidated = 0;
    /// Upserts + removals applied, summed over shards (a replicated
    /// key counts once per holding shard).
    size_t changes_applied = 0;
  };

  /// Applies one mined StoreDelta cluster-wide: each shard receives
  /// exactly the upserts/removals whose normalized key it holds (owner
  /// or replica), built into the next snapshot of *its* store and
  /// hot-swapped dirty-only (per-key cache invalidation). Shards whose
  /// slice is empty — or changes nothing — do not reload at all. Safe
  /// to call concurrently with traffic; not with itself.
  ApplyOutcome ApplyDelta(const store::StoreDelta& delta);

  size_t num_shards() const { return shards_.size(); }
  serving::ServingNode* shard(size_t i) { return shards_[i].get(); }
  const store::ShardFilter& filter(size_t i) const { return filters_[i]; }
  QueryRouter& router() { return *router_; }
  const QueryRouter& router() const { return *router_; }

  /// Normalized keys replicated onto every shard, hottest first.
  const std::vector<std::string>& replicated_keys() const {
    return replicated_keys_;
  }

  /// The registry all shards and the router share: per-shard serving
  /// metrics (labelled `shard=<i>`), router metrics, stage histograms.
  const obs::MetricsRegistry& metrics() const { return *registry_; }

  /// Installs (or clears, with nullptr) a tracer on the router's
  /// failover path and every shard's request path. The tracer must
  /// outlive the cluster or be cleared before destruction.
  void set_tracer(obs::Tracer* tracer);

  ClusterStats Stats() const;

 private:
  /// Shared construction tail: builds filters, nodes (snapshots come
  /// from `make_snapshot`, letting heap and mapped ctors differ only in
  /// backing) and the router. `replicated` is the hot-replication set.
  void Init(const std::function<std::shared_ptr<const store::StoreSnapshot>(
                const store::ShardFilter&)>& make_snapshot,
            const index::Searcher* searcher,
            const index::SnippetExtractor* snippets,
            const text::Analyzer* analyzer,
            const corpus::DocumentStore* documents,
            std::unordered_set<std::string> replicated,
            const ClusterConfig& config);

  // Declared before the shards and router so it outlives them: both
  // hold registered handles and callbacks into the registry.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  std::vector<store::ShardFilter> filters_;
  std::vector<std::unique_ptr<serving::ServingNode>> shards_;
  std::vector<std::string> replicated_keys_;
  std::unique_ptr<QueryRouter> router_;
};

/// The `k` hottest normalized store keys of `store` by `popularity`
/// frequency (ties break lexicographically for determinism). This is
/// the cluster's hot-replication set; exposed for the CLI and benches.
std::vector<std::string> HottestStoredKeys(
    const store::DiversificationStore& store,
    const querylog::PopularityMap& popularity, size_t k);

/// Mapped-store overload: same ranking over the keys of a v4 mapping.
std::vector<std::string> HottestStoredKeys(
    const store::MappedStoreFile& store,
    const querylog::PopularityMap& popularity, size_t k);

}  // namespace cluster
}  // namespace optselect

#endif  // OPTSELECT_CLUSTER_SHARDED_CLUSTER_H_
