// Fan-out front end of the sharded serving cluster.
//
// A QueryRouter owns no data — it holds non-owning pointers to N
// `ServingNode` shards and decides, per request, which shard answers:
//
//   single query ──> normalize ──> owner shard (FNV-1a hash mod N)
//                          └─(hot, replicated on every shard)─> round-
//                            robin across shards (load spreading)
//   batch ──> route each query ──> per-shard async fan-out ──> gather
//             (results return in the caller's input order)
//
// Hot queries are the head of the Zipf traffic distribution: pinning
// them to their hash owner would melt one shard while the others idle,
// so the cluster replicates their store entries everywhere (see
// store::ShardFilter / ShardedCluster) and the router spreads their
// requests round-robin. Every shard holds an identical copy of a
// replicated entry over the same immutable retrieval stack, so the
// ranking is bit-identical no matter which shard serves it — asserted
// in tests/cluster_test.cc and bench_cluster_scaling.
//
// Queries with no store entry (passthrough) are routed by the same
// hash: any shard computes the identical plain DPH ranking, and hashing
// keeps their per-shard result caches disjoint.

#ifndef OPTSELECT_CLUSTER_QUERY_ROUTER_H_
#define OPTSELECT_CLUSTER_QUERY_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "serving/serving_node.h"

namespace optselect {
namespace cluster {

/// Router-level counters (shard pick distribution + batch shape).
struct RouterStats {
  uint64_t routed = 0;             ///< single routing decisions made
  uint64_t replicated_routed = 0;  ///< of those, spread round-robin
  uint64_t batches = 0;            ///< ServeBatch calls
  uint64_t batch_requests = 0;     ///< requests fanned out via batches
  std::vector<uint64_t> per_shard; ///< decisions landing on each shard
};

/// Routes requests across a fixed set of shards. Thread-safe: routing
/// state is one atomic round-robin cursor plus relaxed counters.
class QueryRouter {
 public:
  /// `shards` are non-owned and must outlive the router. `replicated`
  /// holds the normalized keys every shard carries (may be empty).
  QueryRouter(std::vector<serving::ServingNode*> shards,
              std::unordered_set<std::string> replicated);

  QueryRouter(const QueryRouter&) = delete;
  QueryRouter& operator=(const QueryRouter&) = delete;

  size_t num_shards() const { return shards_.size(); }

  /// The shard that *owns* the query's normalized key (pure hash — no
  /// replication, no counters). Two routers with the same shard count
  /// always agree on this.
  size_t OwnerOf(std::string_view raw_query) const;

  /// True when the query's normalized key is replicated on every shard.
  bool IsReplicated(std::string_view raw_query) const;

  /// One dispatch decision: the owner shard, or — for replicated keys —
  /// the next shard round-robin. Bumps the routing counters; callers
  /// that only want to *inspect* ownership use OwnerOf.
  size_t Route(std::string_view raw_query);

  /// Synchronous single query: route, then block on the shard's Serve
  /// (backpressure on a full shard queue, exactly like a single node).
  serving::ServeResult Serve(const std::string& query);

  /// Asynchronous single query: route, then the shard's Submit. False ⇒
  /// that shard shed the request (its queue is full or it is shut
  /// down); the callback never fires.
  bool Submit(std::string query,
              std::function<void(serving::ServeResult)> callback);

  /// Fans a multi-query batch out to the owning shards via their async
  /// APIs and gathers the answers. Results align index-for-index with
  /// `queries`; a request shed by its shard yields `ok == false` at its
  /// position (count them via RouterStats vs ServingStats::rejected).
  std::vector<serving::ServeResult> ServeBatch(
      const std::vector<std::string>& queries);

  RouterStats stats() const;

 private:
  std::vector<serving::ServingNode*> shards_;
  std::unordered_set<std::string> replicated_;
  std::atomic<uint64_t> round_robin_{0};

  std::atomic<uint64_t> routed_{0};
  std::atomic<uint64_t> replicated_routed_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_requests_{0};
  /// unique_ptr because atomics are not movable; sized once in the ctor.
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> per_shard_;
};

}  // namespace cluster
}  // namespace optselect

#endif  // OPTSELECT_CLUSTER_QUERY_ROUTER_H_
