// Fan-out front end of the sharded serving cluster.
//
// A QueryRouter owns no data — it holds non-owning pointers to N
// `ServingNode` shards and decides, per request, which shard answers:
//
//   single query ──> normalize ──> owner shard (FNV-1a hash mod N)
//                          └─(hot, replicated on every shard)─> round-
//                            robin across shards (load spreading)
//   batch ──> route each query ──> per-shard async fan-out ──> gather
//             (results return in the caller's input order)
//
// Hot queries are the head of the Zipf traffic distribution: pinning
// them to their hash owner would melt one shard while the others idle,
// so the cluster replicates their store entries everywhere (see
// store::ShardFilter / ShardedCluster) and the router spreads their
// requests round-robin. Every shard holds an identical copy of a
// replicated entry over the same immutable retrieval stack, so the
// ranking is bit-identical no matter which shard serves it — asserted
// in tests/cluster_test.cc and bench_cluster_scaling.
//
// Queries with no store entry (passthrough) are routed by the same
// hash: any shard computes the identical plain DPH ranking, and hashing
// keeps their per-shard result caches disjoint.
//
// Failure domains (ServeWithFailover): the router additionally tracks
// per-shard health with a consecutive-failure circuit breaker
//
//        failures >= threshold           probe fails
//   Closed ───────────────────> Open <─────────────── Half-open
//     ^                           │  probe_after skipped decisions
//     └── any successful answer ──┴─────────────────> Half-open
//
// and answers every request from the best shard still standing: the
// owner (or, for replicated keys, the round-robin replica set, with a
// hedged re-issue on the next replica when the first is slow), then —
// when every holder of the key is down — any live shard, whose
// passthrough DPH ranking is returned tagged `degraded` rather than
// erroring. Breaker probing is *count*-based (skipped decisions, not
// wall time), so a scripted failure schedule replays to bit-identical
// breaker transitions — the property the chaos harness
// (cluster/chaos.h) asserts.

#ifndef OPTSELECT_CLUSTER_QUERY_ROUTER_H_
#define OPTSELECT_CLUSTER_QUERY_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/serving_node.h"

namespace optselect {
namespace cluster {

/// Per-shard circuit breaker state (see the header diagram).
enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Human-readable state name ("closed" / "open" / "half-open").
const char* BreakerStateName(BreakerState state);

/// One breaker state change, in the order it happened. The sequence of
/// transitions is a pure function of the request/outcome sequence
/// (count-based probing, no wall clock), which is what makes chaos runs
/// comparable transition-for-transition.
struct BreakerTransition {
  uint64_t seq = 0;  ///< 0-based position in the router's transition log
  size_t shard = 0;
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
};

inline bool operator==(const BreakerTransition& a,
                       const BreakerTransition& b) {
  return a.seq == b.seq && a.shard == b.shard && a.from == b.from &&
         a.to == b.to;
}

/// Fault-tolerance knobs for ServeWithFailover.
struct FailoverConfig {
  /// Consecutive failed attempts that trip a shard's breaker open.
  size_t breaker_threshold = 3;
  /// Routing decisions skipped past an open shard before one probe
  /// request is let through (count-based, so replays are deterministic).
  size_t breaker_probe_after = 8;
  /// Hedged retries: when the first replica of a *replicated* key has
  /// not answered within hedge_delay, re-issue the request on the next
  /// healthy replica and take whichever answers first. Replicas are
  /// bit-identical, so hedging affects latency, never the ranking.
  bool hedging = true;
  std::chrono::microseconds hedge_delay{2000};
};

/// Router-level counters (shard pick distribution + batch shape).
struct RouterStats {
  uint64_t routed = 0;             ///< single routing decisions made
  uint64_t replicated_routed = 0;  ///< of those, spread round-robin
  uint64_t batches = 0;            ///< ServeBatch calls
  uint64_t batch_requests = 0;     ///< requests fanned out via batches
  std::vector<uint64_t> per_shard; ///< decisions landing on each shard
  // --- ServeWithFailover ----------------------------------------------
  uint64_t failover_serves = 0;    ///< ServeWithFailover calls
  uint64_t retried = 0;            ///< of those, needed > 1 attempt
  uint64_t degraded = 0;           ///< answered off-holder, tagged
  uint64_t dropped = 0;            ///< no shard answered (ok == false)
  uint64_t hedges_launched = 0;    ///< hedge re-issues submitted
  uint64_t hedges_won = 0;         ///< answers taken from the hedge
  uint64_t probes = 0;             ///< half-open probe admissions
  uint64_t breaker_opens = 0;      ///< transitions into kOpen
};

/// Routes requests across a fixed set of shards. Thread-safe: routing
/// state is one atomic round-robin cursor plus relaxed counters.
class QueryRouter {
 public:
  /// `shards` are non-owned and must outlive the router — and, because
  /// failover callbacks touch router state from shard worker threads,
  /// every shard must be Shutdown() (drained) before the router is
  /// destroyed (ShardedCluster guarantees this). `replicated` holds the
  /// normalized keys every shard carries (may be empty). `registry` is
  /// where the router registers its counters (non-owned; the cluster
  /// passes its shared registry) — null makes the router create a
  /// private one, reachable via metrics().
  QueryRouter(std::vector<serving::ServingNode*> shards,
              std::unordered_set<std::string> replicated,
              FailoverConfig failover = FailoverConfig(),
              obs::MetricsRegistry* registry = nullptr);

  QueryRouter(const QueryRouter&) = delete;
  QueryRouter& operator=(const QueryRouter&) = delete;

  size_t num_shards() const { return shards_.size(); }

  /// The shard that *owns* the query's normalized key (pure hash — no
  /// replication, no counters). Two routers with the same shard count
  /// always agree on this.
  size_t OwnerOf(std::string_view raw_query) const;

  /// True when the query's normalized key is replicated on every shard.
  bool IsReplicated(std::string_view raw_query) const;

  /// One dispatch decision: the owner shard, or — for replicated keys —
  /// the next shard round-robin. Bumps the routing counters; callers
  /// that only want to *inspect* ownership use OwnerOf.
  size_t Route(std::string_view raw_query);

  /// Synchronous single query: route, then block on the shard's Serve
  /// (backpressure on a full shard queue, exactly like a single node).
  serving::ServeResult Serve(const std::string& query);

  /// Asynchronous single query: route, then the shard's Submit. False ⇒
  /// that shard shed the request (its queue is full or it is shut
  /// down); the callback never fires.
  bool Submit(std::string query,
              std::function<void(serving::ServeResult)> callback);

  /// Fans a multi-query batch out to the owning shards via their async
  /// APIs and gathers the answers. Results align index-for-index with
  /// `queries`; a request shed by its shard yields `ok == false` at its
  /// position (count them via RouterStats vs ServingStats::rejected).
  std::vector<serving::ServeResult> ServeBatch(
      const std::vector<std::string>& queries);

  /// Fault-tolerant single query (see the header diagram): attempts the
  /// key's holders healthy-first with breaker gating and hedged
  /// retries, falls back to a `degraded`-tagged passthrough from any
  /// live shard when every holder is down, and returns ok == false only
  /// when *no* shard in the cluster answered. Every first-class attempt
  /// outcome feeds the per-shard breakers; hedge submissions do not —
  /// hedges fire on wall time, and health state must stay a pure
  /// function of the request sequence so scripted replays are
  /// deterministic. Blocking (waits for an answer).
  serving::ServeResult ServeWithFailover(const std::string& query);

  /// The shard's current breaker state.
  BreakerState shard_state(size_t shard) const;

  /// The breaker transition log, in order (copied). Bounded: a
  /// long-lived router under sustained failure keeps only the most
  /// recent kMaxBreakerTransitions entries (seq numbers stay global,
  /// so truncation is detectable: front().seq > 0). Chaos-scale runs
  /// never hit the cap.
  std::vector<BreakerTransition> breaker_transitions() const;

  /// Retention bound of the transition log — a flapping shard under
  /// production traffic transitions forever; the log is observability,
  /// not an unbounded ledger.
  static constexpr size_t kMaxBreakerTransitions = 8192;

  const FailoverConfig& failover_config() const { return failover_; }

  /// Installs (or clears) a tracer: ServeWithFailover samples requests
  /// (deterministic 1-in-N on its own sequence counter) and records
  /// attempt / hedge / degraded-failover hops, and *every* breaker
  /// transition is mirrored into the tracer's breaker log — the chaos
  /// harness diffs that mirror against breaker_transitions(). Not
  /// owned; must outlive the router or be cleared first. No-op in
  /// builds without OPTSELECT_TRACING.
  void set_tracer(obs::Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }

  /// The registry this router records into (the injected one, or the
  /// private one created when none was supplied).
  const obs::MetricsRegistry& metrics() const { return *registry_; }

  /// Snapshot through the registry handles in effect-before-cause
  /// order: degraded/dropped/retried can never exceed failover_serves
  /// and hedges_won can never exceed hedges_launched within one
  /// snapshot.
  RouterStats stats() const;

 private:
  static constexpr size_t kNoShard = static_cast<size_t>(-1);

  /// One submit-and-wait against a shard, optionally hedged onto
  /// `hedge_shard` when the first answer is slower than hedge_delay.
  /// The primary's outcome feeds the breakers; the hedge's never does
  /// (see ServeWithFailover). ok == false when every submission was
  /// rejected or answered with a failure.
  struct Attempt {
    bool ok = false;
    bool hedge_used = false;  ///< the hedge submission was launched
    serving::ServeResult result;
  };
  Attempt AttemptOn(size_t shard, const std::string& query,
                    size_t hedge_shard);

  /// Breaker gate for one routing decision. Closed/half-open shards are
  /// admitted; an open shard skips breaker_probe_after decisions, then
  /// the next one is admitted as the half-open probe.
  bool AllowAttempt(size_t shard);
  /// True when the shard's breaker is closed (no side effects).
  bool BreakerClosed(size_t shard) const;
  /// Feeds one attempt outcome into the shard's breaker.
  void RecordOutcome(size_t shard, bool ok);

  /// Registers every router counter into registry_ (ctor).
  void RegisterMetrics();

  std::vector<serving::ServingNode*> shards_;
  std::unordered_set<std::string> replicated_;
  FailoverConfig failover_;
  /// Private registry when the ctor got none; declared before the
  /// handles that point into it.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  std::atomic<uint64_t> round_robin_{0};

  // Registry handles (owned by *registry_; registered effect-before-
  // cause — see RegisterMetrics).
  obs::Counter* routed_ = nullptr;
  obs::Counter* replicated_routed_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Counter* batch_requests_ = nullptr;
  obs::Counter* failover_serves_ = nullptr;
  obs::Counter* retried_ = nullptr;
  obs::Counter* degraded_ = nullptr;
  obs::Counter* dropped_ = nullptr;
  obs::Counter* hedges_launched_ = nullptr;
  obs::Counter* hedges_won_ = nullptr;
  std::vector<obs::Counter*> per_shard_;

  std::atomic<obs::Tracer*> tracer_{nullptr};
  /// ServeWithFailover sequence numbers for deterministic sampling.
  std::atomic<uint64_t> trace_seq_{0};

  /// Per-shard breaker state + transition log, one lock: health updates
  /// are tiny and the failover path is not the throughput path.
  struct ShardHealth {
    BreakerState state = BreakerState::kClosed;
    size_t consecutive_failures = 0;
    size_t skips_while_open = 0;
  };
  void TransitionLocked(ShardHealth* health, size_t shard,
                        BreakerState to);
  mutable std::mutex health_mu_;
  std::vector<ShardHealth> health_;
  /// deque: TransitionLocked drops the oldest entry at the cap.
  std::deque<BreakerTransition> transitions_;
  uint64_t transition_seq_ = 0;
  uint64_t probes_ = 0;
  uint64_t breaker_opens_ = 0;
};

}  // namespace cluster
}  // namespace optselect

#endif  // OPTSELECT_CLUSTER_QUERY_ROUTER_H_
