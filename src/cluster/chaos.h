// Deterministic chaos scenarios for the fault-tolerant cluster.
//
// A chaos run replays a seeded Zipf query mix through
// ShardedCluster::ServeWithFailover, strictly one request at a time,
// while a request-indexed schedule kills, revives, and slows shards
// through their ScriptedFaultInjectors. Because every moving part is
// keyed on counts — the mix on its RNG seed, the schedule on request
// indices, breaker probing on skipped decisions — two runs of the same
// scenario produce the *same* request outcomes and the *same* breaker
// transition log, which turns "does failover work?" into an equality
// assertion instead of a soak test:
//
//   1. zero dropped requests while >= 1 shard is dead mid-run;
//   2. every non-degraded answer bit-identical to a no-fault run of the
//      same mix (replicas and hedges cannot change a ranking);
//   3. every degraded answer bit-identical to the plain DPH passthrough
//      a store-less node computes (the tagged partial result);
//   4. outcome vectors and breaker transition logs identical between
//      two runs of the same seed.
//
// The only intentionally non-deterministic residue is *which* copy wins
// a hedge race — replicas are bit-identical, so the outcome vector
// (answered / degraded / diversified / ranking hash) is unaffected; the
// hedged flag is reported as an aggregate count, never compared.
//
// Requires a build with the fault-injection hooks compiled in
// (serving::FaultInjectionCompiledIn()) — *callers* must check: with
// the hooks compiled out the schedule cannot take effect, so
// RunChaosScenario would return a plain no-fault replay that then
// fails verification confusingly. The chaos CLI and the tests both
// gate on FaultInjectionCompiledIn() before running.
//
// Used by `optselect chaos` (tools/optselect_cli.cc) and by
// tests/fault_injection_test.cc.

#ifndef OPTSELECT_CLUSTER_CHAOS_H_
#define OPTSELECT_CLUSTER_CHAOS_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/sharded_cluster.h"
#include "obs/trace.h"
#include "pipeline/testbed.h"
#include "querylog/popularity.h"
#include "serving/fault_injector.h"

namespace optselect {
namespace cluster {

/// One scheduled fault action, applied just before request `at_request`
/// is served.
struct ChaosEvent {
  enum class Action {
    kKill,       ///< shard rejects all admissions (dead process)
    kRevive,     ///< shard accepts again
    kSlowReads,  ///< shard's store reads stall by slow_read_delay
    kFastReads,  ///< shard's store reads return to full speed
  };
  size_t at_request = 0;
  Action action = Action::kKill;
  size_t shard = 0;
};

/// Scenario shape. Everything that influences outcomes is a count or a
/// seed; the two duration knobs influence only latency (hedging) —
/// never which shard set an outcome's content.
struct ChaosConfig {
  size_t requests = 4000;
  double zipf_skew = 1.0;
  /// Seeds the Zipf mix sampling (BuildChaosMix).
  uint64_t seed = 99;
  size_t num_shards = 3;
  size_t replicate_hot = 2;
  FailoverConfig failover;
  /// Injected store-read latency while a kSlowReads window is active.
  /// Keep well above failover.hedge_delay so hedges actually fire.
  std::chrono::microseconds slow_read_delay{20000};
  /// Per-shard serving knobs (queue sized by the runner).
  serving::ServingConfig node;
  /// Fault schedule, sorted by at_request. Keep kSlowReads targets
  /// disjoint from kKill targets: a hedge straggler's late success on a
  /// slowed shard must never race a breaker transition on that shard,
  /// or the transition log stops being comparable across runs.
  std::vector<ChaosEvent> schedule;
  /// Deterministic 1-in-N trace sampling on the router's failover path
  /// (active only when obs::TracingCompiledIn()). The sequential replay
  /// makes the router's trace sequence number equal the request index,
  /// so two runs of the same seed sample the same requests — which is
  /// what VerifyTraceInvariants asserts.
  uint64_t trace_sample_every = 16;
  uint64_t trace_seed = 0;
};

/// What one request produced. Excludes the hedged flag on purpose (see
/// the header); operator== is the determinism comparison.
struct ChaosRequestOutcome {
  bool answered = false;
  bool degraded = false;
  bool diversified = false;
  uint64_t ranking_hash = 0;
};

inline bool operator==(const ChaosRequestOutcome& a,
                       const ChaosRequestOutcome& b) {
  return a.answered == b.answered && a.degraded == b.degraded &&
         a.diversified == b.diversified && a.ranking_hash == b.ranking_hash;
}
inline bool operator!=(const ChaosRequestOutcome& a,
                       const ChaosRequestOutcome& b) {
  return !(a == b);
}

/// One run's full record.
struct ChaosReport {
  std::vector<ChaosRequestOutcome> outcomes;  ///< one per request, in order
  std::vector<BreakerTransition> transitions;
  RouterStats router;
  size_t dropped = 0;
  size_t degraded = 0;
  /// Requests answered through the shards' streaming cold path, summed
  /// across shards after shutdown. Zero when every stored query serves
  /// off a compiled plan (plans preempt the cold path) — run a scenario
  /// on a plans-off store to exercise streaming under chaos.
  uint64_t streaming_served = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  /// Sampled router traces, in commit (= request) order. Empty when
  /// tracing is compiled out. The ring is sized to the run, so nothing
  /// is evicted: every sampled request is here.
  std::vector<obs::Trace> traces;
  /// Every breaker transition the tracer observed (not sampled) —
  /// appended under the same lock as ChaosReport::transitions, so the
  /// two logs must match entry for entry.
  std::vector<obs::Tracer::BreakerEvent> trace_breakers;
};

/// FNV-1a over a ranking's doc ids — the outcome fingerprint.
uint64_t RankingHash(const std::vector<DocId>& ranking);

/// The seeded Zipf mix a scenario replays (same sampler as `loadtest`).
std::vector<std::string> BuildChaosMix(
    const querylog::PopularityMap& popularity, const ChaosConfig& config);

/// The default schedule: a slow-read window on shard 0 (hedging), then
/// shard 1 killed and revived, then — with >= 3 shards — shard 2 killed
/// and revived. At most one shard is ever dead, and slowed shards are
/// never killed (see ChaosConfig::schedule). Fractions of `requests`,
/// so the same shape scales from CI smokes to long soaks.
std::vector<ChaosEvent> DefaultChaosSchedule(size_t requests,
                                             size_t num_shards);

/// Runs one scenario: builds a fresh cluster over `full_store`, installs
/// one ScriptedFaultInjector per shard, and replays the mix sequentially
/// while applying the schedule. The cluster is torn down before
/// returning. Check serving::FaultInjectionCompiledIn() first — with
/// the hooks compiled out the returned report would be a plain replay.
ChaosReport RunChaosScenario(const store::DiversificationStore& full_store,
                             const pipeline::Testbed* testbed,
                             const querylog::PopularityMap* popularity,
                             const std::vector<std::string>& mix,
                             const ChaosConfig& config);

/// Mapped-store overload: the shards serve zero-copy views over one
/// shared v4 mapping (ShardedCluster's mapped constructor). Outcomes
/// must be bit-identical to a heap-backed run of the same store — the
/// test suite asserts exactly that.
ChaosReport RunChaosScenario(
    std::shared_ptr<const store::MappedStoreFile> mapped_store,
    const pipeline::Testbed* testbed,
    const querylog::PopularityMap* popularity,
    const std::vector<std::string>& mix, const ChaosConfig& config);

/// The chaos acceptance checks over two fault runs, a no-fault
/// reference run, and the store-less passthrough references for every
/// degraded answer. Zero everywhere == pass.
struct ChaosVerdict {
  size_t dropped = 0;                 ///< requests nobody answered
  size_t outcome_mismatches = 0;      ///< run A vs run B outcome diffs
  size_t transition_mismatches = 0;   ///< breaker log diffs (or length)
  size_t healthy_divergences = 0;     ///< non-degraded vs no-fault diffs
  size_t degraded_divergences = 0;    ///< degraded vs passthrough diffs
  bool breaker_opened = false;        ///< some breaker actually tripped
  bool ok() const {
    return dropped == 0 && outcome_mismatches == 0 &&
           transition_mismatches == 0 && healthy_divergences == 0 &&
           degraded_divergences == 0;
  }
};

/// Deterministically counts the hedge opportunities a scenario
/// guarantees: replicated-key requests whose round-robin first pick
/// lands on a shard inside its kSlowReads window (where every breaker
/// is closed — the schedule keeps slow and kill targets disjoint).
/// Mirrors the router's cursor semantics (starts at 0, advances once
/// per replicated request) and the runner's event application
/// (at_request <= r, stable order). Returns 0 — "no hedge can be
/// required" — when hedging is off, there is nothing replicated, or
/// slow_read_delay is not comfortably above hedge_delay (less than
/// 2x), since then a hedge may legitimately never fire. The chaos CLI
/// enforces its hedge check only when this is > 0.
size_t CountHedgeOpportunities(const store::DiversificationStore& store,
                               const querylog::PopularityMap& popularity,
                               const std::vector<std::string>& mix,
                               const ChaosConfig& config);

/// The degraded-answer references: RankingHash of what a *store-less*
/// node (same testbed, same node params) answers for every distinct
/// query in the mix, keyed by the raw mix string — exactly the plain
/// DPH passthrough a dead owner's keys must degrade to. Shared by the
/// chaos CLI and the tests so the check cannot drift between them.
std::unordered_map<std::string, uint64_t> BuildPassthroughHashes(
    const pipeline::Testbed* testbed, const serving::ServingConfig& node,
    const std::vector<std::string>& mix);

/// Compares two same-seed fault runs against each other, the no-fault
/// run, and per-query passthrough hashes (see BuildPassthroughHashes).
ChaosVerdict VerifyChaosRuns(
    const ChaosReport& run_a, const ChaosReport& run_b,
    const ChaosReport& no_fault, const std::vector<std::string>& mix,
    const std::unordered_map<std::string, uint64_t>& passthrough_hashes);

/// Trace-level acceptance checks over the same two runs. Zero
/// everywhere == pass; trivially passes when tracing is compiled out
/// (no traces to check).
struct TraceVerdict {
  /// Requests the sampling rule says must be traced, per run.
  size_t sampled_expected = 0;
  size_t sampled_a = 0;
  size_t sampled_b = 0;
  /// Traces whose outcome fields (ok/degraded/diversified/ranking_hash
  /// — hedged is excluded, like ChaosRequestOutcome) disagree with the
  /// run's own outcome vector at the trace's seq, both runs summed.
  size_t outcome_mismatches = 0;
  /// Entry-for-entry diffs between each run's tracer breaker log and
  /// its BreakerTransition log (or a length difference), both runs.
  size_t breaker_mismatches = 0;
  /// Run A vs run B: sampled seq sequences or per-trace outcomes
  /// differ (the determinism half of the check).
  size_t cross_run_mismatches = 0;
  bool ok() const {
    return sampled_a == sampled_expected && sampled_b == sampled_expected &&
           outcome_mismatches == 0 && breaker_mismatches == 0 &&
           cross_run_mismatches == 0;
  }
};

/// Asserts the trace invariants on two same-seed fault runs: every
/// sampled request is traced exactly once, each trace agrees with the
/// report's outcome vector, each tracer breaker log mirrors the
/// router's transition log, and the sampled sequences are identical
/// across the runs.
TraceVerdict VerifyTraceInvariants(const ChaosReport& run_a,
                                   const ChaosReport& run_b,
                                   const ChaosConfig& config);

}  // namespace cluster
}  // namespace optselect

#endif  // OPTSELECT_CLUSTER_CHAOS_H_
