#include "cluster/sharded_cluster.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "serving/latency_histogram.h"
#include "util/strings.h"

namespace optselect {
namespace cluster {

namespace {

std::vector<std::string> RankKeysByPopularity(
    std::vector<std::pair<uint64_t, std::string>> ranked, size_t k) {
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (ranked.size() > k) ranked.resize(k);
  std::vector<std::string> keys;
  keys.reserve(ranked.size());
  for (auto& [freq, key] : ranked) keys.push_back(std::move(key));
  return keys;
}

}  // namespace

std::vector<std::string> HottestStoredKeys(
    const store::DiversificationStore& store,
    const querylog::PopularityMap& popularity, size_t k) {
  std::vector<std::pair<uint64_t, std::string>> ranked;
  ranked.reserve(store.entries().size());
  for (const auto& [key, entry] : store.entries()) {
    ranked.emplace_back(popularity.Frequency(key), key);
  }
  return RankKeysByPopularity(std::move(ranked), k);
}

std::vector<std::string> HottestStoredKeys(
    const store::MappedStoreFile& store,
    const querylog::PopularityMap& popularity, size_t k) {
  std::vector<std::pair<uint64_t, std::string>> ranked;
  ranked.reserve(store.entry_count());
  for (const store::MappedEntry& entry : store.entries()) {
    std::string key(entry.key);
    ranked.emplace_back(popularity.Frequency(key), std::move(key));
  }
  return RankKeysByPopularity(std::move(ranked), k);
}

void ShardedCluster::Init(
    const std::function<std::shared_ptr<const store::StoreSnapshot>(
        const store::ShardFilter&)>& make_snapshot,
    const index::Searcher* searcher, const index::SnippetExtractor* snippets,
    const text::Analyzer* analyzer, const corpus::DocumentStore* documents,
    std::unordered_set<std::string> replicated, const ClusterConfig& config) {
  const size_t n = std::max<size_t>(1, config.num_shards);
  filters_.reserve(n);
  shards_.reserve(n);
  std::vector<serving::ServingNode*> raw_shards;
  raw_shards.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    store::ShardFilter filter;
    filter.num_shards = n;
    filter.shard_index = i;
    filter.replicated = replicated;
    serving::ServingConfig node_config = config.node;
    node_config.registry = registry_;
    node_config.metric_labels = {{"shard", std::to_string(i)}};
    shards_.push_back(std::make_unique<serving::ServingNode>(
        make_snapshot(filter), searcher, snippets, analyzer, documents,
        node_config));
    filters_.push_back(std::move(filter));
    raw_shards.push_back(shards_.back().get());
  }
  router_ = std::make_unique<QueryRouter>(
      std::move(raw_shards), std::move(replicated), config.failover,
      registry_);
}

ShardedCluster::ShardedCluster(const store::DiversificationStore& full_store,
                               const index::Searcher* searcher,
                               const index::SnippetExtractor* snippets,
                               const text::Analyzer* analyzer,
                               const corpus::DocumentStore* documents,
                               const querylog::PopularityMap* popularity,
                               ClusterConfig config) {
  owned_registry_ = config.registry == nullptr
                        ? std::make_unique<obs::MetricsRegistry>()
                        : nullptr;
  registry_ =
      config.registry != nullptr ? config.registry : owned_registry_.get();
  const size_t n = std::max<size_t>(1, config.num_shards);
  std::unordered_set<std::string> replicated;
  // Replication only spreads load when there is more than one shard to
  // spread it over.
  if (config.replicate_hot > 0 && popularity != nullptr && n > 1) {
    replicated_keys_ =
        HottestStoredKeys(full_store, *popularity, config.replicate_hot);
    replicated.insert(replicated_keys_.begin(), replicated_keys_.end());
  }
  Init(
      [&full_store](const store::ShardFilter& filter) {
        return store::StoreSnapshot::Own(SplitStore(full_store, filter));
      },
      searcher, snippets, analyzer, documents, std::move(replicated), config);
}

ShardedCluster::ShardedCluster(
    std::shared_ptr<const store::MappedStoreFile> mapped_store,
    const index::Searcher* searcher, const index::SnippetExtractor* snippets,
    const text::Analyzer* analyzer, const corpus::DocumentStore* documents,
    const querylog::PopularityMap* popularity, ClusterConfig config) {
  owned_registry_ = config.registry == nullptr
                        ? std::make_unique<obs::MetricsRegistry>()
                        : nullptr;
  registry_ =
      config.registry != nullptr ? config.registry : owned_registry_.get();
  const size_t n = std::max<size_t>(1, config.num_shards);
  std::unordered_set<std::string> replicated;
  if (config.replicate_hot > 0 && popularity != nullptr && n > 1) {
    replicated_keys_ =
        HottestStoredKeys(*mapped_store, *popularity, config.replicate_hot);
    replicated.insert(replicated_keys_.begin(), replicated_keys_.end());
  }
  // Every shard is a key-filtered view over the one shared mapping; the
  // ShardFilter is copied into the view's keep-predicate so the filters_
  // vector and the snapshots never disagree.
  Init(
      [&mapped_store](const store::ShardFilter& filter) {
        return store::StoreSnapshot::MappedShard(
            mapped_store, [copy = filter](std::string_view key) {
              return copy.Keeps(key);
            });
      },
      searcher, snippets, analyzer, documents, std::move(replicated), config);
}

ShardedCluster::ShardedCluster(const store::DiversificationStore& full_store,
                               const pipeline::Testbed* testbed,
                               const querylog::PopularityMap* popularity,
                               ClusterConfig config)
    : ShardedCluster(full_store, &testbed->searcher(), &testbed->snippets(),
                     &testbed->analyzer(), &testbed->corpus().store,
                     popularity, config) {}

ShardedCluster::~ShardedCluster() { Shutdown(); }

void ShardedCluster::Shutdown() {
  for (auto& shard : shards_) shard->Shutdown();
}

void ShardedCluster::set_tracer(obs::Tracer* tracer) {
  router_->set_tracer(tracer);
  for (auto& shard : shards_) shard->set_tracer(tracer);
}

serving::Response ShardedCluster::Submit(const serving::Request& request) {
  return router_->ServeWithFailover(request.query);
}

bool ShardedCluster::SubmitAsync(
    serving::Request request, std::function<void(serving::Response)> callback) {
  return router_->Submit(std::move(request.query), std::move(callback));
}

serving::ServeResult ShardedCluster::Serve(const std::string& query) {
  return router_->Serve(query);
}

std::vector<serving::ServeResult> ShardedCluster::ServeBatch(
    const std::vector<std::string>& queries) {
  return router_->ServeBatch(queries);
}

serving::ServeResult ShardedCluster::ServeWithFailover(
    const std::string& query) {
  return router_->ServeWithFailover(query);
}

ShardedCluster::ApplyOutcome ShardedCluster::ApplyDelta(
    const store::StoreDelta& delta) {
  ApplyOutcome out;
  for (size_t i = 0; i < shards_.size(); ++i) {
    // The shard's slice: exactly the changes whose key it holds. A
    // replicated key lands in every slice, keeping replicas in sync.
    store::StoreDelta slice;
    for (const store::StoredEntry& upsert : delta.upserts) {
      if (filters_[i].Keeps(util::NormalizeQueryText(upsert.query))) {
        slice.upserts.push_back(upsert);
      }
    }
    for (const std::string& removal : delta.removals) {
      if (filters_[i].Keeps(util::NormalizeQueryText(removal))) {
        slice.removals.push_back(removal);
      }
    }
    if (slice.empty()) continue;

    std::shared_ptr<const store::StoreSnapshot> base = shards_[i]->snapshot();
    store::SnapshotBuildResult built =
        store::BuildSnapshot(base.get(), slice);
    if (built.changed_keys.empty()) continue;  // content-identical slice
    serving::ServingNode::ReloadOutcome reload =
        shards_[i]->ReloadStore(built.snapshot, built.changed_keys);
    if (!reload.ok) {
      // Swap refused (injected kReload fault): this shard's slice did
      // not land. Surface it — counting it as applied would hide a
      // replica divergence — and let the caller retry with the same
      // delta (up-to-date shards skip as content-identical).
      ++out.shards_failed;
      continue;
    }
    ++out.shards_reloaded;
    out.invalidated += reload.invalidated;
    out.changes_applied += built.upserts_applied + built.removals_applied;
  }
  return out;
}

ClusterStats ShardedCluster::Stats() const {
  ClusterStats cs;
  cs.num_shards = shards_.size();
  cs.per_shard.reserve(shards_.size());

  serving::LatencyHistogram merged;
  serving::ServingStats& total = cs.total;
  for (const auto& shard : shards_) {
    serving::ServingStats s = shard->Stats();
    total.accepted += s.accepted;
    total.rejected += s.rejected;
    total.completed += s.completed;
    total.diversified += s.diversified;
    total.plan_served += s.plan_served;
    total.passthrough += s.passthrough;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.cache_evictions += s.cache_evictions;
    total.cache_invalidations += s.cache_invalidations;
    total.reloads += s.reloads;
    total.faulted += s.faulted;
    total.reload_failures += s.reload_failures;
    total.store_version = std::max(total.store_version, s.store_version);
    total.batches += s.batches;
    total.batched_requests += s.batched_requests;
    total.batch_dedup_hits += s.batch_dedup_hits;
    total.uptime_seconds = std::max(total.uptime_seconds, s.uptime_seconds);
    total.queue_depth += s.queue_depth;
    total.cache_entries += s.cache_entries;
    merged.MergeFrom(shard->latency_histogram());
    cs.per_shard.push_back(std::move(s));
  }

  uint64_t lookups = total.cache_hits + total.cache_misses;
  total.cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(total.cache_hits) /
                         static_cast<double>(lookups);
  total.mean_batch =
      total.batches == 0
          ? 0.0
          : static_cast<double>(total.batched_requests) /
                static_cast<double>(total.batches);
  total.qps = total.uptime_seconds > 0
                  ? static_cast<double>(total.completed) /
                        total.uptime_seconds
                  : 0.0;
  // Quantiles over the union distribution, not an average of per-shard
  // quantiles: the cluster's p99 is dominated by its slowest shard.
  total.mean_ms = merged.MeanMicros() / 1000.0;
  total.p50_ms = merged.PercentileMicros(0.50) / 1000.0;
  total.p95_ms = merged.PercentileMicros(0.95) / 1000.0;
  total.p99_ms = merged.PercentileMicros(0.99) / 1000.0;

  cs.router = router_->stats();
  return cs;
}

}  // namespace cluster
}  // namespace optselect
