// Analysis pipeline: tokenize → stopword-filter → stem → term ids.
//
// One Analyzer instance owns the vocabulary shared by an index and the
// query/snippet processing that must agree with it.

#ifndef OPTSELECT_TEXT_ANALYZER_H_
#define OPTSELECT_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/term_vector.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace optselect {
namespace text {

/// Converts raw text into stemmed term-id sequences over a shared
/// vocabulary. Not thread-safe for Analyze* (vocabulary mutation);
/// AnalyzeReadOnly is const and safe once the vocabulary is frozen.
class Analyzer {
 public:
  struct Options {
    bool remove_stopwords = true;
    bool stem = true;
  };

  Analyzer() : Analyzer(Options{}) {}
  explicit Analyzer(Options options) : options_(options) {}

  /// Tokenizes, filters, stems, and interns the terms (growing the
  /// vocabulary as needed).
  std::vector<TermId> Analyze(std::string_view raw);

  /// Like Analyze but never grows the vocabulary: unknown terms are
  /// dropped. Used at query time against a built index.
  std::vector<TermId> AnalyzeReadOnly(std::string_view raw) const;

  /// Analyze + raw-tf TermVector in one call.
  TermVector AnalyzeToVector(std::string_view raw);

  /// Stemmed string tokens (without interning) — handy for tests.
  std::vector<std::string> AnalyzeToStrings(std::string_view raw) const;

  Vocabulary& vocabulary() { return vocab_; }
  const Vocabulary& vocabulary() const { return vocab_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  Tokenizer tokenizer_;
  StopwordSet stopwords_;
  PorterStemmer stemmer_;
  Vocabulary vocab_;
};

}  // namespace text
}  // namespace optselect

#endif  // OPTSELECT_TEXT_ANALYZER_H_
