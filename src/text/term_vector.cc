#include "text/term_vector.h"

#include <algorithm>
#include <cmath>

namespace optselect {
namespace text {

TermVector TermVector::FromEntries(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
  TermVector tv;
  tv.entries_.reserve(entries.size());
  for (const Entry& e : entries) {
    if (e.second == 0.0) continue;
    if (!tv.entries_.empty() && tv.entries_.back().first == e.first) {
      tv.entries_.back().second += e.second;
    } else {
      tv.entries_.push_back(e);
    }
  }
  // Summing duplicates may have produced zeros.
  tv.entries_.erase(
      std::remove_if(tv.entries_.begin(), tv.entries_.end(),
                     [](const Entry& e) { return e.second == 0.0; }),
      tv.entries_.end());
  tv.RecomputeNorm();
  return tv;
}

TermVector TermVector::FromTermIds(const std::vector<TermId>& ids) {
  std::vector<Entry> entries;
  entries.reserve(ids.size());
  for (TermId id : ids) entries.emplace_back(id, 1.0);
  return FromEntries(std::move(entries));
}

void TermVector::RecomputeNorm() {
  double ss = 0.0;
  for (const Entry& e : entries_) ss += e.second * e.second;
  norm_ = std::sqrt(ss);
}

double TermVector::Dot(const TermVector& other) const {
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    TermId a = entries_[i].first;
    TermId b = other.entries_[j].first;
    if (a == b) {
      dot += entries_[i].second * other.entries_[j].second;
      ++i;
      ++j;
    } else if (a < b) {
      ++i;
    } else {
      ++j;
    }
  }
  return dot;
}

double TermVector::Cosine(const TermVector& other) const {
  if (norm_ == 0.0 || other.norm_ == 0.0) return 0.0;
  double c = Dot(other) / (norm_ * other.norm_);
  // Clamp numeric noise so δ stays in [0, 1].
  if (c < 0.0) return 0.0;
  if (c > 1.0) return 1.0;
  return c;
}

double TermVector::WeightOf(TermId id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, TermId target) { return e.first < target; });
  if (it == entries_.end() || it->first != id) return 0.0;
  return it->second;
}

}  // namespace text
}  // namespace optselect
