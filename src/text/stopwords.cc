#include "text/stopwords.h"

namespace optselect {
namespace text {
namespace {

// String literals have static storage duration, so string_views into them
// remain valid for the process lifetime.
constexpr std::string_view kEnglishStopwords[] = {
    "a",       "about",   "above",   "after",   "again",   "against",
    "all",     "am",      "an",      "and",     "any",     "are",
    "aren",    "as",      "at",      "be",      "because", "been",
    "before",  "being",   "below",   "between", "both",    "but",
    "by",      "can",     "cannot",  "could",   "couldn",  "did",
    "didn",    "do",      "does",    "doesn",   "doing",   "don",
    "down",    "during",  "each",    "few",     "for",     "from",
    "further", "had",     "hadn",    "has",     "hasn",    "have",
    "haven",   "having",  "he",      "her",     "here",    "hers",
    "herself", "him",     "himself", "his",     "how",     "i",
    "if",      "in",      "into",    "is",      "isn",     "it",
    "its",     "itself",  "let",     "me",      "more",    "most",
    "mustn",   "my",      "myself",  "no",      "nor",     "not",
    "of",      "off",     "on",      "once",    "only",    "or",
    "other",   "ought",   "our",     "ours",    "out",     "over",
    "own",     "same",    "shan",    "she",     "should",  "shouldn",
    "so",      "some",    "such",    "than",    "that",    "the",
    "their",   "theirs",  "them",    "themselves",         "then",
    "there",   "these",   "they",    "this",    "those",   "through",
    "to",      "too",     "under",   "until",   "up",      "very",
    "was",     "wasn",    "we",      "were",    "weren",   "what",
    "when",    "where",   "which",   "while",   "who",     "whom",
    "why",     "with",    "won",     "would",   "wouldn",  "you",
    "your",    "yours",   "yourself",           "yourselves",
};

}  // namespace

StopwordSet::StopwordSet() {
  words_.reserve(std::size(kEnglishStopwords) * 2);
  for (std::string_view w : kEnglishStopwords) words_.insert(w);
}

}  // namespace text
}  // namespace optselect
