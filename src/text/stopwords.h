// Standard English stopword list ("standard English stopword removal",
// paper Section 5). The list is the classic SMART-derived set commonly
// shipped with IR toolkits, trimmed to frequent function words.

#ifndef OPTSELECT_TEXT_STOPWORDS_H_
#define OPTSELECT_TEXT_STOPWORDS_H_

#include <string_view>
#include <unordered_set>

namespace optselect {
namespace text {

/// Immutable stopword set; default-constructed with the English list.
class StopwordSet {
 public:
  /// Builds the default English list.
  StopwordSet();

  /// Builds from a custom list (e.g. empty set to disable stopping).
  explicit StopwordSet(std::unordered_set<std::string_view> words)
      : words_(std::move(words)) {}

  bool Contains(std::string_view word) const {
    return words_.count(word) > 0;
  }

  size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string_view> words_;
};

}  // namespace text
}  // namespace optselect

#endif  // OPTSELECT_TEXT_STOPWORDS_H_
