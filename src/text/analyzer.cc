#include "text/analyzer.h"

namespace optselect {
namespace text {

std::vector<TermId> Analyzer::Analyze(std::string_view raw) {
  std::vector<TermId> ids;
  for (const std::string& tok : tokenizer_.Tokenize(raw)) {
    if (options_.remove_stopwords && stopwords_.Contains(tok)) continue;
    const std::string term = options_.stem ? stemmer_.Stem(tok) : tok;
    if (term.empty()) continue;
    ids.push_back(vocab_.GetOrAdd(term));
  }
  return ids;
}

std::vector<TermId> Analyzer::AnalyzeReadOnly(std::string_view raw) const {
  std::vector<TermId> ids;
  for (const std::string& tok : tokenizer_.Tokenize(raw)) {
    if (options_.remove_stopwords && stopwords_.Contains(tok)) continue;
    const std::string term = options_.stem ? stemmer_.Stem(tok) : tok;
    if (term.empty()) continue;
    TermId id = vocab_.Lookup(term);
    if (id != kInvalidTermId) ids.push_back(id);
  }
  return ids;
}

TermVector Analyzer::AnalyzeToVector(std::string_view raw) {
  return TermVector::FromTermIds(Analyze(raw));
}

std::vector<std::string> Analyzer::AnalyzeToStrings(
    std::string_view raw) const {
  std::vector<std::string> out;
  for (const std::string& tok : tokenizer_.Tokenize(raw)) {
    if (options_.remove_stopwords && stopwords_.Contains(tok)) continue;
    const std::string term = options_.stem ? stemmer_.Stem(tok) : tok;
    if (!term.empty()) out.push_back(term);
  }
  return out;
}

}  // namespace text
}  // namespace optselect
