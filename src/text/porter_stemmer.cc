#include "text/porter_stemmer.h"

#include <cstring>

namespace optselect {
namespace text {
namespace {

// Working buffer for one word. The algorithm operates on b[0..k].
struct Ctx {
  std::string b;
  int k = 0;   // index of last character
  int j = 0;   // general offset set by ends()

  // True if b[i] is a consonant.
  bool Cons(int i) const {
    switch (b[static_cast<size_t>(i)]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return (i == 0) ? true : !Cons(i - 1);
      default:
        return true;
    }
  }

  // Measures the number of consonant sequences between 0 and j:
  //   <c><v>       -> 0
  //   <c>vc<v>     -> 1
  //   <c>vcvc<v>   -> 2 ...
  int Measure() const {
    int n = 0;
    int i = 0;
    for (;;) {
      if (i > j) return n;
      if (!Cons(i)) break;
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i > j) return n;
        if (Cons(i)) break;
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i > j) return n;
        if (!Cons(i)) break;
        ++i;
      }
      ++i;
    }
  }

  // True if 0..j contains a vowel.
  bool VowelInStem() const {
    for (int i = 0; i <= j; ++i) {
      if (!Cons(i)) return true;
    }
    return false;
  }

  // True if b[i-1] == b[i] and both are consonants.
  bool DoubleC(int i) const {
    if (i < 1) return false;
    if (b[static_cast<size_t>(i)] != b[static_cast<size_t>(i - 1)]) {
      return false;
    }
    return Cons(i);
  }

  // True if i-2..i is consonant-vowel-consonant and the last consonant is
  // not w, x or y; used to restore an 'e' (cav(e), lov(e)) and in step 5.
  bool Cvc(int i) const {
    if (i < 2 || !Cons(i) || Cons(i - 1) || !Cons(i - 2)) return false;
    char ch = b[static_cast<size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  // True if b ends with `s`; on success sets j to the stem end.
  bool Ends(const char* s) {
    int len = static_cast<int>(std::strlen(s));
    if (len > k + 1) return false;
    if (std::memcmp(b.data() + (k - len + 1), s, static_cast<size_t>(len)) !=
        0) {
      return false;
    }
    j = k - len;
    return true;
  }

  // Replaces b[j+1..k] with `s`.
  void SetTo(const char* s) {
    int len = static_cast<int>(std::strlen(s));
    b.replace(static_cast<size_t>(j + 1), static_cast<size_t>(k - j), s);
    k = j + len;
  }

  // SetTo guarded by Measure() > 0.
  void R(const char* s) {
    if (Measure() > 0) SetTo(s);
  }
};

// Step 1a: plurals. caresses->caress, ponies->poni, ties->ti, cats->cat.
// Step 1b: -ed/-ing. feed->feed, agreed->agree, plastered->plaster,
//          motoring->motor; with cleanup conflat(ed)->conflate etc.
void Step1ab(Ctx* z) {
  if (z->b[static_cast<size_t>(z->k)] == 's') {
    if (z->Ends("sses")) {
      z->k -= 2;
    } else if (z->Ends("ies")) {
      z->SetTo("i");
    } else if (z->b[static_cast<size_t>(z->k - 1)] != 's') {
      --z->k;
    }
  }
  if (z->Ends("eed")) {
    if (z->Measure() > 0) --z->k;
  } else if ((z->Ends("ed") || z->Ends("ing")) && z->VowelInStem()) {
    z->k = z->j;
    if (z->Ends("at")) {
      z->SetTo("ate");
    } else if (z->Ends("bl")) {
      z->SetTo("ble");
    } else if (z->Ends("iz")) {
      z->SetTo("ize");
    } else if (z->DoubleC(z->k)) {
      char ch = z->b[static_cast<size_t>(z->k)];
      if (ch != 'l' && ch != 's' && ch != 'z') --z->k;
    } else if (z->Measure() == 1 && z->Cvc(z->k)) {
      z->j = z->k;  // SetTo appends after j
      z->SetTo("e");
    }
  }
}

// Step 1c: y -> i when there is another vowel in the stem.
void Step1c(Ctx* z) {
  if (z->Ends("y") && z->VowelInStem()) {
    z->b[static_cast<size_t>(z->k)] = 'i';
  }
}

// Step 2: double suffixes mapped to single ones when Measure() > 0.
void Step2(Ctx* z) {
  switch (z->b[static_cast<size_t>(z->k - 1)]) {
    case 'a':
      if (z->Ends("ational")) { z->R("ate"); break; }
      if (z->Ends("tional")) { z->R("tion"); }
      break;
    case 'c':
      if (z->Ends("enci")) { z->R("ence"); break; }
      if (z->Ends("anci")) { z->R("ance"); }
      break;
    case 'e':
      if (z->Ends("izer")) { z->R("ize"); }
      break;
    case 'l':
      if (z->Ends("bli")) { z->R("ble"); break; }  // DEPARTURE: -abli variant
      if (z->Ends("alli")) { z->R("al"); break; }
      if (z->Ends("entli")) { z->R("ent"); break; }
      if (z->Ends("eli")) { z->R("e"); break; }
      if (z->Ends("ousli")) { z->R("ous"); }
      break;
    case 'o':
      if (z->Ends("ization")) { z->R("ize"); break; }
      if (z->Ends("ation")) { z->R("ate"); break; }
      if (z->Ends("ator")) { z->R("ate"); }
      break;
    case 's':
      if (z->Ends("alism")) { z->R("al"); break; }
      if (z->Ends("iveness")) { z->R("ive"); break; }
      if (z->Ends("fulness")) { z->R("ful"); break; }
      if (z->Ends("ousness")) { z->R("ous"); }
      break;
    case 't':
      if (z->Ends("aliti")) { z->R("al"); break; }
      if (z->Ends("iviti")) { z->R("ive"); break; }
      if (z->Ends("biliti")) { z->R("ble"); }
      break;
    case 'g':
      if (z->Ends("logi")) { z->R("log"); }  // DEPARTURE from 1980 paper
      break;
  }
}

// Step 3: -ic-, -full, -ness etc.
void Step3(Ctx* z) {
  switch (z->b[static_cast<size_t>(z->k)]) {
    case 'e':
      if (z->Ends("icate")) { z->R("ic"); break; }
      if (z->Ends("ative")) { z->R(""); break; }
      if (z->Ends("alize")) { z->R("al"); }
      break;
    case 'i':
      if (z->Ends("iciti")) { z->R("ic"); }
      break;
    case 'l':
      if (z->Ends("ical")) { z->R("ic"); break; }
      if (z->Ends("ful")) { z->R(""); }
      break;
    case 's':
      if (z->Ends("ness")) { z->R(""); }
      break;
  }
}

// Step 4: strip -ant, -ence etc. when Measure() > 1.
void Step4(Ctx* z) {
  switch (z->b[static_cast<size_t>(z->k - 1)]) {
    case 'a':
      if (z->Ends("al")) break;
      return;
    case 'c':
      if (z->Ends("ance")) break;
      if (z->Ends("ence")) break;
      return;
    case 'e':
      if (z->Ends("er")) break;
      return;
    case 'i':
      if (z->Ends("ic")) break;
      return;
    case 'l':
      if (z->Ends("able")) break;
      if (z->Ends("ible")) break;
      return;
    case 'n':
      if (z->Ends("ant")) break;
      if (z->Ends("ement")) break;
      if (z->Ends("ment")) break;
      if (z->Ends("ent")) break;
      return;
    case 'o':
      if (z->Ends("ion") && z->j >= 0 &&
          (z->b[static_cast<size_t>(z->j)] == 's' ||
           z->b[static_cast<size_t>(z->j)] == 't')) {
        break;
      }
      if (z->Ends("ou")) break;  // takes care of -ous
      return;
    case 's':
      if (z->Ends("ism")) break;
      return;
    case 't':
      if (z->Ends("ate")) break;
      if (z->Ends("iti")) break;
      return;
    case 'u':
      if (z->Ends("ous")) break;
      return;
    case 'v':
      if (z->Ends("ive")) break;
      return;
    case 'z':
      if (z->Ends("ize")) break;
      return;
    default:
      return;
  }
  if (z->Measure() > 1) z->k = z->j;
}

// Step 5: remove final -e and double-l reduction.
void Step5(Ctx* z) {
  z->j = z->k;
  if (z->b[static_cast<size_t>(z->k)] == 'e') {
    int a = z->Measure();
    if (a > 1 || (a == 1 && !z->Cvc(z->k - 1))) --z->k;
  }
  if (z->b[static_cast<size_t>(z->k)] == 'l' && z->DoubleC(z->k) &&
      z->Measure() > 1) {
    --z->k;
  }
}

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) const {
  if (word.size() <= 2) return std::string(word);
  Ctx z;
  z.b.assign(word);
  z.k = static_cast<int>(z.b.size()) - 1;
  Step1ab(&z);
  if (z.k > 0) Step1c(&z);
  if (z.k > 0) Step2(&z);
  if (z.k > 0) Step3(&z);
  if (z.k > 0) Step4(&z);
  if (z.k > 0) Step5(&z);
  z.b.resize(static_cast<size_t>(z.k) + 1);
  return z.b;
}

}  // namespace text
}  // namespace optselect
