// Term dictionary: bidirectional mapping between terms and dense ids.

#ifndef OPTSELECT_TEXT_VOCABULARY_H_
#define OPTSELECT_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace optselect {
namespace text {

using TermId = uint32_t;

/// Sentinel for "term not present".
inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// Append-only term dictionary with O(1) lookups both ways.
class Vocabulary {
 public:
  /// Returns the id of `term`, inserting it if absent.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id of `term` or kInvalidTermId.
  TermId Lookup(std::string_view term) const;

  /// Returns the term string for a valid id.
  const std::string& term(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
};

}  // namespace text
}  // namespace optselect

#endif  // OPTSELECT_TEXT_VOCABULARY_H_
