// The Porter stemming algorithm (M.F. Porter, 1980), as used by the paper's
// Terrier indexing pipeline ("We used Porter's stemmer and standard English
// stopword removal for producing the ClueWeb-B index", Section 5).
//
// This is a faithful reimplementation of the original algorithm: steps
// 1a, 1b (+ cleanup), 1c, 2, 3, 4, 5a, 5b over the measure/vowel framework.

#ifndef OPTSELECT_TEXT_PORTER_STEMMER_H_
#define OPTSELECT_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace optselect {
namespace text {

/// Stateless Porter stemmer. Thread-safe; all methods are const.
class PorterStemmer {
 public:
  /// Returns the stem of `word`. The input is assumed lowercase ASCII;
  /// words shorter than 3 characters are returned unchanged (per Porter's
  /// original implementation).
  std::string Stem(std::string_view word) const;
};

}  // namespace text
}  // namespace optselect

#endif  // OPTSELECT_TEXT_PORTER_STEMMER_H_
