// Sparse term-frequency vectors and the cosine distance of Equation (2):
//   δ(d1, d2) = 1 − cosine(d1, d2).
//
// The diversification utility (Definition 2) evaluates δ between document
// *surrogates* (snippets), so these vectors are small; the representation
// is a sorted (term_id, weight) array with linear-merge dot products.

#ifndef OPTSELECT_TEXT_TERM_VECTOR_H_
#define OPTSELECT_TEXT_TERM_VECTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "text/vocabulary.h"

namespace optselect {
namespace text {

/// Non-owning SoA view of a sparse term vector: parallel term-id and
/// weight columns (sorted by term id, ids unique, weights non-zero)
/// plus the precomputed L2 norm. This is the shape a mapped store-v4
/// surrogate column has on disk; kernels consume it directly so mapped
/// serving never rebuilds heap TermVectors. The norm is stored, not
/// recomputed — it carries the exact bits TermVector::RecomputeNorm
/// produced at build time.
struct TermVectorSpan {
  const TermId* terms = nullptr;
  const double* weights = nullptr;
  uint32_t size = 0;
  double norm = 0.0;
};

/// Immutable-after-build sparse vector over TermId with double weights.
class TermVector {
 public:
  using Entry = std::pair<TermId, double>;

  TermVector() = default;

  /// Builds from unsorted (possibly duplicated) entries: duplicates are
  /// summed, zero weights dropped, result sorted by term id.
  static TermVector FromEntries(std::vector<Entry> entries);

  /// Builds a raw term-frequency vector from a token-id sequence.
  static TermVector FromTermIds(const std::vector<TermId>& ids);

  /// Number of non-zero entries.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<Entry>& entries() const { return entries_; }

  /// L2 norm (cached at build time).
  double norm() const { return norm_; }

  /// Dot product via linear merge of the two sorted entry lists.
  double Dot(const TermVector& other) const;

  /// cosine(this, other) ∈ [0, 1] for non-negative weights; 0 when either
  /// vector is empty.
  double Cosine(const TermVector& other) const;

  /// δ(this, other) = 1 − cosine (Equation 2). Symmetric; 0 iff equal
  /// directions.
  double CosineDistance(const TermVector& other) const {
    return 1.0 - Cosine(other);
  }

  /// Weight of a term, 0 if absent. O(log n).
  double WeightOf(TermId id) const;

 private:
  void RecomputeNorm();

  std::vector<Entry> entries_;  // sorted by TermId, weights > 0 typical
  double norm_ = 0.0;
};

}  // namespace text
}  // namespace optselect

#endif  // OPTSELECT_TEXT_TERM_VECTOR_H_
