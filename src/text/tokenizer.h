// Word tokenization for documents and queries.
//
// Mirrors the preprocessing the paper applies through Terrier: lowercase
// ASCII word tokens, digits kept (web queries contain model numbers, years),
// everything else treated as a separator.

#ifndef OPTSELECT_TEXT_TOKENIZER_H_
#define OPTSELECT_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace optselect {
namespace text {

/// Splits text into lowercase alphanumeric tokens.
class Tokenizer {
 public:
  struct Options {
    /// Tokens longer than this are truncated (Terrier default behaviour for
    /// pathological tokens).
    size_t max_token_length = 64;
    /// Drop tokens shorter than this many characters.
    size_t min_token_length = 1;
  };

  Tokenizer() : Tokenizer(Options{}) {}
  explicit Tokenizer(Options options) : options_(options) {}

  /// Tokenizes `input` into lowercase tokens.
  std::vector<std::string> Tokenize(std::string_view input) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace text
}  // namespace optselect

#endif  // OPTSELECT_TEXT_TOKENIZER_H_
