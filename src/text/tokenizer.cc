#include "text/tokenizer.h"

#include <cctype>

namespace optselect {
namespace text {

std::vector<std::string> Tokenizer::Tokenize(std::string_view input) const {
  std::vector<std::string> tokens;
  std::string current;
  current.reserve(16);
  auto flush = [&]() {
    if (current.size() >= options_.min_token_length) {
      if (current.size() > options_.max_token_length) {
        current.resize(options_.max_token_length);
      }
      tokens.push_back(current);
    }
    current.clear();
  };
  for (char ch : input) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace text
}  // namespace optselect
