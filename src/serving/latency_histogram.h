// Streaming latency histogram for the serving stats (p50/p95/p99).
//
// HDR-style log-linear bucketing over microseconds: values below 2^kSubBits
// are recorded exactly; above that, each power-of-two range is split into
// 2^kSubBits linear sub-buckets, bounding the relative quantile error at
// 2^-kSubBits (≈1.6% with 6 sub-bits) while keeping the footprint at a few
// KB. Recording is a single relaxed fetch_add — wait-free, no allocation —
// so worker threads can record on the request hot path; Percentile walks a
// snapshot of the counters and may race benignly with writers (quantiles
// over a prefix of the traffic).

#ifndef OPTSELECT_SERVING_LATENCY_HISTOGRAM_H_
#define OPTSELECT_SERVING_LATENCY_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace optselect {
namespace serving {

/// Fixed-range concurrent histogram of int64 microsecond values.
class LatencyHistogram {
 public:
  LatencyHistogram();

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one latency observation (negative values clamp to 0).
  void Record(int64_t micros);

  /// Number of recorded observations.
  uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Sum of all recorded observations, in microseconds (exact, unlike
  /// the bucketed quantiles). Exposition wants count+sum pairs.
  uint64_t TotalMicros() const {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Mean of all observations, in microseconds (0 when empty).
  double MeanMicros() const;

  /// Approximate quantile (q in [0, 1]) in microseconds; 0 when empty.
  /// Returns the midpoint of the bucket containing the q-th observation.
  double PercentileMicros(double q) const;

  /// Resets every counter to zero (not atomic with concurrent writers).
  void Reset();

  /// Adds every observation of `other` into this histogram (bucketwise;
  /// both use the same fixed layout). Used to aggregate per-shard
  /// latency into cluster-level quantiles. Concurrent writers on either
  /// side race benignly, like Percentile.
  void MergeFrom(const LatencyHistogram& other);

 private:
  static constexpr int kSubBits = 6;
  static constexpr int kSubBuckets = 1 << kSubBits;          // 64
  static constexpr int kMaxExponent = 40;  // covers ~2^40 us ≈ 12 days
  static constexpr int kNumBuckets =
      kSubBuckets + (kMaxExponent - kSubBits) * (kSubBuckets / 2);

  static int BucketIndex(uint64_t v);
  static double BucketMidpoint(int index);

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> sum_;
};

}  // namespace serving
}  // namespace optselect

#endif  // OPTSELECT_SERVING_LATENCY_HISTOGRAM_H_
