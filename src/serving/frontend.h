// The one serving contract every front end implements.
//
// Before this header, each serving tier exposed its own ad-hoc call
// surface — ServingNode::Serve(query) / Submit(query, callback),
// QueryRouter::ServeWithFailover(query), ShardedCluster's forwarding
// trio — and every caller (REPL, replay, chaos, loadtest) picked one by
// concrete type. `Frontend` collapses them into a single
// request/response pair:
//
//     Request  ──> Frontend::Submit ──> Response         (blocking)
//     Request  ──> Frontend::SubmitAsync ──> callback    (shed-aware)
//
// implemented by
//
//   serving::ServingNode       — one node's queue + worker pool
//   cluster::ShardedCluster    — N shards behind the fault-tolerant
//                                QueryRouter (Submit == failover path)
//   net::RemoteClient          — one TCP connection speaking the wire
//                                protocol (net/wire.h)
//   net::RemoteFrontend        — a client-side router over N remote
//                                shard processes
//
// so local and remote serving are interchangeable *by construction*:
// the replay drivers, the chaos harness, and the benches accept a
// Frontend and cannot tell (except through Response flags) whether the
// answer crossed a socket. tests/frontend_test.cc and
// bench_net_serving assert the rankings are bit-identical across
// implementations over the same store.
//
// Response is the *single* result struct for the whole serving stack —
// the historical `ServeResult` name is a deprecated alias kept for the
// tests and call sites that pin it (see serving_node.h).

#ifndef OPTSELECT_SERVING_FRONTEND_H_
#define OPTSELECT_SERVING_FRONTEND_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/types.h"

namespace optselect {
namespace serving {

/// One serving request. The raw (un-normalized) query plus the wire
/// metadata that rides along when the request crosses a socket; local
/// callers usually set only `query`.
struct Request {
  std::string query;
  /// Wire correlation id: the network server echoes it on the response
  /// frame so a pipelined client can match answers to requests. Local
  /// front ends ignore it (0 for direct calls).
  uint64_t id = 0;

  Request() = default;
  explicit Request(std::string q, uint64_t request_id = 0)
      : query(std::move(q)), id(request_id) {}
};

/// Outcome of one request — the one result struct shared by every
/// Frontend implementation (node, cluster, remote).
struct Response {
  /// False when the request was shed at admission, the node was shut
  /// down, an (injected) store-read fault failed the compute, or — for
  /// remote front ends — the connection died / the server answered with
  /// an error frame. The cluster's failover tier treats any ok == false
  /// answer as a shard failure and retries elsewhere.
  bool ok = false;
  /// True when the fault-tolerant path answered from a shard that does
  /// not hold the query's store entry (dead-owner fallback): the
  /// ranking is the plain DPH top-k, not the stored diversification.
  /// Set by QueryRouter::ServeWithFailover and net::RemoteFrontend.
  bool degraded = false;
  /// True when a hedged retry (a re-issue of a slow replicated-key
  /// request on another replica) produced this answer. Replicas are
  /// bit-identical, so the ranking is unaffected — observability only.
  bool hedged = false;
  /// True when the query hit the store and OptSelect re-ranked it.
  bool diversified = false;
  /// True when the ranking was served from the result cache.
  bool cache_hit = false;
  /// True when the ranking was reused from an identical request in the
  /// same micro-batch (set even when the cache is disabled).
  bool batch_dedup = false;
  /// True when the ranking was computed over the entry's compiled
  /// query-plan blocks (store v3/v4) instead of per-request retrieval +
  /// utility computation. Cached results keep the flag of the compute
  /// that filled them.
  bool plan_served = false;
  /// True when the ranking was computed by the streaming cold path
  /// (scan + bounded-state maintain) rather than materialize-then-
  /// select. Mutually exclusive with plan_served; bit-identical either
  /// way. Cached results keep the flag of the compute that filled them.
  bool streaming_served = false;
  /// Number of specializations diversified against (0 if passthrough).
  size_t num_specializations = 0;
  /// Content version of the store snapshot that computed this ranking
  /// (cached results keep the version they were computed under).
  uint64_t store_version = 0;
  /// Final document ranking.
  std::vector<DocId> ranking;
};

/// The unified serving interface: one Request in, one Response out.
/// Implementations must be safe to call from multiple threads.
class Frontend {
 public:
  virtual ~Frontend() = default;

  /// Blocking request/response — the canonical serving call. Always
  /// returns (ok == false on failure); never throws on I/O problems.
  virtual Response Submit(const Request& request) = 0;

  /// Non-blocking request: enqueue and return immediately; `callback`
  /// fires exactly once on some thread unless this returns false (load
  /// shed / shut down), in which case it never fires. The default
  /// adapter runs the blocking Submit inline on the caller's thread —
  /// correct for implementations without a native queue (e.g. a
  /// blocking socket client), overridden by the queue-backed ones.
  virtual bool SubmitAsync(Request request,
                           std::function<void(Response)> callback) {
    callback(Submit(request));
    return true;
  }
};

}  // namespace serving
}  // namespace optselect

#endif  // OPTSELECT_SERVING_FRONTEND_H_
