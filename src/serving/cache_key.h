// Cache keys for the serving-side result cache.
//
// Two requests must share a cache slot exactly when they are guaranteed
// to produce bit-identical rankings: same query after web-style
// normalization (case folding, whitespace collapsing) and same pipeline
// parameters. The parameter fingerprint is folded into the key so a node
// reconfiguration (or two nodes sharing a cache in a future PR) can
// never serve a ranking computed under different k / λ / c.

#ifndef OPTSELECT_SERVING_CACHE_KEY_H_
#define OPTSELECT_SERVING_CACHE_KEY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "pipeline/diversification_pipeline.h"

namespace optselect {
namespace serving {

/// Canonical query form: ASCII-lowercased, leading/trailing whitespace
/// stripped, internal whitespace runs collapsed to single spaces.
/// "  Apple  IPhone " and "apple iphone" normalize identically.
std::string NormalizeQuery(std::string_view raw);

/// FNV-1a fingerprint of every parameter that affects the ranking.
uint64_t ParamsFingerprint(const pipeline::PipelineParams& params);

/// Composes the cache key string from a normalized query and a params
/// fingerprint. The full normalized query is kept in the key (not just a
/// hash) so distinct queries can never collide.
std::string MakeCacheKey(std::string_view normalized_query,
                         uint64_t params_fingerprint);

}  // namespace serving
}  // namespace optselect

#endif  // OPTSELECT_SERVING_CACHE_KEY_H_
