#include "serving/replay.h"

#include <condition_variable>
#include <mutex>

#include "util/timer.h"

namespace optselect {
namespace serving {

ReplayOutcome ReplayMix(ServingNode* node,
                        const std::vector<std::string>& mix) {
  return ReplayMix(
      [node](const std::string& query,
             std::function<void(ServeResult)> callback) {
        return node->Submit(query, std::move(callback));
      },
      mix);
}

ReplayOutcome ReplayMix(Frontend* frontend,
                        const std::vector<std::string>& mix) {
  return ReplayMix(
      [frontend](const std::string& query,
                 std::function<void(ServeResult)> callback) {
        return frontend->SubmitAsync(Request(query), std::move(callback));
      },
      mix);
}

ReplayOutcome ReplayMix(const SubmitFn& submit,
                        const std::vector<std::string>& mix) {
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;

  util::WallTimer timer;
  ReplayOutcome out;
  for (const std::string& query : mix) {
    if (submit(query, [&](ServeResult) {
          std::lock_guard<std::mutex> lock(mu);
          ++done;
          cv.notify_one();
        })) {
      ++out.accepted;
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == out.accepted; });
  }
  out.wall_ms = timer.ElapsedMillis();
  out.qps = out.wall_ms > 0
                ? 1000.0 * static_cast<double>(out.accepted) / out.wall_ms
                : 0.0;
  return out;
}

ReplayOutcome ReplaySequential(
    const ServeFn& serve, const std::vector<std::string>& mix,
    const std::function<void(size_t)>& before_request,
    const std::function<void(size_t, const ServeResult&)>& on_result) {
  util::WallTimer timer;
  ReplayOutcome out;
  for (size_t i = 0; i < mix.size(); ++i) {
    if (before_request) before_request(i);
    ServeResult result = serve(mix[i]);
    ++out.accepted;  // sequential serves are never shed, only failed
    if (on_result) on_result(i, result);
  }
  out.wall_ms = timer.ElapsedMillis();
  out.qps = out.wall_ms > 0
                ? 1000.0 * static_cast<double>(out.accepted) / out.wall_ms
                : 0.0;
  return out;
}

ReplayOutcome ReplaySequential(
    Frontend* frontend, const std::vector<std::string>& mix,
    const std::function<void(size_t)>& before_request,
    const std::function<void(size_t, const ServeResult&)>& on_result) {
  return ReplaySequential(
      [frontend](const std::string& query) {
        return frontend->Submit(Request(query));
      },
      mix, before_request, on_result);
}

}  // namespace serving
}  // namespace optselect
