#include "serving/serving_node.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/utility.h"
#include "pipeline/candidate_stream.h"
#include "serving/cache_key.h"
#include "util/hash.h"

namespace optselect {
namespace serving {
namespace {

size_t ResolveWorkers(size_t requested) {
  if (requested > 0) return requested;
  return std::max<unsigned>(1, std::thread::hardware_concurrency());
}

obs::Labels WithStage(obs::Labels labels, const char* stage) {
  labels.emplace_back("stage", stage);
  return labels;
}

}  // namespace

void ServingNode::RegisterMetrics() {
  const obs::Labels& L = config_.metric_labels;
  // Effect-before-cause registration: Collect() and Stats() read the
  // handles in this order, so a counter that only increments after
  // another has already incremented can never exceed it within one
  // snapshot — completed <= accepted and plan_served <= diversified
  // hold in every snapshot, under any concurrency.
  completed_ = registry_->AddCounter("optselect_serving_completed_total", L);
  plan_served_ =
      registry_->AddCounter("optselect_serving_plan_served_total", L);
  streaming_served_ =
      registry_->AddCounter("optselect_serving_streaming_served_total", L);
  diversified_ =
      registry_->AddCounter("optselect_serving_diversified_total", L);
  passthrough_ =
      registry_->AddCounter("optselect_serving_passthrough_total", L);
  faulted_ = registry_->AddCounter("optselect_serving_faulted_total", L);
  accepted_ = registry_->AddCounter("optselect_serving_accepted_total", L);
  rejected_ = registry_->AddCounter("optselect_serving_rejected_total", L);
  batches_ = registry_->AddCounter("optselect_serving_batches_total", L);
  batched_requests_ =
      registry_->AddCounter("optselect_serving_batched_requests_total", L);
  batch_dedup_hits_ =
      registry_->AddCounter("optselect_serving_batch_dedup_total", L);
  reloads_ = registry_->AddCounter("optselect_serving_reloads_total", L);
  reload_failures_ =
      registry_->AddCounter("optselect_serving_reload_failures_total", L);

  // The cache keeps its own atomics (it predates the registry and is
  // shared code); exported through foreign-read counters.
  registry_->AddCounterFn("optselect_cache_hits_total", L,
                          [this] { return cache_.stats().hits; });
  registry_->AddCounterFn("optselect_cache_misses_total", L,
                          [this] { return cache_.stats().misses; });
  registry_->AddCounterFn("optselect_cache_evictions_total", L,
                          [this] { return cache_.stats().evictions; });
  registry_->AddCounterFn("optselect_cache_insertions_total", L,
                          [this] { return cache_.stats().insertions; });
  registry_->AddCounterFn("optselect_cache_invalidations_total", L,
                          [this] { return cache_.stats().invalidations; });

  registry_->AddGaugeFn("optselect_queue_depth", L, [this] {
    return static_cast<double>(queue_.size());
  });
  registry_->AddGaugeFn("optselect_cache_entries", L, [this] {
    return static_cast<double>(cache_.size());
  });
  registry_->AddGaugeFn("optselect_store_version", L, [this] {
    return static_cast<double>(snapshot()->version());
  });
  registry_->AddGaugeFn("optselect_uptime_seconds", L, [this] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_time_)
        .count();
  });

  latency_ = registry_->AddHistogram("optselect_request_latency_seconds", L);
  // Stage histograms exist in every build (exposition shows the series
  // either way) but record only when tracing is compiled in — and they
  // record EVERY request, not just sampled ones: stage quantiles must
  // describe all traffic so their p50s can be checked against the
  // end-to-end p50.
  static const char* kStageNames[kNumStages] = {
      "queue_wait", "cache_lookup", "store_read", "select", "reply",
      "scan",       "maintain"};
  for (size_t i = 0; i < kNumStages; ++i) {
    stage_hist_[i] = registry_->AddHistogram(
        "optselect_stage_latency_seconds", WithStage(L, kStageNames[i]));
  }
}

void ServingNode::MaybeStartTrace(QueuedRequest* request) {
#if OPTSELECT_TRACING
  obs::Tracer* tracer = tracer_.load(std::memory_order_acquire);
  if (tracer == nullptr) return;
  // The sequence number is consumed per admission attempt while a
  // tracer is installed, so under a sequential driver (ReplaySequential
  // — the chaos harness) seq equals the request index and the sampled
  // set is identical across runs.
  uint64_t seq = trace_seq_.fetch_add(1, std::memory_order_relaxed);
  if (!tracer->ShouldSample(seq)) return;
  auto trace = std::make_unique<obs::Trace>();
  trace->seq = seq;
  trace->query = request->query;
  trace->start = request->enqueue_time;
  trace->events.push_back(
      obs::TraceEvent{obs::TraceStage::kAdmission, 0, 0, 0});
  request->trace = std::move(trace);
#else
  (void)request;
#endif
}

FaultDecision ServingNode::EvaluateFault(FaultSite site,
                                         std::string_view key) const {
#if OPTSELECT_FAULT_INJECTION
  FaultInjector* injector = fault_injector_.load(std::memory_order_acquire);
  if (injector != nullptr) {
    FaultDecision decision = injector->Evaluate(site, key);
    if (decision.delay.count() > 0) {
      std::this_thread::sleep_for(decision.delay);
    }
    return decision;
  }
#else
  (void)site;
  (void)key;
#endif
  return FaultDecision{};
}

ServingNode::ServingNode(
    std::shared_ptr<const store::StoreSnapshot> snapshot,
    const index::Searcher* searcher,
    const index::SnippetExtractor* snippets,
    const text::Analyzer* analyzer,
    const corpus::DocumentStore* documents, ServingConfig config)
    : config_(config),
      owned_registry_(config.registry == nullptr
                          ? std::make_unique<obs::MetricsRegistry>()
                          : nullptr),
      registry_(config.registry != nullptr ? config.registry
                                           : owned_registry_.get()),
      snapshot_(std::move(snapshot)),
      searcher_(searcher),
      snippets_(snippets),
      analyzer_(analyzer),
      documents_(documents),
      diversifier_(std::max<size_t>(1, config.intra_query_threads)),
      params_fingerprint_(ParamsFingerprint(config.params)),
      queue_(config.queue_capacity),
      cache_(config.cache),
      start_time_(std::chrono::steady_clock::now()) {
  RegisterMetrics();
  size_t n = ResolveWorkers(config_.num_workers);
  config_.num_workers = n;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServingNode::ServingNode(const store::DiversificationStore* store,
                         const index::Searcher* searcher,
                         const index::SnippetExtractor* snippets,
                         const text::Analyzer* analyzer,
                         const corpus::DocumentStore* documents,
                         ServingConfig config)
    : ServingNode(store::StoreSnapshot::Borrow(store), searcher, snippets,
                  analyzer, documents, config) {}

ServingNode::ServingNode(store::DiversificationStore store,
                         const index::Searcher* searcher,
                         const index::SnippetExtractor* snippets,
                         const text::Analyzer* analyzer,
                         const corpus::DocumentStore* documents,
                         ServingConfig config)
    : ServingNode(store::StoreSnapshot::Own(std::move(store)), searcher,
                  snippets, analyzer, documents, config) {}

ServingNode::ServingNode(const store::DiversificationStore* store,
                         const pipeline::Testbed* testbed,
                         ServingConfig config)
    : ServingNode(store, &testbed->searcher(), &testbed->snippets(),
                  &testbed->analyzer(), &testbed->corpus().store, config) {}

ServingNode::~ServingNode() { Shutdown(); }

std::shared_ptr<const store::StoreSnapshot> ServingNode::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

ServingNode::ReloadOutcome ServingNode::ReloadStore(
    std::shared_ptr<const store::StoreSnapshot> snapshot,
    const std::vector<std::string>& changed_keys) {
  ReloadOutcome outcome;
  outcome.new_version = snapshot->version();
  // Lifecycle fault: the swap is refused and the node keeps serving its
  // current snapshot — the refresher counts the error and retries on
  // its next tick, exactly like a failed disk read would play out.
  if (EvaluateFault(FaultSite::kReload, {}).fail) {
    reload_failures_->Add();
    outcome.ok = false;
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    outcome.old_version = snapshot_->version();
    return outcome;
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    outcome.old_version = snapshot_->version();
    snapshot_ = std::move(snapshot);
  }
  // Invalidation runs after the swap: a request that recomputes one of
  // these keys between the swap and its erase already sees the new
  // snapshot, and the fill guard in LookupOrCompute keeps any compute
  // still pinned to the old snapshot from repopulating the key.
  for (const std::string& key : changed_keys) {
    if (cache_.Erase(MakeCacheKey(key, params_fingerprint_))) {
      ++outcome.invalidated;
    }
  }
  reloads_->Add();
  return outcome;
}

void ServingNode::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) {
    return;  // Another caller already shut the node down.
  }
  queue_.Close();  // Workers drain the remaining requests, then exit.
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ServingNode::SubmitAsync(Request request,
                              std::function<void(Response)> callback) {
  // Admission fault: a dead shard rejects before any work happens, the
  // same shape a crashed process presents to its clients.
  if (EvaluateFault(FaultSite::kQueueSubmit, request.query).fail) {
    rejected_->Add();
    return false;
  }
  QueuedRequest req;
  req.query = std::move(request.query);
  req.callback = std::move(callback);
  req.enqueue_time = std::chrono::steady_clock::now();
  MaybeStartTrace(&req);
  if (!queue_.TryPush(std::move(req))) {
    rejected_->Add();
    return false;
  }
  accepted_->Add();
  return true;
}

Response ServingNode::Submit(const Request& request) {
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Response result;
  };
  auto state = std::make_shared<SyncState>();

  if (EvaluateFault(FaultSite::kQueueSubmit, request.query).fail) {
    rejected_->Add();
    return Response{};  // ok = false, like a shutdown rejection
  }

  QueuedRequest req;
  req.query = request.query;
  req.enqueue_time = std::chrono::steady_clock::now();
  req.callback = [state](Response r) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->result = std::move(r);
    state->done = true;
    state->cv.notify_one();
  };
  MaybeStartTrace(&req);
  // Blocking push: synchronous callers apply backpressure instead of
  // shedding. Fails only when the node is shut down.
  if (!queue_.Push(std::move(req))) {
    rejected_->Add();
    return Response{};  // ok = false
  }
  accepted_->Add();

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] { return state->done; });
  return std::move(state->result);
}

std::shared_ptr<const ServeResult> ServingNode::ComputeRanking(
    const std::string& normalized_query,
    const store::StoreSnapshot& snapshot, core::SelectScratch* scratch,
    core::StreamingTopK* stream, obs::StageTimes* stages,
    obs::Trace* trace) const {
  auto result = std::make_shared<ServeResult>();
  result->ok = true;
  result->store_version = snapshot.version();

  // Store-read span: everything needed to pose the selection problem —
  // the store lookup, and on the fallback paths the live retrieval
  // (analyze + search + candidates + utilities). The select span is
  // OptSelect proper (SelectInto + ranking assembly). Both fold away
  // when tracing is compiled out.
  obs::TraceSpan read_span(trace, obs::TraceStage::kStoreRead, 0,
                           &stages->store_read_us);

  const pipeline::PipelineParams& params = config_.params;
  // Serving-time step (a): the store *is* the precomputed answer of
  // Algorithm 1, so ambiguity detection is one hash lookup. Find()
  // resolves against either backing — heap entries or spans straight
  // into the mmapped v4 columns — without materializing anything.
  store::EntryRef entry = snapshot.Find(normalized_query);
  const bool ambiguous =
      static_cast<bool>(entry) && entry.num_specializations() >= 2;

  // Compiled path (store v3+ plans): the builder already retrieved R_q
  // and computed the thresholded utilities against this same immutable
  // index, so the request is pure selection over the entry's flat
  // blocks — no retrieval, no snippet extraction, no cosine sums, and
  // no allocation outside the worker's scratch. On a mapped snapshot
  // the view points directly at file-backed columns.
  if (ambiguous &&
      entry.HasCompatiblePlan(params.num_candidates, params.threshold_c)) {
    core::DiversificationView view = entry.PlanView();
    read_span.End();
    obs::TraceSpan select_span(trace, obs::TraceStage::kSelect, 0,
                               &stages->select_us);
    diversifier_.SelectInto(view, params.diversify, scratch,
                            &scratch->picks);

    result->diversified = true;
    result->plan_served = true;
    result->num_specializations = entry.PlanNumSpecializations();
    result->ranking = pipeline::AssembleRanking(
        entry.PlanDocs(), entry.PlanNumCandidates(), scratch->picks,
        params.diversify.k, &scratch->taken);
    return result;
  }

  std::vector<text::TermId> query_terms =
      analyzer_->AnalyzeReadOnly(normalized_query);
  index::ResultList rq =
      searcher_->SearchTerms(query_terms, params.num_candidates);
  if (rq.empty()) return result;

  if (!ambiguous) {
    // Passthrough: the plain DPH ranking stands. No surrogate
    // extraction needed — a real node only pays for snippets on the
    // diversified path.
    read_span.End();
    obs::TraceSpan select_span(trace, obs::TraceStage::kSelect, 0,
                               &stages->select_us);
    size_t k = std::min(params.diversify.k, rq.size());
    result->ranking.reserve(k);
    for (size_t i = 0; i < k; ++i) result->ranking.push_back(rq[i].doc);
    return result;
  }

  // Streaming cold path (plan-less ambiguous entry): consume R_q
  // lazily, maintaining the diversified top-k in bounded heap state as
  // candidates arrive. The utility upper bound lets the scan skip
  // snippet extraction and the O(m·|R_q′|) cosine sums for candidates
  // that can no longer displace anything — the ranking is bit-identical
  // to the materialized fallback below either way. The select span
  // splits into scan (stream consumption + pushes) and maintain
  // (finalize + ranking assembly) sub-spans; select still covers both.
  if (stream != nullptr && config_.streaming_cold_path &&
      config_.intra_query_threads <= 1) {
    const size_t m = entry.num_specializations();
    std::vector<pipeline::SpecializationRef> refs(m);
    std::vector<double> probs(m);
    for (size_t j = 0; j < m; ++j) {
      probs[j] = entry.spec_probability(j);
      refs[j].probability = probs[j];
      refs[j].results = entry.heap_surrogates(j);
      refs[j].spans = entry.spec_spans(j);
    }
    std::vector<double> inv_harmonic = pipeline::InverseHarmonics(refs);
    read_span.End();
    obs::TraceSpan select_span(trace, obs::TraceStage::kSelect, 0,
                               &stages->select_us);
    pipeline::CandidateStream candidates(&rq, snippets_, documents_,
                                         &query_terms);
    std::vector<double> row(m);
    {
      obs::TraceSpan scan_span(trace, obs::TraceStage::kScan, 0,
                               &stages->scan_us);
      stream->Begin(probs.data(), m, params.diversify.k,
                    params.diversify.lambda);
      while (!candidates.Done()) {
        if (stream->CanPrune(candidates.relevance())) {
          stream->Skip();
          candidates.Advance();
          continue;
        }
        pipeline::ComputeUtilityRow(candidates.Materialize(), refs,
                                    inv_harmonic, params.threshold_c,
                                    row.data());
        stream->Push(candidates.position(), candidates.relevance(),
                     row.data());
        candidates.Advance();
      }
      scan_span.set_detail(candidates.materialized());
    }
    obs::TraceSpan maintain_span(trace, obs::TraceStage::kMaintain, 0,
                                 &stages->maintain_us);
    stream->Finalize(params.diversify.k, &scratch->picks);
    std::vector<DocId> docs;
    docs.reserve(rq.size());
    for (const index::SearchResult& hit : rq) docs.push_back(hit.doc);
    result->diversified = true;
    result->streaming_served = true;
    result->num_specializations = m;
    result->ranking = pipeline::AssembleRanking(
        docs.data(), docs.size(), scratch->picks, params.diversify.k,
        &scratch->taken);
    return result;
  }

  // Fallback (v1/v2 store entry or plan/params mismatch), steps (b) +
  // (c): build the problem instance from R_q and the stored S_q / R_q′
  // surrogates, then run OptSelect through the same view + scratch
  // machinery the plan path uses.
  core::DiversificationInput input;
  input.query = normalized_query;
  input.candidates =
      pipeline::BuildCandidates(rq, *snippets_, *documents_, query_terms);
  input.specializations = entry.ToProfiles();

  core::UtilityComputer computer(
      core::UtilityComputer::Options{params.threshold_c});
  core::UtilityMatrix utilities = computer.Compute(input);
  core::DiversificationView view =
      core::MakeView(input, utilities, scratch);
  read_span.End();
  obs::TraceSpan select_span(trace, obs::TraceStage::kSelect, 0,
                             &stages->select_us);
  diversifier_.SelectInto(view, params.diversify, scratch,
                          &scratch->picks);

  result->diversified = true;
  result->num_specializations = input.specializations.size();
  result->ranking =
      pipeline::AssembleRanking(input, scratch->picks, params.diversify.k);
  return result;
}

std::shared_ptr<const ServeResult> ServingNode::LookupOrCompute(
    const std::string& cache_key, const std::string& normalized_query,
    const std::shared_ptr<const store::StoreSnapshot>& snapshot,
    core::SelectScratch* scratch, core::StreamingTopK* stream,
    bool* cache_hit, obs::StageTimes* stages, obs::Trace* trace) {
  *cache_hit = false;
  if (!config_.enable_cache) {
    return ComputeRanking(normalized_query, *snapshot, scratch, stream,
                          stages, trace);
  }
  std::shared_ptr<const ServeResult> cached;
  {
    obs::TraceSpan span(trace, obs::TraceStage::kCacheLookup, 0,
                        &stages->cache_lookup_us);
    cached = cache_.Get(cache_key);
  }
  if (cached) {
    *cache_hit = true;
    return cached;
  }
  auto computed = ComputeRanking(normalized_query, *snapshot, scratch,
                                 stream, stages, trace);
  // Fill guard: if a reload swapped the snapshot while we computed,
  // this result may belong to a key the reload just invalidated — drop
  // the fill (the request itself still answers on its pinned version).
  // The Put happens under snapshot_mu_ so a swap cannot slip between
  // the check and the fill; lock order (snapshot_mu_ → cache shard) is
  // never taken in reverse.
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (snapshot_ == snapshot) cache_.Put(cache_key, computed);
  }
  return computed;
}

void ServingNode::Finish(QueuedRequest* request, const Response& result) {
  if (!result.ok) {
    // Injected store-read failure: answered, but with no ranking — the
    // failover tier treats it as a shard error. Neither diversified nor
    // passthrough.
    faulted_->Add();
  } else if (result.diversified) {
    diversified_->Add();
    if (result.plan_served) {
      plan_served_->Add();
    }
    if (result.streaming_served) {
      streaming_served_->Add();
    }
  } else {
    passthrough_->Add();
  }
  auto now = std::chrono::steady_clock::now();
  int64_t total_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          now - request->enqueue_time)
          .count();
  latency_->Record(total_us);
  completed_->Add();
#if OPTSELECT_TRACING
  // The reply span covers the completion callback; it is excluded from
  // total_us on both sides of the stage-sum identity (queue_wait +
  // cache_lookup + store_read + select ≈ total).
  int64_t reply_us = -1;
  {
    obs::TraceSpan reply_span(request->trace.get(),
                              obs::TraceStage::kReply, 0, &reply_us);
    if (request->callback) request->callback(result);
  }
  if (reply_us >= 0) stage_hist_[kStageReply]->Record(reply_us);
  if (request->trace != nullptr) {
    obs::Trace& t = *request->trace;
    t.ok = result.ok;
    t.diversified = result.diversified;
    t.cache_hit = result.cache_hit;
    t.plan_served = result.plan_served;
    t.streaming_served = result.streaming_served;
    t.total_us = total_us;
    t.ranking_hash = util::Fnv1a64(result.ranking.data(),
                                   result.ranking.size() * sizeof(DocId));
    obs::Tracer* tracer = tracer_.load(std::memory_order_acquire);
    if (tracer != nullptr) tracer->Commit(std::move(t));
  }
#else
  if (request->callback) request->callback(result);
#endif
}

void ServingNode::WorkerLoop() {
  std::vector<QueuedRequest> batch;
  // Per-worker selection scratch: heaps, bitmaps and gather buffers are
  // reused across every request this worker ever computes, so the
  // plan-served hot path performs no per-request allocation.
  core::SelectScratch scratch;
  // Per-worker streaming selector: its bounded heaps are reused across
  // every cold-path request this worker computes (Begin keeps backing
  // allocations), matching the scratch's allocation-free contract.
  core::StreamingTopK stream;
  // Payloads already computed in this batch, keyed like the cache:
  // duplicate queries drained in one wakeup are computed exactly once
  // even with the cache disabled (micro-batching's amortization).
  std::unordered_map<std::string, std::shared_ptr<const ServeResult>>
      batch_local;
  while (queue_.PopBatch(&batch, config_.max_batch) > 0) {
    batches_->Add();
    batched_requests_->Add(batch.size());
    batch_local.clear();
    // Pin the active snapshot once per batch: every request drained in
    // this wakeup answers on one consistent store version, and the
    // shared_ptr keeps that version alive across a concurrent reload.
    std::shared_ptr<const store::StoreSnapshot> snapshot = this->snapshot();
#if OPTSELECT_TRACING
    const auto drain_time = std::chrono::steady_clock::now();
#endif
    for (QueuedRequest& req : batch) {
      obs::StageTimes stages;
#if OPTSELECT_TRACING
      stages.queue_wait_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              drain_time - req.enqueue_time)
              .count();
      stage_hist_[kStageQueueWait]->Record(stages.queue_wait_us);
      if (req.trace != nullptr) {
        req.trace->events.push_back(obs::TraceEvent{
            obs::TraceStage::kQueueWait, 0, stages.queue_wait_us, 0});
        req.trace->events.push_back(
            obs::TraceEvent{obs::TraceStage::kBatch, stages.queue_wait_us,
                            0, batch.size()});
      }
#endif
      std::string normalized = NormalizeQuery(req.query);
      // Store-read fault: the worker fails (or stalls — the delay is
      // applied inside EvaluateFault) while answering. Evaluated per
      // request, before batch dedup, so a transient burst fails exactly
      // the requests it was scripted to fail.
      if (EvaluateFault(FaultSite::kStoreRead, normalized).fail) {
        Finish(&req, ServeResult{});  // ok == false
        continue;
      }
      std::string key = MakeCacheKey(normalized, params_fingerprint_);

      std::shared_ptr<const ServeResult> payload;
      bool cache_hit = false;
      bool dedup = false;
      auto it = batch_local.find(key);
      if (it != batch_local.end()) {
        payload = it->second;
        dedup = true;
        batch_dedup_hits_->Add();
      } else {
        payload =
            LookupOrCompute(key, normalized, snapshot, &scratch, &stream,
                            &cache_hit, &stages, req.trace.get());
        if (batch.size() > 1) batch_local.emplace(key, payload);
      }

#if OPTSELECT_TRACING
      // Stage histograms record every request that ran the stage, not
      // just sampled ones — sampling only gates trace storage.
      if (stages.cache_lookup_us >= 0) {
        stage_hist_[kStageCacheLookup]->Record(stages.cache_lookup_us);
      }
      if (stages.store_read_us >= 0) {
        stage_hist_[kStageStoreRead]->Record(stages.store_read_us);
      }
      if (stages.select_us >= 0) {
        stage_hist_[kStageSelect]->Record(stages.select_us);
      }
      if (stages.scan_us >= 0) {
        stage_hist_[kStageScan]->Record(stages.scan_us);
      }
      if (stages.maintain_us >= 0) {
        stage_hist_[kStageMaintain]->Record(stages.maintain_us);
      }
#endif

      ServeResult result = *payload;  // copy; per-request flags below
      result.cache_hit = cache_hit;
      result.batch_dedup = dedup;
      Finish(&req, result);
    }
  }
}

ServingStats ServingNode::Stats() const {
  ServingStats s;
  // The thin-view snapshot: reads go through the registry handles in
  // registration (effect-before-cause) order — completed strictly
  // before accepted, plan_served before diversified — so the invariants
  // completed <= accepted and plan_served <= diversified hold in every
  // snapshot even while workers are mutating the counters. (The
  // pre-registry code read accepted first and could observe
  // completed > accepted under load.)
  s.completed = completed_->value();
  s.plan_served = plan_served_->value();
  s.streaming_served = streaming_served_->value();
  s.diversified = diversified_->value();
  s.passthrough = passthrough_->value();
  s.faulted = faulted_->value();
  s.accepted = accepted_->value();
  s.rejected = rejected_->value();
  ResultCacheStats cs = cache_.stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  s.cache_evictions = cs.evictions;
  s.cache_invalidations = cs.invalidations;
  s.cache_hit_rate = cs.HitRate();
  s.reloads = reloads_->value();
  s.reload_failures = reload_failures_->value();
  s.store_version = snapshot()->version();
  s.batches = batches_->value();
  s.batched_requests = batched_requests_->value();
  s.batch_dedup_hits = batch_dedup_hits_->value();
  s.mean_batch =
      s.batches == 0
          ? 0.0
          : static_cast<double>(s.batched_requests) / s.batches;
  s.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  s.qps = s.uptime_seconds > 0
              ? static_cast<double>(s.completed) / s.uptime_seconds
              : 0.0;
  s.mean_ms = latency_->MeanMicros() / 1000.0;
  s.p50_ms = latency_->PercentileMicros(0.50) / 1000.0;
  s.p95_ms = latency_->PercentileMicros(0.95) / 1000.0;
  s.p99_ms = latency_->PercentileMicros(0.99) / 1000.0;
  s.queue_depth = queue_.size();
  s.cache_entries = cache_.size();
  return s;
}

}  // namespace serving
}  // namespace optselect
