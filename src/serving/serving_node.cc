#include "serving/serving_node.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/utility.h"
#include "serving/cache_key.h"

namespace optselect {
namespace serving {
namespace {

size_t ResolveWorkers(size_t requested) {
  if (requested > 0) return requested;
  return std::max<unsigned>(1, std::thread::hardware_concurrency());
}

}  // namespace

FaultDecision ServingNode::EvaluateFault(FaultSite site,
                                         std::string_view key) const {
#if OPTSELECT_FAULT_INJECTION
  FaultInjector* injector = fault_injector_.load(std::memory_order_acquire);
  if (injector != nullptr) {
    FaultDecision decision = injector->Evaluate(site, key);
    if (decision.delay.count() > 0) {
      std::this_thread::sleep_for(decision.delay);
    }
    return decision;
  }
#else
  (void)site;
  (void)key;
#endif
  return FaultDecision{};
}

ServingNode::ServingNode(
    std::shared_ptr<const store::StoreSnapshot> snapshot,
    const index::Searcher* searcher,
    const index::SnippetExtractor* snippets,
    const text::Analyzer* analyzer,
    const corpus::DocumentStore* documents, ServingConfig config)
    : config_(config),
      snapshot_(std::move(snapshot)),
      searcher_(searcher),
      snippets_(snippets),
      analyzer_(analyzer),
      documents_(documents),
      diversifier_(std::max<size_t>(1, config.intra_query_threads)),
      params_fingerprint_(ParamsFingerprint(config.params)),
      queue_(config.queue_capacity),
      cache_(config.cache),
      start_time_(std::chrono::steady_clock::now()) {
  size_t n = ResolveWorkers(config_.num_workers);
  config_.num_workers = n;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServingNode::ServingNode(const store::DiversificationStore* store,
                         const index::Searcher* searcher,
                         const index::SnippetExtractor* snippets,
                         const text::Analyzer* analyzer,
                         const corpus::DocumentStore* documents,
                         ServingConfig config)
    : ServingNode(store::StoreSnapshot::Borrow(store), searcher, snippets,
                  analyzer, documents, config) {}

ServingNode::ServingNode(store::DiversificationStore store,
                         const index::Searcher* searcher,
                         const index::SnippetExtractor* snippets,
                         const text::Analyzer* analyzer,
                         const corpus::DocumentStore* documents,
                         ServingConfig config)
    : ServingNode(store::StoreSnapshot::Own(std::move(store)), searcher,
                  snippets, analyzer, documents, config) {}

ServingNode::ServingNode(const store::DiversificationStore* store,
                         const pipeline::Testbed* testbed,
                         ServingConfig config)
    : ServingNode(store, &testbed->searcher(), &testbed->snippets(),
                  &testbed->analyzer(), &testbed->corpus().store, config) {}

ServingNode::~ServingNode() { Shutdown(); }

std::shared_ptr<const store::StoreSnapshot> ServingNode::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

ServingNode::ReloadOutcome ServingNode::ReloadStore(
    std::shared_ptr<const store::StoreSnapshot> snapshot,
    const std::vector<std::string>& changed_keys) {
  ReloadOutcome outcome;
  outcome.new_version = snapshot->version();
  // Lifecycle fault: the swap is refused and the node keeps serving its
  // current snapshot — the refresher counts the error and retries on
  // its next tick, exactly like a failed disk read would play out.
  if (EvaluateFault(FaultSite::kReload, {}).fail) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    outcome.ok = false;
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    outcome.old_version = snapshot_->version();
    return outcome;
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    outcome.old_version = snapshot_->version();
    snapshot_ = std::move(snapshot);
  }
  // Invalidation runs after the swap: a request that recomputes one of
  // these keys between the swap and its erase already sees the new
  // snapshot, and the fill guard in LookupOrCompute keeps any compute
  // still pinned to the old snapshot from repopulating the key.
  for (const std::string& key : changed_keys) {
    if (cache_.Erase(MakeCacheKey(key, params_fingerprint_))) {
      ++outcome.invalidated;
    }
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return outcome;
}

void ServingNode::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) {
    return;  // Another caller already shut the node down.
  }
  queue_.Close();  // Workers drain the remaining requests, then exit.
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ServingNode::Submit(std::string query,
                         std::function<void(ServeResult)> callback) {
  // Admission fault: a dead shard rejects before any work happens, the
  // same shape a crashed process presents to its clients.
  if (EvaluateFault(FaultSite::kQueueSubmit, query).fail) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Request req;
  req.query = std::move(query);
  req.callback = std::move(callback);
  req.enqueue_time = std::chrono::steady_clock::now();
  if (!queue_.TryPush(std::move(req))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

ServeResult ServingNode::Serve(const std::string& query) {
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ServeResult result;
  };
  auto state = std::make_shared<SyncState>();

  if (EvaluateFault(FaultSite::kQueueSubmit, query).fail) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return ServeResult{};  // ok = false, like a shutdown rejection
  }

  Request req;
  req.query = query;
  req.enqueue_time = std::chrono::steady_clock::now();
  req.callback = [state](ServeResult r) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->result = std::move(r);
    state->done = true;
    state->cv.notify_one();
  };
  // Blocking push: synchronous callers apply backpressure instead of
  // shedding. Fails only when the node is shut down.
  if (!queue_.Push(std::move(req))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return ServeResult{};  // ok = false
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] { return state->done; });
  return std::move(state->result);
}

std::shared_ptr<const ServeResult> ServingNode::ComputeRanking(
    const std::string& normalized_query,
    const store::StoreSnapshot& snapshot,
    core::SelectScratch* scratch) const {
  auto result = std::make_shared<ServeResult>();
  result->ok = true;
  result->store_version = snapshot.version();

  const pipeline::PipelineParams& params = config_.params;
  // Serving-time step (a): the store *is* the precomputed answer of
  // Algorithm 1, so ambiguity detection is one hash lookup.
  const store::StoredEntry* entry = snapshot.store().Find(normalized_query);
  const bool ambiguous =
      entry != nullptr && entry->specializations.size() >= 2;

  // Compiled path (store v3): the builder already retrieved R_q and
  // computed the thresholded utilities against this same immutable
  // index, so the request is pure selection over the entry's flat
  // blocks — no retrieval, no snippet extraction, no cosine sums, and
  // no allocation outside the worker's scratch.
  if (ambiguous && !entry->plan.empty() &&
      entry->plan.CompatibleWith(params.num_candidates,
                                 params.threshold_c)) {
    const store::QueryPlan& plan = entry->plan;
    core::DiversificationView view = plan.View();
    diversifier_.SelectInto(view, params.diversify, scratch,
                            &scratch->picks);

    result->diversified = true;
    result->plan_served = true;
    result->num_specializations = plan.num_specializations();
    result->ranking = pipeline::AssembleRanking(
        plan.docs.data(), plan.num_candidates(), scratch->picks,
        params.diversify.k, &scratch->taken);
    return result;
  }

  std::vector<text::TermId> query_terms =
      analyzer_->AnalyzeReadOnly(normalized_query);
  index::ResultList rq =
      searcher_->SearchTerms(query_terms, params.num_candidates);
  if (rq.empty()) return result;

  if (!ambiguous) {
    // Passthrough: the plain DPH ranking stands. No surrogate
    // extraction needed — a real node only pays for snippets on the
    // diversified path.
    size_t k = std::min(params.diversify.k, rq.size());
    result->ranking.reserve(k);
    for (size_t i = 0; i < k; ++i) result->ranking.push_back(rq[i].doc);
    return result;
  }

  // Fallback (v1/v2 store entry or plan/params mismatch), steps (b) +
  // (c): build the problem instance from R_q and the stored S_q / R_q′
  // surrogates, then run OptSelect through the same view + scratch
  // machinery the plan path uses.
  core::DiversificationInput input;
  input.query = normalized_query;
  input.candidates =
      pipeline::BuildCandidates(rq, *snippets_, *documents_, query_terms);
  input.specializations = store::DiversificationStore::ToProfiles(*entry);

  core::UtilityComputer computer(
      core::UtilityComputer::Options{params.threshold_c});
  core::UtilityMatrix utilities = computer.Compute(input);
  core::DiversificationView view =
      core::MakeView(input, utilities, scratch);
  diversifier_.SelectInto(view, params.diversify, scratch,
                          &scratch->picks);

  result->diversified = true;
  result->num_specializations = input.specializations.size();
  result->ranking =
      pipeline::AssembleRanking(input, scratch->picks, params.diversify.k);
  return result;
}

std::shared_ptr<const ServeResult> ServingNode::LookupOrCompute(
    const std::string& cache_key, const std::string& normalized_query,
    const std::shared_ptr<const store::StoreSnapshot>& snapshot,
    core::SelectScratch* scratch, bool* cache_hit) {
  *cache_hit = false;
  if (!config_.enable_cache) {
    return ComputeRanking(normalized_query, *snapshot, scratch);
  }
  if (auto cached = cache_.Get(cache_key)) {
    *cache_hit = true;
    return cached;
  }
  auto computed = ComputeRanking(normalized_query, *snapshot, scratch);
  // Fill guard: if a reload swapped the snapshot while we computed,
  // this result may belong to a key the reload just invalidated — drop
  // the fill (the request itself still answers on its pinned version).
  // The Put happens under snapshot_mu_ so a swap cannot slip between
  // the check and the fill; lock order (snapshot_mu_ → cache shard) is
  // never taken in reverse.
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (snapshot_ == snapshot) cache_.Put(cache_key, computed);
  }
  return computed;
}

void ServingNode::Finish(Request* request, const ServeResult& result) {
  if (!result.ok) {
    // Injected store-read failure: answered, but with no ranking — the
    // failover tier treats it as a shard error. Neither diversified nor
    // passthrough.
    faulted_.fetch_add(1, std::memory_order_relaxed);
  } else if (result.diversified) {
    diversified_.fetch_add(1, std::memory_order_relaxed);
    if (result.plan_served) {
      plan_served_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    passthrough_.fetch_add(1, std::memory_order_relaxed);
  }
  auto now = std::chrono::steady_clock::now();
  latency_.Record(std::chrono::duration_cast<std::chrono::microseconds>(
                      now - request->enqueue_time)
                      .count());
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (request->callback) request->callback(result);
}

void ServingNode::WorkerLoop() {
  std::vector<Request> batch;
  // Per-worker selection scratch: heaps, bitmaps and gather buffers are
  // reused across every request this worker ever computes, so the
  // plan-served hot path performs no per-request allocation.
  core::SelectScratch scratch;
  // Payloads already computed in this batch, keyed like the cache:
  // duplicate queries drained in one wakeup are computed exactly once
  // even with the cache disabled (micro-batching's amortization).
  std::unordered_map<std::string, std::shared_ptr<const ServeResult>>
      batch_local;
  while (queue_.PopBatch(&batch, config_.max_batch) > 0) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
    batch_local.clear();
    // Pin the active snapshot once per batch: every request drained in
    // this wakeup answers on one consistent store version, and the
    // shared_ptr keeps that version alive across a concurrent reload.
    std::shared_ptr<const store::StoreSnapshot> snapshot = this->snapshot();
    for (Request& req : batch) {
      std::string normalized = NormalizeQuery(req.query);
      // Store-read fault: the worker fails (or stalls — the delay is
      // applied inside EvaluateFault) while answering. Evaluated per
      // request, before batch dedup, so a transient burst fails exactly
      // the requests it was scripted to fail.
      if (EvaluateFault(FaultSite::kStoreRead, normalized).fail) {
        Finish(&req, ServeResult{});  // ok == false
        continue;
      }
      std::string key = MakeCacheKey(normalized, params_fingerprint_);

      std::shared_ptr<const ServeResult> payload;
      bool cache_hit = false;
      bool dedup = false;
      auto it = batch_local.find(key);
      if (it != batch_local.end()) {
        payload = it->second;
        dedup = true;
        batch_dedup_hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        payload = LookupOrCompute(key, normalized, snapshot, &scratch,
                                  &cache_hit);
        if (batch.size() > 1) batch_local.emplace(key, payload);
      }

      ServeResult result = *payload;  // copy; per-request flags below
      result.cache_hit = cache_hit;
      result.batch_dedup = dedup;
      Finish(&req, result);
    }
  }
}

ServingStats ServingNode::Stats() const {
  ServingStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.diversified = diversified_.load(std::memory_order_relaxed);
  s.plan_served = plan_served_.load(std::memory_order_relaxed);
  s.passthrough = passthrough_.load(std::memory_order_relaxed);
  ResultCacheStats cs = cache_.stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  s.cache_evictions = cs.evictions;
  s.cache_invalidations = cs.invalidations;
  s.cache_hit_rate = cs.HitRate();
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.faulted = faulted_.load(std::memory_order_relaxed);
  s.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  s.store_version = snapshot()->version();
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.batch_dedup_hits = batch_dedup_hits_.load(std::memory_order_relaxed);
  s.mean_batch =
      s.batches == 0
          ? 0.0
          : static_cast<double>(s.batched_requests) / s.batches;
  s.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  s.qps = s.uptime_seconds > 0
              ? static_cast<double>(s.completed) / s.uptime_seconds
              : 0.0;
  s.mean_ms = latency_.MeanMicros() / 1000.0;
  s.p50_ms = latency_.PercentileMicros(0.50) / 1000.0;
  s.p95_ms = latency_.PercentileMicros(0.95) / 1000.0;
  s.p99_ms = latency_.PercentileMicros(0.99) / 1000.0;
  s.queue_depth = queue_.size();
  s.cache_entries = cache_.size();
  return s;
}

}  // namespace serving
}  // namespace optselect
