// Query-serving node — the production architecture of Section 4.1.
//
// The paper's efficiency argument is that OptSelect is cheap enough to
// run *inside* the query pipeline of a serving node that keeps only the
// precomputed DiversificationStore in memory (no query log, no
// recommender). A ServingNode is that node: it owns the serving-time
// flow
//
//     request ─> bounded MPMC queue ─> worker pool
//       worker: normalize ─> sharded LRU result cache
//               ─(miss)─> store lookup
//                 ├─ compiled plan (store v3): selection directly over
//                 │  the entry's precomputed utility blocks — no
//                 │  retrieval, no utility recompute, no allocation
//                 │  (per-worker SelectScratch) ─> ranking
//                 └─ fallback: retrieve R_q ─> utilities ─> OptSelect
//               ─> ranking ─> cache fill
//
// with a fixed-size thread pool, optional micro-batching (each worker
// wakeup drains up to max_batch queued requests and computes duplicate
// queries once), and a ServingStats snapshot (QPS, latency quantiles
// from a streaming histogram, cache and traffic counters). The plan
// path and the fallback produce bit-identical rankings (the builder
// compiles plans by running the fallback's exact code against the same
// immutable retrieval stack); plans whose compile parameters disagree
// with this node's pipeline params are ignored, never half-used.
//
// The store is held as a refcounted immutable StoreSnapshot and can be
// hot-swapped mid-traffic with ReloadStore: workers pin the current
// snapshot per batch, so in-flight requests finish on the version they
// started with while new batches see the new one, and the result cache
// is invalidated only for the keys whose stored entries actually
// changed — unchanged queries keep serving bit-identical cached
// rankings across the swap.
//
// The ranking computed here is bit-identical to
// DiversificationPipeline::Run for the same inputs whenever the store
// entry matches what the live mining stack would produce — the store
// *is* the serialized output of that stack (store_builder) — except that
// specializations come from the store rather than a live detector, which
// is exactly the serving/offline split the paper describes.

#ifndef OPTSELECT_SERVING_SERVING_NODE_H_
#define OPTSELECT_SERVING_SERVING_NODE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_optselect.h"
#include "core/select_view.h"
#include "core/streaming_select.h"
#include "corpus/document_store.h"
#include "index/searcher.h"
#include "index/snippet_extractor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/diversification_pipeline.h"
#include "pipeline/testbed.h"
#include "serving/fault_injector.h"
#include "serving/frontend.h"
#include "serving/latency_histogram.h"
#include "serving/request_queue.h"
#include "serving/result_cache.h"
#include "store/diversification_store.h"
#include "store/store_snapshot.h"
#include "text/analyzer.h"
#include "util/types.h"

namespace optselect {
namespace serving {

/// Node configuration.
struct ServingConfig {
  /// Worker threads in the pool (0 ⇒ hardware_concurrency).
  size_t num_workers = 0;
  /// Bounded request queue capacity; Submit sheds load beyond this.
  size_t queue_capacity = 1024;
  /// Max requests drained per worker wakeup; 1 disables micro-batching.
  size_t max_batch = 8;
  /// Result cache switch + sizing.
  bool enable_cache = true;
  ResultCacheOptions cache;
  /// Threads used *inside* one diversification (ParallelOptSelect
  /// shards). Keep at 1 when the pool itself saturates the cores.
  size_t intra_query_threads = 1;
  /// Serve plan-less ambiguous queries (the cold path) through the
  /// streaming selector: candidates are consumed lazily off the
  /// retrieval result and the upper bound (1−λ)·m·P(d|q) + λ·ΣP(q′|q)
  /// prunes snippet extraction + cosine sums for candidates that can no
  /// longer enter the top k. Rankings are bit-identical to the
  /// materialize-then-select fallback (asserted by serving_test and
  /// bench_streaming_select); the flag is therefore not part of the
  /// cache key. Per-request fallback to materialize-then-select when
  /// intra_query_threads > 1 (sharded selection needs the full matrix).
  bool streaming_cold_path = true;
  /// Retrieval / diversification parameters (shared by every request).
  pipeline::PipelineParams params;
  /// Metrics registry the node registers its counters, gauges, and
  /// latency histograms into. Non-owned and must outlive the node; null
  /// (the default) makes the node create a private registry, reachable
  /// via metrics() — single-node tools and tests keep working unchanged
  /// while a ShardedCluster passes one shared registry to every shard.
  obs::MetricsRegistry* registry = nullptr;
  /// Labels stamped on every metric this node registers (the cluster
  /// sets {{"shard", "<i>"}}); empty for a standalone node.
  obs::Labels metric_labels;
};

/// Deprecated alias: the per-request outcome is serving::Response
/// (serving/frontend.h) — one struct for every Frontend implementation.
/// Kept so call sites and tests that pin the historical name compile
/// unchanged.
using ServeResult = Response;

/// Point-in-time stats snapshot.
struct ServingStats {
  uint64_t accepted = 0;     ///< requests admitted to the queue
  uint64_t rejected = 0;     ///< Submit calls shed (queue full / shutdown)
  uint64_t completed = 0;    ///< requests answered (callback invoked)
  uint64_t diversified = 0;  ///< answered via store + OptSelect
  uint64_t plan_served = 0;  ///< of those, served off compiled v3 plans
  uint64_t streaming_served = 0;  ///< of those, via the streaming cold path
  uint64_t passthrough = 0;  ///< answered with the plain DPH ranking
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;  ///< per-key erases from reloads
  uint64_t reloads = 0;              ///< snapshot swaps since start
  uint64_t faulted = 0;          ///< answers failed by injected faults
  uint64_t reload_failures = 0;  ///< ReloadStore calls refused by faults
  uint64_t store_version = 0;        ///< active snapshot's version
  uint64_t batches = 0;          ///< worker wakeups that did work
  uint64_t batched_requests = 0; ///< requests served through batches
  uint64_t batch_dedup_hits = 0; ///< duplicates computed once in a batch
  double cache_hit_rate = 0.0;
  double mean_batch = 0.0;
  double uptime_seconds = 0.0;
  double qps = 0.0;          ///< completed / uptime
  double mean_ms = 0.0;      ///< request latency (queue wait included)
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  size_t queue_depth = 0;
  size_t cache_entries = 0;
};

/// Multithreaded serving front end over a loaded DiversificationStore.
class ServingNode : public Frontend {
 public:
  /// Wires the node from serving-time components. All pointers are
  /// non-owned and must outlive the node; every component is used
  /// read-only (the retrieval stack is immutable after build, the
  /// analyzer through AnalyzeReadOnly), which is what makes the worker
  /// pool safe. Workers start immediately.
  ServingNode(const store::DiversificationStore* store,
              const index::Searcher* searcher,
              const index::SnippetExtractor* snippets,
              const text::Analyzer* analyzer,
              const corpus::DocumentStore* documents,
              ServingConfig config);

  /// Same, but takes ownership of a store loaded from disk
  /// (DiversificationStore::Load) — the deployment shape of Section 4.1.
  ServingNode(store::DiversificationStore store,
              const index::Searcher* searcher,
              const index::SnippetExtractor* snippets,
              const text::Analyzer* analyzer,
              const corpus::DocumentStore* documents,
              ServingConfig config);

  /// Convenience wiring from a fully built testbed plus a store.
  ServingNode(const store::DiversificationStore* store,
              const pipeline::Testbed* testbed, ServingConfig config);

  /// Hot-reload-ready wiring: starts on an explicit snapshot (e.g. from
  /// store::BuildSnapshot or StoreSnapshot::Own of a loaded store).
  ServingNode(std::shared_ptr<const store::StoreSnapshot> snapshot,
              const index::Searcher* searcher,
              const index::SnippetExtractor* snippets,
              const text::Analyzer* analyzer,
              const corpus::DocumentStore* documents,
              ServingConfig config);

  ServingNode(const ServingNode&) = delete;
  ServingNode& operator=(const ServingNode&) = delete;

  /// Drains and joins (Shutdown).
  ~ServingNode() override;

  /// Frontend: synchronous request — enqueues (blocking while the queue
  /// is full) and waits for the worker pool to answer. Returns
  /// ok=false only when the node is shut down.
  Response Submit(const Request& request) override;

  /// Frontend: asynchronous request — non-blocking enqueue; `callback`
  /// fires on a worker thread exactly once. Returns false — and never
  /// invokes the callback — when the queue is full or the node is shut
  /// down (load shedding; counted in stats().rejected).
  bool SubmitAsync(Request request,
                   std::function<void(Response)> callback) override;

  /// Deprecated shim for Submit(Request) — the signature the original
  /// tests pin.
  ServeResult Serve(const std::string& query) { return Submit(Request(query)); }

  /// Deprecated shim for SubmitAsync — ditto.
  bool Submit(std::string query, std::function<void(ServeResult)> callback) {
    return SubmitAsync(Request(std::move(query)), std::move(callback));
  }

  /// Stops admission, drains every queued request (their callbacks still
  /// fire), and joins the workers. Idempotent; called by the destructor.
  void Shutdown();

  /// Outcome of one ReloadStore call.
  struct ReloadOutcome {
    /// False when an injected kReload fault refused the swap: the node
    /// keeps serving its current snapshot, nothing was invalidated.
    bool ok = true;
    uint64_t old_version = 0;
    uint64_t new_version = 0;
    /// Cache entries actually erased (≤ changed_keys.size()).
    size_t invalidated = 0;
  };

  /// Atomically swaps the active store snapshot mid-traffic. In-flight
  /// batches finish on the snapshot they pinned; batches drained after
  /// the swap see the new one. `changed_keys` (normalized store keys,
  /// e.g. SnapshotBuildResult::changed_keys) drives per-key result
  /// cache invalidation — every other cached ranking survives the swap
  /// untouched. Safe to call from any thread, concurrently with
  /// traffic. `snapshot` must be non-null.
  ReloadOutcome ReloadStore(
      std::shared_ptr<const store::StoreSnapshot> snapshot,
      const std::vector<std::string>& changed_keys);

  /// Installs (or, with nullptr, clears) a fault injector consulted at
  /// the admission, store-read, and reload boundaries. Not owned; must
  /// outlive the node or be cleared first. In builds without
  /// OPTSELECT_FAULT_INJECTION the sites are compiled out and the
  /// installed injector is never evaluated (FaultInjectionCompiledIn()).
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }

  /// Installs (or clears) a tracer: each accepted request gets a
  /// sequence number and, when sampled, carries an obs::Trace through
  /// the worker flow, committed on completion. Not owned; must outlive
  /// the node or be cleared first. In builds without OPTSELECT_TRACING
  /// the sites are compiled out (obs::TracingCompiledIn()).
  void set_tracer(obs::Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }

  /// Snapshot of the counters and latency quantiles. Reads go through
  /// the registry handles in registration (effect-before-cause) order,
  /// so derived invariants like completed <= accepted hold in every
  /// snapshot.
  ServingStats Stats() const;

  /// The registry this node records into (the config's, or the private
  /// one created when none was supplied).
  const obs::MetricsRegistry& metrics() const { return *registry_; }

  /// The node's request-latency histogram (queue wait included). Used
  /// by the cluster tier to merge per-shard distributions into exact
  /// cluster-level quantiles instead of averaging per-shard quantiles.
  const LatencyHistogram& latency_histogram() const { return *latency_; }

  const ServingConfig& config() const { return config_; }

  /// The active snapshot (refcounted — safe to hold across reloads).
  std::shared_ptr<const store::StoreSnapshot> snapshot() const;

  /// The active snapshot's store. The reference is valid only while the
  /// snapshot stays active; under hot reload prefer snapshot().
  const store::DiversificationStore& store() const {
    return snapshot()->store();
  }

 private:
  /// One queue item (distinct from serving::Request, the public API
  /// struct — this carries the completion plumbing through the queue).
  struct QueuedRequest {
    std::string query;
    std::function<void(Response)> callback;
    std::chrono::steady_clock::time_point enqueue_time;
    /// Sampled requests carry their trace through the queue; null for
    /// the unsampled rest (and always null with tracing compiled out).
    std::unique_ptr<obs::Trace> trace;
  };

  /// Indices into stage_hist_ (per-stage latency histograms).
  enum StageIndex : size_t {
    kStageQueueWait = 0,
    kStageCacheLookup,
    kStageStoreRead,
    kStageSelect,
    kStageReply,
    kStageScan,
    kStageMaintain,
    kNumStages,
  };

  void WorkerLoop();
  /// Registers every counter/gauge/histogram into registry_ (ctor).
  void RegisterMetrics();
  /// Samples the just-accepted request: assigns a sequence number and
  /// attaches a Trace when the installed tracer selects it. No-op
  /// (compiled out) without OPTSELECT_TRACING.
  void MaybeStartTrace(QueuedRequest* request);
  /// Consults the installed fault injector; a no-decision default when
  /// none is installed or the hooks are compiled out.
  FaultDecision EvaluateFault(FaultSite site, std::string_view key) const;
  /// Compute for one normalized query against a pinned snapshot.
  /// `scratch` is the calling worker's reusable selection memory; the
  /// plan path runs entirely inside it (no per-request allocation
  /// beyond the result object itself). `stream` is the worker's
  /// streaming selector state (heaps reused across requests); null
  /// forces the materialize-then-select cold path. `stages` collects
  /// store-read / select wall time; `trace` (nullable) collects span
  /// events.
  std::shared_ptr<const ServeResult> ComputeRanking(
      const std::string& normalized_query,
      const store::StoreSnapshot& snapshot, core::SelectScratch* scratch,
      core::StreamingTopK* stream, obs::StageTimes* stages,
      obs::Trace* trace) const;
  /// Full per-request flow: cache lookup, compute, cache fill. The
  /// fill is skipped when the active snapshot moved past `snapshot`
  /// mid-compute, so a stale ranking can never repopulate a key that a
  /// concurrent ReloadStore just invalidated.
  std::shared_ptr<const ServeResult> LookupOrCompute(
      const std::string& cache_key, const std::string& normalized_query,
      const std::shared_ptr<const store::StoreSnapshot>& snapshot,
      core::SelectScratch* scratch, core::StreamingTopK* stream,
      bool* cache_hit, obs::StageTimes* stages, obs::Trace* trace);
  void Finish(QueuedRequest* request, const Response& result);

  ServingConfig config_;
  /// Private registry when the config supplied none. Declared before
  /// every member that registers into it, so it outlives their
  /// callbacks on destruction.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const store::StoreSnapshot> snapshot_;
  const index::Searcher* searcher_;
  const index::SnippetExtractor* snippets_;
  const text::Analyzer* analyzer_;
  const corpus::DocumentStore* documents_;
  core::ParallelOptSelectDiversifier diversifier_;
  uint64_t params_fingerprint_;

  BoundedRequestQueue<QueuedRequest> queue_;
  ShardedLruCache<ServeResult> cache_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shutdown_{false};
  std::chrono::steady_clock::time_point start_time_;

  // Registry handles (owned by *registry_; registered effect-before-
  // cause — see RegisterMetrics for the order and the invariants it
  // buys). Raw-atomic plumbing replaced in the observability PR.
  obs::Counter* completed_ = nullptr;
  obs::Counter* plan_served_ = nullptr;
  obs::Counter* streaming_served_ = nullptr;
  obs::Counter* diversified_ = nullptr;
  obs::Counter* passthrough_ = nullptr;
  obs::Counter* faulted_ = nullptr;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Counter* batched_requests_ = nullptr;
  obs::Counter* batch_dedup_hits_ = nullptr;
  obs::Counter* reloads_ = nullptr;
  obs::Counter* reload_failures_ = nullptr;
  LatencyHistogram* latency_ = nullptr;
  LatencyHistogram* stage_hist_[kNumStages] = {nullptr};

  std::atomic<FaultInjector*> fault_injector_{nullptr};
  std::atomic<obs::Tracer*> tracer_{nullptr};
  /// Request sequence numbers for deterministic sampling; assigned per
  /// admission attempt while a tracer is installed.
  std::atomic<uint64_t> trace_seq_{0};
};

}  // namespace serving
}  // namespace optselect

#endif  // OPTSELECT_SERVING_SERVING_NODE_H_
