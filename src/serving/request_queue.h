// Bounded multi-producer / multi-consumer request queue.
//
// The admission seam of the ServingNode: producers are client threads
// (Serve blocks on a full queue, Submit sheds load instead), consumers
// are pool workers. PopBatch hands a consumer every immediately
// available item up to `max_batch` in a single lock acquisition — the
// micro-batching primitive that amortizes wakeups and lets the worker
// deduplicate identical in-flight queries (see serving_node.cc).
//
// Close() initiates a drain: producers are rejected from then on, but
// consumers keep popping until the queue is empty, so no accepted
// request is ever dropped on shutdown.

#ifndef OPTSELECT_SERVING_REQUEST_QUEUE_H_
#define OPTSELECT_SERVING_REQUEST_QUEUE_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace optselect {
namespace serving {

/// Mutex + condvar bounded MPMC FIFO.
template <typename T>
class BoundedRequestQueue {
 public:
  explicit BoundedRequestQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedRequestQueue(const BoundedRequestQueue&) = delete;
  BoundedRequestQueue& operator=(const BoundedRequestQueue&) = delete;

  /// Blocks while the queue is full. Returns false (item dropped) when
  /// the queue was closed before space became available.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until at least one item is available (or the queue is closed
  /// and empty), then moves up to `max_batch` items into `*out`
  /// (cleared first). Returns the number of items delivered; 0 means
  /// "closed and drained" — the consumer should exit.
  size_t PopBatch(std::vector<T>* out, size_t max_batch) {
    out->clear();
    if (max_batch == 0) max_batch = 1;
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    size_t n = std::min(max_batch, items_.size());
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Rejects future pushes and wakes every waiter. Items already queued
  /// remain poppable (drain semantics). Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace serving
}  // namespace optselect

#endif  // OPTSELECT_SERVING_REQUEST_QUEUE_H_
