// Deterministic fault injection for the serving tier.
//
// Production fault tolerance is unverifiable without a way to *cause*
// faults on demand, reproducibly. A FaultInjector is a hook consulted at
// the three boundaries where a real shard misbehaves:
//
//   kQueueSubmit — admission: a dead or overloaded process rejects the
//                  request before any work happens (Submit/Serve);
//   kStoreRead   — compute: the worker fails (or stalls) while answering
//                  — an I/O error, a corrupted page, a GC pause;
//   kReload      — lifecycle: a snapshot swap is refused mid-flight.
//
// The hooks are consulted per request with the normalized query key, so
// a scripted injector can fail deterministically by key or by flag — no
// wall clock, no global RNG — which is what makes the chaos scenario
// runner (src/cluster/chaos.h) reproducible from a single seed.
//
// Cost model: every site is guarded by OPTSELECT_FAULT_INJECTION. Debug
// builds compile the hooks in (they are one relaxed atomic load per
// site when no injector is installed); Release builds compile them out
// to nothing unless configured with -DOPTSELECT_FAULT_INJECTION=ON, so
// the production hot path pays zero cost. The injector *classes* are
// always compiled — callers build everywhere; only the evaluation sites
// vanish — and FaultInjectionCompiledIn() tells tests and the chaos CLI
// whether installing one will have any effect.

#ifndef OPTSELECT_SERVING_FAULT_INJECTOR_H_
#define OPTSELECT_SERVING_FAULT_INJECTOR_H_

// Compile-time gate for the evaluation sites. Debug builds (no NDEBUG)
// default on; optimized builds default off and opt in via the CMake
// option OPTSELECT_FAULT_INJECTION=ON.
#ifndef OPTSELECT_FAULT_INJECTION
#ifdef NDEBUG
#define OPTSELECT_FAULT_INJECTION 0
#else
#define OPTSELECT_FAULT_INJECTION 1
#endif
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace optselect {
namespace serving {

/// True when this build evaluates installed injectors (see header doc).
constexpr bool FaultInjectionCompiledIn() {
  return OPTSELECT_FAULT_INJECTION != 0;
}

/// Where in the serving flow a fault is being considered.
enum class FaultSite {
  kQueueSubmit,  ///< admission (ServingNode::Submit / Serve)
  kStoreRead,    ///< worker compute, before the store lookup
  kReload,       ///< ServingNode::ReloadStore
};

/// What the injector wants done at a site. Delay is applied first (on
/// the thread hitting the site), then the failure, so "slow then dead"
/// composes.
struct FaultDecision {
  bool fail = false;
  std::chrono::microseconds delay{0};
};

/// Hook interface. Evaluate is called concurrently from client threads
/// (kQueueSubmit), worker threads (kStoreRead), and refresh threads
/// (kReload); implementations synchronize themselves.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// `key` is the normalized query at request sites, empty at kReload.
  virtual FaultDecision Evaluate(FaultSite site, std::string_view key) = 0;
};

/// Flag-driven injector for tests and the chaos runner. All knobs are
/// atomics: the scenario thread flips them between requests while the
/// node's threads read them. Decisions are pure functions of the flags
/// (plus one counted-burst knob), never of time or randomness.
class ScriptedFaultInjector : public FaultInjector {
 public:
  /// Dead shard: every admission is rejected (kQueueSubmit fails).
  void SetDead(bool dead) {
    dead_.store(dead, std::memory_order_relaxed);
  }
  bool dead() const { return dead_.load(std::memory_order_relaxed); }

  /// Every store read fails (worker answers ok == false).
  void SetFailStoreReads(bool fail) {
    fail_store_reads_.store(fail, std::memory_order_relaxed);
  }

  /// Transient burst: the next `n` store reads fail, then recover.
  void FailNextStoreReads(uint64_t n) {
    store_read_burst_.store(n, std::memory_order_relaxed);
  }

  /// Injected latency before every store read (0 disables).
  void SetStoreReadDelay(std::chrono::microseconds delay) {
    store_read_delay_us_.store(delay.count(), std::memory_order_relaxed);
  }

  /// Every ReloadStore is refused (snapshot swap does not happen).
  void SetFailReloads(bool fail) {
    fail_reloads_.store(fail, std::memory_order_relaxed);
  }

  FaultDecision Evaluate(FaultSite site, std::string_view key) override {
    (void)key;
    FaultDecision decision;
    switch (site) {
      case FaultSite::kQueueSubmit:
        decision.fail = dead_.load(std::memory_order_relaxed);
        if (decision.fail) {
          submit_faults_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case FaultSite::kStoreRead: {
        int64_t delay = store_read_delay_us_.load(std::memory_order_relaxed);
        if (delay > 0) {
          decision.delay = std::chrono::microseconds(delay);
          delays_.fetch_add(1, std::memory_order_relaxed);
        }
        decision.fail = fail_store_reads_.load(std::memory_order_relaxed);
        if (!decision.fail) {
          // Consume one ticket of a transient burst, if any remain.
          uint64_t left = store_read_burst_.load(std::memory_order_relaxed);
          while (left > 0 &&
                 !store_read_burst_.compare_exchange_weak(
                     left, left - 1, std::memory_order_relaxed)) {
          }
          decision.fail = left > 0;
        }
        if (decision.fail) {
          store_read_faults_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case FaultSite::kReload:
        decision.fail = fail_reloads_.load(std::memory_order_relaxed);
        if (decision.fail) {
          reload_faults_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
    }
    return decision;
  }

  /// How often each site actually fired (observability for tests).
  struct Counts {
    uint64_t submit_faults = 0;
    uint64_t store_read_faults = 0;
    uint64_t delays = 0;
    uint64_t reload_faults = 0;
  };
  Counts counts() const {
    Counts c;
    c.submit_faults = submit_faults_.load(std::memory_order_relaxed);
    c.store_read_faults = store_read_faults_.load(std::memory_order_relaxed);
    c.delays = delays_.load(std::memory_order_relaxed);
    c.reload_faults = reload_faults_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  std::atomic<bool> dead_{false};
  std::atomic<bool> fail_store_reads_{false};
  std::atomic<uint64_t> store_read_burst_{0};
  std::atomic<int64_t> store_read_delay_us_{0};
  std::atomic<bool> fail_reloads_{false};

  std::atomic<uint64_t> submit_faults_{0};
  std::atomic<uint64_t> store_read_faults_{0};
  std::atomic<uint64_t> delays_{0};
  std::atomic<uint64_t> reload_faults_{0};
};

}  // namespace serving
}  // namespace optselect

#endif  // OPTSELECT_SERVING_FAULT_INJECTOR_H_
