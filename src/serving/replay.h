// Replay driver shared by the load-test surfaces (`optselect loadtest`
// and bench_serving_throughput): submit a prepared query mix through a
// node's async API, wait for every accepted callback, and time the
// whole drain.

#ifndef OPTSELECT_SERVING_REPLAY_H_
#define OPTSELECT_SERVING_REPLAY_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "serving/serving_node.h"

namespace optselect {
namespace serving {

/// One replay run's outcome.
struct ReplayOutcome {
  /// Requests admitted (== mix size unless the queue shed load).
  size_t accepted = 0;
  /// First submit → last completion.
  double wall_ms = 0.0;
  /// accepted / wall, in queries per second.
  double qps = 0.0;
};

/// An async request front end: submits one query, invoking the callback
/// exactly once unless it returns false (request shed). Both
/// ServingNode::Submit and cluster::ShardedCluster::Submit fit.
using SubmitFn = std::function<bool(const std::string&,
                                    std::function<void(ServeResult)>)>;

/// Submits every query in `mix` (in order) and blocks until each
/// accepted request's callback has fired. Requests shed by the bounded
/// queue are skipped and reflected in `accepted`; size the node's
/// queue_capacity to the mix when shedding is not intended.
ReplayOutcome ReplayMix(ServingNode* node,
                        const std::vector<std::string>& mix);

/// Same, through any submit front end (a router / sharded cluster).
ReplayOutcome ReplayMix(const SubmitFn& submit,
                        const std::vector<std::string>& mix);

/// Same, through the unified Frontend contract (SubmitAsync) — the one
/// overload every serving tier satisfies: node, cluster, or a remote
/// client speaking the wire protocol. Local and remote replays are the
/// same code path by construction.
ReplayOutcome ReplayMix(Frontend* frontend,
                        const std::vector<std::string>& mix);

/// A synchronous serving front end: one query in, one answered (or
/// failed) result out. ServingNode::Serve, ShardedCluster::Serve, and
/// ShardedCluster::ServeWithFailover all fit.
using ServeFn = std::function<ServeResult(const std::string&)>;

/// Strictly sequential replay: serves mix[i] only after mix[i-1] has
/// been answered, invoking `before_request(i)` first (may be null) and
/// `on_result(i, result)` after (may be null). One request in flight at
/// a time means the request/outcome order is the mix order — the
/// determinism the chaos harness (cluster/chaos.h) builds on, and the
/// hook point where its fault schedule flips injector flags.
ReplayOutcome ReplaySequential(
    const ServeFn& serve, const std::vector<std::string>& mix,
    const std::function<void(size_t)>& before_request,
    const std::function<void(size_t, const ServeResult&)>& on_result);

/// Same, through the unified Frontend contract (blocking Submit) — used
/// by the process-level chaos harness, where the front end is a remote
/// client router over shard processes.
ReplayOutcome ReplaySequential(
    Frontend* frontend, const std::vector<std::string>& mix,
    const std::function<void(size_t)>& before_request,
    const std::function<void(size_t, const ServeResult&)>& on_result);

}  // namespace serving
}  // namespace optselect

#endif  // OPTSELECT_SERVING_REPLAY_H_
