#include "serving/cache_key.h"

#include <cstdio>

#include "util/hash.h"
#include "util/strings.h"

namespace optselect {
namespace serving {

std::string NormalizeQuery(std::string_view raw) {
  return util::NormalizeQueryText(raw);
}

uint64_t ParamsFingerprint(const pipeline::PipelineParams& params) {
  uint64_t h = util::kFnv1aOffsetBasis;
  h = util::Fnv1a64Value(params.num_candidates, h);
  h = util::Fnv1a64Value(params.results_per_specialization, h);
  h = util::Fnv1a64Value(params.threshold_c, h);
  h = util::Fnv1a64Value(params.diversify.k, h);
  h = util::Fnv1a64Value(params.diversify.lambda, h);
  return h;
}

std::string MakeCacheKey(std::string_view normalized_query,
                         uint64_t params_fingerprint) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(params_fingerprint));
  std::string key;
  key.reserve(normalized_query.size() + 17);
  key.append(normalized_query);
  key.push_back('\x1f');  // unit separator: cannot appear in a query
  key.append(hex);
  return key;
}

}  // namespace serving
}  // namespace optselect
