// Background store refresh loop — closes the paper's offline/online gap.
//
// Section 4.1 mines the diversification store from a long-term query
// log once, offline. A StoreRefresher keeps a live ServingNode's store
// converging toward the log as it grows, without ever reprocessing the
// full log:
//
//   tick:  LogIngestor.Poll()                 (tail only the new bytes)
//          ─> ShortcutsRecommender::TrainIncremental(delta)
//          ─> store::MineDelta(dirty queries)  (re-run Algorithm 1 on
//                                              the affected queries)
//          ─> store::BuildSnapshot(base, delta)
//          ─> node->ReloadStore(snapshot, changed_keys)
//          ─> optional Save() of the versioned snapshot
//
// Construction seeds the mining state from the log the base store was
// built from (one-time cost equal to the offline build), after which
// every tick costs O(new records + dirty queries). Ticks that ingest
// nothing, or whose delta changes nothing, swap nothing.
//
// Delta sessions are segmented with the time rule only: the query-flow
// graph chaining signal needs graph-global weights, and rebuilding
// those per tick is exactly the full recompute this loop exists to
// avoid. A session spanning a poll boundary is split at the boundary —
// both halves still contribute their in-half refinement pairs.
//
// Run it on a cadence with Start()/Stop(), or drive it deterministically
// with TickOnce() (tests, the `:refresh` REPL command).

#ifndef OPTSELECT_SERVING_STORE_REFRESHER_H_
#define OPTSELECT_SERVING_STORE_REFRESHER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "corpus/document_store.h"
#include "index/searcher.h"
#include "obs/metrics.h"
#include "index/snippet_extractor.h"
#include "querylog/log_ingestor.h"
#include "querylog/session_segmenter.h"
#include "recommend/ambiguity_detector.h"
#include "recommend/shortcuts_recommender.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"
#include "text/analyzer.h"
#include "util/status.h"

namespace optselect {
namespace serving {

/// Refresh loop configuration.
struct StoreRefresherConfig {
  /// TSV query log to tail (QueryLog::SaveTsv format).
  std::string log_path;
  /// Cadence of the background loop (Start()); TickOnce ignores it.
  std::chrono::milliseconds interval{5000};
  /// When set, every swapped snapshot is also persisted here with its
  /// monotonic version (crash recovery / warm restart).
  std::string persist_path;
  /// Surrogate materialization knobs for re-mined entries. The plan
  /// compile sub-options (builder.plan) are overridden at construction
  /// with the node's own pipeline params — a refresher must compile
  /// plans the node it feeds can actually use, and bit-identical
  /// serving across a swap requires the exact same (num_candidates,
  /// threshold_c) pair.
  store::StoreBuilderOptions builder;
  /// Sharded serving (src/cluster): when set, mined upserts/removals
  /// whose *normalized* key fails this predicate are dropped before
  /// BuildSnapshot — a shard's refresher applies exactly the slice of
  /// the delta its node holds (store::ShardFilter::Keeps is the
  /// intended predicate). The mining pass itself still runs on the full
  /// dirty set: ownership is a property of the store, not of the log.
  /// Null (the default) keeps every change — single-node behaviour.
  std::function<bool(const std::string&)> key_filter;
  /// Mining knobs — should match the offline build that produced the
  /// base store, or the first refresh will "correct" entries toward the
  /// new settings.
  recommend::ShortcutsRecommender::Options recommender;
  recommend::AmbiguityDetector::Options detector;
  querylog::SessionSegmenter::Options segmenter;
  /// When set, the refresher registers its counters/gauges here at
  /// construction (callback-backed — they read stats() lazily). The
  /// registry must outlive the refresher. Null skips registration; the
  /// stats() snapshot keeps working either way.
  obs::MetricsRegistry* registry = nullptr;
  /// Labels for the registered metrics, e.g. {{"shard", "0"}}.
  obs::Labels metric_labels;
};

/// Counters for observability; snapshot via stats().
struct StoreRefresherStats {
  uint64_t ticks = 0;             ///< TickOnce calls (loop or manual)
  uint64_t ingested_records = 0;  ///< log records consumed
  uint64_t malformed_lines = 0;   ///< skipped unparseable lines
  uint64_t swaps = 0;             ///< reloads actually performed
  uint64_t upserts = 0;           ///< entries inserted/replaced
  uint64_t removals = 0;          ///< entries dropped
  uint64_t errors = 0;            ///< ticks that failed (I/O)
  uint64_t store_version = 0;     ///< version after the last swap
  double last_tick_ms = 0.0;      ///< wall time of the last tick
};

/// Owns the incremental mining state and drives a node's hot reloads.
class StoreRefresher {
 public:
  /// `node` and the retrieval components are not owned and must outlive
  /// the refresher. `initial_log` (may be empty) seeds the recommender
  /// with the traffic the node's base store was mined from; the
  /// ingestor then starts tailing at the *current end* of
  /// config.log_path, so records already reflected in the base store
  /// are never re-ingested.
  StoreRefresher(ServingNode* node, const index::Searcher* searcher,
                 const index::SnippetExtractor* snippets,
                 const text::Analyzer* analyzer,
                 const corpus::DocumentStore* documents,
                 const querylog::QueryLog& initial_log,
                 StoreRefresherConfig config);

  StoreRefresher(const StoreRefresher&) = delete;
  StoreRefresher& operator=(const StoreRefresher&) = delete;

  /// Stops the loop (if running).
  ~StoreRefresher();

  /// Spawns the background loop: one TickOnce per interval. Idempotent.
  void Start();

  /// Signals the loop to exit and joins it. Idempotent; safe without
  /// Start().
  void Stop();

  /// One synchronous refresh pass. Returns Ok both when a swap happened
  /// and when there was nothing to do; fails on ingest I/O errors (the
  /// node keeps serving its current snapshot either way). Thread-safe
  /// against the background loop (ticks are serialized).
  util::Status TickOnce();

  StoreRefresherStats stats() const;

  const querylog::LogIngestor& ingestor() const { return ingestor_; }

 private:
  void Loop();

  ServingNode* node_;
  const index::Searcher* searcher_;
  const index::SnippetExtractor* snippets_;
  const text::Analyzer* analyzer_;
  const corpus::DocumentStore* documents_;
  StoreRefresherConfig config_;

  std::mutex tick_mu_;  // serializes TickOnce bodies
  querylog::LogIngestor ingestor_;
  recommend::ShortcutsRecommender recommender_;
  recommend::AmbiguityDetector detector_;
  querylog::SessionSegmenter segmenter_;

  /// A built snapshot the node refused to swap in (ReloadOutcome::ok ==
  /// false): kept, with its invalidation keys and applied-change
  /// counts, so the next tick builds on top of it and retries — a
  /// refused swap defers the update, it never loses it. Guarded by
  /// tick_mu_ (only TickOnce touches these).
  std::shared_ptr<const store::StoreSnapshot> pending_snapshot_;
  std::vector<std::string> pending_changed_keys_;
  size_t pending_upserts_ = 0;
  size_t pending_removals_ = 0;

  mutable std::mutex stats_mu_;
  StoreRefresherStats stats_;

  std::thread loop_;
  std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  bool stop_requested_ = false;
};

}  // namespace serving
}  // namespace optselect

#endif  // OPTSELECT_SERVING_STORE_REFRESHER_H_
