// Sharded LRU result cache for the query-serving subsystem.
//
// Web query streams are heavy-tailed (the Zipf shape the synthetic log
// reproduces), so a small LRU over final rankings absorbs a large share
// of traffic. The map is striped into N independently locked shards —
// keys hash to a fixed shard, so two workers only contend when they
// touch the same stripe — and values are shared_ptr<const V>, handed out
// without copying and kept alive even if evicted mid-read.
//
// Counters (hits / misses / evictions) are relaxed atomics: exact under
// a quiescent cache, monotone and race-free (but not mutually ordered)
// under concurrent traffic.

#ifndef OPTSELECT_SERVING_RESULT_CACHE_H_
#define OPTSELECT_SERVING_RESULT_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace optselect {
namespace serving {

/// Cache sizing knobs.
struct ResultCacheOptions {
  /// Maximum number of cached entries across all shards.
  size_t capacity = 4096;
  /// Number of mutex-striped shards (rounded up to at least 1; each
  /// shard gets capacity / num_shards slots, at least 1).
  size_t num_shards = 8;
};

/// Monotone counters; a snapshot is returned by stats().
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t insertions = 0;
  uint64_t invalidations = 0;  ///< explicit Erase hits (store reloads)

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Thread-safe sharded LRU keyed on std::string (see cache_key.h).
template <typename V>
class ShardedLruCache {
 public:
  using ValuePtr = std::shared_ptr<const V>;

  explicit ShardedLruCache(ResultCacheOptions options)
      : options_(Sanitize(options)), shards_(options_.num_shards) {
    size_t per_shard =
        std::max<size_t>(1, options_.capacity / options_.num_shards);
    for (Shard& s : shards_) s.capacity = per_shard;
  }

  /// Returns the cached value and refreshes its recency, or nullptr on
  /// miss. Counts a hit or a miss.
  ValuePtr Get(const std::string& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
  }

  /// Inserts or replaces; evicts the shard's least-recently-used entry
  /// when the shard is full.
  void Put(const std::string& key, ValuePtr value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= shard.capacity) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.push_front(Entry{key, std::move(value)});
    shard.index[key] = shard.lru.begin();
    insertions_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Drops one entry if present (store reloads invalidate exactly the
  /// keys whose stored entries changed). Returns true when an entry was
  /// removed; counted separately from capacity evictions.
  bool Erase(const std::string& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Total entries currently cached (sums shard sizes under their locks).
  size_t size() const {
    size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += s.lru.size();
    }
    return n;
  }

  /// Drops every entry; counters are preserved.
  void Clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.lru.clear();
      s.index.clear();
    }
  }

  ResultCacheStats stats() const {
    ResultCacheStats st;
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    st.evictions = evictions_.load(std::memory_order_relaxed);
    st.insertions = insertions_.load(std::memory_order_relaxed);
    st.invalidations = invalidations_.load(std::memory_order_relaxed);
    return st;
  }

  const ResultCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::string key;
    ValuePtr value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, typename std::list<Entry>::iterator>
        index;
    size_t capacity = 1;
  };

  static ResultCacheOptions Sanitize(ResultCacheOptions o) {
    if (o.num_shards == 0) o.num_shards = 1;
    if (o.capacity == 0) o.capacity = 1;
    if (o.num_shards > o.capacity) o.num_shards = o.capacity;
    return o;
  }

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  ResultCacheOptions options_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace serving
}  // namespace optselect

#endif  // OPTSELECT_SERVING_RESULT_CACHE_H_
