#include "serving/store_refresher.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "store/store_snapshot.h"
#include "util/strings.h"
#include "util/timer.h"

namespace optselect {
namespace serving {

StoreRefresher::StoreRefresher(ServingNode* node,
                               const index::Searcher* searcher,
                               const index::SnippetExtractor* snippets,
                               const text::Analyzer* analyzer,
                               const corpus::DocumentStore* documents,
                               const querylog::QueryLog& initial_log,
                               StoreRefresherConfig config)
    : node_(node),
      searcher_(searcher),
      snippets_(snippets),
      analyzer_(analyzer),
      documents_(documents),
      config_(config),
      ingestor_(config.log_path),
      recommender_(config.recommender),
      detector_(&recommender_, config.detector),
      segmenter_(config.segmenter) {
  // Re-mined entries must carry plans the node can serve (see header).
  config_.builder.plan.num_candidates =
      node_->config().params.num_candidates;
  config_.builder.plan.threshold_c = node_->config().params.threshold_c;
  if (!initial_log.empty()) {
    // One-time seed: the mining state the base store was built from.
    // Delta segmentation is time-only (see header), so the seed uses
    // the same rule for consistency.
    recommender_.Train(initial_log,
                       segmenter_.Segment(initial_log, nullptr));
  }
  // Records already on disk are assumed reflected in the base store;
  // tail only what arrives from here on. A missing file is fine — the
  // tail starts at offset 0 once it appears.
  ingestor_.SkipToEnd().IgnoreError();

  // Callback-backed registration: refresher counters live behind
  // stats_mu_ (one tick bumps several together), so the registry reads
  // them through stats() instead of owning the atomics. The whole-stats
  // copy per metric is fine — collection is rare, ticks are seconds
  // apart.
  if (config_.registry != nullptr) {
    obs::MetricsRegistry* reg = config_.registry;
    const obs::Labels& labels = config_.metric_labels;
    auto read = [this](uint64_t StoreRefresherStats::* field) {
      return std::function<uint64_t()>(
          [this, field] { return stats().*field; });
    };
    reg->AddCounterFn("optselect_refresh_ticks_total", labels,
                      read(&StoreRefresherStats::ticks));
    reg->AddCounterFn("optselect_refresh_ingested_records_total", labels,
                      read(&StoreRefresherStats::ingested_records));
    reg->AddCounterFn("optselect_refresh_malformed_lines_total", labels,
                      read(&StoreRefresherStats::malformed_lines));
    reg->AddCounterFn("optselect_refresh_swaps_total", labels,
                      read(&StoreRefresherStats::swaps));
    reg->AddCounterFn("optselect_refresh_upserts_total", labels,
                      read(&StoreRefresherStats::upserts));
    reg->AddCounterFn("optselect_refresh_removals_total", labels,
                      read(&StoreRefresherStats::removals));
    reg->AddCounterFn("optselect_refresh_errors_total", labels,
                      read(&StoreRefresherStats::errors));
    reg->AddGaugeFn("optselect_refresh_store_version", labels, [this] {
      return static_cast<double>(stats().store_version);
    });
    reg->AddGaugeFn("optselect_refresh_last_tick_ms", labels,
                    [this] { return stats().last_tick_ms; });
  }
}

StoreRefresher::~StoreRefresher() { Stop(); }

void StoreRefresher::Start() {
  std::lock_guard<std::mutex> lock(loop_mu_);
  if (loop_.joinable()) return;
  stop_requested_ = false;
  loop_ = std::thread([this] { Loop(); });
}

void StoreRefresher::Stop() {
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    if (!loop_.joinable()) return;
    stop_requested_ = true;
  }
  loop_cv_.notify_all();
  loop_.join();  // a joined thread is no longer joinable ⇒ Start works
}

void StoreRefresher::Loop() {
  std::unique_lock<std::mutex> lock(loop_mu_);
  while (!stop_requested_) {
    if (loop_cv_.wait_for(lock, config_.interval,
                          [this] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    TickOnce().IgnoreError();  // errors are counted in stats
    lock.lock();
  }
}

util::Status StoreRefresher::TickOnce() {
  std::lock_guard<std::mutex> tick_lock(tick_mu_);
  util::WallTimer timer;
  auto finish = [&](util::Status status) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.ticks;
    if (!status.ok()) ++stats_.errors;
    stats_.last_tick_ms = timer.ElapsedMillis();
    return status;
  };

  auto polled = ingestor_.Poll();
  if (!polled.ok()) return finish(polled.status());
  querylog::IngestDelta delta = std::move(polled).value();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.ingested_records += delta.log.size();
    stats_.malformed_lines += delta.malformed_lines;
  }
  // An empty poll still proceeds when a refused swap is pending — the
  // retry must not wait for fresh traffic.
  if (delta.empty() && pending_snapshot_ == nullptr) {
    return finish(util::Status::Ok());
  }

  // Fold the delta into the mining state, then re-run Algorithm 1 on
  // exactly the queries whose statistics moved.
  recommender_.TrainIncremental(delta.log,
                                segmenter_.Segment(delta.log, nullptr));
  // Mine (and later build) against the newest content we have: the
  // node's active snapshot, or the pending one a refused swap left
  // behind — so removal detection and unchanged-skipping see the
  // changes that are still waiting to land.
  std::shared_ptr<const store::StoreSnapshot> base =
      pending_snapshot_ != nullptr ? pending_snapshot_ : node_->snapshot();
  store::StoreDelta mined = store::MineDelta(
      detector_, *searcher_, *snippets_, *analyzer_, *documents_,
      delta.dirty_queries, config_.builder, base->store());
  if (config_.key_filter) {
    // Sharded serving: keep only the slice of the delta this node's
    // store holds (normalized keys, matching the store's Put keys).
    auto dropped = [this](const std::string& query) {
      return !config_.key_filter(util::NormalizeQueryText(query));
    };
    mined.upserts.erase(
        std::remove_if(mined.upserts.begin(), mined.upserts.end(),
                       [&](const store::StoredEntry& e) {
                         return dropped(e.query);
                       }),
        mined.upserts.end());
    mined.removals.erase(std::remove_if(mined.removals.begin(),
                                        mined.removals.end(), dropped),
                         mined.removals.end());
  }
  if (mined.empty() && pending_snapshot_ == nullptr) {
    return finish(util::Status::Ok());
  }

  // Build on top of the same base: a pending snapshot's changes ride
  // into this build and its invalidation keys carry forward, so a
  // refusal defers the update instead of losing it.
  store::SnapshotBuildResult built;
  if (!mined.empty()) {
    built = store::BuildSnapshot(base.get(), mined);
  } else {
    built.snapshot = pending_snapshot_;  // pure retry, nothing new mined
  }
  std::vector<std::string> changed_keys = std::move(built.changed_keys);
  changed_keys.insert(changed_keys.end(), pending_changed_keys_.begin(),
                      pending_changed_keys_.end());
  std::sort(changed_keys.begin(), changed_keys.end());
  changed_keys.erase(std::unique(changed_keys.begin(), changed_keys.end()),
                     changed_keys.end());
  if (changed_keys.empty()) {
    // Every re-mined entry came out identical — nothing to swap.
    return finish(util::Status::Ok());
  }

  size_t upserts = built.upserts_applied + pending_upserts_;
  size_t removals = built.removals_applied + pending_removals_;
  ServingNode::ReloadOutcome reload =
      node_->ReloadStore(built.snapshot, changed_keys);
  if (!reload.ok) {
    // Swap refused (injected reload fault): the node keeps serving its
    // current snapshot and the tick counts as an error; the built
    // snapshot stays pending and the next tick retries the swap.
    pending_snapshot_ = built.snapshot;
    pending_changed_keys_ = std::move(changed_keys);
    pending_upserts_ = upserts;
    pending_removals_ = removals;
    return finish(
        util::Status::Internal("store reload refused; swap kept pending"));
  }
  pending_snapshot_.reset();
  pending_changed_keys_.clear();
  pending_upserts_ = 0;
  pending_removals_ = 0;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.swaps;
    stats_.upserts += upserts;
    stats_.removals += removals;
    stats_.store_version = built.snapshot->version();
  }
  if (!config_.persist_path.empty()) {
    return finish(built.snapshot->store().Save(config_.persist_path));
  }
  return finish(util::Status::Ok());
}

StoreRefresherStats StoreRefresher::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace serving
}  // namespace optselect
