#include "serving/latency_histogram.h"

#include <algorithm>
#include <cmath>

namespace optselect {
namespace serving {
namespace {

int FloorLog2(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return 63 - __builtin_clzll(v);
#else
  int e = 0;
  while (v >>= 1) ++e;
  return e;
#endif
}

}  // namespace

LatencyHistogram::LatencyHistogram()
    : buckets_(kNumBuckets), count_(0), sum_(0) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int LatencyHistogram::BucketIndex(uint64_t v) {
  if (v < kSubBuckets) return static_cast<int>(v);
  int exp = FloorLog2(v);
  if (exp >= kMaxExponent) {
    return kNumBuckets - 1;
  }
  // [2^exp, 2^(exp+1)) split into kSubBuckets/2 linear sub-buckets.
  int sub = static_cast<int>((v - (uint64_t{1} << exp)) >> (exp - kSubBits + 1));
  return kSubBuckets + (exp - kSubBits) * (kSubBuckets / 2) + sub;
}

double LatencyHistogram::BucketMidpoint(int index) {
  if (index < kSubBuckets) return static_cast<double>(index);
  int rel = index - kSubBuckets;
  int exp = kSubBits + rel / (kSubBuckets / 2);
  int sub = rel % (kSubBuckets / 2);
  double width = static_cast<double>(uint64_t{1} << (exp - kSubBits + 1));
  double lower = static_cast<double>(uint64_t{1} << exp) + sub * width;
  return lower + width / 2.0;
}

void LatencyHistogram::Record(int64_t micros) {
  uint64_t v = micros < 0 ? 0 : static_cast<uint64_t>(micros);
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double LatencyHistogram::MeanMicros() const {
  uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

double LatencyHistogram::PercentileMicros(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  // Rank of the q-th observation (1-based, ceil), the standard
  // nearest-rank definition.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketMidpoint(i);
  }
  return BucketMidpoint(kNumBuckets - 1);
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n > 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

}  // namespace serving
}  // namespace optselect
