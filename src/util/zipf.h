// Zipf-distributed sampling.
//
// Query and specialization popularities in real web logs are heavy-tailed;
// the synthetic log generator uses this sampler to reproduce that shape.

#ifndef OPTSELECT_UTIL_ZIPF_H_
#define OPTSELECT_UTIL_ZIPF_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace optselect {
namespace util {

/// Samples ranks in [0, n) with P(rank = i) ∝ 1 / (i + 1)^skew.
///
/// Uses a precomputed CDF with binary search, O(log n) per sample.
class ZipfSampler {
 public:
  /// Builds the CDF for `n` ranks with the given skew (s >= 0; s = 0 is
  /// uniform). n must be > 0.
  ZipfSampler(size_t n, double skew);

  /// Draws one rank.
  size_t Sample(Rng* rng) const;

  /// Probability mass of rank i.
  double Pmf(size_t i) const;

  size_t n() const { return pmf_.size(); }
  double skew() const { return skew_; }

 private:
  double skew_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;
};

}  // namespace util
}  // namespace optselect

#endif  // OPTSELECT_UTIL_ZIPF_H_
