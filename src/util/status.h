// Lightweight Status / Result error-handling primitives.
//
// The library reports recoverable failures through util::Status (and
// util::Result<T> for value-or-error), never through exceptions, following
// the database-engine idiom of explicit error propagation on hot paths.

#ifndef OPTSELECT_UTIL_STATUS_H_
#define OPTSELECT_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace optselect {
namespace util {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kIoError = 6,
  kCorruption = 7,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// Value-less operation outcome: either OK or a code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Explicitly discards the status (best-effort call sites where the
  /// failure is surfaced elsewhere, e.g. a stats counter).
  void IgnoreError() const {}

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error wrapper. Access to value() requires ok().
template <typename T>
class Result {
 public:
  /// Implicit from value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace util
}  // namespace optselect

/// Propagates a non-OK status to the caller.
#define OPTSELECT_RETURN_IF_ERROR(expr)                      \
  do {                                                       \
    ::optselect::util::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                               \
  } while (0)

#endif  // OPTSELECT_UTIL_STATUS_H_
