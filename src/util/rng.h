// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (log synthesis, corpus
// synthesis, sampling) draws from util::Rng seeded explicitly, so that any
// experiment is reproducible bit-for-bit from its seed. The generator is
// xoshiro256**, seeded via SplitMix64, which is fast, tiny, and has no
// global state — one instance per generator object.

#ifndef OPTSELECT_UTIL_RNG_H_
#define OPTSELECT_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace optselect {
namespace util {

/// xoshiro256** PRNG with convenience sampling helpers.
class Rng {
 public:
  /// Seeds the state from `seed` via SplitMix64 expansion.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller.
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Returns weights.size() - 1 on degenerate (all-zero) input.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of the container in place.
  template <typename Container>
  void Shuffle(Container* c) {
    if (c->size() < 2) return;
    for (size_t i = c->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      using std::swap;
      swap((*c)[i], (*c)[j]);
    }
  }

  /// Samples `n` distinct indices from [0, universe) (n <= universe).
  std::vector<size_t> SampleWithoutReplacement(size_t universe, size_t n);

 private:
  uint64_t s_[4];
};

}  // namespace util
}  // namespace optselect

#endif  // OPTSELECT_UTIL_RNG_H_
