#include "util/math_util.h"

#include <cmath>

namespace optselect {
namespace util {

double HarmonicNumber(size_t n) {
  double h = 0.0;
  for (size_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

std::vector<double> HarmonicTable(size_t n) {
  std::vector<double> table(n + 1, 0.0);
  for (size_t i = 1; i <= n; ++i) {
    table[i] = table[i - 1] + 1.0 / static_cast<double>(i);
  }
  return table;
}

double Log2Discount(size_t rank_one_based) {
  return std::log2(1.0 + static_cast<double>(rank_one_based));
}

double SafeDiv(double x, double y, double fallback) {
  return y == 0.0 ? fallback : x / y;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double OlsSlope(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  double mx = Mean(x);
  double my = Mean(y);
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace util
}  // namespace optselect
