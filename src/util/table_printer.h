// Fixed-width text tables. The benchmark binaries use this to print rows
// in the same layout as the paper's Tables 2 and 3 so that paper-vs-
// measured comparison is a visual diff.

#ifndef OPTSELECT_UTIL_TABLE_PRINTER_H_
#define OPTSELECT_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace optselect {
namespace util {

/// Accumulates rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// Sets the header row (optional).
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row; ragged rows are allowed.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table. Columns are right-aligned except the first.
  std::string ToString() const;

  /// Convenience: formats a double with the given precision.
  static std::string Num(double v, int precision = 3);

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace util
}  // namespace optselect

#endif  // OPTSELECT_UTIL_TABLE_PRINTER_H_
