// FNV-1a hashing, shared by every fingerprint/checksum in the library
// (store file checksums, serving cache-key parameter fingerprints).

#ifndef OPTSELECT_UTIL_HASH_H_
#define OPTSELECT_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace optselect {
namespace util {

inline constexpr uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnv1aPrime = 0x100000001b3ull;

/// Mixes `size` bytes into a running FNV-1a state (chainable).
inline uint64_t Fnv1a64(const void* data, size_t size,
                        uint64_t state = kFnv1aOffsetBasis) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    state ^= p[i];
    state *= kFnv1aPrime;
  }
  return state;
}

/// Mixes one trivially copyable value (its object representation).
template <typename T>
uint64_t Fnv1a64Value(T value, uint64_t state = kFnv1aOffsetBasis) {
  return Fnv1a64(&value, sizeof(value), state);
}

}  // namespace util
}  // namespace optselect

#endif  // OPTSELECT_UTIL_HASH_H_
