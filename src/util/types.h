// Shared primitive identifier types.

#ifndef OPTSELECT_UTIL_TYPES_H_
#define OPTSELECT_UTIL_TYPES_H_

#include <cstdint>

namespace optselect {

/// Dense document identifier within a DocumentStore / InvertedIndex.
using DocId = uint32_t;

/// TREC-style topic number.
using TopicId = uint32_t;

inline constexpr DocId kInvalidDocId = static_cast<DocId>(-1);

}  // namespace optselect

#endif  // OPTSELECT_UTIL_TYPES_H_
