#include "util/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace optselect {
namespace util {

ZipfSampler::ZipfSampler(size_t n, double skew) : skew_(skew) {
  assert(n > 0);
  pmf_.resize(n);
  cdf_.resize(n);
  double norm = 0.0;
  for (size_t i = 0; i < n; ++i) {
    pmf_[i] = 1.0 / std::pow(static_cast<double>(i + 1), skew);
    norm += pmf_[i];
  }
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    pmf_[i] /= norm;
    acc += pmf_[i];
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double x = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t i) const {
  assert(i < pmf_.size());
  return pmf_[i];
}

}  // namespace util
}  // namespace optselect
