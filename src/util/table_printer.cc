#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace optselect {
namespace util {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{false, std::move(row)});
}

void TablePrinter::AddSeparator() { rows_.push_back(Row{true, {}}); }

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  // Compute column widths over header + all rows.
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const Row& r : rows_) {
    if (!r.separator) widen(r.cells);
  }

  size_t total = 0;
  for (size_t w : widths) total += w + 2;

  std::string out;
  auto emit = [&out, &widths](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < cells.size() ? cells[i] : "";
      size_t pad = widths[i] - cell.size();
      if (i == 0) {
        out += cell;
        out.append(pad, ' ');
      } else {
        out.append(pad, ' ');
        out += cell;
      }
      if (i + 1 < widths.size()) out += "  ";
    }
    out += '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    out.append(total, '-');
    out += '\n';
  }
  for (const Row& r : rows_) {
    if (r.separator) {
      out.append(total, '-');
      out += '\n';
    } else {
      emit(r.cells);
    }
  }
  return out;
}

}  // namespace util
}  // namespace optselect
