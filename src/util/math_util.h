// Numeric helpers: harmonic numbers, log2, safe division, means.

#ifndef OPTSELECT_UTIL_MATH_UTIL_H_
#define OPTSELECT_UTIL_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace optselect {
namespace util {

/// H_n = sum_{i=1..n} 1/i; H_0 = 0. The paper uses H_{|R_q'|} as the
/// normalization constant of the utility function (Definition 2).
double HarmonicNumber(size_t n);

/// Precomputes H_0..H_n for repeated lookups.
std::vector<double> HarmonicTable(size_t n);

/// log2(1 + rank) discount used by nDCG-family metrics.
double Log2Discount(size_t rank_one_based);

/// x / y, or `fallback` when y == 0.
double SafeDiv(double x, double y, double fallback = 0.0);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation; 0 for fewer than 2 elements.
double StdDev(const std::vector<double>& xs);

/// Ordinary least-squares slope of y over x (fits y = a + b x; returns b).
/// Used by benchmarks to verify linear scaling. Returns 0 for < 2 points.
double OlsSlope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace util
}  // namespace optselect

#endif  // OPTSELECT_UTIL_MATH_UTIL_H_
