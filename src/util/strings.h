// Small string helpers shared across the library (no locale dependence).

#ifndef OPTSELECT_UTIL_STRINGS_H_
#define OPTSELECT_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace optselect {
namespace util {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any whitespace run; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Canonical query text: ASCII-lowercased, leading/trailing whitespace
/// stripped, internal whitespace runs collapsed to single spaces.
/// "  Apple  IPhone " and "apple iphone" normalize identically. Used
/// wherever query strings are map keys (diversification store, serving
/// result cache) so lookups are insensitive to casing and spacing.
std::string NormalizeQueryText(std::string_view raw);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace util
}  // namespace optselect

#endif  // OPTSELECT_UTIL_STRINGS_H_
