// Wall-clock timing used by the efficiency benchmarks (Table 2).

#ifndef OPTSELECT_UTIL_TIMER_H_
#define OPTSELECT_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace optselect {
namespace util {

/// Monotonic stopwatch with microsecond resolution.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in (fractional) milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates repeated timed sections (used when averaging over queries).
class TimerAccumulator {
 public:
  void Add(double millis) {
    total_ms_ += millis;
    ++count_;
  }
  double total_ms() const { return total_ms_; }
  int64_t count() const { return count_; }
  double mean_ms() const { return count_ == 0 ? 0.0 : total_ms_ / count_; }
  void Reset() {
    total_ms_ = 0;
    count_ = 0;
  }

 private:
  double total_ms_ = 0;
  int64_t count_ = 0;
};

}  // namespace util
}  // namespace optselect

#endif  // OPTSELECT_UTIL_TIMER_H_
