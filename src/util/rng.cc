#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace optselect {
namespace util {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to kill modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? Next() : Uniform(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  // Box–Muller; discards the second variate for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0) return weights.size() - 1;
  double x = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    double w = weights[i] > 0 ? weights[i] : 0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t universe, size_t n) {
  assert(n <= universe);
  // Floyd's algorithm: O(n) expected insertions.
  std::vector<size_t> picked;
  picked.reserve(n);
  std::vector<bool> in(universe, false);
  for (size_t j = universe - n; j < universe; ++j) {
    size_t t = static_cast<size_t>(Uniform(j + 1));
    if (in[t]) t = j;
    in[t] = true;
    picked.push_back(t);
  }
  return picked;
}

}  // namespace util
}  // namespace optselect
