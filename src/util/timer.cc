#include "util/timer.h"

// Header-only logic; this TU anchors the library target.
