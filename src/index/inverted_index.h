// Inverted index over a DocumentStore (the Terrier stand-in).
//
// Term-at-a-time layout: one posting list (doc, tf) per term, plus the
// collection statistics DFR weighting models need (document lengths,
// average length, document and collection frequencies).

#ifndef OPTSELECT_INDEX_INVERTED_INDEX_H_
#define OPTSELECT_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <vector>

#include "corpus/document_store.h"
#include "text/analyzer.h"
#include "util/types.h"

namespace optselect {
namespace index {

/// One posting: document and within-document term frequency.
struct Posting {
  DocId doc = kInvalidDocId;
  uint32_t tf = 0;
};

/// Immutable-after-build inverted index.
class InvertedIndex {
 public:
  /// Indexes every document (title + body) in `store`, growing the
  /// analyzer's vocabulary.
  static InvertedIndex Build(const corpus::DocumentStore& store,
                             text::Analyzer* analyzer);

  /// Posting list of a term (docs ascending); empty list for unknown ids.
  const std::vector<Posting>& Postings(text::TermId term) const;

  /// Number of documents containing the term.
  uint32_t DocFrequency(text::TermId term) const;

  /// Total occurrences of the term in the collection.
  uint64_t CollectionFrequency(text::TermId term) const;

  /// Length (in indexed tokens) of a document.
  uint32_t DocLength(DocId doc) const { return doc_lengths_[doc]; }

  double average_doc_length() const { return avg_doc_length_; }
  size_t num_docs() const { return doc_lengths_.size(); }
  uint64_t total_tokens() const { return total_tokens_; }
  size_t num_terms() const { return postings_.size(); }

 private:
  std::vector<std::vector<Posting>> postings_;   // by TermId
  std::vector<uint64_t> collection_freq_;        // by TermId
  std::vector<uint32_t> doc_lengths_;            // by DocId
  double avg_doc_length_ = 0.0;
  uint64_t total_tokens_ = 0;
  static const std::vector<Posting> kEmptyPostings;
};

}  // namespace index
}  // namespace optselect

#endif  // OPTSELECT_INDEX_INVERTED_INDEX_H_
