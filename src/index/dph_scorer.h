// DPH Divergence-From-Randomness weighting model (Amati et al., the model
// the paper uses as its retrieval baseline: "a probabilistic document
// weighting model: DPH Divergence From Randomness (DFR) model [2]",
// Section 5).
//
// DPH is parameter-free. For a term with within-document frequency tf in a
// document of length l, collection frequency TF, and N documents of
// average length avgl:
//
//   f    = tf / l
//   norm = (1 − f)² / (tf + 1)
//   score = qtw · norm · ( tf · log₂( (tf · avgl / l) · (N / TF) )
//                          + 0.5 · log₂( 2π · tf · (1 − f) ) )
//
// Negative per-term contributions are clipped at 0 (Terrier behaviour).

#ifndef OPTSELECT_INDEX_DPH_SCORER_H_
#define OPTSELECT_INDEX_DPH_SCORER_H_

#include <cstdint>

#include "index/inverted_index.h"

namespace optselect {
namespace index {

/// Stateless DPH scoring over an index's collection statistics.
class DphScorer {
 public:
  explicit DphScorer(const InvertedIndex* index) : index_(index) {}

  /// Per-term score contribution of one posting. `query_term_weight` is
  /// the term's frequency in the query.
  double Score(const Posting& posting, text::TermId term,
               double query_term_weight = 1.0) const;

  const InvertedIndex* index() const { return index_; }

 private:
  const InvertedIndex* index_;  // not owned
};

}  // namespace index
}  // namespace optselect

#endif  // OPTSELECT_INDEX_DPH_SCORER_H_
