#include "index/snippet_extractor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "text/tokenizer.h"

namespace optselect {
namespace index {

std::string SnippetExtractor::Extract(
    const corpus::Document& doc,
    const std::vector<text::TermId>& query_terms) const {
  text::Tokenizer tokenizer;
  std::vector<std::string> tokens = tokenizer.Tokenize(doc.body);
  const size_t window = std::min(options_.window_tokens, tokens.size());

  if (tokens.empty()) return doc.title;

  // Mark which body positions hit a query term (after analysis).
  std::unordered_set<text::TermId> qset(query_terms.begin(),
                                        query_terms.end());
  std::vector<int> hit(tokens.size(), 0);
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::vector<text::TermId> ids = analyzer_->AnalyzeReadOnly(tokens[i]);
    for (text::TermId id : ids) {
      if (qset.count(id)) {
        hit[i] = 1;
        break;
      }
    }
  }

  // Sliding-window maximum of query-term density.
  size_t best_start = 0;
  int best_hits = -1;
  int current = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    current += hit[i];
    if (i >= window) current -= hit[i - window];
    if (i + 1 >= window) {
      size_t start = i + 1 - window;
      if (current > best_hits) {
        best_hits = current;
        best_start = start;
      }
    }
  }
  if (best_hits < 0) best_start = 0;  // body shorter than window

  std::string snippet = doc.title;
  for (size_t i = best_start;
       i < std::min(best_start + window, tokens.size()); ++i) {
    snippet.push_back(' ');
    snippet.append(tokens[i]);
  }
  return snippet;
}

text::TermVector SnippetExtractor::ExtractVector(
    const corpus::Document& doc,
    const std::vector<text::TermId>& query_terms) const {
  std::string snippet = Extract(doc, query_terms);
  std::vector<text::TermId> ids = analyzer_->AnalyzeReadOnly(snippet);
  if (index_ == nullptr) return text::TermVector::FromTermIds(ids);

  // tf·idf weights: ubiquitous terms (the query itself, boilerplate)
  // stop dominating the cosine; intent-specific vocabulary does.
  std::vector<text::TermVector::Entry> entries;
  entries.reserve(ids.size());
  const double n_docs = static_cast<double>(index_->num_docs());
  for (text::TermId id : ids) {
    double df = static_cast<double>(index_->DocFrequency(id));
    double idf = std::log2(1.0 + n_docs / (1.0 + df));
    entries.emplace_back(id, idf);
  }
  return text::TermVector::FromEntries(std::move(entries));
}

}  // namespace index
}  // namespace optselect
