#include "index/searcher.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace optselect {
namespace index {

ResultList Searcher::Search(std::string_view query, size_t k) const {
  return SearchTerms(analyzer_->AnalyzeReadOnly(query), k);
}

ResultList Searcher::SearchConjunctive(std::string_view query,
                                       size_t k) const {
  return SearchTermsConjunctive(analyzer_->AnalyzeReadOnly(query), k);
}

ResultList Searcher::SearchTerms(const std::vector<text::TermId>& terms,
                                 size_t k) const {
  if (terms.empty() || k == 0) return {};

  // Query term weights = in-query tf.
  std::map<text::TermId, double> qtw;
  for (text::TermId t : terms) qtw[t] += 1.0;

  // Term-at-a-time accumulation.
  std::unordered_map<DocId, double> acc;
  for (const auto& [term, weight] : qtw) {
    for (const Posting& p : index_->Postings(term)) {
      acc[p.doc] += scorer_.Score(p, term, weight);
    }
  }

  ResultList results;
  results.reserve(acc.size());
  for (const auto& [doc, score] : acc) {
    if (score > 0.0) results.push_back(SearchResult{doc, score});
  }

  auto better = [](const SearchResult& a, const SearchResult& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  };
  if (results.size() > k) {
    std::partial_sort(results.begin(), results.begin() + k, results.end(),
                      better);
    results.resize(k);
  } else {
    std::sort(results.begin(), results.end(), better);
  }
  return results;
}

ResultList Searcher::SearchTermsConjunctive(
    const std::vector<text::TermId>& terms, size_t k) const {
  if (terms.empty() || k == 0) return {};

  std::map<text::TermId, double> qtw;
  for (text::TermId t : terms) qtw[t] += 1.0;

  // Order distinct terms by posting-list length; intersect starting from
  // the rarest.
  std::vector<text::TermId> distinct;
  distinct.reserve(qtw.size());
  for (const auto& [term, weight] : qtw) {
    if (index_->Postings(term).empty()) return {};  // term matches nothing
    distinct.push_back(term);
  }
  std::sort(distinct.begin(), distinct.end(),
            [this](text::TermId a, text::TermId b) {
              return index_->Postings(a).size() < index_->Postings(b).size();
            });

  // Seed accumulator from the rarest term, then intersect.
  std::unordered_map<DocId, double> acc;
  {
    text::TermId t0 = distinct[0];
    for (const Posting& p : index_->Postings(t0)) {
      acc[p.doc] = scorer_.Score(p, t0, qtw[t0]);
    }
  }
  for (size_t ti = 1; ti < distinct.size() && !acc.empty(); ++ti) {
    text::TermId t = distinct[ti];
    std::unordered_map<DocId, double> next;
    next.reserve(acc.size());
    for (const Posting& p : index_->Postings(t)) {
      auto it = acc.find(p.doc);
      if (it != acc.end()) {
        next.emplace(p.doc, it->second + scorer_.Score(p, t, qtw[t]));
      }
    }
    acc = std::move(next);
  }

  ResultList results;
  results.reserve(acc.size());
  for (const auto& [doc, score] : acc) {
    if (score > 0.0) results.push_back(SearchResult{doc, score});
  }
  auto better = [](const SearchResult& a, const SearchResult& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  };
  if (results.size() > k) {
    std::partial_sort(results.begin(), results.begin() + k, results.end(),
                      better);
    results.resize(k);
  } else {
    std::sort(results.begin(), results.end(), better);
  }
  return results;
}

}  // namespace index
}  // namespace optselect
