// Top-k retrieval over the inverted index (term-at-a-time accumulation).

#ifndef OPTSELECT_INDEX_SEARCHER_H_
#define OPTSELECT_INDEX_SEARCHER_H_

#include <string_view>
#include <vector>

#include "index/dph_scorer.h"
#include "index/inverted_index.h"
#include "text/analyzer.h"
#include "util/types.h"

namespace optselect {
namespace index {

/// One ranked hit.
struct SearchResult {
  DocId doc = kInvalidDocId;
  double score = 0.0;
};

/// An ordered result list R_q.
using ResultList = std::vector<SearchResult>;

/// Executes analyzed queries against an index with DPH weighting.
class Searcher {
 public:
  /// Neither pointer is owned; both must outlive the searcher. The
  /// analyzer is used read-only (no vocabulary growth at query time).
  Searcher(const InvertedIndex* idx, const text::Analyzer* analyzer)
      : index_(idx), analyzer_(analyzer), scorer_(idx) {}

  /// Returns the top-k documents for the raw query text, best first.
  /// Ties break on ascending doc id for determinism.
  ResultList Search(std::string_view query, size_t k) const;

  /// Like Search, over pre-analyzed term ids.
  ResultList SearchTerms(const std::vector<text::TermId>& terms,
                         size_t k) const;

  /// Conjunctive (AND) retrieval: only documents containing *every*
  /// distinct query term are scored. Web engines answer multi-term
  /// queries conjunctively; the diversification pipeline uses this for
  /// the R_q′ reference lists, which must contain documents genuinely
  /// about the specialization rather than root-only matches.
  ResultList SearchTermsConjunctive(const std::vector<text::TermId>& terms,
                                    size_t k) const;

  /// Conjunctive retrieval from raw query text.
  ResultList SearchConjunctive(std::string_view query, size_t k) const;

 private:
  const InvertedIndex* index_;
  const text::Analyzer* analyzer_;
  DphScorer scorer_;
};

}  // namespace index
}  // namespace optselect

#endif  // OPTSELECT_INDEX_SEARCHER_H_
