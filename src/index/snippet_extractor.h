// Document surrogates ("We extended Terrier in order to obtain short
// summaries of retrieved documents, which are used as document surrogates
// in our diversification algorithm", Section 5; the feasibility argument
// of Section 4.1 relies on surrogates being much smaller than documents).

#ifndef OPTSELECT_INDEX_SNIPPET_EXTRACTOR_H_
#define OPTSELECT_INDEX_SNIPPET_EXTRACTOR_H_

#include <string>
#include <vector>

#include "corpus/document.h"
#include "index/inverted_index.h"
#include "text/analyzer.h"
#include "text/term_vector.h"

namespace optselect {
namespace index {

/// Produces query-biased snippets and their term vectors.
class SnippetExtractor {
 public:
  struct Options {
    /// Snippet window size in raw tokens.
    size_t window_tokens = 30;
  };

  /// The analyzer (and index, when given) are used read-only and must
  /// outlive the extractor. When an index is supplied, surrogate vectors
  /// are tf·idf-weighted — standard vector-space practice, without which
  /// the cosine of Equation (2) is dominated by the query terms that
  /// every retrieved snippet shares.
  SnippetExtractor(const text::Analyzer* analyzer,
                   const InvertedIndex* index, Options options)
      : analyzer_(analyzer), index_(index), options_(options) {}

  SnippetExtractor(const text::Analyzer* analyzer, Options options)
      : SnippetExtractor(analyzer, nullptr, options) {}

  explicit SnippetExtractor(const text::Analyzer* analyzer)
      : SnippetExtractor(analyzer, nullptr, Options{}) {}

  SnippetExtractor(const text::Analyzer* analyzer,
                   const InvertedIndex* index)
      : SnippetExtractor(analyzer, index, Options{}) {}

  /// Selects the fixed-size window of the body with the highest density
  /// of query terms (ties: earliest), prepends the title, and returns the
  /// snippet text.
  std::string Extract(const corpus::Document& doc,
                      const std::vector<text::TermId>& query_terms) const;

  /// Extract + analyze into a term vector in one step (the surrogate
  /// representation consumed by the utility function).
  text::TermVector ExtractVector(
      const corpus::Document& doc,
      const std::vector<text::TermId>& query_terms) const;

 private:
  const text::Analyzer* analyzer_;
  const InvertedIndex* index_;  // nullable: raw-tf vectors when absent
  Options options_;
};

}  // namespace index
}  // namespace optselect

#endif  // OPTSELECT_INDEX_SNIPPET_EXTRACTOR_H_
