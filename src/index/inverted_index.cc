#include "index/inverted_index.h"

#include <map>

namespace optselect {
namespace index {

const std::vector<Posting> InvertedIndex::kEmptyPostings = {};

InvertedIndex InvertedIndex::Build(const corpus::DocumentStore& store,
                                   text::Analyzer* analyzer) {
  InvertedIndex idx;
  idx.doc_lengths_.resize(store.size(), 0);

  for (const corpus::Document& doc : store) {
    // Index title and body as one field (field weighting is not part of
    // the paper's setup).
    std::vector<text::TermId> terms = analyzer->Analyze(doc.title);
    std::vector<text::TermId> body_terms = analyzer->Analyze(doc.body);
    terms.insert(terms.end(), body_terms.begin(), body_terms.end());

    idx.doc_lengths_[doc.id] = static_cast<uint32_t>(terms.size());
    idx.total_tokens_ += terms.size();

    // Per-document tf aggregation; map keeps term ids sorted so posting
    // lists stay doc-ordered (docs are visited in ascending id order).
    std::map<text::TermId, uint32_t> tfs;
    for (text::TermId t : terms) ++tfs[t];

    for (const auto& [term, tf] : tfs) {
      if (idx.postings_.size() <= term) {
        idx.postings_.resize(term + 1);
        idx.collection_freq_.resize(term + 1, 0);
      }
      idx.postings_[term].push_back(Posting{doc.id, tf});
      idx.collection_freq_[term] += tf;
    }
  }

  idx.avg_doc_length_ =
      idx.doc_lengths_.empty()
          ? 0.0
          : static_cast<double>(idx.total_tokens_) /
                static_cast<double>(idx.doc_lengths_.size());
  return idx;
}

const std::vector<Posting>& InvertedIndex::Postings(
    text::TermId term) const {
  if (term >= postings_.size()) return kEmptyPostings;
  return postings_[term];
}

uint32_t InvertedIndex::DocFrequency(text::TermId term) const {
  if (term >= postings_.size()) return 0;
  return static_cast<uint32_t>(postings_[term].size());
}

uint64_t InvertedIndex::CollectionFrequency(text::TermId term) const {
  if (term >= collection_freq_.size()) return 0;
  return collection_freq_[term];
}

}  // namespace index
}  // namespace optselect
