#include "index/dph_scorer.h"

#include <cmath>

namespace optselect {
namespace index {

double DphScorer::Score(const Posting& posting, text::TermId term,
                        double query_term_weight) const {
  const double tf = static_cast<double>(posting.tf);
  const double l = static_cast<double>(index_->DocLength(posting.doc));
  if (tf <= 0.0 || l <= 0.0) return 0.0;

  const double avgl = index_->average_doc_length();
  const double n_docs = static_cast<double>(index_->num_docs());
  const double coll_freq =
      static_cast<double>(index_->CollectionFrequency(term));
  if (coll_freq <= 0.0) return 0.0;

  const double f = tf / l;
  // A term filling the whole document degenerates; cap f below 1.
  const double f_capped = f >= 1.0 ? 1.0 - 1e-9 : f;
  const double norm = (1.0 - f_capped) * (1.0 - f_capped) / (tf + 1.0);

  const double arg = (tf * avgl / l) * (n_docs / coll_freq);
  if (arg <= 0.0) return 0.0;

  double score =
      norm * (tf * std::log2(arg) +
              0.5 * std::log2(2.0 * M_PI * tf * (1.0 - f_capped)));
  if (score < 0.0) score = 0.0;
  return query_term_weight * score;
}

}  // namespace index
}  // namespace optselect
