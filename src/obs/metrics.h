// Unified metrics registry for the serving stack — the one place every
// counter, gauge, and latency distribution lives.
//
// Before this layer, each component kept private atomics and exported a
// hand-maintained snapshot struct (ServingStats, RouterStats, ...).
// That plumbing had two structural problems: every new metric touched
// three places (member, snapshot field, copy line), and a snapshot read
// its fields one by one while workers mutated them, so derived
// invariants (`completed <= accepted`) could be violated *within one
// snapshot*. The registry fixes both:
//
//   - components REGISTER their metrics once, with a name and a label
//     set (`shard=2`, `stage=select`), and keep wait-free handles
//     (Counter* / LatencyHistogram*) for the hot path — recording is
//     exactly the relaxed fetch_add it was before;
//   - snapshots are taken THROUGH the registry in registration order.
//     Registering an effect before its cause (completed before
//     accepted) guarantees monotone pair invariants hold in every
//     snapshot: the effect read first can only undercount relative to
//     the cause read later, never overcount.
//
// The legacy stats structs survive as thin views assembled from the
// handles (same coherent read order), so existing callers keep working.
//
// Exposition: RenderPrometheus() emits the Prometheus text format
// (counters/gauges as-is, histograms as summaries with quantile
// labels, latency in seconds), RenderJson() a machine-readable dump
// (latency in microseconds). Both walk the registry in registration
// order. See `optselect stats`, the serve REPL's `:stats`, and
// `loadtest --metrics-out`.
//
// Threading: registration is expected at component construction time
// (it takes a mutex and allocates); handles are stable pointers that
// never move afterwards. Recording through a handle is wait-free.
// Collect/Render are safe concurrently with recording (relaxed reads,
// quantiles over a prefix of the traffic, like the stats structs
// always were). Callback-backed metrics (gauges, foreign counters)
// capture non-owned state: collect only while the registering
// component is alive.

#ifndef OPTSELECT_OBS_METRICS_H_
#define OPTSELECT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "serving/latency_histogram.h"

namespace optselect {
namespace obs {

/// Metric labels, e.g. {{"shard", "2"}, {"stage", "select"}}. Order is
/// preserved into the exposition output.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Wait-free monotone counter. Handles are owned by the registry and
/// stay valid for its lifetime.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// One collected point-in-time sample (exposition-agnostic form).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  Labels labels;
  /// Counter/gauge value (counters as exact integers in double form).
  double value = 0.0;
  /// Histogram-only fields, microseconds.
  uint64_t count = 0;
  uint64_t sum_us = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

/// Central registry. Components register once; snapshots and exposition
/// walk the metrics in registration order (the coherence order).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers an owned counter and returns its wait-free handle.
  /// Register effects before causes: Collect() reads in registration
  /// order, which is what makes `effect <= cause` hold per snapshot.
  Counter* AddCounter(std::string name, Labels labels = {});

  /// Registers a counter whose value lives elsewhere (a component's own
  /// atomic or mutex-guarded tally). `read` must stay valid while the
  /// registry collects; it is called without registry locks held.
  void AddCounterFn(std::string name, Labels labels,
                    std::function<uint64_t()> read);

  /// Registers a callback gauge (point-in-time value, may go down).
  void AddGaugeFn(std::string name, Labels labels,
                  std::function<double()> read);

  /// Registers an owned latency histogram (microsecond values) and
  /// returns its handle for recording.
  serving::LatencyHistogram* AddHistogram(std::string name,
                                          Labels labels = {});

  /// Point-in-time samples of every metric, in registration order (one
  /// pass, each metric read exactly once — the coherent snapshot).
  std::vector<MetricSample> Collect() const;

  /// Every registered histogram whose name is `name`, as (labels,
  /// histogram) pairs — callers merge across label sets (e.g. per-shard
  /// stage histograms into one cluster-wide stage distribution) with
  /// LatencyHistogram::MergeFrom.
  std::vector<std::pair<Labels, const serving::LatencyHistogram*>>
  HistogramsNamed(const std::string& name) const;

  /// Prometheus text exposition format (latency summaries in seconds).
  std::string RenderPrometheus() const;

  /// JSON dump: {"counters": [...], "gauges": [...],
  /// "histograms": [...]} with latency in microseconds.
  std::string RenderJson() const;

  size_t size() const;

 private:
  struct Entry {
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;                    // kCounter (owned)
    std::function<uint64_t()> counter_fn;                // kCounter (foreign)
    std::function<double()> gauge_fn;                    // kGauge
    std::unique_ptr<serving::LatencyHistogram> histogram;  // kHistogram
  };

  /// Guards registration only; entries_ is append-only and entries are
  /// never reordered, so Collect can walk it lock-free after taking the
  /// current size under the mutex.
  mutable std::mutex mu_;
  std::deque<Entry> entries_;
};

}  // namespace obs
}  // namespace optselect

#endif  // OPTSELECT_OBS_METRICS_H_
