#include "obs/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>

namespace optselect {
namespace obs {
namespace {

// Prometheus label values escape backslash, double-quote, and newline;
// JSON strings additionally escape control characters (RFC 8259).
std::string EscapeLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// `{a="x",b="y"}` or "" when empty; `extra` appends one more pair
// (used for the summary `quantile` label).
std::string PrometheusLabels(const Labels& labels,
                             const std::string& extra_key = "",
                             const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out += ",";
    first = false;
    out += kv.first + "=\"" + EscapeLabelValue(kv.second) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + EscapeLabelValue(extra_value) + "\"";
  }
  out += "}";
  return out;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + EscapeJson(kv.first) + "\": \"" + EscapeJson(kv.second) +
           "\"";
  }
  out += "}";
  return out;
}

}  // namespace

Counter* MetricsRegistry::AddCounter(std::string name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace_back();
  Entry& e = entries_.back();
  e.kind = MetricSample::Kind::kCounter;
  e.name = std::move(name);
  e.labels = std::move(labels);
  e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

void MetricsRegistry::AddCounterFn(std::string name, Labels labels,
                                   std::function<uint64_t()> read) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace_back();
  Entry& e = entries_.back();
  e.kind = MetricSample::Kind::kCounter;
  e.name = std::move(name);
  e.labels = std::move(labels);
  e.counter_fn = std::move(read);
}

void MetricsRegistry::AddGaugeFn(std::string name, Labels labels,
                                 std::function<double()> read) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace_back();
  Entry& e = entries_.back();
  e.kind = MetricSample::Kind::kGauge;
  e.name = std::move(name);
  e.labels = std::move(labels);
  e.gauge_fn = std::move(read);
}

serving::LatencyHistogram* MetricsRegistry::AddHistogram(std::string name,
                                                         Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace_back();
  Entry& e = entries_.back();
  e.kind = MetricSample::Kind::kHistogram;
  e.name = std::move(name);
  e.labels = std::move(labels);
  e.histogram = std::make_unique<serving::LatencyHistogram>();
  return e.histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Collect() const {
  size_t n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = entries_.size();
  }
  std::vector<MetricSample> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Entry& e = entries_[i];
    MetricSample s;
    s.kind = e.kind;
    s.name = e.name;
    s.labels = e.labels;
    switch (e.kind) {
      case MetricSample::Kind::kCounter:
        s.value = static_cast<double>(e.counter ? e.counter->value()
                                                : e.counter_fn());
        break;
      case MetricSample::Kind::kGauge:
        s.value = e.gauge_fn();
        break;
      case MetricSample::Kind::kHistogram: {
        const serving::LatencyHistogram& h = *e.histogram;
        s.count = h.count();
        s.sum_us = h.TotalMicros();
        s.p50_us = h.PercentileMicros(0.5);
        s.p95_us = h.PercentileMicros(0.95);
        s.p99_us = h.PercentileMicros(0.99);
        s.p999_us = h.PercentileMicros(0.999);
        s.value = static_cast<double>(s.count);
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::pair<Labels, const serving::LatencyHistogram*>>
MetricsRegistry::HistogramsNamed(const std::string& name) const {
  size_t n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = entries_.size();
  }
  std::vector<std::pair<Labels, const serving::LatencyHistogram*>> out;
  for (size_t i = 0; i < n; ++i) {
    const Entry& e = entries_[i];
    if (e.kind == MetricSample::Kind::kHistogram && e.name == name) {
      out.emplace_back(e.labels, e.histogram.get());
    }
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::vector<MetricSample> samples = Collect();
  std::string out;
  out.reserve(samples.size() * 64);
  // One # TYPE line per metric name, at its first occurrence.
  std::vector<std::string> typed;
  auto emit_type = [&](const std::string& name, const char* type) {
    for (const std::string& t : typed) {
      if (t == name) return;
    }
    typed.push_back(name);
    out += "# TYPE " + name + " " + type + "\n";
  };
  for (const MetricSample& s : samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter: {
        emit_type(s.name, "counter");
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64,
                      static_cast<uint64_t>(s.value));
        out += s.name + PrometheusLabels(s.labels) + " " + buf + "\n";
        break;
      }
      case MetricSample::Kind::kGauge:
        emit_type(s.name, "gauge");
        out += s.name + PrometheusLabels(s.labels) + " " +
               FormatDouble(s.value) + "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        // Exported as a Prometheus summary in seconds: pre-computed
        // quantiles beat shipping ~1200 raw HDR buckets per series.
        emit_type(s.name, "summary");
        auto quantile = [&](const char* q, double us) {
          out += s.name + PrometheusLabels(s.labels, "quantile", q) + " " +
                 FormatDouble(us / 1e6) + "\n";
        };
        quantile("0.5", s.p50_us);
        quantile("0.95", s.p95_us);
        quantile("0.99", s.p99_us);
        quantile("0.999", s.p999_us);
        out += s.name + "_sum" + PrometheusLabels(s.labels) + " " +
               FormatDouble(static_cast<double>(s.sum_us) / 1e6) + "\n";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, s.count);
        out += s.name + "_count" + PrometheusLabels(s.labels) + " " + buf +
               "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::vector<MetricSample> samples = Collect();
  std::string counters, gauges, histograms;
  for (const MetricSample& s : samples) {
    std::string item = "{\"name\": \"" + EscapeJson(s.name) +
                       "\", \"labels\": " + JsonLabels(s.labels);
    switch (s.kind) {
      case MetricSample::Kind::kCounter: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64,
                      static_cast<uint64_t>(s.value));
        item += std::string(", \"value\": ") + buf + "}";
        if (!counters.empty()) counters += ", ";
        counters += item;
        break;
      }
      case MetricSample::Kind::kGauge:
        item += ", \"value\": " + FormatDouble(s.value) + "}";
        if (!gauges.empty()) gauges += ", ";
        gauges += item;
        break;
      case MetricSample::Kind::kHistogram: {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      ", \"count\": %" PRIu64 ", \"sum_us\": %" PRIu64,
                      s.count, s.sum_us);
        item += buf;
        item += ", \"p50_us\": " + FormatDouble(s.p50_us) +
                ", \"p95_us\": " + FormatDouble(s.p95_us) +
                ", \"p99_us\": " + FormatDouble(s.p99_us) +
                ", \"p999_us\": " + FormatDouble(s.p999_us) + "}";
        if (!histograms.empty()) histograms += ", ";
        histograms += item;
        break;
      }
    }
  }
  return "{\"counters\": [" + counters + "], \"gauges\": [" + gauges +
         "], \"histograms\": [" + histograms + "]}";
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace obs
}  // namespace optselect
