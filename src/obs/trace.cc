#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace optselect {
namespace obs {

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kAdmission: return "admission";
    case TraceStage::kQueueWait: return "queue_wait";
    case TraceStage::kBatch: return "batch";
    case TraceStage::kCacheLookup: return "cache_lookup";
    case TraceStage::kStoreRead: return "store_read";
    case TraceStage::kSelect: return "select";
    case TraceStage::kReply: return "reply";
    case TraceStage::kAttempt: return "attempt";
    case TraceStage::kHedge: return "hedge";
    case TraceStage::kFailover: return "failover";
    case TraceStage::kBreaker: return "breaker";
    case TraceStage::kScan: return "scan";
    case TraceStage::kMaintain: return "maintain";
  }
  return "unknown";
}

Tracer::Tracer(TracerConfig config) : config_(config) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
}

void Tracer::Commit(Trace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  ++committed_;
  // Slow-query log: keep the slow_capacity largest totals, sorted desc.
  if (config_.slow_capacity > 0) {
    if (slow_.size() < config_.slow_capacity ||
        trace.total_us > slow_.back().total_us) {
      auto pos = std::upper_bound(
          slow_.begin(), slow_.end(), trace,
          [](const Trace& a, const Trace& b) {
            return a.total_us > b.total_us;
          });
      slow_.insert(pos, trace);
      if (slow_.size() > config_.slow_capacity) slow_.pop_back();
    }
  }
  ring_.push_back(std::move(trace));
  while (ring_.size() > config_.ring_capacity) ring_.pop_front();
}

void Tracer::RecordBreakerTransition(size_t shard, int from, int to) {
  std::lock_guard<std::mutex> lock(mu_);
  // Same retention bound as the router's own transition log — the two
  // stay index-aligned even on pathological flap storms.
  constexpr size_t kMaxBreakerEvents = 8192;
  if (breakers_.size() >= kMaxBreakerEvents) breakers_.pop_front();
  breakers_.push_back(BreakerEvent{shard, from, to});
}

std::vector<Trace> Tracer::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Trace>(ring_.begin(), ring_.end());
}

std::vector<Trace> Tracer::Slowest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_;
}

std::vector<Tracer::BreakerEvent> Tracer::breaker_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<BreakerEvent>(breakers_.begin(), breakers_.end());
}

uint64_t Tracer::committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

std::string Tracer::Format(const Trace& trace) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "#%" PRIu64 " \"%s\" total=%.3fms%s%s%s%s%s%s%s hash=%016" PRIx64
                "\n",
                trace.seq, trace.query.c_str(),
                static_cast<double>(trace.total_us) / 1000.0,
                trace.ok ? " ok" : " FAIL", trace.degraded ? " degraded" : "",
                trace.hedged ? " hedged" : "",
                trace.cache_hit ? " cache_hit" : "",
                trace.plan_served ? " plan" : "",
                trace.streaming_served ? " streaming" : "",
                trace.diversified ? " diversified" : "", trace.ranking_hash);
  std::string out = buf;
  for (const TraceEvent& e : trace.events) {
    std::snprintf(buf, sizeof(buf),
                  "  +%8.3fms %-12s %8.3fms  detail=%" PRIu64 "\n",
                  static_cast<double>(e.start_us) / 1000.0,
                  TraceStageName(e.stage),
                  static_cast<double>(e.duration_us) / 1000.0, e.detail);
    out += buf;
  }
  return out;
}

}  // namespace obs
}  // namespace optselect
