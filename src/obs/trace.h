// Per-request tracing: where does one request's time actually go?
//
// The metrics registry (obs/metrics.h) aggregates; a trace narrates.
// Each sampled request carries a Trace through its lifecycle —
//
//   admission → queue-wait → batch → cache-lookup → store-read
//             → plan/cold-select → reply
//
// on a ServingNode, plus router hops (attempt, hedge, degraded
// failover, breaker transitions) when the request enters through a
// QueryRouter. Completed traces land in a fixed-capacity ring buffer
// (recent traffic) and a top-N slow-query log (worst offenders with
// their per-stage breakdown) on the owning Tracer.
//
// Sampling is deterministic and seeded: request sequence number `seq`
// is sampled iff `seq % sample_every == seed % sample_every`. No wall
// clock, no RNG — under the sequential chaos replay the same seed
// samples the same requests in both runs, which is what lets the chaos
// harness diff sampled trace sequences across runs A and B
// (`VerifyTraceInvariants` in src/cluster/chaos.h). Only ring-buffer
// storage is gated on sampling; the per-stage latency *histograms*
// record every request (see serving_node.cc), so stage quantiles
// describe all traffic, not a sample.
//
// Cost model mirrors fault_injector.h: OPTSELECT_TRACING defaults on
// in Debug and off in optimized builds (opt in via the CMake option).
// Compiled out, TracingCompiledIn() is a constexpr false — the trace
// branches and all added clock reads are dead code; Request keeps a
// null unique_ptr and nothing else. Compiled in with no Tracer
// installed, the cost is one relaxed atomic load per request.

#ifndef OPTSELECT_OBS_TRACE_H_
#define OPTSELECT_OBS_TRACE_H_

// Compile-time gate for trace evaluation sites and stage clock reads.
// Debug builds default on; optimized builds default off and opt in via
// the CMake option OPTSELECT_TRACING=ON.
#ifndef OPTSELECT_TRACING
#ifdef NDEBUG
#define OPTSELECT_TRACING 0
#else
#define OPTSELECT_TRACING 1
#endif
#endif

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace optselect {
namespace obs {

/// True when this build evaluates installed tracers and records stage
/// timings (see header doc).
constexpr bool TracingCompiledIn() { return OPTSELECT_TRACING != 0; }

/// Lifecycle stages and router hops a TraceEvent can mark.
enum class TraceStage : uint8_t {
  kAdmission = 0,   ///< accepted into the queue
  kQueueWait,       ///< enqueue → batch drain
  kBatch,           ///< drained in a batch (detail = batch size)
  kCacheLookup,     ///< result-cache probe
  kStoreRead,       ///< store lookup + candidate materialization
  kSelect,          ///< OptSelect proper (plan or cold path)
  kReply,           ///< stats + completion callback
  kAttempt,         ///< router: primary/holder attempt (detail = shard)
  kHedge,           ///< router: hedge copy launched (detail = shard)
  kFailover,        ///< router: degraded sweep attempt (detail = shard)
  kBreaker,         ///< router: breaker transition (detail = to-state)
  kScan,            ///< streaming cold path: candidate scan + pushes
                    ///< (detail = candidates materialized)
  kMaintain,        ///< streaming cold path: finalize + ranking assembly
};

const char* TraceStageName(TraceStage stage);

/// One timed (or point) event inside a trace. Offsets are relative to
/// the trace's start so traces are self-contained.
struct TraceEvent {
  TraceStage stage = TraceStage::kAdmission;
  int64_t start_us = 0;
  int64_t duration_us = 0;
  /// Stage-specific payload: batch size (kBatch), shard index
  /// (kAttempt/kHedge/kFailover), encoded from<<8|to states (kBreaker).
  uint64_t detail = 0;
};

/// A completed request narrative. Outcome fields mirror ServeResult /
/// ChaosRequestOutcome so chaos can diff traces against its report.
struct Trace {
  uint64_t seq = 0;       ///< sampled request sequence number
  std::string query;
  bool ok = false;
  bool degraded = false;
  bool hedged = false;
  bool diversified = false;
  bool cache_hit = false;
  bool plan_served = false;
  bool streaming_served = false;
  uint64_t ranking_hash = 0;  ///< FNV-1a over result DocIds (0 if none)
  int64_t total_us = 0;
  std::vector<TraceEvent> events;

  /// Start reference for event offsets; not part of the exported data.
  std::chrono::steady_clock::time_point start{};

  /// Microseconds since `start`; stamps events as they are appended.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  }
};

/// Tracer knobs. Defaults suit load paths; the serve REPL uses
/// sample_every = 1 so interactive queries always trace.
struct TracerConfig {
  /// 1-in-N deterministic sampling (0 and 1 both mean "every request").
  uint64_t sample_every = 64;
  /// Offsets which residue class is sampled: seq % N == seed % N.
  uint64_t seed = 0;
  /// Completed traces kept (oldest evicted first).
  size_t ring_capacity = 256;
  /// Top-N slowest traces kept separately (the slow-query log).
  size_t slow_capacity = 8;
};

/// Collects sampled traces and breaker transitions. Commit is mutex-
/// guarded but touched only 1-in-N; ShouldSample is a pure function.
class Tracer {
 public:
  explicit Tracer(TracerConfig config);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const TracerConfig& config() const { return config_; }

  /// Deterministic sampling decision for a request sequence number.
  bool ShouldSample(uint64_t seq) const {
    uint64_t n = config_.sample_every;
    if (n <= 1) return true;
    return seq % n == config_.seed % n;
  }

  /// Stores a completed trace in the ring buffer and, if it ranks,
  /// the slow-query log.
  void Commit(Trace trace);

  /// Breaker transitions are recorded for *every* transition while a
  /// tracer is installed (not sampled): the chaos harness diffs this
  /// log against the router's own BreakerTransition log.
  struct BreakerEvent {
    size_t shard = 0;
    int from = 0;  ///< BreakerState as int (trace.h avoids the dep)
    int to = 0;
  };
  void RecordBreakerTransition(size_t shard, int from, int to);

  /// Ring-buffer contents, oldest → newest.
  std::vector<Trace> Recent() const;

  /// Slow-query log, slowest first.
  std::vector<Trace> Slowest() const;

  std::vector<BreakerEvent> breaker_events() const;

  /// Traces committed over the tracer's lifetime (ring may have
  /// evicted some).
  uint64_t committed() const;

  /// Human-readable multi-line rendering of a trace with per-stage
  /// breakdown (the `:traces` REPL command and slow-query log format).
  static std::string Format(const Trace& trace);

 private:
  TracerConfig config_;

  mutable std::mutex mu_;
  std::deque<Trace> ring_;
  std::vector<Trace> slow_;  // sorted desc by total_us
  std::deque<BreakerEvent> breakers_;
  uint64_t committed_ = 0;
};

/// Per-request stage durations in microseconds. -1 means the stage was
/// never reached (cache hit skips store-read/select; disabled cache
/// skips cache-lookup) — only >= 0 values are recorded into the stage
/// histograms, so each stage's quantiles describe the requests that
/// actually ran it.
struct StageTimes {
  int64_t queue_wait_us = -1;
  int64_t cache_lookup_us = -1;
  int64_t store_read_us = -1;
  int64_t select_us = -1;
  int64_t reply_us = -1;
  /// Streaming cold path only: sub-phases of select (scan the candidate
  /// stream vs. finalize + assemble). select_us still covers both, so
  /// the stage-sum identity over the top-level stages is unchanged.
  int64_t scan_us = -1;
  int64_t maintain_us = -1;
};

#if OPTSELECT_TRACING

/// Scope guard: measures from construction to destruction, then writes
/// `*out_us` (when set — feeds the always-on stage histograms) and
/// appends a TraceEvent to `trace` (when non-null — the sampled
/// narrative). With tracing compiled out this is an empty struct and
/// every use site folds away.
class TraceSpan {
 public:
  TraceSpan(Trace* trace, TraceStage stage, uint64_t detail = 0,
            int64_t* out_us = nullptr)
      : trace_(trace),
        stage_(stage),
        detail_(detail),
        out_us_(out_us),
        t0_(std::chrono::steady_clock::now()) {}

  /// Overrides the detail payload before the span ends — for details
  /// only known at the end of the stage (e.g. the scan span's
  /// materialized-candidate count).
  void set_detail(uint64_t detail) { detail_ = detail; }

  /// Ends the span before scope exit (branchy code where the stage
  /// boundary is not a scope boundary). Idempotent.
  void End() {
    if (!armed_) return;
    armed_ = false;
    auto now = std::chrono::steady_clock::now();
    int64_t us =
        std::chrono::duration_cast<std::chrono::microseconds>(now - t0_)
            .count();
    if (out_us_ != nullptr) *out_us_ = us;
    if (trace_ != nullptr) {
      TraceEvent e;
      e.stage = stage_;
      e.start_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       t0_ - trace_->start)
                       .count();
      e.duration_us = us;
      e.detail = detail_;
      trace_->events.push_back(e);
    }
  }

  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Trace* trace_;
  TraceStage stage_;
  uint64_t detail_;
  int64_t* out_us_;
  std::chrono::steady_clock::time_point t0_;
  bool armed_ = true;
};

#else  // !OPTSELECT_TRACING

class TraceSpan {
 public:
  TraceSpan(Trace*, TraceStage, uint64_t = 0, int64_t* = nullptr) {}
  void set_detail(uint64_t) {}
  void End() {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // OPTSELECT_TRACING

}  // namespace obs
}  // namespace optselect

#endif  // OPTSELECT_OBS_TRACE_H_
