#include "eval/wilcoxon.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

namespace optselect {
namespace eval {
namespace {

// Exact two-sided p-value by enumerating sign assignments over the ranks.
// Valid only without ties (integer ranks); with average ranks it remains a
// close approximation, so we only use it for tie-free small samples.
double ExactPValue(const std::vector<double>& ranks, double w_plus) {
  size_t n = ranks.size();
  assert(n <= 20);
  const uint64_t total = 1ull << n;
  // Statistic: min(W+, W−). Count assignments with min-statistic <= observed.
  double total_rank_sum = 0.0;
  for (double r : ranks) total_rank_sum += r;
  double observed = std::min(w_plus, total_rank_sum - w_plus);
  uint64_t count = 0;
  for (uint64_t mask = 0; mask < total; ++mask) {
    double wp = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) wp += ranks[i];
    }
    double stat = std::min(wp, total_rank_sum - wp);
    if (stat <= observed + 1e-12) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(total);
}

double NormalSf(double z) {
  // Survival function of the standard normal.
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

}  // namespace

WilcoxonResult WilcoxonSignedRank(const std::vector<double>& x,
                                  const std::vector<double>& y) {
  assert(x.size() == y.size());
  WilcoxonResult result;

  // Non-zero differences with |d| and sign.
  struct Diff {
    double abs;
    int sign;
  };
  std::vector<Diff> diffs;
  diffs.reserve(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    double d = x[i] - y[i];
    if (d != 0.0) diffs.push_back(Diff{std::fabs(d), d > 0 ? 1 : -1});
  }
  result.n = diffs.size();
  if (diffs.empty()) return result;

  // Average ranks over ties.
  std::sort(diffs.begin(), diffs.end(),
            [](const Diff& a, const Diff& b) { return a.abs < b.abs; });
  std::vector<double> ranks(diffs.size());
  bool has_ties = false;
  size_t i = 0;
  while (i < diffs.size()) {
    size_t j = i;
    while (j + 1 < diffs.size() && diffs[j + 1].abs == diffs[i].abs) ++j;
    if (j > i) has_ties = true;
    double avg_rank = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (size_t t = i; t <= j; ++t) ranks[t] = avg_rank;
    i = j + 1;
  }

  for (size_t t = 0; t < diffs.size(); ++t) {
    if (diffs[t].sign > 0) {
      result.w_plus += ranks[t];
    } else {
      result.w_minus += ranks[t];
    }
  }

  const size_t n = diffs.size();
  if (n <= 20 && !has_ties) {
    result.p_value = ExactPValue(ranks, result.w_plus);
  } else {
    // Normal approximation with tie correction.
    double mean = static_cast<double>(n) * (n + 1) / 4.0;
    double var = static_cast<double>(n) * (n + 1) * (2.0 * n + 1) / 24.0;
    // Tie correction: subtract Σ(t³ − t)/48 per tie group.
    i = 0;
    while (i < n) {
      size_t j = i;
      while (j + 1 < n && diffs[j + 1].abs == diffs[i].abs) ++j;
      double t = static_cast<double>(j - i + 1);
      if (t > 1) var -= (t * t * t - t) / 48.0;
      i = j + 1;
    }
    if (var <= 0.0) {
      result.p_value = 1.0;
      return result;
    }
    double w = std::min(result.w_plus, result.w_minus);
    // Continuity correction toward the mean; w <= mean so z <= ~0 and the
    // two-sided p-value is 2·Φ(z) = 2·SF(−z).
    double z = (w - mean + 0.5) / std::sqrt(var);
    result.p_value = std::min(1.0, 2.0 * NormalSf(-z));
  }
  return result;
}

}  // namespace eval
}  // namespace optselect
