#include "eval/ia_precision.h"

#include <algorithm>

namespace optselect {
namespace eval {

double IntentAwarePrecision::Score(TopicId topic,
                                   const std::vector<double>& subtopic_weights,
                                   const std::vector<DocId>& ranking,
                                   size_t k) const {
  if (k == 0 || subtopic_weights.empty()) return 0.0;
  const size_t depth = std::min(k, ranking.size());
  double iap = 0.0;
  for (uint32_t s = 0; s < subtopic_weights.size(); ++s) {
    size_t hits = 0;
    for (size_t r = 0; r < depth; ++r) {
      if (qrels_->Relevant(topic, s, ranking[r])) ++hits;
    }
    iap += subtopic_weights[s] *
           (static_cast<double>(hits) / static_cast<double>(k));
  }
  return iap;
}

double IntentAwarePrecision::ScoreUniform(TopicId topic,
                                          uint32_t num_subtopics,
                                          const std::vector<DocId>& ranking,
                                          size_t k) const {
  if (num_subtopics == 0) return 0.0;
  std::vector<double> weights(num_subtopics,
                              1.0 / static_cast<double>(num_subtopics));
  return Score(topic, weights, ranking, k);
}

}  // namespace eval
}  // namespace optselect
