#include "eval/alpha_ndcg.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/math_util.h"

namespace optselect {
namespace eval {
namespace {

// Gain of a document given per-subtopic coverage counts; increments the
// counts for the subtopics the document is relevant to.
double GainAndCover(const corpus::Qrels& qrels, TopicId topic,
                    uint32_t num_subtopics, DocId doc, double alpha,
                    std::vector<uint32_t>* coverage) {
  double gain = 0.0;
  for (uint32_t s = 0; s < num_subtopics; ++s) {
    if (qrels.Relevant(topic, s, doc)) {
      gain += std::pow(1.0 - alpha, static_cast<double>((*coverage)[s]));
      ++(*coverage)[s];
    }
  }
  return gain;
}

}  // namespace

double AlphaNdcg::Dcg(TopicId topic, uint32_t num_subtopics,
                      const std::vector<DocId>& ranking, size_t k) const {
  std::vector<uint32_t> coverage(num_subtopics, 0);
  double dcg = 0.0;
  const size_t depth = std::min(k, ranking.size());
  for (size_t r = 0; r < depth; ++r) {
    double gain = GainAndCover(*qrels_, topic, num_subtopics, ranking[r],
                               alpha_, &coverage);
    dcg += gain / util::Log2Discount(r + 1);
  }
  return dcg;
}

double AlphaNdcg::IdealDcg(TopicId topic, uint32_t num_subtopics,
                           size_t k) const {
  // Pool: all docs judged relevant to any subtopic.
  std::unordered_set<DocId> pool_set;
  for (uint32_t s = 0; s < num_subtopics; ++s) {
    for (const auto& [doc, grade] : qrels_->Judgments(topic, s)) {
      if (grade > 0) pool_set.insert(doc);
    }
  }
  std::vector<DocId> pool(pool_set.begin(), pool_set.end());
  std::sort(pool.begin(), pool.end());  // determinism

  std::vector<uint32_t> coverage(num_subtopics, 0);
  std::vector<char> used(pool.size(), 0);
  double idcg = 0.0;
  const size_t depth = std::min(k, pool.size());
  for (size_t r = 0; r < depth; ++r) {
    // Greedy: the document with the largest marginal gain given current
    // coverage.
    double best_gain = -1.0;
    size_t best = pool.size();
    for (size_t i = 0; i < pool.size(); ++i) {
      if (used[i]) continue;
      double gain = 0.0;
      for (uint32_t s = 0; s < num_subtopics; ++s) {
        if (qrels_->Relevant(topic, s, pool[i])) {
          gain +=
              std::pow(1.0 - alpha_, static_cast<double>(coverage[s]));
        }
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == pool.size() || best_gain <= 0.0) break;
    used[best] = 1;
    for (uint32_t s = 0; s < num_subtopics; ++s) {
      if (qrels_->Relevant(topic, s, pool[best])) ++coverage[s];
    }
    idcg += best_gain / util::Log2Discount(r + 1);
  }
  return idcg;
}

double AlphaNdcg::Score(TopicId topic, uint32_t num_subtopics,
                        const std::vector<DocId>& ranking, size_t k) const {
  double idcg = IdealDcg(topic, num_subtopics, k);
  if (idcg <= 0.0) return 0.0;
  return Dcg(topic, num_subtopics, ranking, k) / idcg;
}

}  // namespace eval
}  // namespace optselect
