#include "eval/diversity_evaluator.h"

#include "eval/alpha_ndcg.h"
#include "eval/ia_precision.h"
#include "util/math_util.h"

namespace optselect {
namespace eval {
namespace {

const std::vector<DocId>& RankingFor(const Run& run, TopicId topic) {
  static const std::vector<DocId> kEmpty;
  auto it = run.rankings.find(topic);
  return it == run.rankings.end() ? kEmpty : it->second;
}

}  // namespace

MetricRow DiversityEvaluator::Evaluate(const Run& run) const {
  MetricRow row;
  row.run_name = run.name;
  for (size_t cutoff : options_.cutoffs) {
    row.alpha_ndcg[cutoff] = util::Mean(PerTopicAlphaNdcg(run, cutoff));
    row.ia_precision[cutoff] = util::Mean(PerTopicIaPrecision(run, cutoff));
  }
  return row;
}

std::vector<double> DiversityEvaluator::PerTopicAlphaNdcg(
    const Run& run, size_t cutoff) const {
  AlphaNdcg metric(qrels_, options_.alpha);
  std::vector<double> values;
  values.reserve(topics_->size());
  for (const corpus::TrecTopic& topic : topics_->topics()) {
    uint32_t m = static_cast<uint32_t>(topic.subtopics.size());
    values.push_back(
        metric.Score(topic.id, m, RankingFor(run, topic.id), cutoff));
  }
  return values;
}

std::vector<double> DiversityEvaluator::PerTopicIaPrecision(
    const Run& run, size_t cutoff) const {
  IntentAwarePrecision metric(qrels_);
  std::vector<double> values;
  values.reserve(topics_->size());
  for (const corpus::TrecTopic& topic : topics_->topics()) {
    const std::vector<DocId>& ranking = RankingFor(run, topic.id);
    uint32_t m = static_cast<uint32_t>(topic.subtopics.size());
    if (options_.uniform_intent_weights) {
      values.push_back(metric.ScoreUniform(topic.id, m, ranking, cutoff));
    } else {
      std::vector<double> weights;
      weights.reserve(m);
      for (const corpus::Subtopic& st : topic.subtopics) {
        weights.push_back(st.probability);
      }
      values.push_back(metric.Score(topic.id, weights, ranking, cutoff));
    }
  }
  return values;
}

}  // namespace eval
}  // namespace optselect
