// Wilcoxon signed-rank test — the paper's significance test ("none of
// these differences can be classified as statistically significant
// according to the Wilcoxon signed-rank test at 0.05 level", Section 5).
//
// Exact null distribution for small samples (n ≤ 20, enumerating the 2^n
// sign assignments over ranks), normal approximation with tie correction
// and continuity correction beyond.

#ifndef OPTSELECT_EVAL_WILCOXON_H_
#define OPTSELECT_EVAL_WILCOXON_H_

#include <cstddef>
#include <vector>

namespace optselect {
namespace eval {

/// Test outcome.
struct WilcoxonResult {
  /// Number of non-zero paired differences actually used.
  size_t n = 0;
  /// Sum of ranks of positive differences (W+).
  double w_plus = 0.0;
  /// Sum of ranks of negative differences (W−).
  double w_minus = 0.0;
  /// Two-sided p-value. 1.0 when n == 0.
  double p_value = 1.0;

  /// Convenience: significant at the given level?
  bool Significant(double level = 0.05) const { return p_value < level; }
};

/// Runs the two-sided Wilcoxon signed-rank test on paired samples.
/// Zero differences are dropped (standard Wilcoxon treatment); tied
/// absolute differences receive average ranks.
WilcoxonResult WilcoxonSignedRank(const std::vector<double>& x,
                                  const std::vector<double>& y);

}  // namespace eval
}  // namespace optselect

#endif  // OPTSELECT_EVAL_WILCOXON_H_
