// TREC-format interchange: diversity qrels, topic files, and run files.
//
// Users with access to the real TREC 2009 Web track data (topics wt09.xml
// reduced to tab-separated form, diversity qrels "topic subtopic doc
// grade", runs "topic Q0 doc rank score tag") can evaluate this library's
// output with the official tooling and vice versa. Formats:
//
//   topics file   topic_id <TAB> query <TAB> subtopic1 | subtopic2 | ...
//   qrels file    topic_id subtopic_id doc_id grade     (whitespace)
//   run file      topic_id Q0 doc_id rank score tag     (whitespace)
//
// Document identifiers are this library's dense DocId integers; mapping
// from TREC docnos to DocIds is the caller's concern (a corpus loader's
// natural by-product).

#ifndef OPTSELECT_EVAL_TREC_IO_H_
#define OPTSELECT_EVAL_TREC_IO_H_

#include <string>

#include "corpus/qrels.h"
#include "corpus/trec_topics.h"
#include "eval/diversity_evaluator.h"
#include "util/status.h"

namespace optselect {
namespace eval {

/// Writes topics in the tab-separated topic format.
util::Status SaveTopics(const corpus::TopicSet& topics,
                        const std::string& path);

/// Parses a topics file written by SaveTopics.
util::Result<corpus::TopicSet> LoadTopics(const std::string& path);

/// Writes diversity qrels ("topic subtopic doc grade" lines).
util::Status SaveQrels(const corpus::Qrels& qrels,
                       const corpus::TopicSet& topics,
                       const std::string& path);

/// Parses a diversity qrels file.
util::Result<corpus::Qrels> LoadQrels(const std::string& path);

/// Writes a run in the classic 6-column TREC format. Scores descend with
/// rank (1/rank) to keep official tools happy.
util::Status SaveRun(const Run& run, const std::string& path);

/// Parses a TREC run file; ranks order the per-topic lists.
util::Result<Run> LoadRun(const std::string& path);

}  // namespace eval
}  // namespace optselect

#endif  // OPTSELECT_EVAL_TREC_IO_H_
