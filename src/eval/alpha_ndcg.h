// α-NDCG (Clarke et al., SIGIR'08) — the diversity-aware gain metric used
// as the TREC 2009 Web track diversity task's primary measure.
//
// The gain of the document at rank r is
//   G(r) = Σ_s J(d_r, s) · (1 − α)^{C_s(r−1)}
// where J is the binary subtopic judgment and C_s(r−1) counts documents
// relevant to subtopic s among the first r−1 positions: repeated coverage
// of an already-covered subtopic is geometrically discounted by α. With
// α = 0 the metric degenerates to (binary, subtopic-summed) NDCG.
//
//   DCG@k  = Σ_{r≤k} G(r) / log₂(1 + r)
//   α-NDCG@k = DCG@k / IdealDCG@k
//
// The ideal gain vector is NP-hard to compute exactly; following standard
// practice (and the official ndeval implementation) it is approximated
// greedily over the judged pool.

#ifndef OPTSELECT_EVAL_ALPHA_NDCG_H_
#define OPTSELECT_EVAL_ALPHA_NDCG_H_

#include <vector>

#include "corpus/qrels.h"
#include "util/types.h"

namespace optselect {
namespace eval {

/// α-NDCG@k scorer for one topic.
class AlphaNdcg {
 public:
  /// `alpha` is the redundancy penalty; the paper evaluates with α = 0.5
  /// "to give an equal weight to relevance and diversity".
  AlphaNdcg(const corpus::Qrels* qrels, double alpha = 0.5)
      : qrels_(qrels), alpha_(alpha) {}

  /// α-NDCG@k of `ranking` for `topic` with `num_subtopics` subtopics.
  /// Returns 0 when the topic has no relevant documents.
  double Score(TopicId topic, uint32_t num_subtopics,
               const std::vector<DocId>& ranking, size_t k) const;

  /// Un-normalized DCG@k of the ranking (exposed for tests).
  double Dcg(TopicId topic, uint32_t num_subtopics,
             const std::vector<DocId>& ranking, size_t k) const;

  /// Greedy ideal DCG@k over the judged pool (exposed for tests).
  double IdealDcg(TopicId topic, uint32_t num_subtopics, size_t k) const;

  double alpha() const { return alpha_; }

 private:
  const corpus::Qrels* qrels_;  // not owned
  double alpha_;
};

}  // namespace eval
}  // namespace optselect

#endif  // OPTSELECT_EVAL_ALPHA_NDCG_H_
