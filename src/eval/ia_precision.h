// Intent-aware precision IA-P@k (Agrawal et al., WSDM'09) — the second
// official metric of the TREC 2009 diversity task: classic precision,
// averaged over query intents weighted by their likelihood.
//
//   IA-P@k = Σ_s P(s|q) · ( |{d ∈ top-k : relevant to s}| / k ).

#ifndef OPTSELECT_EVAL_IA_PRECISION_H_
#define OPTSELECT_EVAL_IA_PRECISION_H_

#include <vector>

#include "corpus/qrels.h"
#include "util/types.h"

namespace optselect {
namespace eval {

/// IA-P@k scorer for one topic.
class IntentAwarePrecision {
 public:
  explicit IntentAwarePrecision(const corpus::Qrels* qrels)
      : qrels_(qrels) {}

  /// IA-P@k with explicit subtopic weights (must sum to 1; pass the
  /// planted probabilities to weight intents by popularity).
  double Score(TopicId topic, const std::vector<double>& subtopic_weights,
               const std::vector<DocId>& ranking, size_t k) const;

  /// IA-P@k with uniform subtopic weights — TREC's official convention.
  double ScoreUniform(TopicId topic, uint32_t num_subtopics,
                      const std::vector<DocId>& ranking, size_t k) const;

 private:
  const corpus::Qrels* qrels_;  // not owned
};

}  // namespace eval
}  // namespace optselect

#endif  // OPTSELECT_EVAL_IA_PRECISION_H_
