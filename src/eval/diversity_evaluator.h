// Batch evaluation of diversity runs: α-NDCG and IA-P at the paper's rank
// cutoffs {5, 10, 20, 100, 1000}, averaged over topics (Table 3 rows).

#ifndef OPTSELECT_EVAL_DIVERSITY_EVALUATOR_H_
#define OPTSELECT_EVAL_DIVERSITY_EVALUATOR_H_

#include <map>
#include <string>
#include <vector>

#include "corpus/qrels.h"
#include "corpus/trec_topics.h"
#include "util/types.h"

namespace optselect {
namespace eval {

/// One system's output: per-topic ranked document lists.
struct Run {
  std::string name;
  std::map<TopicId, std::vector<DocId>> rankings;
};

/// Metric values at the standard cutoffs.
struct MetricRow {
  std::string run_name;
  /// cutoff → mean metric over topics.
  std::map<size_t, double> alpha_ndcg;
  std::map<size_t, double> ia_precision;
};

/// Evaluates runs against a topic set + qrels.
class DiversityEvaluator {
 public:
  struct Options {
    double alpha = 0.5;
    std::vector<size_t> cutoffs = {5, 10, 20, 100, 1000};
    /// Weight IA-P intents uniformly (TREC convention) or by the planted
    /// subtopic probabilities.
    bool uniform_intent_weights = true;
  };

  DiversityEvaluator(const corpus::TopicSet* topics,
                     const corpus::Qrels* qrels, Options options)
      : topics_(topics), qrels_(qrels), options_(options) {}

  DiversityEvaluator(const corpus::TopicSet* topics,
                     const corpus::Qrels* qrels)
      : DiversityEvaluator(topics, qrels, Options{}) {}

  /// Mean metrics of a run over all topics present in the topic set.
  /// Topics missing from the run score 0.
  MetricRow Evaluate(const Run& run) const;

  /// Per-topic α-NDCG@cutoff values (for significance testing).
  std::vector<double> PerTopicAlphaNdcg(const Run& run, size_t cutoff) const;

  /// Per-topic IA-P@cutoff values.
  std::vector<double> PerTopicIaPrecision(const Run& run,
                                          size_t cutoff) const;

  const Options& options() const { return options_; }

 private:
  const corpus::TopicSet* topics_;  // not owned
  const corpus::Qrels* qrels_;      // not owned
  Options options_;
};

}  // namespace eval
}  // namespace optselect

#endif  // OPTSELECT_EVAL_DIVERSITY_EVALUATOR_H_
