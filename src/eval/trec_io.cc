#include "eval/trec_io.h"

#include <algorithm>
#include <fstream>
#include <map>

#include "util/strings.h"

namespace optselect {
namespace eval {

util::Status SaveTopics(const corpus::TopicSet& topics,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  for (const corpus::TrecTopic& topic : topics.topics()) {
    out << topic.id << '\t' << topic.query << '\t';
    for (size_t s = 0; s < topic.subtopics.size(); ++s) {
      if (s > 0) out << " | ";
      out << topic.subtopics[s].query;
    }
    out << '\n';
  }
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Result<corpus::TopicSet> LoadTopics(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for read: " + path);
  corpus::TopicSet topics;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> fields = util::Split(line, '\t');
    if (fields.size() != 3) {
      return util::Status::Corruption(
          util::StrFormat("topics line %zu: expected 3 fields, got %zu",
                          lineno, fields.size()));
    }
    corpus::TrecTopic topic;
    topic.id = static_cast<TopicId>(
        std::strtoul(fields[0].c_str(), nullptr, 10));
    topic.query = fields[1];
    for (std::string& piece : util::Split(fields[2], '|')) {
      corpus::Subtopic st;
      st.query = std::string(util::Trim(piece));
      if (st.query.empty()) {
        return util::Status::Corruption(
            util::StrFormat("topics line %zu: empty subtopic", lineno));
      }
      topic.subtopics.push_back(std::move(st));
    }
    // Uniform probabilities when the file carries none.
    for (corpus::Subtopic& st : topic.subtopics) {
      st.probability = 1.0 / static_cast<double>(topic.subtopics.size());
    }
    topics.Add(std::move(topic));
  }
  return topics;
}

util::Status SaveQrels(const corpus::Qrels& qrels,
                       const corpus::TopicSet& topics,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  for (const corpus::TrecTopic& topic : topics.topics()) {
    for (uint32_t s = 0; s < topic.subtopics.size(); ++s) {
      std::vector<std::pair<DocId, int>> judged =
          qrels.Judgments(topic.id, s);
      std::sort(judged.begin(), judged.end());
      for (const auto& [doc, grade] : judged) {
        out << topic.id << ' ' << s << ' ' << doc << ' ' << grade << '\n';
      }
    }
  }
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Result<corpus::Qrels> LoadQrels(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for read: " + path);
  corpus::Qrels qrels;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> f = util::SplitWhitespace(line);
    if (f.size() != 4) {
      return util::Status::Corruption(
          util::StrFormat("qrels line %zu: expected 4 fields, got %zu",
                          lineno, f.size()));
    }
    qrels.Add(static_cast<TopicId>(std::strtoul(f[0].c_str(), nullptr, 10)),
              static_cast<uint32_t>(std::strtoul(f[1].c_str(), nullptr, 10)),
              static_cast<DocId>(std::strtoul(f[2].c_str(), nullptr, 10)),
              std::atoi(f[3].c_str()));
  }
  return qrels;
}

util::Status SaveRun(const Run& run, const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  const std::string tag = run.name.empty() ? "optselect" : run.name;
  for (const auto& [topic, ranking] : run.rankings) {
    for (size_t r = 0; r < ranking.size(); ++r) {
      out << topic << " Q0 " << ranking[r] << ' ' << (r + 1) << ' '
          << util::StrFormat("%.6f", 1.0 / static_cast<double>(r + 1))
          << ' ' << tag << '\n';
    }
  }
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Result<Run> LoadRun(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for read: " + path);
  Run run;
  // (topic, rank) → doc; sorted map restores rank order per topic.
  std::map<TopicId, std::map<uint64_t, DocId>> by_rank;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> f = util::SplitWhitespace(line);
    if (f.size() != 6) {
      return util::Status::Corruption(
          util::StrFormat("run line %zu: expected 6 fields, got %zu",
                          lineno, f.size()));
    }
    if (f[1] != "Q0") {
      return util::Status::Corruption(
          util::StrFormat("run line %zu: expected Q0", lineno));
    }
    TopicId topic =
        static_cast<TopicId>(std::strtoul(f[0].c_str(), nullptr, 10));
    DocId doc = static_cast<DocId>(std::strtoul(f[2].c_str(), nullptr, 10));
    uint64_t rank = std::strtoull(f[3].c_str(), nullptr, 10);
    run.name = f[5];
    if (!by_rank[topic].emplace(rank, doc).second) {
      return util::Status::Corruption(
          util::StrFormat("run line %zu: duplicate rank", lineno));
    }
  }
  for (const auto& [topic, ranked] : by_rank) {
    std::vector<DocId>& list = run.rankings[topic];
    list.reserve(ranked.size());
    for (const auto& [rank, doc] : ranked) list.push_back(doc);
  }
  return run;
}

}  // namespace eval
}  // namespace optselect
