#include "eval/ndcg.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace optselect {
namespace eval {

double Ndcg::Dcg(const std::vector<int>& grades, size_t k) {
  double dcg = 0.0;
  const size_t depth = std::min(k, grades.size());
  for (size_t r = 0; r < depth; ++r) {
    double gain = std::pow(2.0, static_cast<double>(grades[r])) - 1.0;
    dcg += gain / util::Log2Discount(r + 1);
  }
  return dcg;
}

double Ndcg::Score(const std::vector<int>& ranking_grades,
                   std::vector<int> all_grades, size_t k) {
  std::sort(all_grades.begin(), all_grades.end(), std::greater<int>());
  double idcg = Dcg(all_grades, k);
  if (idcg <= 0.0) return 0.0;
  return Dcg(ranking_grades, k) / idcg;
}

}  // namespace eval
}  // namespace optselect
