// Classic graded NDCG (Järvelin & Kekäläinen 2002) — the metric α-NDCG
// generalizes; kept for sanity baselines and ablations.
//
//   DCG@k  = Σ_{r≤k} (2^{grade(d_r)} − 1) / log₂(1 + r)
//   NDCG@k = DCG@k / IdealDCG@k.

#ifndef OPTSELECT_EVAL_NDCG_H_
#define OPTSELECT_EVAL_NDCG_H_

#include <cstddef>
#include <vector>

#include "util/types.h"

namespace optselect {
namespace eval {

/// NDCG over an explicit grade lookup: grades[i] is the grade of
/// ranking[i]; `all_grades` is the full judged grade pool for the ideal.
class Ndcg {
 public:
  /// DCG of a grade sequence.
  static double Dcg(const std::vector<int>& grades, size_t k);

  /// NDCG@k given the ranking's grades and the complete pool of judged
  /// grades (the ideal ranking sorts the pool descending).
  static double Score(const std::vector<int>& ranking_grades,
                      std::vector<int> all_grades, size_t k);
};

}  // namespace eval
}  // namespace optselect

#endif  // OPTSELECT_EVAL_NDCG_H_
