#include "pipeline/candidate_stream.h"

#include <algorithm>

#include "core/utility.h"
#include "util/math_util.h"

namespace optselect {
namespace pipeline {

std::vector<double> InverseHarmonics(
    const std::vector<SpecializationRef>& specs) {
  std::vector<double> inv(specs.size(), 0.0);
  for (size_t j = 0; j < specs.size(); ++j) {
    size_t len = specs[j].result_count();
    inv[j] = len == 0 ? 0.0 : 1.0 / util::HarmonicNumber(len);
  }
  return inv;
}

void ComputeUtilityRow(const text::TermVector& doc,
                       const std::vector<SpecializationRef>& specs,
                       const std::vector<double>& inv_harmonic,
                       double threshold_c, double* row) {
  for (size_t j = 0; j < specs.size(); ++j) {
    double raw =
        specs[j].results != nullptr
            ? core::UtilityComputer::RawUtility(doc, *specs[j].results)
            : core::UtilityComputer::RawUtility(
                  doc, specs[j].spans->data(), specs[j].spans->size());
    double u = raw * inv_harmonic[j];
    if (u < threshold_c) u = 0.0;
    row[j] = u;
  }
}

CandidateStream::CandidateStream(
    const index::ResultList* rq, const index::SnippetExtractor* snippets,
    const corpus::DocumentStore* documents,
    const std::vector<text::TermId>* query_terms)
    : rq_(rq),
      snippets_(snippets),
      documents_(documents),
      query_terms_(query_terms) {
  if (rq_->empty()) return;
  max_score_ = rq_->front().score;
  for (const index::SearchResult& hit : *rq_) {
    max_score_ = std::max(max_score_, hit.score);
  }
}

const text::TermVector& CandidateStream::Materialize() {
  current_ = snippets_->ExtractVector(documents_->Get((*rq_)[pos_].doc),
                                      *query_terms_);
  ++materialized_;
  return current_;
}

}  // namespace pipeline
}  // namespace optselect
