#include "pipeline/testbed.h"

namespace optselect {
namespace pipeline {

TestbedConfig TestbedConfig::Small() {
  TestbedConfig c;
  c.universe.num_topics = 8;
  c.universe.min_intents = 3;
  c.universe.max_intents = 5;
  c.corpus.docs_per_intent = 12;
  c.corpus.proportional_cluster_size = true;
  c.corpus.distractor_docs_per_intent = 3;
  c.corpus.confusable_docs_per_topic = 6;
  c.corpus.background_docs = 300;
  c.log.num_users = 200;
  c.log.num_sessions = 3000;
  c.num_noise_queries = 80;
  return c;
}

TestbedConfig TestbedConfig::TrecShaped() {
  TestbedConfig c;
  c.universe.num_topics = 50;   // TREC 2009 diversity task: 50 topics
  c.universe.min_intents = 3;   // 3..8 subtopics per topic
  c.universe.max_intents = 8;
  c.corpus.docs_per_intent = 30;
  c.corpus.proportional_cluster_size = true;
  c.corpus.distractor_docs_per_intent = 15;
  c.corpus.confusable_docs_per_topic = 25;
  c.corpus.background_docs = 4000;
  c.log.num_users = 3000;
  c.log.num_sessions = 40000;
  c.num_noise_queries = 400;
  return c;
}

Testbed::Testbed(const TestbedConfig& config)
    : universe_(synth::GenerateTopicUniverse(config.universe,
                                             config.num_noise_queries)),
      corpus_(corpus::GenerateSyntheticCorpus(config.corpus,
                                              universe_.topics)),
      log_result_(querylog::SyntheticLogGenerator(config.log)
                      .Generate(universe_.topics, universe_.noise_queries)) {
  // Session model: QFG then segmentation (Section 3).
  qfg_ = std::make_unique<querylog::QueryFlowGraph>(
      querylog::QueryFlowGraph::Build(log_result_.log,
                                      querylog::QueryFlowGraph::Options{}));
  sessions_ = querylog::SessionSegmenter(config.segmenter)
                  .Segment(log_result_.log, qfg_.get());

  // Recommendation model + Algorithm 1.
  recommender_.Train(log_result_.log, sessions_);
  detector_ = std::make_unique<recommend::AmbiguityDetector>(
      &recommender_, config.detector);

  // Retrieval stack.
  index_ = std::make_unique<index::InvertedIndex>(
      index::InvertedIndex::Build(corpus_.store, &analyzer_));
  searcher_ = std::make_unique<index::Searcher>(index_.get(), &analyzer_);
  snippets_ =
      std::make_unique<index::SnippetExtractor>(&analyzer_, index_.get());
}

}  // namespace pipeline
}  // namespace optselect
