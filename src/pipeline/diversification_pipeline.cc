#include "pipeline/diversification_pipeline.h"

#include <algorithm>

namespace optselect {
namespace pipeline {

std::vector<DocId> AssembleRanking(const DocId* docs, size_t n,
                                   const std::vector<size_t>& picks,
                                   size_t k,
                                   std::vector<char>* taken_scratch) {
  std::vector<DocId> ranking;
  ranking.reserve(std::min(k, n));
  std::vector<char> local;
  std::vector<char>& taken = taken_scratch != nullptr ? *taken_scratch : local;
  taken.assign(n, 0);
  for (size_t i : picks) {
    ranking.push_back(docs[i]);
    taken[i] = 1;
  }
  for (size_t i = 0; i < n && ranking.size() < k; ++i) {
    if (!taken[i]) ranking.push_back(docs[i]);
  }
  return ranking;
}

std::vector<DocId> AssembleRanking(const core::DiversificationInput& input,
                                   const std::vector<size_t>& picks,
                                   size_t k) {
  std::vector<DocId> ranking;
  ranking.reserve(std::min(k, input.candidates.size()));
  std::vector<char> taken(input.candidates.size(), 0);
  for (size_t i : picks) {
    ranking.push_back(input.candidates[i].doc);
    taken[i] = 1;
  }
  for (size_t i = 0; i < input.candidates.size() && ranking.size() < k;
       ++i) {
    if (!taken[i]) ranking.push_back(input.candidates[i].doc);
  }
  return ranking;
}

std::vector<core::Candidate> BuildCandidates(
    const index::ResultList& rq, const index::SnippetExtractor& snippets,
    const corpus::DocumentStore& documents,
    const std::vector<text::TermId>& query_terms) {
  std::vector<core::Candidate> candidates;
  if (rq.empty()) return candidates;
  double max_score = rq.front().score;
  for (const index::SearchResult& hit : rq) {
    max_score = std::max(max_score, hit.score);
  }
  candidates.reserve(rq.size());
  for (const index::SearchResult& hit : rq) {
    core::Candidate c;
    c.doc = hit.doc;
    c.relevance = max_score > 0 ? hit.score / max_score : 0.0;
    c.vector = snippets.ExtractVector(documents.Get(hit.doc), query_terms);
    candidates.push_back(std::move(c));
  }
  return candidates;
}

std::vector<DocId> DiversificationPipeline::BaselineRanking(
    std::string_view query, size_t k) const {
  std::vector<DocId> out;
  for (const index::SearchResult& r : searcher_->Search(query, k)) {
    out.push_back(r.doc);
  }
  return out;
}

DiversifiedResult DiversificationPipeline::Prepare(
    std::string_view query) const {
  DiversifiedResult result;
  result.input.query = std::string(query);

  // Step (b1): R_q.
  std::vector<text::TermId> query_terms = analyzer_->AnalyzeReadOnly(query);
  index::ResultList rq =
      searcher_->SearchTerms(query_terms, params_.num_candidates);
  if (rq.empty()) return result;

  result.input.candidates =
      BuildCandidates(rq, *snippets_, *store_, query_terms);

  // Step (a): Algorithm 1.
  result.specializations = detector_->Detect(query);
  if (!result.specializations.ambiguous()) return result;

  // Step (b2): R_q′ for each mined specialization.
  for (const recommend::Specialization& sp : result.specializations.items) {
    core::SpecializationProfile profile;
    profile.query = sp.query;
    profile.probability = sp.probability;
    std::vector<text::TermId> sp_terms = analyzer_->AnalyzeReadOnly(sp.query);
    // Conjunctive retrieval keeps R_q′ "highly relevant for each
    // specialization" (Section 4.1) — disjunctive matching would pad the
    // list with root-only documents once a specialization's cluster is
    // smaller than |R_q′|.
    index::ResultList rqp = searcher_->SearchTermsConjunctive(
        sp_terms, params_.results_per_specialization);
    profile.results.reserve(rqp.size());
    for (const index::SearchResult& hit : rqp) {
      profile.results.push_back(
          snippets_->ExtractVector(store_->Get(hit.doc), sp_terms));
    }
    result.input.specializations.push_back(std::move(profile));
  }

  // Utility matrix (shared by every algorithm).
  core::UtilityComputer computer(
      core::UtilityComputer::Options{params_.threshold_c});
  result.utilities = computer.Compute(result.input);
  return result;
}

DiversifiedResult DiversificationPipeline::Run(
    std::string_view query, const core::Diversifier& algorithm) const {
  DiversifiedResult result = Prepare(query);

  if (result.input.candidates.empty()) return result;

  if (!result.specializations.ambiguous()) {
    // Not ambiguous: the plain ranking stands (paper step (a)).
    for (const core::Candidate& c : result.input.candidates) {
      result.ranking.push_back(c.doc);
    }
    if (result.ranking.size() > params_.diversify.k) {
      result.ranking.resize(params_.diversify.k);
    }
    return result;
  }

  std::vector<size_t> picks =
      algorithm.Select(result.input, result.utilities, params_.diversify);
  result.diversified = true;
  // Paper evaluates full rankings (k = 1000 on |R_q| = 25k): pad the tail
  // with the remaining candidates in original rank order so metrics at
  // deep cutoffs are well-defined.
  result.ranking = AssembleRanking(result.input, picks, params_.diversify.k);
  return result;
}

}  // namespace pipeline
}  // namespace optselect
