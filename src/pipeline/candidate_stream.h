// Pull-based candidate iteration for the streaming cold path.
//
// BuildCandidates (diversification_pipeline.h) materializes the whole
// candidate block eagerly: every hit in R_q gets a document fetch and a
// snippet surrogate before selection even starts. CandidateStream
// exposes the same sequence lazily — relevance first (one division,
// computed exactly like BuildCandidates), the surrogate vector only on
// demand — so a scan driven by StreamingTopK's pruning bound pays the
// snippet extraction and the O(m·|R_q′|) cosine sums only for
// candidates that can still enter the top k.
//
// Everything here is FP-identical to the eager path by construction:
// the relevance normalizer is the same max-over-all-hits scan, the
// surrogate comes from the same SnippetExtractor call, and the utility
// row helper repeats UtilityComputer::Compute's exact per-cell
// arithmetic (RawUtility × precomputed reciprocal harmonic, then the
// threshold) — multiplication by the reciprocal, not division, because
// the two round differently and bit-identity is the contract.

#ifndef OPTSELECT_PIPELINE_CANDIDATE_STREAM_H_
#define OPTSELECT_PIPELINE_CANDIDATE_STREAM_H_

#include <cstddef>
#include <vector>

#include "corpus/document_store.h"
#include "index/searcher.h"
#include "index/snippet_extractor.h"
#include "text/term_vector.h"

namespace optselect {
namespace pipeline {

/// One specialization's reference data, viewed wherever it lives: a
/// StoredEntry's heap surrogates (results) or a mapped v4 entry's SoA
/// spans (spans) — either way, no ToProfiles copy. Exactly one of the
/// two pointers is set; both backings produce bit-identical utilities
/// because the span cosine (kernels::CosineAosSoa) matches
/// TermVector::Cosine on equal term/weight/norm bits.
struct SpecializationRef {
  double probability = 0.0;
  /// Surrogate vectors of R_q′ in rank order. Non-owned.
  const std::vector<text::TermVector>* results = nullptr;
  /// Mapped surrogate spans of R_q′ in rank order. Non-owned.
  const std::vector<text::TermVectorSpan>* spans = nullptr;

  size_t result_count() const {
    if (results != nullptr) return results->size();
    return spans != nullptr ? spans->size() : 0;
  }
};

/// The per-specialization reciprocal normalizers 1/H_{|R_q′|} exactly
/// as UtilityComputer::Compute precomputes them (0 for empty lists).
std::vector<double> InverseHarmonics(
    const std::vector<SpecializationRef>& specs);

/// Writes the thresholded utility row Ũ(d|R_q′_j) for one surrogate
/// into row[0..m): bit-identical to the corresponding row of
/// UtilityComputer::Compute for the same inputs.
void ComputeUtilityRow(const text::TermVector& doc,
                       const std::vector<SpecializationRef>& specs,
                       const std::vector<double>& inv_harmonic,
                       double threshold_c, double* row);

/// Lazy iterator over a retrieval result. All pointers are non-owned
/// and must outlive the stream; the stream itself is cheap to
/// construct per request (one max-scan over the hit scores).
class CandidateStream {
 public:
  CandidateStream(const index::ResultList* rq,
                  const index::SnippetExtractor* snippets,
                  const corpus::DocumentStore* documents,
                  const std::vector<text::TermId>* query_terms);

  size_t size() const { return rq_->size(); }
  bool Done() const { return pos_ >= rq_->size(); }
  /// Index of the current candidate in R_q rank order.
  size_t position() const { return pos_; }

  /// Normalized relevance P(d|q) of the current candidate — no
  /// document fetch, no snippet work. Same value BuildCandidates
  /// assigns: score / max-over-all-hits (0 when the max is 0).
  double relevance() const {
    double score = (*rq_)[pos_].score;
    return max_score_ > 0 ? score / max_score_ : 0.0;
  }

  DocId doc() const { return (*rq_)[pos_].doc; }

  /// Materializes the current candidate's snippet surrogate (the
  /// expensive step pruning exists to skip). Valid until the next
  /// Materialize call.
  const text::TermVector& Materialize();

  /// Advances past the current candidate, materialized or not.
  void Advance() { ++pos_; }

  /// Candidates whose surrogate was actually extracted — the scan's
  /// cost counter (compare against size() for the prune rate).
  size_t materialized() const { return materialized_; }

 private:
  const index::ResultList* rq_;
  const index::SnippetExtractor* snippets_;
  const corpus::DocumentStore* documents_;
  const std::vector<text::TermId>* query_terms_;
  double max_score_ = 0.0;
  size_t pos_ = 0;
  size_t materialized_ = 0;
  text::TermVector current_;
};

}  // namespace pipeline
}  // namespace optselect

#endif  // OPTSELECT_PIPELINE_CANDIDATE_STREAM_H_
