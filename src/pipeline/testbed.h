// End-to-end synthetic testbed assembly.
//
// Wires together every substrate exactly the way the paper's experimental
// setup does (Section 5 + Appendices B/C):
//
//   planted topic universe ──┬─> synthetic corpus + TREC topics + qrels
//                            └─> synthetic query log (AOL- or MSN-like)
//   query log ─> query-flow graph ─> logical sessions ─> recommender
//   recommender + popularity ─> ambiguity detector (Algorithm 1)
//   corpus ─> analyzer ─> inverted index ─> DPH searcher ─> snippets
//
// A Testbed owns all of these and hands out the pieces the experiments
// need.

#ifndef OPTSELECT_PIPELINE_TESTBED_H_
#define OPTSELECT_PIPELINE_TESTBED_H_

#include <memory>
#include <vector>

#include "corpus/synthetic_corpus.h"
#include "index/inverted_index.h"
#include "index/searcher.h"
#include "index/snippet_extractor.h"
#include "querylog/query_flow_graph.h"
#include "querylog/session_segmenter.h"
#include "querylog/synthetic_log.h"
#include "recommend/ambiguity_detector.h"
#include "recommend/shortcuts_recommender.h"
#include "synth/topic_universe.h"
#include "text/analyzer.h"

namespace optselect {
namespace pipeline {

/// Testbed construction knobs; forwards to the component configs.
struct TestbedConfig {
  synth::TopicUniverseConfig universe;
  corpus::SyntheticCorpusConfig corpus;
  querylog::SyntheticLogConfig log;
  size_t num_noise_queries = 400;
  recommend::AmbiguityDetector::Options detector;
  querylog::SessionSegmenter::Options segmenter;

  /// Small preset that builds in well under a second (unit tests).
  static TestbedConfig Small();
  /// The TREC-shaped preset used by the Table 3 experiment.
  static TestbedConfig TrecShaped();
};

/// Owns the fully wired pipeline.
class Testbed {
 public:
  /// Builds everything; deterministic in the config seeds.
  explicit Testbed(const TestbedConfig& config);

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  const synth::TopicUniverse& universe() const { return universe_; }
  const corpus::SyntheticCorpus& corpus() const { return corpus_; }
  const querylog::SyntheticLogResult& log_result() const {
    return log_result_;
  }
  const querylog::QueryFlowGraph& flow_graph() const { return *qfg_; }
  const std::vector<querylog::Session>& sessions() const { return sessions_; }
  const recommend::ShortcutsRecommender& recommender() const {
    return recommender_;
  }
  const recommend::AmbiguityDetector& detector() const { return *detector_; }
  text::Analyzer& analyzer() { return analyzer_; }
  const text::Analyzer& analyzer() const { return analyzer_; }
  const index::InvertedIndex& index() const { return *index_; }
  const index::Searcher& searcher() const { return *searcher_; }
  const index::SnippetExtractor& snippets() const { return *snippets_; }

 private:
  synth::TopicUniverse universe_;
  corpus::SyntheticCorpus corpus_;
  querylog::SyntheticLogResult log_result_;
  std::unique_ptr<querylog::QueryFlowGraph> qfg_;
  std::vector<querylog::Session> sessions_;
  recommend::ShortcutsRecommender recommender_;
  std::unique_ptr<recommend::AmbiguityDetector> detector_;
  text::Analyzer analyzer_;
  std::unique_ptr<index::InvertedIndex> index_;
  std::unique_ptr<index::Searcher> searcher_;
  std::unique_ptr<index::SnippetExtractor> snippets_;
};

}  // namespace pipeline
}  // namespace optselect

#endif  // OPTSELECT_PIPELINE_TESTBED_H_
