// Query-time diversification flow (paper Section 3, steps (a)–(c)):
//   (a) check whether q is ambiguous/faceted (Algorithm 1),
//   (b) retrieve R_q and, for each mined specialization q′, the small
//       highly-relevant set R_q′ (|R_q′| ≪ |R_q|, Section 4.1),
//   (c) re-rank R_q so the final k results maximize user satisfaction.

#ifndef OPTSELECT_PIPELINE_DIVERSIFICATION_PIPELINE_H_
#define OPTSELECT_PIPELINE_DIVERSIFICATION_PIPELINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/candidate.h"
#include "core/diversifier.h"
#include "core/utility.h"
#include "pipeline/testbed.h"

namespace optselect {
namespace pipeline {

/// Pipeline parameters (paper Section 5 defaults).
struct PipelineParams {
  /// |R_q|: candidates retrieved for the ambiguous query.
  size_t num_candidates = 200;
  /// |R_q′|: reference results per specialization (paper: 20).
  size_t results_per_specialization = 20;
  /// Utility threshold c.
  double threshold_c = 0.0;
  /// Selection size and λ.
  core::DiversifyParams diversify;
};

/// Output of one diversified query.
struct DiversifiedResult {
  /// True when Algorithm 1 declared the query ambiguous and
  /// diversification ran; false ⇒ `ranking` is the plain DPH ranking.
  bool diversified = false;
  /// Final document ranking (ids into the document store).
  std::vector<DocId> ranking;
  /// The mined specialization set used (empty when !diversified).
  recommend::SpecializationSet specializations;
  /// The problem instance (kept for inspection; candidates in R_q order).
  core::DiversificationInput input;
  /// Ũ(d|R_q′) matrix.
  core::UtilityMatrix utilities;
};

/// Builds the output SERP from a selection: the picked candidates in
/// pick order, padded with the remaining candidates in original rank
/// order up to `k` (deep metric cutoffs need full-length rankings).
std::vector<DocId> AssembleRanking(const core::DiversificationInput& input,
                                   const std::vector<size_t>& picks,
                                   size_t k);

/// Same pick-then-pad rule over a flat doc-id block (a compiled
/// QueryPlan's candidate list). `taken_scratch`, when given, supplies
/// the marking buffer so hot-path callers stay allocation-free; both
/// overloads produce identical rankings for identical candidates.
std::vector<DocId> AssembleRanking(const DocId* docs, size_t n,
                                   const std::vector<size_t>& picks,
                                   size_t k,
                                   std::vector<char>* taken_scratch);

/// Materializes the candidate block R_q from a retrieval result:
/// normalized relevance P(d|q) (score / max score) plus the snippet
/// surrogate vectors. The single definition shared by the offline
/// pipeline, the store-time plan compiler, and the serving fallback —
/// which is what makes their candidates (and therefore their rankings)
/// bit-identical by construction rather than by manual sync.
std::vector<core::Candidate> BuildCandidates(
    const index::ResultList& rq, const index::SnippetExtractor& snippets,
    const corpus::DocumentStore& documents,
    const std::vector<text::TermId>& query_terms);

/// Runs retrieval + mining + diversification. The components are not
/// owned and must outlive the pipeline; any custom wiring (e.g. a
/// detector trained on a log split) can be passed directly.
class DiversificationPipeline {
 public:
  DiversificationPipeline(const index::Searcher* searcher,
                          const index::SnippetExtractor* snippets,
                          const text::Analyzer* analyzer,
                          const corpus::DocumentStore* store,
                          const recommend::AmbiguityDetector* detector,
                          PipelineParams params)
      : searcher_(searcher),
        snippets_(snippets),
        analyzer_(analyzer),
        store_(store),
        detector_(detector),
        params_(params) {}

  /// Convenience wiring from a fully built testbed.
  DiversificationPipeline(const Testbed* testbed, PipelineParams params)
      : DiversificationPipeline(&testbed->searcher(), &testbed->snippets(),
                                &testbed->analyzer(),
                                &testbed->corpus().store,
                                &testbed->detector(), params) {}

  /// Builds the problem instance for `query` (steps (a) and (b)).
  /// If the query is not ambiguous the instance has no specializations.
  DiversifiedResult Prepare(std::string_view query) const;

  /// Full run: Prepare + Select with the given algorithm (step (c)).
  DiversifiedResult Run(std::string_view query,
                        const core::Diversifier& algorithm) const;

  /// Plain DPH baseline ranking (no diversification).
  std::vector<DocId> BaselineRanking(std::string_view query,
                                     size_t k) const;

  const PipelineParams& params() const { return params_; }

 private:
  const index::Searcher* searcher_;
  const index::SnippetExtractor* snippets_;
  const text::Analyzer* analyzer_;
  const corpus::DocumentStore* store_;
  const recommend::AmbiguityDetector* detector_;
  PipelineParams params_;
};

}  // namespace pipeline
}  // namespace optselect

#endif  // OPTSELECT_PIPELINE_DIVERSIFICATION_PIPELINE_H_
