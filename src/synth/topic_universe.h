// Generator for the planted topic universe shared by all synthetic data.

#ifndef OPTSELECT_SYNTH_TOPIC_UNIVERSE_H_
#define OPTSELECT_SYNTH_TOPIC_UNIVERSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "synth/topic_spec.h"
#include "util/rng.h"

namespace optselect {
namespace synth {

/// Configuration of the planted universe.
struct TopicUniverseConfig {
  uint64_t seed = 17;
  /// Number of ambiguous topics (the TREC 2009 diversity task has 50).
  size_t num_topics = 50;
  /// Range of specializations per topic (TREC subtopics: 3 to 8). A wider
  /// range (up to 28) is used by the Figure 1 experiment.
  size_t min_intents = 3;
  size_t max_intents = 8;
  /// Zipf skew of the per-topic specialization popularity distribution.
  double intent_zipf_skew = 1.0;
  /// Zipf skew across topics (topic weights).
  double topic_zipf_skew = 1.0;
  /// Content words planted per sub-intent.
  size_t content_words_per_intent = 6;
};

/// The generated universe: topics plus a bank of unambiguous noise queries.
struct TopicUniverse {
  std::vector<TopicSpec> topics;
  /// One-intent queries used as log background traffic.
  std::vector<std::string> noise_queries;
};

/// Builds a deterministic universe from the config.
///
/// Roots use distinct base words; specializations are "root modifier"
/// two-word queries; content words are drawn from a disjoint slice so each
/// sub-intent has a separable language model.
TopicUniverse GenerateTopicUniverse(const TopicUniverseConfig& config,
                                    size_t num_noise_queries = 0);

}  // namespace synth
}  // namespace optselect

#endif  // OPTSELECT_SYNTH_TOPIC_UNIVERSE_H_
