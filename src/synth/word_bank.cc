#include "synth/word_bank.h"

namespace optselect {
namespace synth {
namespace {

// 192 root-ish words followed by 128 modifier-ish words. Chosen to survive
// stemming distinctly (no two map to the same Porter stem).
constexpr std::string_view kWords[] = {
    // --- roots (entities, 0..191) ---
    "apple",    "jaguar",   "leopard",  "python",   "mercury",  "phoenix",
    "delta",    "orion",    "atlas",    "titan",    "nova",     "vega",
    "falcon",   "raven",    "cobra",    "viper",    "lynx",     "puma",
    "bison",    "condor",   "heron",    "osprey",   "magpie",   "plover",
    "walnut",   "cedar",    "maple",    "birch",    "aspen",    "willow",
    "juniper",  "sequoia",  "lotus",    "orchid",   "tulip",    "dahlia",
    "quartz",   "basalt",   "granite",  "marble",   "topaz",    "garnet",
    "cobalt",   "nickel",   "radium",   "argon",    "xenon",    "krypton",
    "fjord",    "lagoon",   "mesa",     "tundra",   "savanna",  "glacier",
    "canyon",   "plateau",  "archipelago",          "isthmus",  "strait",
    "harbor",   "anchor",   "compass",  "sextant",  "rudder",   "keel",
    "galley",   "frigate",  "sloop",    "schooner", "clipper",  "barge",
    "piston",   "turbine",  "dynamo",   "gasket",   "flywheel", "camshaft",
    "sprocket", "gearbox",  "throttle", "manifold", "radiator", "chassis",
    "violin",   "cello",    "oboe",     "bassoon",  "trumpet",  "trombone",
    "marimba",  "zither",   "banjo",    "mandolin", "ocarina",  "bagpipe",
    "saffron",  "paprika",  "turmeric", "coriander","cardamom", "nutmeg",
    "ginger",   "fennel",   "anise",    "caraway",  "sorrel",   "tarragon",
    "copper",   "bronze",   "pewter",   "brass",    "zinc",     "chrome",
    "velvet",   "satin",    "linen",    "denim",    "tweed",    "flannel",
    "comet",    "quasar",   "pulsar",   "nebula",   "meteor",   "eclipse",
    "zenith",   "nadir",    "apogee",   "perigee",  "solstice", "equinox",
    "badger",   "otter",    "weasel",   "marten",   "stoat",    "ferret",
    "gopher",   "marmot",   "beaver",   "muskrat",  "vole",     "shrew",
    "parka",    "poncho",   "tunic",    "kimono",   "sarong",   "cloak",
    "goblet",   "chalice",  "flagon",   "tankard",  "beaker",   "carafe",
    "bugle",    "fanfare",  "anthem",   "ballad",   "sonata",   "rondo",
    "wharf",    "jetty",    "quay",     "marina",   "dock",     "berth",
    "sickle",   "scythe",   "plough",   "harrow",   "tiller",   "winch",
    "ledger",   "invoice",  "voucher",  "receipt",  "docket",   "manifest",
    "summit",   "ridge",    "gorge",    "ravine",   "bluff",    "knoll",
    "ember",    "cinder",   "beacon",   "lantern",  "torch",    "flare",
    // --- modifiers (192..319) ---
    "vintage",  "digital",  "portable", "wireless", "electric", "manual",
    "classic",  "modern",   "compact",  "deluxe",   "budget",   "premium",
    "northern", "southern", "eastern",  "western",  "coastal",  "alpine",
    "crimson",  "amber",    "indigo",   "scarlet",  "emerald",  "sapphire",
    "rapid",    "silent",   "hollow",   "frozen",   "molten",   "gilded",
    "rustic",   "urban",    "rural",    "tropical", "arctic",   "desert",
    "royal",    "imperial", "federal",  "municipal","provincial",
    "organic",  "synthetic","hybrid",   "solar",    "lunar",    "stellar",
    "antique",  "baroque",  "gothic",   "colonial", "nomadic",  "pastoral",
    "crystal",  "ceramic",  "wooden",   "leather",  "woolen",   "silken",
    "spicy",    "bitter",   "mellow",   "tangy",    "savory",   "zesty",
    "swift",    "sturdy",   "nimble",   "rugged",   "sleek",    "slender",
    "coastline","heritage", "festival", "museum",   "gallery",  "archive",
    "recipe",   "tutorial", "manual2",  "review",   "catalog",  "almanac",
    "voyage",   "expedition",           "pilgrimage",           "trek",
    "safari",   "cruise",   "repair",   "rental",   "auction",  "bazaar",
    "harvest",  "orchard",  "vineyard", "meadow",   "pasture",  "grove",
    "castle",   "fortress", "citadel",  "palace",   "abbey",    "manor",
    "bridge",   "viaduct",  "aqueduct", "causeway", "tunnel",   "culvert",
    "lodge",    "hostel",   "tavern",   "bistro",   "cantina",  "brasserie",
    "workshop", "foundry",  "smithy",   "atelier",  "studio",   "loft",
    "carnival", "regatta",  "tournament",           "derby",    "gymkhana",
};

constexpr size_t kNumWords = std::size(kWords);
constexpr size_t kModifierStart = 192;

}  // namespace

size_t WordBank::size() { return kNumWords; }

std::string WordBank::Word(size_t i) {
  std::string w(kWords[i % kNumWords]);
  if (i >= kNumWords) {
    w += std::to_string(i / kNumWords);
  }
  return w;
}

std::string WordBank::ModifierWord(size_t i) {
  constexpr size_t kNumModifiers = kNumWords - kModifierStart;
  size_t slot = kModifierStart + (i % kNumModifiers);
  std::string w(kWords[slot]);
  if (i >= kNumModifiers) {
    w += std::to_string(i / kNumModifiers);
  }
  return w;
}

std::string WordBank::ContentWord(size_t i) {
  std::string w(kWords[i % kNumWords]);
  w += 'c';
  if (i >= kNumWords) {
    w += std::to_string(i / kNumWords);
  }
  return w;
}

}  // namespace synth
}  // namespace optselect
