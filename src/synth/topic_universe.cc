#include "synth/topic_universe.h"

#include <algorithm>

#include "synth/word_bank.h"
#include "util/zipf.h"

namespace optselect {
namespace synth {

TopicUniverse GenerateTopicUniverse(const TopicUniverseConfig& config,
                                    size_t num_noise_queries) {
  util::Rng rng(config.seed);
  TopicUniverse universe;
  universe.topics.reserve(config.num_topics);

  const util::ZipfSampler topic_weights(
      std::max<size_t>(config.num_topics, 1), config.topic_zipf_skew);

  size_t modifier_cursor = 0;
  size_t content_cursor = 0;

  for (size_t t = 0; t < config.num_topics; ++t) {
    TopicSpec topic;
    topic.root_query = WordBank::RootWord(t);
    topic.weight = topic_weights.Pmf(t);

    size_t n_intents = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(config.min_intents),
        static_cast<int64_t>(config.max_intents)));
    const util::ZipfSampler intent_dist(n_intents, config.intent_zipf_skew);

    topic.intents.reserve(n_intents);
    for (size_t s = 0; s < n_intents; ++s) {
      SubIntent intent;
      intent.query =
          topic.root_query + " " + WordBank::ModifierWord(modifier_cursor++);
      intent.probability = intent_dist.Pmf(s);
      intent.content_words.reserve(config.content_words_per_intent);
      for (size_t w = 0; w < config.content_words_per_intent; ++w) {
        // Content words live in their own suffix namespace, so they can
        // never collide with root or modifier tokens.
        intent.content_words.push_back(
            WordBank::ContentWord(7 * content_cursor + w));
      }
      ++content_cursor;
      topic.intents.push_back(std::move(intent));
    }
    universe.topics.push_back(std::move(topic));
  }

  universe.noise_queries.reserve(num_noise_queries);
  for (size_t i = 0; i < num_noise_queries; ++i) {
    // Two-word queries over a slice of the bank disjoint from topic roots
    // (offset by a large constant).
    std::string q = WordBank::Word(1000 + 2 * i) + " " +
                    WordBank::ModifierWord(500 + i);
    universe.noise_queries.push_back(std::move(q));
  }
  return universe;
}

}  // namespace synth
}  // namespace optselect
