// Ground-truth description of an ambiguous query topic.
//
// A topic is the planted analogue of the paper's "leopard" example: a root
// query with several specializations ("leopard mac os x", "leopard tank",
// "leopard pictures"), each with a popularity probability. The synthetic
// query log, the synthetic corpus, and the TREC-style topic set are all
// generated from the same TopicSpec list, which is what ties retrieval,
// mining, and evaluation together.

#ifndef OPTSELECT_SYNTH_TOPIC_SPEC_H_
#define OPTSELECT_SYNTH_TOPIC_SPEC_H_

#include <string>
#include <vector>

namespace optselect {
namespace synth {

/// One planted specialization (sub-intent) of an ambiguous root query.
struct SubIntent {
  /// Specialization query string, e.g. "leopard tank".
  std::string query;
  /// Ground-truth probability P(q′|q); the per-topic vector sums to 1.
  double probability = 0.0;
  /// Content words characterizing documents relevant to this sub-intent
  /// (beyond the query words themselves).
  std::vector<std::string> content_words;
};

/// One ambiguous/faceted topic.
struct TopicSpec {
  /// Root (ambiguous) query string, e.g. "leopard".
  std::string root_query;
  /// Ground-truth popularity weight of the root topic itself.
  double weight = 1.0;
  /// The planted specializations, most popular first.
  std::vector<SubIntent> intents;
};

}  // namespace synth
}  // namespace optselect

#endif  // OPTSELECT_SYNTH_TOPIC_SPEC_H_
