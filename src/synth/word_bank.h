// Deterministic English-like word inventory for synthetic data.
//
// Synthetic queries and documents are composed from this bank so that the
// whole pipeline (tokenizer → stemmer → index → snippets) operates on
// plausible text rather than opaque ids.

#ifndef OPTSELECT_SYNTH_WORD_BANK_H_
#define OPTSELECT_SYNTH_WORD_BANK_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace optselect {
namespace synth {

/// Fixed vocabulary of lowercase words. Index-stable across runs.
class WordBank {
 public:
  /// Number of distinct base words.
  static size_t size();

  /// The i-th base word (i is taken modulo size(), with a numeric suffix
  /// appended for wrapped indices so words stay distinct).
  static std::string Word(size_t i);

  /// A short noun-like word for topic roots ("entity" words).
  static std::string RootWord(size_t i) { return Word(i); }

  /// A modifier word for specializations, drawn from a disjoint slice of
  /// the bank so specialization tokens never collide with root tokens.
  static std::string ModifierWord(size_t i);

  /// A content word for document bodies. Lives in its own suffix
  /// namespace ("...c", "...c1", ...) so a content word can never equal
  /// any root or modifier token regardless of wrapping.
  static std::string ContentWord(size_t i);
};

}  // namespace synth
}  // namespace optselect

#endif  // OPTSELECT_SYNTH_WORD_BANK_H_
