// Web document model.

#ifndef OPTSELECT_CORPUS_DOCUMENT_H_
#define OPTSELECT_CORPUS_DOCUMENT_H_

#include <string>

#include "util/types.h"

namespace optselect {
namespace corpus {

/// One crawled document: the unit stored, indexed, and retrieved.
struct Document {
  DocId id = kInvalidDocId;
  std::string url;
  std::string title;
  std::string body;
};

}  // namespace corpus
}  // namespace optselect

#endif  // OPTSELECT_CORPUS_DOCUMENT_H_
