#include "corpus/document_store.h"

namespace optselect {
namespace corpus {

DocId DocumentStore::Add(std::string url, std::string title,
                         std::string body) {
  Document doc;
  doc.id = static_cast<DocId>(docs_.size());
  doc.url = std::move(url);
  doc.title = std::move(title);
  doc.body = std::move(body);
  docs_.push_back(std::move(doc));
  return docs_.back().id;
}

}  // namespace corpus
}  // namespace optselect
