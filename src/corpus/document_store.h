// In-memory append-only document collection (the stand-in for ClueWeb-B).

#ifndef OPTSELECT_CORPUS_DOCUMENT_STORE_H_
#define OPTSELECT_CORPUS_DOCUMENT_STORE_H_

#include <string>
#include <vector>

#include "corpus/document.h"
#include "util/status.h"

namespace optselect {
namespace corpus {

/// Owns documents; ids are dense [0, size).
class DocumentStore {
 public:
  /// Adds a document; its id is assigned and returned.
  DocId Add(std::string url, std::string title, std::string body);

  const Document& Get(DocId id) const { return docs_[id]; }
  bool Contains(DocId id) const { return id < docs_.size(); }

  size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }

  std::vector<Document>::const_iterator begin() const { return docs_.begin(); }
  std::vector<Document>::const_iterator end() const { return docs_.end(); }

 private:
  std::vector<Document> docs_;
};

}  // namespace corpus
}  // namespace optselect

#endif  // OPTSELECT_CORPUS_DOCUMENT_STORE_H_
