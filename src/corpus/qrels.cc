#include "corpus/qrels.h"

#include <algorithm>

namespace optselect {
namespace corpus {

void Qrels::Add(TopicId topic, uint32_t subtopic, DocId doc, int grade) {
  auto& m = judgments_[Key(topic, subtopic)];
  auto [it, inserted] = m.insert_or_assign(doc, grade);
  (void)it;
  if (inserted) ++total_;
  auto& cnt = subtopic_count_[topic];
  cnt = std::max(cnt, subtopic + 1);
}

int Qrels::Grade(TopicId topic, uint32_t subtopic, DocId doc) const {
  auto it = judgments_.find(Key(topic, subtopic));
  if (it == judgments_.end()) return 0;
  auto jt = it->second.find(doc);
  return jt == it->second.end() ? 0 : jt->second;
}

bool Qrels::RelevantToAny(TopicId topic, uint32_t num_subtopics,
                          DocId doc) const {
  for (uint32_t s = 0; s < num_subtopics; ++s) {
    if (Relevant(topic, s, doc)) return true;
  }
  return false;
}

size_t Qrels::NumRelevant(TopicId topic, uint32_t subtopic) const {
  auto it = judgments_.find(Key(topic, subtopic));
  if (it == judgments_.end()) return 0;
  size_t n = 0;
  for (const auto& [doc, grade] : it->second) {
    if (grade > 0) ++n;
  }
  return n;
}

uint32_t Qrels::NumSubtopics(TopicId topic) const {
  auto it = subtopic_count_.find(topic);
  return it == subtopic_count_.end() ? 0 : it->second;
}

std::vector<std::pair<DocId, int>> Qrels::Judgments(TopicId topic,
                                                    uint32_t subtopic) const {
  std::vector<std::pair<DocId, int>> out;
  auto it = judgments_.find(Key(topic, subtopic));
  if (it == judgments_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

}  // namespace corpus
}  // namespace optselect
