// Synthetic ClueWeb-B stand-in.
//
// For every planted sub-intent (see synth::TopicSpec) the generator emits
// a cluster of relevant documents whose language model mixes: the root
// query word, the sub-intent's modifier word, the sub-intent's content
// words, and background vocabulary. It additionally emits "confusable"
// documents that mention a root word without belonging to any sub-intent
// (rank pollution for the baseline, judged non-relevant) and pure
// background documents.
//
// The subtopic-level qrels are derived directly from the planting, which
// is exactly the information TREC assessors supply for the real testbed.

#ifndef OPTSELECT_CORPUS_SYNTHETIC_CORPUS_H_
#define OPTSELECT_CORPUS_SYNTHETIC_CORPUS_H_

#include <cstdint>
#include <vector>

#include "corpus/document_store.h"
#include "corpus/qrels.h"
#include "corpus/trec_topics.h"
#include "synth/topic_spec.h"

namespace optselect {
namespace corpus {

/// Generator knobs.
struct SyntheticCorpusConfig {
  uint64_t seed = 7;
  /// Relevant documents planted per sub-intent.
  size_t docs_per_intent = 30;
  /// When true, cluster sizes scale with sub-intent popularity
  /// (≈ docs_per_intent · m · P(q′|q), at least min_docs_per_intent),
  /// mirroring the web: popular interpretations have more pages. This
  /// skews the relevance-only baseline toward dominant intents — the
  /// redundancy diversification is meant to fix.
  bool proportional_cluster_size = false;
  /// Lower bound per cluster when proportional_cluster_size is on.
  size_t min_docs_per_intent = 3;
  /// Fraction of a planted cluster judged highly relevant (grade 2).
  double highly_relevant_fraction = 0.2;
  /// Confusable documents per topic (contain the root word only).
  size_t confusable_docs_per_topic = 20;
  /// Near-topic distractors per sub-intent: pages that match the
  /// specialization query textually (modifier-dense, occasional root
  /// mention) but are about something else and judged non-relevant.
  /// They pollute R_q′ reference lists and carry high utility with low
  /// relevance — the noise that separates utility-only selection
  /// (IASelect) from relevance-mixed selection (OptSelect/xQuAD).
  size_t distractor_docs_per_intent = 0;
  /// Pure background documents.
  size_t background_docs = 3000;
  /// Mean body length in words.
  size_t body_words_mean = 90;
  /// +- spread of body length.
  size_t body_words_spread = 40;
  /// Background vocabulary size (word-bank indices offset away from
  /// topical words).
  size_t background_vocab = 2500;
  /// Probability that a body word of a relevant doc is drawn from the
  /// sub-intent's language model (vs background).
  double intent_word_fraction = 0.45;
};

/// Generated testbed: collection + topic set + subtopic qrels.
struct SyntheticCorpus {
  DocumentStore store;
  TopicSet topics;
  Qrels qrels;
};

/// Builds the testbed for the given planted topics. Topic ids are assigned
/// 1..N in order (TREC numbering starts at 1).
SyntheticCorpus GenerateSyntheticCorpus(
    const SyntheticCorpusConfig& config,
    const std::vector<synth::TopicSpec>& specs);

}  // namespace corpus
}  // namespace optselect

#endif  // OPTSELECT_CORPUS_SYNTHETIC_CORPUS_H_
