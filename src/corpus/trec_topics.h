// TREC 2009 Web track Diversity Task topic model: "Each topic includes
// from 3 to 8 sub-topics manually identified by TREC assessors, with
// relevance judgements provided at subtopic level" (Appendix B).

#ifndef OPTSELECT_CORPUS_TREC_TOPICS_H_
#define OPTSELECT_CORPUS_TREC_TOPICS_H_

#include <string>
#include <vector>

#include "util/types.h"

namespace optselect {
namespace corpus {

/// One assessor-identified subtopic of a faceted topic.
struct Subtopic {
  /// Natural-language description (e.g. "Find the TIME magazine photo
  /// essay 'Barack Obama's Family Tree'").
  std::string description;
  /// The specialization query expressing the subtopic (the synthetic
  /// testbed aligns it with a planted log specialization).
  std::string query;
  /// Ground-truth popularity of this subtopic (sums to 1 within a topic).
  double probability = 0.0;
};

/// One diversity-task topic.
struct TrecTopic {
  TopicId id = 0;
  /// The ambiguous/faceted query submitted to the engine.
  std::string query;
  std::vector<Subtopic> subtopics;
};

/// The 50-topic task set.
class TopicSet {
 public:
  void Add(TrecTopic topic) { topics_.push_back(std::move(topic)); }

  size_t size() const { return topics_.size(); }
  const TrecTopic& topic(size_t i) const { return topics_[i]; }
  const std::vector<TrecTopic>& topics() const { return topics_; }

  /// Finds a topic by its query string; nullptr if absent.
  const TrecTopic* FindByQuery(const std::string& query) const;

 private:
  std::vector<TrecTopic> topics_;
};

}  // namespace corpus
}  // namespace optselect

#endif  // OPTSELECT_CORPUS_TREC_TOPICS_H_
