#include "corpus/trec_topics.h"

namespace optselect {
namespace corpus {

const TrecTopic* TopicSet::FindByQuery(const std::string& query) const {
  for (const TrecTopic& t : topics_) {
    if (t.query == query) return &t;
  }
  return nullptr;
}

}  // namespace corpus
}  // namespace optselect
