#include "corpus/synthetic_corpus.h"

#include <algorithm>
#include <string>

#include "synth/word_bank.h"
#include "util/rng.h"
#include "util/strings.h"

namespace optselect {
namespace corpus {
namespace {

// Appends `word` plus a space to `body`.
void Put(std::string* body, const std::string& word) {
  body->append(word);
  body->push_back(' ');
}

std::string BackgroundWord(util::Rng* rng, size_t background_vocab) {
  // Offset 5000 keeps the background slice disjoint from topical slices.
  return synth::WordBank::Word(5000 + rng->Uniform(background_vocab));
}

size_t BodyLength(util::Rng* rng, const SyntheticCorpusConfig& cfg) {
  int64_t spread = static_cast<int64_t>(cfg.body_words_spread);
  int64_t len = static_cast<int64_t>(cfg.body_words_mean) +
                rng->UniformInt(-spread, spread);
  return static_cast<size_t>(std::max<int64_t>(len, 12));
}

}  // namespace

SyntheticCorpus GenerateSyntheticCorpus(
    const SyntheticCorpusConfig& config,
    const std::vector<synth::TopicSpec>& specs) {
  util::Rng rng(config.seed);
  SyntheticCorpus out;

  for (size_t t = 0; t < specs.size(); ++t) {
    const synth::TopicSpec& spec = specs[t];
    const TopicId topic_id = static_cast<TopicId>(t + 1);

    TrecTopic topic;
    topic.id = topic_id;
    topic.query = spec.root_query;

    std::vector<std::string> root_tokens =
        util::SplitWhitespace(spec.root_query);

    for (size_t s = 0; s < spec.intents.size(); ++s) {
      const synth::SubIntent& intent = spec.intents[s];
      Subtopic sub;
      sub.query = intent.query;
      sub.probability = intent.probability;
      sub.description = "Documents about \"" + intent.query + "\"";
      topic.subtopics.push_back(sub);

      std::vector<std::string> intent_tokens =
          util::SplitWhitespace(intent.query);

      // Pages of popular interpretations use the shared root term more
      // (think "apple" on Apple-Inc pages vs orchard pages); the rate
      // scales with m·P(q′|q), clamped to keep every cluster retrievable.
      double root_boost = static_cast<double>(spec.intents.size()) *
                          intent.probability;
      if (root_boost < 1.0) root_boost = 1.0;
      if (root_boost > 1.6) root_boost = 1.6;
      const double query_token_rate = 0.15 * root_boost;

      // Plant the relevant cluster for this sub-intent.
      size_t cluster_size = config.docs_per_intent;
      if (config.proportional_cluster_size) {
        cluster_size = std::max<size_t>(
            config.min_docs_per_intent,
            static_cast<size_t>(static_cast<double>(config.docs_per_intent) *
                                    static_cast<double>(spec.intents.size()) *
                                    intent.probability +
                                0.5));
      }
      size_t n_highly = static_cast<size_t>(
          config.highly_relevant_fraction *
          static_cast<double>(cluster_size));
      for (size_t d = 0; d < cluster_size; ++d) {
        std::string body;
        size_t len = BodyLength(&rng, config);
        body.reserve(len * 8);
        // Title: the specialization query itself plus a content word.
        std::string title = intent.query;
        if (!intent.content_words.empty()) {
          title += " " + intent.content_words[d % intent.content_words.size()];
        }
        for (size_t w = 0; w < len; ++w) {
          if (rng.Bernoulli(config.intent_word_fraction)) {
            // Topical word: mostly the intent's content words; query
            // tokens appear but stay rare so snippet vectors are
            // dominated by intent-specific vocabulary, not by the root
            // word every cluster of the topic shares.
            double which = rng.UniformDouble();
            if (which < query_token_rate && !intent_tokens.empty()) {
              Put(&body, intent_tokens[rng.Uniform(intent_tokens.size())]);
            } else if (!intent.content_words.empty()) {
              Put(&body,
                  intent.content_words[rng.Uniform(
                      intent.content_words.size())]);
            }
          } else {
            Put(&body, BackgroundWord(&rng, config.background_vocab));
          }
        }
        std::string url = util::StrFormat(
            "http://synth.example/t%u/s%zu/d%zu", topic_id, s, d);
        DocId doc = out.store.Add(std::move(url), title, body);
        int grade = d < n_highly ? 2 : 1;
        out.qrels.Add(topic_id, static_cast<uint32_t>(s), doc, grade);
      }
    }

    // Near-topic distractors: one small anti-cluster per sub-intent,
    // textually close to the specialization query (modifier-dense, rare
    // root mention) yet judged non-relevant. Their own content slice
    // makes them mutually similar, so they enter R_q′ and carry high
    // utility without relevance.
    for (size_t s = 0; s < spec.intents.size(); ++s) {
      const synth::SubIntent& intent = spec.intents[s];
      std::vector<std::string> intent_tokens =
          util::SplitWhitespace(intent.query);
      std::vector<std::string> noise_words;
      for (size_t w = 0; w < 6; ++w) {
        noise_words.push_back(synth::WordBank::Word(
            40000 + 11 * (topic_id * 31 + s) + w));
      }
      for (size_t d = 0; d < config.distractor_docs_per_intent; ++d) {
        std::string body;
        size_t len = BodyLength(&rng, config);
        for (size_t w = 0; w < len; ++w) {
          double x = rng.UniformDouble();
          if (x < 0.02 && !root_tokens.empty()) {
            Put(&body, root_tokens[rng.Uniform(root_tokens.size())]);
          } else if (x < 0.27 && intent_tokens.size() > 1) {
            // The modifier token (last token of the specialization),
            // keyword-stuffed the way near-topic spam pages are.
            Put(&body, intent_tokens.back());
          } else if (x < 0.57) {
            Put(&body, noise_words[rng.Uniform(noise_words.size())]);
          } else {
            Put(&body, BackgroundWord(&rng, config.background_vocab));
          }
        }
        // Spam-page pattern: the full specialization query in the title.
        std::string title =
            intent.query + " " + noise_words[d % noise_words.size()];
        std::string url = util::StrFormat(
            "http://synth.example/t%u/s%zu/dx%zu", topic_id, s, d);
        out.store.Add(std::move(url), title, body);
      }
    }

    // Confusable documents: mention the root word amid background text but
    // belong to no sub-intent (grade 0 — recorded implicitly by absence).
    for (size_t d = 0; d < config.confusable_docs_per_topic; ++d) {
      std::string body;
      size_t len = BodyLength(&rng, config);
      for (size_t w = 0; w < len; ++w) {
        if (rng.Bernoulli(0.08) && !root_tokens.empty()) {
          Put(&body, root_tokens[rng.Uniform(root_tokens.size())]);
        } else {
          Put(&body, BackgroundWord(&rng, config.background_vocab));
        }
      }
      std::string url =
          util::StrFormat("http://synth.example/t%u/conf/d%zu", topic_id, d);
      out.store.Add(std::move(url), spec.root_query + " miscellany", body);
    }

    out.topics.Add(std::move(topic));
  }

  // Pure background documents.
  for (size_t d = 0; d < config.background_docs; ++d) {
    std::string body;
    size_t len = BodyLength(&rng, config);
    for (size_t w = 0; w < len; ++w) {
      Put(&body, BackgroundWord(&rng, config.background_vocab));
    }
    std::string url = util::StrFormat("http://synth.example/bg/d%zu", d);
    out.store.Add(std::move(url), "background " + std::to_string(d), body);
  }

  return out;
}

}  // namespace corpus
}  // namespace optselect
