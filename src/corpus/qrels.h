// Subtopic-level relevance judgments (TREC diversity-task qrels format:
// topic / subtopic / document / grade).

#ifndef OPTSELECT_CORPUS_QRELS_H_
#define OPTSELECT_CORPUS_QRELS_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/types.h"

namespace optselect {
namespace corpus {

/// Judged relevance of documents to (topic, subtopic) pairs.
class Qrels {
 public:
  /// Records `grade` (> 0 means relevant) for doc under the given
  /// topic/subtopic. Re-adding overwrites.
  void Add(TopicId topic, uint32_t subtopic, DocId doc, int grade);

  /// Grade of (topic, subtopic, doc); 0 when unjudged.
  int Grade(TopicId topic, uint32_t subtopic, DocId doc) const;

  /// True if the doc is relevant (grade > 0) to the subtopic.
  bool Relevant(TopicId topic, uint32_t subtopic, DocId doc) const {
    return Grade(topic, subtopic, doc) > 0;
  }

  /// True if the doc is relevant to at least one subtopic of the topic.
  bool RelevantToAny(TopicId topic, uint32_t num_subtopics, DocId doc) const;

  /// Number of relevant documents for a subtopic.
  size_t NumRelevant(TopicId topic, uint32_t subtopic) const;

  /// Highest subtopic index judged for the topic, plus one (0 if none).
  uint32_t NumSubtopics(TopicId topic) const;

  /// All judged (doc, grade) pairs for a subtopic (unordered).
  std::vector<std::pair<DocId, int>> Judgments(TopicId topic,
                                               uint32_t subtopic) const;

  size_t size() const { return total_; }

 private:
  // key: (topic << 8 | subtopic) — subtopic counts are tiny (3..8,
  // bounded 255); value: doc → grade.
  static uint64_t Key(TopicId topic, uint32_t subtopic) {
    return (static_cast<uint64_t>(topic) << 8) | (subtopic & 0xFF);
  }
  std::unordered_map<uint64_t, std::unordered_map<DocId, int>> judgments_;
  std::unordered_map<TopicId, uint32_t> subtopic_count_;
  size_t total_ = 0;
};

}  // namespace corpus
}  // namespace optselect

#endif  // OPTSELECT_CORPUS_QRELS_H_
