// Tests for the live store lifecycle: versioned snapshots (v2 binary
// format + legacy v1 read), delta snapshot builds with changed-key
// tracking, ServingNode hot reload (per-key cache invalidation,
// bit-identical unchanged rankings, zero failures under concurrent
// swaps), and the StoreRefresher ingest → mine → swap tick.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pipeline/testbed.h"
#include "serving/serving_node.h"
#include "serving/store_refresher.h"
#include "store/diversification_store.h"
#include "store/store_builder.h"
#include "store/store_snapshot.h"
#include "util/hash.h"

namespace optselect {
namespace store {
namespace {

StoredEntry MakeEntry(const std::string& root, size_t n_specs,
                      double first_prob_scale = 1.0) {
  StoredEntry entry;
  entry.query = root;
  double norm = 0;
  std::vector<double> probs;
  for (size_t s = 0; s < n_specs; ++s) {
    double p = (s == 0 ? first_prob_scale : 1.0) /
               static_cast<double>(n_specs);
    probs.push_back(p);
    norm += p;
  }
  for (size_t s = 0; s < n_specs; ++s) {
    StoredSpecialization sp;
    sp.query = root + " mod" + std::to_string(s);
    sp.probability = probs[s] / norm;
    sp.surrogates.push_back(text::TermVector::FromEntries(
        {{static_cast<text::TermId>(10 * s), 1.0}}));
    entry.specializations.push_back(std::move(sp));
  }
  return entry;
}

// ----------------------------------------------------- format versioning

TEST(StoreVersionTest, SaveLoadRoundTripsContentVersion) {
  DiversificationStore store;
  ASSERT_TRUE(store.Put(MakeEntry("apple", 2)).ok());
  store.set_version(41);
  std::string path = ::testing::TempDir() + "/store_v2.bin";
  ASSERT_TRUE(store.Save(path).ok());

  auto loaded = DiversificationStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().version(), 41u);
  EXPECT_EQ(loaded.value().size(), 1u);
  std::remove(path.c_str());
}

// Legacy v1-format *bytes* (including the legacy checksum basis) are
// covered by the checked-in golden fixture tests/data/store_v1.bin in
// tests/store_backcompat_test.cc, which froze and replaced the
// hand-crafted in-test byte writer that lived here.

TEST(StoreVersionTest, RemoveDropsNormalizedKey) {
  DiversificationStore store;
  ASSERT_TRUE(store.Put(MakeEntry("New  York", 2)).ok());
  EXPECT_FALSE(store.Remove("boston"));
  EXPECT_TRUE(store.Remove("  NEW york "));
  EXPECT_TRUE(store.empty());
}

TEST(StoreVersionTest, StoredEntriesEqualComparesDeeply) {
  StoredEntry a = MakeEntry("apple", 2);
  EXPECT_TRUE(StoredEntriesEqual(a, MakeEntry("apple", 2)));
  EXPECT_FALSE(StoredEntriesEqual(a, MakeEntry("apple", 3)));
  EXPECT_FALSE(StoredEntriesEqual(a, MakeEntry("apple", 2, 2.0)));
  StoredEntry c = MakeEntry("apple", 2);
  c.specializations[1].surrogates[0] =
      text::TermVector::FromEntries({{99, 1.0}});
  EXPECT_FALSE(StoredEntriesEqual(a, c));
}

// -------------------------------------------------------- BuildSnapshot

TEST(BuildSnapshotTest, AppliesDeltaAndTracksChangedKeys) {
  DiversificationStore base;
  ASSERT_TRUE(base.Put(MakeEntry("apple", 2)).ok());
  ASSERT_TRUE(base.Put(MakeEntry("jaguar", 2)).ok());
  ASSERT_TRUE(base.Put(MakeEntry("leopard", 2)).ok());
  base.set_version(7);
  auto snapshot = StoreSnapshot::Own(std::move(base));

  StoreDelta delta;
  delta.upserts.push_back(MakeEntry("apple", 2, 3.0));  // changed probs
  delta.upserts.push_back(MakeEntry("jaguar", 2));      // identical
  delta.upserts.push_back(MakeEntry("phoenix", 3));     // new entry
  delta.removals.push_back("leopard");
  delta.removals.push_back("never stored");

  SnapshotBuildResult built = BuildSnapshot(snapshot.get(), delta);
  EXPECT_EQ(built.snapshot->version(), 8u);
  EXPECT_EQ(built.upserts_applied, 2u);
  EXPECT_EQ(built.removals_applied, 1u);
  EXPECT_EQ(built.unchanged_skipped, 1u);
  EXPECT_EQ(built.changed_keys,
            (std::vector<std::string>{"apple", "leopard", "phoenix"}));

  const DiversificationStore& next = built.snapshot->store();
  EXPECT_EQ(next.size(), 3u);  // apple, jaguar, phoenix
  EXPECT_EQ(next.Find("leopard"), nullptr);
  ASSERT_NE(next.Find("phoenix"), nullptr);
  // The base snapshot is untouched (immutability across the rebuild).
  EXPECT_EQ(snapshot->version(), 7u);
  EXPECT_NE(snapshot->store().Find("leopard"), nullptr);
}

TEST(BuildSnapshotTest, SubAmbiguousUpsertActsAsRemoval) {
  DiversificationStore base;
  ASSERT_TRUE(base.Put(MakeEntry("apple", 2)).ok());
  auto snapshot = StoreSnapshot::Own(std::move(base));

  StoreDelta delta;
  delta.upserts.push_back(MakeEntry("apple", 1));  // < 2 specializations
  SnapshotBuildResult built = BuildSnapshot(snapshot.get(), delta);
  EXPECT_EQ(built.snapshot->store().Find("apple"), nullptr);
  EXPECT_EQ(built.removals_applied, 1u);
  EXPECT_EQ(built.changed_keys, (std::vector<std::string>{"apple"}));
}

TEST(BuildSnapshotTest, NullBaseStartsEmptyAtVersionOne) {
  StoreDelta delta;
  delta.upserts.push_back(MakeEntry("apple", 2));
  SnapshotBuildResult built = BuildSnapshot(nullptr, delta);
  EXPECT_EQ(built.snapshot->version(), 1u);
  EXPECT_EQ(built.snapshot->store().size(), 1u);
}

}  // namespace
}  // namespace store

// ------------------------------------------------- serving-tier reload

namespace serving {
namespace {

class StoreReloadServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new pipeline::Testbed(pipeline::TestbedConfig::Small());
    store::DiversificationStore base;
    std::vector<std::string> roots;
    for (const auto& topic : testbed_->universe().topics) {
      roots.push_back(topic.root_query);
    }
    store::BuildStore(testbed_->detector(), testbed_->searcher(),
                      testbed_->snippets(), testbed_->analyzer(),
                      testbed_->corpus().store, roots, {}, &base);
    ASSERT_GE(base.size(), 2u);
    snapshot_ = new std::shared_ptr<const store::StoreSnapshot>(
        store::StoreSnapshot::Own(std::move(base)));

    // Two stored keys: `target` is the one the reload changes, `pinned`
    // must survive every swap bit-identically.
    for (const auto& [key, entry] : (*snapshot_)->store().entries()) {
      if (target_key_->empty() || key < *target_key_) *target_key_ = key;
    }
    for (const auto& [key, entry] : (*snapshot_)->store().entries()) {
      if (key != *target_key_ &&
          (pinned_key_->empty() || key < *pinned_key_)) {
        *pinned_key_ = key;
      }
    }
  }
  static void TearDownTestSuite() {
    delete snapshot_;
    delete testbed_;
    snapshot_ = nullptr;
    testbed_ = nullptr;
  }

  static ServingConfig BaseConfig() {
    ServingConfig config;
    config.num_workers = 2;
    config.queue_capacity = 512;
    config.params.num_candidates = 100;
    config.params.diversify.k = 10;
    return config;
  }

  static ServingNode MakeNode(ServingConfig config) {
    return ServingNode(*snapshot_, &testbed_->searcher(),
                       &testbed_->snippets(), &testbed_->analyzer(),
                       &testbed_->corpus().store, config);
  }

  /// A delta that rescales the target entry's specialization
  /// distribution by `scale`; 1.0 upserts a bit-identical copy of the
  /// base entry (the "refresh found nothing new" case).
  static store::StoreDelta TargetDelta(double scale) {
    store::StoreDelta delta;
    store::StoredEntry entry =
        *(*snapshot_)->store().Find(*target_key_);
    if (scale != 1.0) {
      entry.specializations[0].probability *= scale;
      double norm = 0;
      for (const auto& sp : entry.specializations) norm += sp.probability;
      for (auto& sp : entry.specializations) sp.probability /= norm;
    }
    delta.upserts.push_back(std::move(entry));
    return delta;
  }

  static pipeline::Testbed* testbed_;
  static std::shared_ptr<const store::StoreSnapshot>* snapshot_;
  static std::string* target_key_;
  static std::string* pinned_key_;
};

pipeline::Testbed* StoreReloadServingTest::testbed_ = nullptr;
std::shared_ptr<const store::StoreSnapshot>*
    StoreReloadServingTest::snapshot_ = nullptr;
std::string* StoreReloadServingTest::target_key_ = new std::string();
std::string* StoreReloadServingTest::pinned_key_ = new std::string();

TEST_F(StoreReloadServingTest, ReloadInvalidatesOnlyChangedKeys) {
  ServingNode node = MakeNode(BaseConfig());

  ServeResult target_before = node.Serve(*target_key_);
  ServeResult pinned_before = node.Serve(*pinned_key_);
  ASSERT_TRUE(target_before.ok);
  ASSERT_TRUE(pinned_before.ok);
  // Warm the cache for both.
  ASSERT_TRUE(node.Serve(*target_key_).cache_hit);
  ASSERT_TRUE(node.Serve(*pinned_key_).cache_hit);

  store::SnapshotBuildResult built =
      store::BuildSnapshot(node.snapshot().get(), TargetDelta(0.25));
  ASSERT_EQ(built.changed_keys, (std::vector<std::string>{*target_key_}));
  ServingNode::ReloadOutcome outcome =
      node.ReloadStore(built.snapshot, built.changed_keys);
  EXPECT_EQ(outcome.old_version, 0u);
  EXPECT_EQ(outcome.new_version, 1u);
  EXPECT_EQ(outcome.invalidated, 1u);

  // Unchanged key: still served from cache, bit-identical.
  ServeResult pinned_after = node.Serve(*pinned_key_);
  EXPECT_TRUE(pinned_after.cache_hit);
  EXPECT_EQ(pinned_after.ranking, pinned_before.ranking);

  // Changed key: recomputed on the new snapshot.
  ServeResult target_after = node.Serve(*target_key_);
  EXPECT_FALSE(target_after.cache_hit);
  EXPECT_TRUE(target_after.diversified);
  EXPECT_EQ(target_after.store_version, 1u);

  ServingStats stats = node.Stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.store_version, 1u);
  EXPECT_EQ(stats.cache_invalidations, 1u);
}

TEST_F(StoreReloadServingTest, ReloadingIdenticalSnapshotKeepsRankings) {
  ServingNode node = MakeNode(BaseConfig());
  ServeResult before = node.Serve(*target_key_);

  // scale=1.0 re-mines to an identical entry ⇒ nothing changes.
  store::SnapshotBuildResult built =
      store::BuildSnapshot(node.snapshot().get(), TargetDelta(1.0));
  EXPECT_TRUE(built.changed_keys.empty());
  EXPECT_EQ(built.unchanged_skipped, 1u);
  node.ReloadStore(built.snapshot, built.changed_keys);

  ServeResult after = node.Serve(*target_key_);
  EXPECT_TRUE(after.cache_hit);  // nothing was invalidated
  EXPECT_EQ(after.ranking, before.ranking);
}

TEST_F(StoreReloadServingTest, SwapsUnderConcurrentLoadLoseNothing) {
  ServingConfig config = BaseConfig();
  config.num_workers = 2;
  ServingNode node = MakeNode(config);

  std::vector<DocId> pinned_reference = node.Serve(*pinned_key_).ranking;
  ASSERT_FALSE(pinned_reference.empty());

  constexpr size_t kClients = 3;
  constexpr size_t kPerClient = 40;
  std::atomic<size_t> ok_count{0};
  std::atomic<size_t> pinned_mismatches{0};
  std::atomic<bool> stop_swapper{false};

  // Swapper flips the target entry's distribution as fast as it can.
  std::thread swapper([&] {
    bool flip = false;
    while (!stop_swapper.load()) {
      auto cur = node.snapshot();
      store::SnapshotBuildResult built = store::BuildSnapshot(
          cur.get(), TargetDelta(flip ? 0.25 : 1.0));
      flip = !flip;
      node.ReloadStore(built.snapshot, built.changed_keys);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        bool pinned = (c + i) % 2 == 0;
        ServeResult r = node.Serve(pinned ? *pinned_key_ : *target_key_);
        if (r.ok) ok_count.fetch_add(1);
        if (pinned && r.ranking != pinned_reference) {
          pinned_mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop_swapper.store(true);
  swapper.join();

  // Zero failed requests, and the unchanged query stayed bit-identical
  // through every swap.
  EXPECT_EQ(ok_count.load(), kClients * kPerClient);
  EXPECT_EQ(pinned_mismatches.load(), 0u);
  ServingStats stats = node.Stats();
  EXPECT_EQ(stats.completed, kClients * kPerClient + 1);
  EXPECT_GE(stats.reloads, 1u);
  EXPECT_EQ(stats.store_version, stats.reloads);
}

// ------------------------------------------------------- StoreRefresher

TEST_F(StoreReloadServingTest, RefresherTickIngestsMinesAndSwaps) {
  std::string log_path = ::testing::TempDir() + "/refresher_log.tsv";
  ASSERT_TRUE(
      testbed_->log_result().log.SaveTsv(log_path).ok());

  ServingNode node = MakeNode(BaseConfig());
  StoreRefresherConfig rc;
  rc.log_path = log_path;
  StoreRefresher refresher(&node, &testbed_->searcher(),
                           &testbed_->snippets(), &testbed_->analyzer(),
                           &testbed_->corpus().store,
                           testbed_->log_result().log, rc);

  // Tick on an unchanged file: nothing ingested, nothing swapped.
  ASSERT_TRUE(refresher.TickOnce().ok());
  EXPECT_EQ(refresher.stats().ticks, 1u);
  EXPECT_EQ(refresher.stats().ingested_records, 0u);
  EXPECT_EQ(refresher.stats().swaps, 0u);
  EXPECT_EQ(node.Stats().reloads, 0u);

  // Append fresh traffic boosting one specialization of the target
  // entry: its P(q'|q) distribution must shift, so the tick re-mines
  // the root and hot-swaps a new snapshot version.
  const store::StoredEntry* target =
      node.snapshot()->store().Find(*target_key_);
  ASSERT_NE(target, nullptr);
  const std::string boosted = target->specializations.back().query;
  {
    std::ofstream out(log_path, std::ios::app);
    for (int i = 0; i < 400; ++i) {
      out << boosted << "\t9999\t" << (2000000000 + i) << "\t1,2\t\n";
    }
  }
  ASSERT_TRUE(refresher.TickOnce().ok());
  StoreRefresherStats rs = refresher.stats();
  EXPECT_EQ(rs.ticks, 2u);
  EXPECT_EQ(rs.ingested_records, 400u);
  EXPECT_EQ(rs.malformed_lines, 0u);
  EXPECT_EQ(rs.swaps, 1u);
  EXPECT_GE(rs.upserts, 1u);
  EXPECT_EQ(rs.store_version, 1u);
  EXPECT_EQ(node.Stats().store_version, 1u);
  EXPECT_EQ(node.Stats().reloads, 1u);

  // The swapped entry reflects the boost: the boosted specialization's
  // probability strictly increased.
  const store::StoredEntry* before = target;
  const store::StoredEntry* after =
      node.snapshot()->store().Find(*target_key_);
  ASSERT_NE(after, nullptr);
  double prob_before = 0, prob_after = 0;
  for (const auto& sp : before->specializations) {
    if (sp.query == boosted) prob_before = sp.probability;
  }
  for (const auto& sp : after->specializations) {
    if (sp.query == boosted) prob_after = sp.probability;
  }
  EXPECT_GT(prob_after, prob_before);

  std::remove(log_path.c_str());
}

TEST_F(StoreReloadServingTest, RefresherKeyFilterDropsForeignChanges) {
  // Sharded serving: a shard's refresher mines the full dirty set but
  // must apply only the slice its node owns. A reject-all filter is the
  // extreme case — the tick ingests and mines, yet swaps nothing.
  std::string log_path = ::testing::TempDir() + "/filtered_log.tsv";
  ASSERT_TRUE(testbed_->log_result().log.SaveTsv(log_path).ok());

  ServingNode node = MakeNode(BaseConfig());
  StoreRefresherConfig rc;
  rc.log_path = log_path;
  rc.key_filter = [](const std::string&) { return false; };
  StoreRefresher refresher(&node, &testbed_->searcher(),
                           &testbed_->snippets(), &testbed_->analyzer(),
                           &testbed_->corpus().store,
                           testbed_->log_result().log, rc);

  const store::StoredEntry* target =
      node.snapshot()->store().Find(*target_key_);
  ASSERT_NE(target, nullptr);
  const std::string boosted = target->specializations.back().query;
  {
    std::ofstream out(log_path, std::ios::app);
    for (int i = 0; i < 400; ++i) {
      out << boosted << "\t9999\t" << (2000000000 + i) << "\t1,2\t\n";
    }
  }
  ASSERT_TRUE(refresher.TickOnce().ok());
  StoreRefresherStats rs = refresher.stats();
  EXPECT_EQ(rs.ingested_records, 400u);  // the mining half still ran
  EXPECT_EQ(rs.swaps, 0u);               // the delta was fully foreign
  EXPECT_EQ(node.Stats().reloads, 0u);
  EXPECT_EQ(node.Stats().store_version, 0u);

  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace serving
}  // namespace optselect
