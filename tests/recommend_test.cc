// Unit tests for the recommend module: the Search-Shortcuts-style
// recommender and Algorithm 1 (AmbiguousQueryDetect).

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "querylog/query_flow_graph.h"
#include "querylog/session_segmenter.h"
#include "querylog/synthetic_log.h"
#include "recommend/ambiguity_detector.h"
#include "recommend/shortcuts_recommender.h"
#include "recommend/superstring_recommender.h"
#include "synth/topic_universe.h"

namespace optselect {
namespace recommend {
namespace {

querylog::QueryRecord MakeRecord(const std::string& q, querylog::UserId user,
                                 int64_t ts) {
  querylog::QueryRecord r;
  r.query = q;
  r.user = user;
  r.timestamp = ts;
  return r;
}

// Builds a tiny hand-crafted log: "leopard" refined into "leopard tank"
// (8 users), "leopard pictures" (4 users), and a one-off "walnut" jump.
querylog::QueryLog HandLog() {
  querylog::QueryLog log;
  int64_t ts = 0;
  querylog::UserId user = 1;
  for (int i = 0; i < 8; ++i) {
    log.Add(MakeRecord("leopard", user, ts));
    log.Add(MakeRecord("leopard tank", user, ts + 30));
    ++user;
    ts += 10000;
  }
  for (int i = 0; i < 4; ++i) {
    log.Add(MakeRecord("leopard", user, ts));
    log.Add(MakeRecord("leopard pictures", user, ts + 30));
    ++user;
    ts += 10000;
  }
  log.Add(MakeRecord("leopard", user, ts));
  log.Add(MakeRecord("walnut", user, ts + 30));
  return log;
}

class RecommenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    log_ = HandLog();
    graph_ = querylog::QueryFlowGraph::Build(log_, {});
    sessions_ = querylog::SessionSegmenter().Segment(log_, nullptr);
    recommender_.Train(log_, sessions_);
  }

  querylog::QueryLog log_;
  querylog::QueryFlowGraph graph_;
  std::vector<querylog::Session> sessions_;
  ShortcutsRecommender recommender_;
};

TEST_F(RecommenderTest, RecommendsObservedFollowers) {
  auto suggestions = recommender_.Recommend("leopard", 10);
  ASSERT_GE(suggestions.size(), 2u);
  std::vector<std::string> queries;
  for (const auto& s : suggestions) queries.push_back(s.query);
  EXPECT_NE(std::find(queries.begin(), queries.end(), "leopard tank"),
            queries.end());
  EXPECT_NE(std::find(queries.begin(), queries.end(), "leopard pictures"),
            queries.end());
}

TEST_F(RecommenderTest, MoreFrequentFollowerScoresHigher) {
  auto suggestions = recommender_.Recommend("leopard", 10);
  ASSERT_GE(suggestions.size(), 2u);
  EXPECT_EQ(suggestions[0].query, "leopard tank");
  EXPECT_GT(suggestions[0].score, suggestions[1].score);
}

TEST_F(RecommenderTest, MinSupportFiltersOneOffs) {
  // "walnut" followed "leopard" once; default min_pair_support = 2.
  for (const auto& s : recommender_.Recommend("leopard", 50)) {
    EXPECT_NE(s.query, "walnut");
  }
}

TEST_F(RecommenderTest, UnknownQueryYieldsNothing) {
  EXPECT_TRUE(recommender_.Recommend("ghost", 10).empty());
}

TEST_F(RecommenderTest, MaxSuggestionsRespected) {
  EXPECT_LE(recommender_.Recommend("leopard", 1).size(), 1u);
  EXPECT_TRUE(recommender_.Recommend("leopard", 0).empty());
}

TEST_F(RecommenderTest, FrequencyTracksLog) {
  EXPECT_EQ(recommender_.Frequency("leopard"), 13u);
  EXPECT_EQ(recommender_.Frequency("leopard tank"), 8u);
  EXPECT_EQ(recommender_.Frequency("nothing"), 0u);
}

// ----------------------------------------------------------- IsTermSuperset

TEST(TermSupersetTest, Basic) {
  EXPECT_TRUE(IsTermSuperset("leopard tank", "leopard"));
  EXPECT_TRUE(IsTermSuperset("big leopard tank", "leopard tank"));
  EXPECT_FALSE(IsTermSuperset("leopard", "leopard tank"));
  EXPECT_FALSE(IsTermSuperset("walnut", "leopard"));
  EXPECT_TRUE(IsTermSuperset("anything", ""));
}

// -------------------------------------------------------- AmbiguityDetector

class DetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    log_ = HandLog();
    sessions_ = querylog::SessionSegmenter().Segment(log_, nullptr);
    recommender_.Train(log_, sessions_);
  }

  querylog::QueryLog log_;
  std::vector<querylog::Session> sessions_;
  ShortcutsRecommender recommender_;
};

TEST_F(DetectorTest, DetectsPlantedAmbiguity) {
  AmbiguityDetector detector(&recommender_);
  SpecializationSet set = detector.Detect("leopard");
  ASSERT_TRUE(set.ambiguous());
  EXPECT_EQ(set.root_query, "leopard");
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.items[0].query, "leopard tank");
  EXPECT_EQ(set.items[1].query, "leopard pictures");
}

TEST_F(DetectorTest, ProbabilitiesMatchDefinition1) {
  AmbiguityDetector detector(&recommender_);
  SpecializationSet set = detector.Detect("leopard");
  ASSERT_EQ(set.size(), 2u);
  // f(tank)=8, f(pictures)=4 → P = 8/12, 4/12.
  EXPECT_NEAR(set.items[0].probability, 8.0 / 12.0, 1e-12);
  EXPECT_NEAR(set.items[1].probability, 4.0 / 12.0, 1e-12);
  double sum = 0;
  for (const auto& sp : set.items) sum += sp.probability;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST_F(DetectorTest, UnambiguousQueryRejected) {
  AmbiguityDetector detector(&recommender_);
  // "leopard tank" has no followers at all.
  EXPECT_FALSE(detector.Detect("leopard tank").ambiguous());
  EXPECT_FALSE(detector.Detect("never seen").ambiguous());
}

TEST_F(DetectorTest, PopularityFilterDropsRareCandidates) {
  // With a harsh divisor (s < f(q)/f(q′)) both specializations fall below
  // f(q)/s and the query stops being ambiguous.
  AmbiguityDetector::Options opt;
  opt.popularity_divisor = 1.0;  // threshold = f(leopard) = 13 > 8, 4
  AmbiguityDetector detector(&recommender_, opt);
  EXPECT_FALSE(detector.Detect("leopard").ambiguous());
}

TEST_F(DetectorTest, SupersetFilterTogglable) {
  // Add a frequent non-superset follower.
  querylog::QueryLog log = HandLog();
  int64_t ts = 1000000;
  for (int i = 0; i < 6; ++i) {
    log.Add(MakeRecord("leopard", 100 + i, ts));
    log.Add(MakeRecord("mac os", 100 + i, ts + 20));
    ts += 10000;
  }
  auto sessions = querylog::SessionSegmenter().Segment(log, nullptr);
  ShortcutsRecommender rec;
  rec.Train(log, sessions);

  AmbiguityDetector::Options strict;
  strict.require_term_superset = true;
  AmbiguityDetector detector_strict(&rec, strict);
  for (const auto& sp : detector_strict.Detect("leopard").items) {
    EXPECT_NE(sp.query, "mac os");
  }

  AmbiguityDetector::Options loose;
  loose.require_term_superset = false;
  AmbiguityDetector detector_loose(&rec, loose);
  bool found = false;
  for (const auto& sp : detector_loose.Detect("leopard").items) {
    found |= sp.query == "mac os";
  }
  EXPECT_TRUE(found);
}

TEST_F(DetectorTest, MaxSpecializationsKeepsMostProbable) {
  AmbiguityDetector::Options opt;
  opt.max_specializations = 1;  // forces truncation below the ≥2 rule
  AmbiguityDetector detector(&recommender_, opt);
  SpecializationSet set = detector.Detect("leopard");
  // Truncation happens after the ambiguity check, so the set remains
  // flagged ambiguous but holds only the top specialization.
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.items[0].query, "leopard tank");
  EXPECT_NEAR(set.items[0].probability, 1.0, 1e-12);
}

// -------------------------------------------------- SuperstringRecommender

class SuperstringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    log_ = HandLog();
    recommender_.Train(log_);
  }
  querylog::QueryLog log_;
  SuperstringRecommender recommender_;
};

TEST_F(SuperstringTest, SuggestsLexicalRefinements) {
  auto suggestions = recommender_.Recommend("leopard", 10);
  ASSERT_EQ(suggestions.size(), 2u);
  // Scored by frequency: tank (8) before pictures (4).
  EXPECT_EQ(suggestions[0].query, "leopard tank");
  EXPECT_EQ(suggestions[0].frequency, 8u);
  EXPECT_EQ(suggestions[1].query, "leopard pictures");
}

TEST_F(SuperstringTest, NeverSuggestsNonSuperstrings) {
  for (const auto& s : recommender_.Recommend("leopard", 50)) {
    EXPECT_TRUE(IsTermSuperset(s.query, "leopard"));
  }
  EXPECT_TRUE(recommender_.Recommend("walnut", 10).empty());
  EXPECT_TRUE(recommender_.Recommend("ghost", 10).empty());
  EXPECT_TRUE(recommender_.Recommend("", 10).empty());
}

TEST_F(SuperstringTest, MinFrequencyFiltersRareQueries) {
  // "walnut" appears once; default min_frequency = 2 keeps it out of the
  // index entirely.
  EXPECT_EQ(recommender_.Frequency("walnut"), 1u);
  auto suggestions = recommender_.Recommend("walnut", 10);
  EXPECT_TRUE(suggestions.empty());
}

TEST_F(SuperstringTest, PlugsIntoAlgorithmOne) {
  // The pluggability claim: Algorithm 1 runs unchanged on a different A.
  AmbiguityDetector detector(&recommender_);
  SpecializationSet set = detector.Detect("leopard");
  ASSERT_TRUE(set.ambiguous());
  EXPECT_EQ(set.items[0].query, "leopard tank");
  EXPECT_NEAR(set.items[0].probability, 8.0 / 12.0, 1e-12);
}

TEST_F(SuperstringTest, MaxExtraTokensBound) {
  querylog::QueryLog log;
  for (int i = 0; i < 3; ++i) {
    log.Add(MakeRecord("a", 1, i * 100));
    log.Add(MakeRecord("a b", 1, i * 100 + 10));
    log.Add(MakeRecord("a b c d e f g", 1, i * 100 + 20));
  }
  SuperstringRecommender::Options opt;
  opt.max_extra_tokens = 2;
  SuperstringRecommender rec(opt);
  rec.Train(log);
  auto suggestions = rec.Recommend("a", 10);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].query, "a b");
}

// ------------------------------------------------- End-to-end mining check

TEST(TrainIncrementalTest, MatchesBatchTrainAtSessionBoundary) {
  // Split the hand log at a session boundary (each HandLog user is one
  // session, 10000s apart): batch-training on the full log must equal
  // training on the head then folding the tail in incrementally.
  querylog::QueryLog full = HandLog();
  querylog::QueryLog head, tail;
  for (const querylog::QueryRecord& r : full.records()) {
    (r.timestamp < 60000 ? head : tail).Add(r);
  }
  ASSERT_FALSE(head.empty());
  ASSERT_FALSE(tail.empty());

  querylog::SessionSegmenter segmenter;
  ShortcutsRecommender batch;
  batch.Train(full, segmenter.Segment(full, nullptr));

  ShortcutsRecommender incremental;
  incremental.Train(head, segmenter.Segment(head, nullptr));
  incremental.TrainIncremental(tail, segmenter.Segment(tail, nullptr));

  EXPECT_EQ(incremental.Frequency("leopard"), batch.Frequency("leopard"));
  EXPECT_EQ(incremental.Frequency("leopard tank"),
            batch.Frequency("leopard tank"));
  EXPECT_EQ(incremental.popularity().total(), batch.popularity().total());
  EXPECT_EQ(incremental.num_source_queries(), batch.num_source_queries());

  std::vector<Suggestion> a = batch.Recommend("leopard", 8);
  std::vector<Suggestion> b = incremental.Recommend("leopard", 8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query, b[i].query);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    EXPECT_EQ(a[i].frequency, b[i].frequency);
  }
}

TEST(TrainIncrementalTest, NewFollowersChangeRecommendations) {
  querylog::QueryLog head = HandLog();
  querylog::SessionSegmenter segmenter;
  ShortcutsRecommender rec;
  rec.Train(head, segmenter.Segment(head, nullptr));
  auto before = rec.Recommend("leopard", 1);
  ASSERT_FALSE(before.empty());
  EXPECT_EQ(before[0].query, "leopard tank");

  // A burst of "leopard → leopard gecko" refinements arrives.
  querylog::QueryLog tail;
  int64_t ts = 1000000;
  for (querylog::UserId u = 100; u < 120; ++u) {
    tail.Add(MakeRecord("leopard", u, ts));
    tail.Add(MakeRecord("leopard gecko", u, ts + 30));
    ts += 10000;
  }
  rec.TrainIncremental(tail, segmenter.Segment(tail, nullptr));
  auto after = rec.Recommend("leopard", 1);
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after[0].query, "leopard gecko");
}

TEST(MiningQualityTest, RecoversPlantedTopicsFromSyntheticLog) {
  synth::TopicUniverseConfig ucfg;
  ucfg.num_topics = 10;
  auto universe = synth::GenerateTopicUniverse(ucfg, 100);

  querylog::SyntheticLogConfig cfg;
  cfg.num_users = 400;
  cfg.num_sessions = 12000;
  auto result = querylog::SyntheticLogGenerator(cfg).Generate(
      universe.topics, universe.noise_queries);

  auto graph = querylog::QueryFlowGraph::Build(result.log, {});
  auto sessions = querylog::SessionSegmenter().Segment(result.log, &graph);
  ShortcutsRecommender rec;
  rec.Train(result.log, sessions);
  AmbiguityDetector detector(&rec);

  // Detection: planted ambiguous roots must be flagged.
  size_t detected = 0;
  for (const synth::TopicSpec& topic : universe.topics) {
    SpecializationSet set = detector.Detect(topic.root_query);
    if (set.ambiguous()) ++detected;
  }
  EXPECT_GE(detected, universe.topics.size() * 8 / 10)
      << "most planted topics should be detected";

  // Probability estimation: mined P(q′|q) of the most popular topic
  // should correlate with the ground-truth probabilities.
  SpecializationSet set = detector.Detect(universe.topics[0].root_query);
  ASSERT_TRUE(set.ambiguous());
  const synth::TopicSpec& truth = universe.topics[0];
  // Find mined probability of the ground-truth top intent.
  double mined_top = 0;
  for (const auto& sp : set.items) {
    if (sp.query == truth.intents[0].query) mined_top = sp.probability;
  }
  EXPECT_GT(mined_top, 0.0) << "dominant intent not mined";
  // Dominant planted intent should be mined as (near-)dominant.
  for (const auto& sp : set.items) {
    EXPECT_LE(sp.probability, mined_top + 0.15);
  }

  // Noise queries must not be declared ambiguous (they have no planted
  // refinements).
  size_t false_positives = 0;
  for (size_t i = 0; i < 50 && i < universe.noise_queries.size(); ++i) {
    if (detector.Detect(universe.noise_queries[i]).ambiguous()) {
      ++false_positives;
    }
  }
  EXPECT_LE(false_positives, 5u);
}

}  // namespace
}  // namespace recommend
}  // namespace optselect
