// Tests for the serving-side diversification store (Section 4.1): Put /
// Find semantics, binary persistence with corruption detection, builder
// integration, and the footprint accounting.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/optselect.h"
#include "pipeline/diversification_pipeline.h"
#include "pipeline/testbed.h"
#include "store/diversification_store.h"
#include "store/store_builder.h"
#include "text/analyzer.h"

namespace optselect {
namespace store {
namespace {

StoredEntry MakeEntry(const std::string& root, size_t n_specs,
                      size_t n_surrogates) {
  StoredEntry entry;
  entry.query = root;
  for (size_t s = 0; s < n_specs; ++s) {
    StoredSpecialization sp;
    sp.query = root + " mod" + std::to_string(s);
    sp.probability = 1.0 / static_cast<double>(n_specs);
    for (size_t v = 0; v < n_surrogates; ++v) {
      sp.surrogates.push_back(text::TermVector::FromEntries(
          {{static_cast<text::TermId>(10 * s + v), 1.5},
           {static_cast<text::TermId>(100 + v), 0.25}}));
    }
    entry.specializations.push_back(std::move(sp));
  }
  return entry;
}

TEST(StoreTest, PutAndFind) {
  DiversificationStore store;
  ASSERT_TRUE(store.Put(MakeEntry("apple", 3, 2)).ok());
  EXPECT_EQ(store.size(), 1u);
  const StoredEntry* entry = store.Find("apple");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->specializations.size(), 3u);
  EXPECT_EQ(store.Find("nothing"), nullptr);
}

TEST(StoreTest, FindNormalizesCasingAndSpacing) {
  DiversificationStore store;
  ASSERT_TRUE(store.Put(MakeEntry("New  York", 2, 1)).ok());
  const StoredEntry* entry = store.Find("new york");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->query, "New  York");  // original string preserved
  EXPECT_NE(store.Find("  NEW YORK "), nullptr);
  EXPECT_EQ(store.size(), 1u);
  // Differently cased Put lands in the same slot (replace, not grow).
  ASSERT_TRUE(store.Put(MakeEntry("new york", 3, 1)).ok());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Find("new york")->specializations.size(), 3u);
}

TEST(StoreTest, RejectsNonAmbiguousEntries) {
  DiversificationStore store;
  util::Status s = store.Put(MakeEntry("solo", 1, 2));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(store.empty());
}

TEST(StoreTest, PutReplacesExisting) {
  DiversificationStore store;
  ASSERT_TRUE(store.Put(MakeEntry("apple", 2, 1)).ok());
  ASSERT_TRUE(store.Put(MakeEntry("apple", 4, 1)).ok());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Find("apple")->specializations.size(), 4u);
}

TEST(StoreTest, ToProfilesPreservesEverything) {
  StoredEntry entry = MakeEntry("apple", 2, 3);
  auto profiles = DiversificationStore::ToProfiles(entry);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].query, "apple mod0");
  EXPECT_DOUBLE_EQ(profiles[0].probability, 0.5);
  EXPECT_EQ(profiles[0].results.size(), 3u);
  EXPECT_DOUBLE_EQ(profiles[0].results[0].WeightOf(0), 1.5);
}

TEST(StoreTest, SurrogatePayloadBytesCountsEntries) {
  DiversificationStore store;
  ASSERT_TRUE(store.Put(MakeEntry("apple", 2, 2)).ok());
  // 2 specs × 2 surrogates × 2 entries × (4 + 8) bytes.
  EXPECT_EQ(store.SurrogatePayloadBytes(), 2ull * 2 * 2 * 12);
}

TEST(StoreTest, SaveLoadRoundTrip) {
  DiversificationStore store;
  ASSERT_TRUE(store.Put(MakeEntry("apple", 3, 2)).ok());
  ASSERT_TRUE(store.Put(MakeEntry("jaguar", 2, 4)).ok());
  std::string path = ::testing::TempDir() + "/store_roundtrip.bin";
  ASSERT_TRUE(store.Save(path).ok());

  auto loaded = DiversificationStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const DiversificationStore& l = loaded.value();
  EXPECT_EQ(l.size(), 2u);
  const StoredEntry* apple = l.Find("apple");
  ASSERT_NE(apple, nullptr);
  ASSERT_EQ(apple->specializations.size(), 3u);
  EXPECT_EQ(apple->specializations[0].query, "apple mod0");
  EXPECT_NEAR(apple->specializations[0].probability, 1.0 / 3.0, 1e-12);
  ASSERT_EQ(apple->specializations[1].surrogates.size(), 2u);
  EXPECT_DOUBLE_EQ(apple->specializations[1].surrogates[0].WeightOf(10),
                   1.5);
  std::remove(path.c_str());
}

TEST(StoreTest, SaveIsDeterministic) {
  DiversificationStore a, b;
  // Insert in different orders.
  ASSERT_TRUE(a.Put(MakeEntry("apple", 2, 1)).ok());
  ASSERT_TRUE(a.Put(MakeEntry("jaguar", 2, 1)).ok());
  ASSERT_TRUE(b.Put(MakeEntry("jaguar", 2, 1)).ok());
  ASSERT_TRUE(b.Put(MakeEntry("apple", 2, 1)).ok());
  std::string pa = ::testing::TempDir() + "/store_a.bin";
  std::string pb = ::testing::TempDir() + "/store_b.bin";
  ASSERT_TRUE(a.Save(pa).ok());
  ASSERT_TRUE(b.Save(pb).ok());
  std::ifstream fa(pa, std::ios::binary), fb(pb, std::ios::binary);
  std::string ba((std::istreambuf_iterator<char>(fa)),
                 std::istreambuf_iterator<char>());
  std::string bb((std::istreambuf_iterator<char>(fb)),
                 std::istreambuf_iterator<char>());
  EXPECT_EQ(ba, bb) << "snapshots must be byte-identical";
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(StoreTest, LoadDetectsCorruption) {
  DiversificationStore store;
  ASSERT_TRUE(store.Put(MakeEntry("apple", 2, 2)).ok());
  std::string path = ::testing::TempDir() + "/store_corrupt.bin";
  ASSERT_TRUE(store.Save(path).ok());

  // Flip one byte in the middle.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    char c;
    f.seekg(20);
    f.get(c);
    f.seekp(20);
    f.put(static_cast<char>(c ^ 0x5A));
  }
  auto r = DiversificationStore::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(StoreTest, LoadDetectsTruncation) {
  DiversificationStore store;
  ASSERT_TRUE(store.Put(MakeEntry("apple", 2, 2)).ok());
  std::string path = ::testing::TempDir() + "/store_trunc.bin";
  ASSERT_TRUE(store.Save(path).ok());
  // Truncate the file.
  {
    std::ifstream in(path, std::ios::binary);
    std::string blob((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size() / 2));
  }
  auto r = DiversificationStore::Load(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(StoreTest, LoadRejectsWrongMagic) {
  std::string path = ::testing::TempDir() + "/store_magic.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPEnopenopenopenope";
  }
  auto r = DiversificationStore::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(StoreTest, LoadMissingFileIsIoError) {
  auto r = DiversificationStore::Load("/nonexistent/store.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kIoError);
}

// --------------------------------------------------------- StoreBuilder

TEST(StoreBuilderTest, BuildsEntriesForDetectedTopicsOnly) {
  pipeline::Testbed testbed(pipeline::TestbedConfig::Small());
  StoreBuilderOptions options;
  options.results_per_specialization = 10;

  std::vector<std::string> queries;
  for (const auto& topic : testbed.universe().topics) {
    queries.push_back(topic.root_query);
  }
  queries.push_back(testbed.universe().noise_queries[0]);  // not ambiguous

  DiversificationStore built;
  size_t stored = BuildStore(testbed.detector(), testbed.searcher(),
                             testbed.snippets(), testbed.analyzer(),
                             testbed.corpus().store, queries, options,
                             &built);
  EXPECT_GE(stored, 6u) << "most planted topics should be stored";
  EXPECT_EQ(stored, built.size());
  EXPECT_EQ(built.Find(testbed.universe().noise_queries[0]), nullptr);

  // Entries are usable: probabilities sum to 1, surrogates bounded.
  for (const auto& [query, entry] : built.entries()) {
    double sum = 0;
    for (const auto& sp : entry.specializations) {
      sum += sp.probability;
      EXPECT_LE(sp.surrogates.size(), options.results_per_specialization);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(StoreBuilderTest, ServingFromStoreMatchesLivePipeline) {
  // Build the store offline, then answer a query using only the store +
  // live candidate retrieval; the diversified ranking must equal the
  // live pipeline's (same inputs, same algorithm).
  pipeline::Testbed testbed(pipeline::TestbedConfig::Small());
  pipeline::PipelineParams params;
  params.num_candidates = 100;
  params.results_per_specialization = 10;
  params.diversify.k = 10;
  pipeline::DiversificationPipeline live(&testbed, params);

  const std::string& query = testbed.universe().topics[0].root_query;
  pipeline::DiversifiedResult live_result = live.Prepare(query);
  ASSERT_TRUE(live_result.specializations.ambiguous());

  DiversificationStore built;
  StoreBuilderOptions options;
  options.results_per_specialization = params.results_per_specialization;
  BuildStore(testbed.detector(), testbed.searcher(), testbed.snippets(),
             testbed.analyzer(), testbed.corpus().store, {query}, options,
             &built);
  const StoredEntry* entry = built.Find(query);
  ASSERT_NE(entry, nullptr);

  // Serving-time assembly: candidates from live retrieval, stored
  // specializations.
  core::DiversificationInput input;
  input.query = query;
  input.candidates = live_result.input.candidates;
  input.specializations = DiversificationStore::ToProfiles(*entry);

  core::UtilityMatrix utilities = core::UtilityComputer().Compute(input);
  core::OptSelectDiversifier algo;
  EXPECT_EQ(algo.Select(input, utilities, params.diversify),
            algo.Select(live_result.input, live_result.utilities,
                        params.diversify));
}

}  // namespace
}  // namespace store
}  // namespace optselect
