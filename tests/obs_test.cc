// Tests for the observability layer: the unified metrics registry
// (registration, coherent collection order, Prometheus/JSON exposition),
// LatencyHistogram::MergeFrom quantile correctness against a
// sorted-vector oracle, deterministic trace sampling, the trace ring /
// slow-query log, and snapshot coherence of the registry-backed
// ServingStats under concurrent load (`completed <= accepted` must hold
// in every snapshot, not just at quiescence).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/testbed.h"
#include "serving/latency_histogram.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"
#include "util/rng.h"

namespace optselect {
namespace obs {
namespace {

// -------------------------------------------------------- registry

TEST(MetricsRegistryTest, CollectsInRegistrationOrderWithAllKinds) {
  MetricsRegistry reg;
  Counter* c = reg.AddCounter("optselect_test_total", {{"shard", "2"}});
  c->Add(5);
  uint64_t foreign = 41;
  reg.AddCounterFn("optselect_foreign_total", {},
                   [&foreign] { return foreign; });
  double level = 2.5;
  reg.AddGaugeFn("optselect_level", {{"stage", "select"}},
                 [&level] { return level; });
  serving::LatencyHistogram* h =
      reg.AddHistogram("optselect_lat_seconds", {{"shard", "2"}});
  h->Record(1000);
  h->Record(3000);

  ASSERT_EQ(reg.size(), 4u);
  std::vector<MetricSample> samples = reg.Collect();
  ASSERT_EQ(samples.size(), 4u);

  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(samples[0].name, "optselect_test_total");
  ASSERT_EQ(samples[0].labels.size(), 1u);
  EXPECT_EQ(samples[0].labels[0].first, "shard");
  EXPECT_EQ(samples[0].value, 5.0);

  EXPECT_EQ(samples[1].name, "optselect_foreign_total");
  EXPECT_EQ(samples[1].value, 41.0);

  EXPECT_EQ(samples[2].kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(samples[2].value, 2.5);

  EXPECT_EQ(samples[3].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(samples[3].count, 2u);
  EXPECT_EQ(samples[3].sum_us, 4000u);
  EXPECT_GT(samples[3].p50_us, 0.0);
}

TEST(MetricsRegistryTest, HistogramsNamedReturnsEveryLabelSet) {
  MetricsRegistry reg;
  serving::LatencyHistogram* a =
      reg.AddHistogram("optselect_stage_latency_seconds",
                       {{"shard", "0"}, {"stage", "select"}});
  serving::LatencyHistogram* b =
      reg.AddHistogram("optselect_stage_latency_seconds",
                       {{"shard", "1"}, {"stage", "select"}});
  reg.AddHistogram("optselect_other_seconds", {});
  a->Record(10);
  b->Record(20);

  auto named = reg.HistogramsNamed("optselect_stage_latency_seconds");
  ASSERT_EQ(named.size(), 2u);
  serving::LatencyHistogram merged;
  for (const auto& [labels, hist] : named) merged.MergeFrom(*hist);
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_TRUE(reg.HistogramsNamed("nope").empty());
}

TEST(MetricsRegistryTest, PrometheusDeclaresEachTypeOnceAndEscapes) {
  MetricsRegistry reg;
  reg.AddCounter("optselect_x_total", {{"shard", "0"}})->Add(1);
  reg.AddCounter("optselect_x_total", {{"shard", "1"}})->Add(2);
  reg.AddCounter("optselect_esc_total",
                 {{"q", "a\"b\\c\nd"}})->Add(3);
  std::string text = reg.RenderPrometheus();

  // One TYPE line for the two-label-set counter, not two.
  size_t first = text.find("# TYPE optselect_x_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE optselect_x_total counter", first + 1),
            std::string::npos);
  EXPECT_NE(text.find("optselect_x_total{shard=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("optselect_x_total{shard=\"1\"} 2"),
            std::string::npos);
  // Label-value escaping: quote, backslash, newline.
  EXPECT_NE(text.find("q=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusRendersHistogramAsSummary) {
  MetricsRegistry reg;
  serving::LatencyHistogram* h =
      reg.AddHistogram("optselect_lat_seconds", {{"shard", "3"}});
  for (int i = 0; i < 100; ++i) h->Record(1000);  // 1ms each
  std::string text = reg.RenderPrometheus();

  EXPECT_NE(text.find("# TYPE optselect_lat_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("optselect_lat_seconds{shard=\"3\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("optselect_lat_seconds_sum{shard=\"3\"} 0.1"),
            std::string::npos);
  EXPECT_NE(text.find("optselect_lat_seconds_count{shard=\"3\"} 100"),
            std::string::npos);
}

TEST(MetricsRegistryTest, JsonDumpHasSectionsAndValues) {
  MetricsRegistry reg;
  reg.AddCounter("optselect_j_total", {{"shard", "0"}})->Add(7);
  reg.AddGaugeFn("optselect_j_gauge", {}, [] { return 1.5; });
  reg.AddHistogram("optselect_j_seconds", {})->Record(500);
  std::string json = reg.RenderJson();

  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"optselect_j_total\""), std::string::npos);
  EXPECT_NE(json.find("7"), std::string::npos);
}

// ------------------------------------------- MergeFrom vs oracle

// The histogram's log-linear buckets (kSubBits = 6) bound relative
// quantile error at ~1.6%; 4% tolerance leaves room for the midpoint
// convention on top.
constexpr double kRelTol = 0.04;

/// Asserts `got` matches quantile q of `values` within bucket error.
/// The band spans both rank conventions (floor vs ceil) so the test
/// pins MergeFrom's bucketwise addition, not the rank arithmetic.
void ExpectQuantileNear(std::vector<int64_t> values, double q,
                        double got) {
  ASSERT_FALSE(values.empty());
  std::sort(values.begin(), values.end());
  size_t n = values.size();
  size_t lo_idx = static_cast<size_t>(q * static_cast<double>(n - 1));
  size_t hi_idx = std::min<size_t>(
      n - 1, static_cast<size_t>(std::ceil(q * static_cast<double>(n))));
  double lo = static_cast<double>(values[lo_idx]);
  double hi = static_cast<double>(values[hi_idx]);
  EXPECT_GE(got, lo * (1.0 - kRelTol))
      << "q=" << q << " n=" << n << " oracle=[" << lo << "," << hi << "]";
  EXPECT_LE(got, hi * (1.0 + kRelTol))
      << "q=" << q << " n=" << n << " oracle=[" << lo << "," << hi << "]";
}

void CheckMergedQuantiles(const std::vector<int64_t>& a,
                          const std::vector<int64_t>& b) {
  serving::LatencyHistogram ha, hb;
  for (int64_t v : a) ha.Record(v);
  for (int64_t v : b) hb.Record(v);
  ha.MergeFrom(hb);

  std::vector<int64_t> all = a;
  all.insert(all.end(), b.begin(), b.end());
  ASSERT_EQ(ha.count(), all.size());

  int64_t exact_sum = 0;
  for (int64_t v : all) exact_sum += v;
  EXPECT_EQ(ha.TotalMicros(), static_cast<uint64_t>(exact_sum));

  for (double q : {0.50, 0.99, 0.999}) {
    ExpectQuantileNear(all, q, ha.PercentileMicros(q));
  }
}

TEST(LatencyHistogramMergeTest, DisjointRangesMatchOracle) {
  // a: fast path (0.1–1ms), b: slow tail (50–200ms) — merged p99/p999
  // must land in b's range even though a dominates the count.
  util::Rng rng(7);
  std::vector<int64_t> a, b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(100 + static_cast<int64_t>(rng.Uniform(900)));
  }
  for (int i = 0; i < 100; ++i) {
    b.push_back(50000 + static_cast<int64_t>(rng.Uniform(150000)));
  }
  CheckMergedQuantiles(a, b);
}

TEST(LatencyHistogramMergeTest, OverlappingRangesMatchOracle) {
  util::Rng rng(11);
  std::vector<int64_t> a, b;
  for (int i = 0; i < 3000; ++i) {
    a.push_back(1000 + static_cast<int64_t>(rng.Uniform(9000)));
    b.push_back(2000 + static_cast<int64_t>(rng.Uniform(9000)));
  }
  CheckMergedQuantiles(a, b);
}

TEST(LatencyHistogramMergeTest, EmptySourceAndEmptyTarget) {
  serving::LatencyHistogram empty, filled;
  for (int64_t v : {100, 200, 300}) filled.Record(v);

  filled.MergeFrom(empty);  // no-op
  EXPECT_EQ(filled.count(), 3u);

  serving::LatencyHistogram target;
  target.MergeFrom(filled);  // into empty
  EXPECT_EQ(target.count(), 3u);
  EXPECT_EQ(target.TotalMicros(), 600u);
  ExpectQuantileNear({100, 200, 300}, 0.5, target.PercentileMicros(0.5));
}

TEST(LatencyHistogramMergeTest, SingleBucketValuesStayExact) {
  // Values below 2^6 = 64 are recorded exactly (one value per bucket);
  // merging must keep them exact, including p999.
  serving::LatencyHistogram a, b;
  for (int i = 0; i < 500; ++i) a.Record(7);
  for (int i = 0; i < 500; ++i) b.Record(7);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_EQ(a.PercentileMicros(0.5), 7.0);
  EXPECT_EQ(a.PercentileMicros(0.999), 7.0);
}

// --------------------------------------------------------- tracer

Trace MakeTrace(uint64_t seq, int64_t total_us) {
  Trace t;
  t.seq = seq;
  t.query = "q" + std::to_string(seq);
  t.ok = true;
  t.total_us = total_us;
  return t;
}

TEST(TracerTest, SamplingIsDeterministicAndSeedOffset) {
  TracerConfig config;
  config.sample_every = 8;
  config.seed = 3;
  Tracer tracer(config);
  Tracer same(config);
  for (uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_EQ(tracer.ShouldSample(seq), seq % 8 == 3) << seq;
    EXPECT_EQ(tracer.ShouldSample(seq), same.ShouldSample(seq)) << seq;
  }

  TracerConfig every;
  every.sample_every = 1;
  EXPECT_TRUE(Tracer(every).ShouldSample(12345));
  every.sample_every = 0;
  EXPECT_TRUE(Tracer(every).ShouldSample(12345));
}

TEST(TracerTest, RingEvictsOldestAndCountsCommits) {
  TracerConfig config;
  config.ring_capacity = 4;
  config.slow_capacity = 2;
  Tracer tracer(config);
  for (uint64_t seq = 0; seq < 10; ++seq) {
    tracer.Commit(MakeTrace(seq, static_cast<int64_t>(100 * (seq + 1))));
  }
  EXPECT_EQ(tracer.committed(), 10u);

  std::vector<Trace> recent = tracer.Recent();
  ASSERT_EQ(recent.size(), 4u);
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].seq, 6u + i);  // oldest -> newest
  }

  std::vector<Trace> slow = tracer.Slowest();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].seq, 9u);  // slowest first: 1000us, 900us
  EXPECT_EQ(slow[1].seq, 8u);
}

TEST(TracerTest, SlowLogKeepsWorstRegardlessOfRingEviction) {
  TracerConfig config;
  config.ring_capacity = 2;
  config.slow_capacity = 3;
  Tracer tracer(config);
  tracer.Commit(MakeTrace(0, 9000));  // worst, committed first
  for (uint64_t seq = 1; seq < 8; ++seq) {
    tracer.Commit(MakeTrace(seq, 100));
  }
  std::vector<Trace> slow = tracer.Slowest();
  ASSERT_GE(slow.size(), 1u);
  EXPECT_EQ(slow[0].seq, 0u);
  EXPECT_EQ(slow[0].total_us, 9000);
}

TEST(TracerTest, BreakerTransitionsRecordedUnsampled) {
  TracerConfig config;
  config.sample_every = 1000000;  // traces effectively never sampled
  Tracer tracer(config);
  tracer.RecordBreakerTransition(2, 0, 1);
  tracer.RecordBreakerTransition(2, 1, 2);
  std::vector<Tracer::BreakerEvent> events = tracer.breaker_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].shard, 2u);
  EXPECT_EQ(events[0].from, 0);
  EXPECT_EQ(events[0].to, 1);
  EXPECT_EQ(events[1].to, 2);
}

#if OPTSELECT_TRACING
TEST(TraceSpanTest, RecordsEventAndStageMicros) {
  Trace trace;
  trace.start = std::chrono::steady_clock::now();
  int64_t out_us = -1;
  {
    TraceSpan span(&trace, TraceStage::kSelect, 0, &out_us);
  }
  EXPECT_GE(out_us, 0);
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].stage, TraceStage::kSelect);
  EXPECT_GE(trace.events[0].duration_us, 0);

  // End() is idempotent: a second (implicit) end appends nothing.
  int64_t again = -1;
  TraceSpan span(&trace, TraceStage::kReply, 0, &again);
  span.End();
  span.End();
  EXPECT_EQ(trace.events.size(), 2u);

  // Null trace: only the stage-histogram out-param is written.
  int64_t only_us = -1;
  { TraceSpan s(nullptr, TraceStage::kStoreRead, 0, &only_us); }
  EXPECT_GE(only_us, 0);
  EXPECT_EQ(trace.events.size(), 2u);
}
#endif  // OPTSELECT_TRACING

// --------------------------------- stats coherence under load

class ObsServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new pipeline::Testbed(pipeline::TestbedConfig::Small());
    store_ = new store::DiversificationStore();
    std::vector<std::string> roots;
    for (const auto& topic : testbed_->universe().topics) {
      roots.push_back(topic.root_query);
    }
    store::BuildStore(testbed_->detector(), testbed_->searcher(),
                      testbed_->snippets(), testbed_->analyzer(),
                      testbed_->corpus().store, roots, {}, store_);
    ASSERT_GE(store_->size(), 2u);
  }
  static void TearDownTestSuite() {
    delete store_;
    delete testbed_;
    store_ = nullptr;
    testbed_ = nullptr;
  }

  static pipeline::Testbed* testbed_;
  static store::DiversificationStore* store_;
};

pipeline::Testbed* ObsServingTest::testbed_ = nullptr;
store::DiversificationStore* ObsServingTest::store_ = nullptr;

/// Every ServingStats snapshot taken *while workers are completing
/// requests* must satisfy the monotone pair invariants: the registry
/// collects effects before causes, so `completed <= accepted` (and
/// friends) hold per snapshot, not just at quiescence.
TEST_F(ObsServingTest, StatsSnapshotsCoherentUnderConcurrentLoad) {
  serving::ServingConfig config;
  config.num_workers = 4;
  config.queue_capacity = 4096;
  config.max_batch = 4;
  config.enable_cache = true;
  config.params.num_candidates = 100;
  config.params.diversify.k = 10;
  serving::ServingNode node(store_, testbed_, config);

  std::vector<std::string> queries;
  for (const auto& [query, entry] : store_->entries()) {
    queries.push_back(query);
  }
  std::sort(queries.begin(), queries.end());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> submitted{0};
  std::thread producer([&] {
    for (int round = 0; round < 200; ++round) {
      for (const std::string& q : queries) {
        if (node.Submit(q, [](serving::ServeResult) {})) {
          submitted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    done.store(true, std::memory_order_release);
  });

  size_t snapshots = 0;
  while (!done.load(std::memory_order_acquire) || snapshots < 50) {
    serving::ServingStats s = node.Stats();
    ++snapshots;
    ASSERT_LE(s.completed, s.accepted);
    ASSERT_LE(s.diversified, s.completed);
    ASSERT_LE(s.plan_served, s.diversified);
    ASSERT_LE(s.passthrough, s.completed);
    ASSERT_LE(s.batched_requests, s.accepted);
    ASSERT_LE(s.batch_dedup_hits, s.batched_requests);
    if (snapshots >= 5000) break;
  }
  producer.join();
  node.Shutdown();

  serving::ServingStats s = node.Stats();
  EXPECT_EQ(s.accepted, submitted.load());
  EXPECT_EQ(s.completed, s.accepted);
  EXPECT_GE(snapshots, 50u);
}

/// The shared-registry deployment shape: an external registry outlives
/// the node, labels stamp every metric, and the legacy stats struct is
/// assembled from the same handles the registry collects.
TEST_F(ObsServingTest, ExternalRegistryLabeledAndCoherent) {
  MetricsRegistry registry;
  serving::ServingConfig config;
  config.num_workers = 2;
  config.queue_capacity = 256;
  config.params.num_candidates = 100;
  config.params.diversify.k = 10;
  config.registry = &registry;
  config.metric_labels = {{"shard", "7"}};
  serving::ServingNode node(store_, testbed_, config);

  std::string stored = store_->entries().begin()->first;
  for (int i = 0; i < 5; ++i) node.Serve(stored);
  node.Shutdown();

  double accepted = -1, completed = -1;
  for (const MetricSample& s : registry.Collect()) {
    ASSERT_FALSE(s.labels.empty()) << s.name;
    EXPECT_EQ(s.labels[0].first, "shard");
    EXPECT_EQ(s.labels[0].second, "7");
    if (s.name == "optselect_serving_accepted_total") accepted = s.value;
    if (s.name == "optselect_serving_completed_total") completed = s.value;
  }
  EXPECT_EQ(accepted, 5.0);
  EXPECT_EQ(completed, 5.0);
  EXPECT_EQ(node.Stats().completed, 5u);
}

}  // namespace
}  // namespace obs
}  // namespace optselect
