// Tests for store-v3 compiled query plans: compile correctness against
// the live utility computation, bit-identical plan-served rankings,
// binary round-tripping, v2-format backcompat with recompile-on-load,
// stale-plan rejection, and plan preservation through delta snapshot
// builds (only dirty entries recompile).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/optselect.h"
#include "core/utility.h"
#include "pipeline/testbed.h"
#include "serving/serving_node.h"
#include "store/diversification_store.h"
#include "store/query_plan.h"
#include "store/store_builder.h"
#include "store/store_snapshot.h"
#include "util/hash.h"
#include "util/strings.h"

namespace optselect {
namespace store {
namespace {

class QueryPlanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new pipeline::Testbed(pipeline::TestbedConfig::Small());
    roots_ = new std::vector<std::string>();
    for (const auto& topic : testbed_->universe().topics) {
      roots_->push_back(topic.root_query);
    }
  }
  static void TearDownTestSuite() {
    delete roots_;
    delete testbed_;
    roots_ = nullptr;
    testbed_ = nullptr;
  }

  static PlanCompileOptions PlanOpts() {
    PlanCompileOptions opts;
    opts.num_candidates = 100;
    opts.threshold_c = 0.0;
    return opts;
  }

  /// Builds the store from the testbed roots, with or without plans.
  static DiversificationStore Build(bool with_plans) {
    StoreBuilderOptions options;
    options.compile_plans = with_plans;
    options.plan = PlanOpts();
    DiversificationStore store;
    BuildStore(testbed_->detector(), testbed_->searcher(),
               testbed_->snippets(), testbed_->analyzer(),
               testbed_->corpus().store, *roots_, options, &store);
    return store;
  }

  static serving::ServingConfig NodeConfig() {
    serving::ServingConfig config;
    config.num_workers = 2;
    config.queue_capacity = 256;
    config.enable_cache = false;
    config.params.num_candidates = PlanOpts().num_candidates;
    config.params.threshold_c = PlanOpts().threshold_c;
    config.params.diversify.k = 10;
    return config;
  }

  static pipeline::Testbed* testbed_;
  static std::vector<std::string>* roots_;
};

pipeline::Testbed* QueryPlanTest::testbed_ = nullptr;
std::vector<std::string>* QueryPlanTest::roots_ = nullptr;

TEST_F(QueryPlanTest, CompiledBlocksMatchLiveComputation) {
  DiversificationStore store = Build(/*with_plans=*/true);
  ASSERT_GE(store.size(), 2u);

  size_t checked = 0;
  for (const auto& [key, entry] : store.entries()) {
    const QueryPlan& plan = entry.plan;
    ASSERT_FALSE(plan.empty()) << key;
    ASSERT_TRUE(plan.SizesConsistent());
    EXPECT_TRUE(plan.CompatibleWith(PlanOpts().num_candidates,
                                    PlanOpts().threshold_c));
    const size_t n = plan.num_candidates();
    const size_t m = plan.num_specializations();
    ASSERT_EQ(m, entry.specializations.size());

    // Recompute what the serving fallback would: same retrieval, same
    // surrogates, same utility code.
    std::vector<text::TermId> terms = testbed_->analyzer().AnalyzeReadOnly(
        util::NormalizeQueryText(entry.query));
    index::ResultList rq = testbed_->searcher().SearchTerms(
        terms, PlanOpts().num_candidates);
    ASSERT_EQ(rq.size(), n);

    core::DiversificationInput input;
    double max_score = rq.front().score;
    for (const auto& hit : rq) max_score = std::max(max_score, hit.score);
    for (size_t i = 0; i < n; ++i) {
      core::Candidate c;
      c.doc = rq[i].doc;
      c.relevance = max_score > 0 ? rq[i].score / max_score : 0.0;
      c.vector = testbed_->snippets().ExtractVector(
          testbed_->corpus().store.Get(rq[i].doc), terms);
      EXPECT_EQ(plan.docs[i], c.doc);
      EXPECT_EQ(plan.relevance[i], c.relevance);
      input.candidates.push_back(std::move(c));
    }
    input.specializations = DiversificationStore::ToProfiles(entry);

    core::UtilityMatrix matrix =
        core::UtilityComputer(
            core::UtilityComputer::Options{PlanOpts().threshold_c})
            .Compute(input);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < m; ++j) {
        ASSERT_EQ(plan.utilities[i * m + j], matrix.At(i, j));
      }
      EXPECT_EQ(plan.weighted[i],
                matrix.WeightedRowSum(i, plan.probability.data()));
    }
    // spec_order: probability descending, ties by index ascending.
    for (size_t j = 0; j + 1 < m; ++j) {
      double pa = plan.probability[plan.spec_order[j]];
      double pb = plan.probability[plan.spec_order[j + 1]];
      EXPECT_TRUE(pa > pb ||
                  (pa == pb && plan.spec_order[j] < plan.spec_order[j + 1]));
    }
    ++checked;
    if (checked >= 3) break;  // three entries are plenty
  }
  EXPECT_GE(checked, 2u);
}

TEST_F(QueryPlanTest, PlanServedRankingsBitIdenticalToColdPath) {
  DiversificationStore cold_store = Build(/*with_plans=*/false);
  DiversificationStore plan_store = Build(/*with_plans=*/true);
  serving::ServingNode cold(&cold_store, testbed_, NodeConfig());
  serving::ServingNode fast(&plan_store, testbed_, NodeConfig());

  for (const auto& [key, entry] : plan_store.entries()) {
    serving::ServeResult a = cold.Serve(key);
    serving::ServeResult b = fast.Serve(key);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_TRUE(a.diversified);
    EXPECT_FALSE(a.plan_served);
    EXPECT_TRUE(b.plan_served) << key;
    EXPECT_EQ(a.ranking, b.ranking) << key;
  }
  EXPECT_EQ(fast.Stats().plan_served, plan_store.size());
  EXPECT_EQ(cold.Stats().plan_served, 0u);
}

TEST_F(QueryPlanTest, ParamsMismatchFallsBackToColdComputation) {
  DiversificationStore plan_store = Build(/*with_plans=*/true);
  serving::ServingConfig config = NodeConfig();
  config.params.num_candidates = PlanOpts().num_candidates / 2;
  serving::ServingNode node(&plan_store, testbed_, config);

  const std::string& key = plan_store.entries().begin()->first;
  serving::ServeResult r = node.Serve(key);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.diversified);
  EXPECT_FALSE(r.plan_served) << "incompatible plan must be ignored";
}

TEST_F(QueryPlanTest, SaveLoadRoundTripsPlansBitwise) {
  DiversificationStore store = Build(/*with_plans=*/true);
  store.set_version(7);
  std::string path = ::testing::TempDir() + "/store_v3_roundtrip.bin";
  ASSERT_TRUE(store.Save(path).ok());

  auto loaded = DiversificationStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().version(), 7u);
  EXPECT_EQ(loaded.value().size(), store.size());
  for (const auto& [key, entry] : store.entries()) {
    const StoredEntry* round = loaded.value().Find(key);
    ASSERT_NE(round, nullptr);
    EXPECT_EQ(round->plan.num_candidates_requested,
              entry.plan.num_candidates_requested);
    EXPECT_EQ(round->plan.threshold_c, entry.plan.threshold_c);
    EXPECT_EQ(round->plan.docs, entry.plan.docs);
    EXPECT_EQ(round->plan.relevance, entry.plan.relevance);
    EXPECT_EQ(round->plan.probability, entry.plan.probability);
    EXPECT_EQ(round->plan.spec_order, entry.plan.spec_order);
    EXPECT_EQ(round->plan.utilities, entry.plan.utilities);
    EXPECT_EQ(round->plan.weighted, entry.plan.weighted);
  }
  std::remove(path.c_str());
}

// v1/v2-format *bytes* are covered by the checked-in golden fixtures in
// tests/store_backcompat_test.cc (tests/data/store_v*.bin), which froze
// and replaced the hand-crafted in-test byte writer that lived here.

TEST_F(QueryPlanTest, CompilePlansUpgradesPlanLessStoreOnLoad) {
  // A plan-less store (what loading a v2 file yields) round-tripped
  // through disk, then upgraded in place with CompilePlans — the
  // v2 → v3 migration a serving node runs at startup.
  DiversificationStore v2_content = Build(/*with_plans=*/false);
  std::string path = ::testing::TempDir() + "/store_v2_content.bin";
  ASSERT_TRUE(v2_content.Save(path).ok());
  auto loaded = DiversificationStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  DiversificationStore upgraded = std::move(loaded).value();
  for (const auto& [key, entry] : upgraded.entries()) {
    ASSERT_TRUE(entry.plan.empty());
  }

  size_t compiled = CompilePlans(
      &upgraded, testbed_->searcher(), testbed_->snippets(),
      testbed_->analyzer(), testbed_->corpus().store, PlanOpts());
  EXPECT_EQ(compiled, upgraded.size());
  for (const auto& [key, entry] : upgraded.entries()) {
    EXPECT_FALSE(entry.plan.empty()) << key;
  }
  // Idempotent: compatible plans are not recompiled.
  EXPECT_EQ(CompilePlans(&upgraded, testbed_->searcher(),
                         testbed_->snippets(), testbed_->analyzer(),
                         testbed_->corpus().store, PlanOpts()),
            0u);

  // The upgraded store serves bit-identically to a natively compiled one.
  DiversificationStore native = Build(/*with_plans=*/true);
  serving::ServingNode a(&upgraded, testbed_, NodeConfig());
  serving::ServingNode b(&native, testbed_, NodeConfig());
  for (const auto& [key, entry] : native.entries()) {
    serving::ServeResult ra = a.Serve(key);
    serving::ServeResult rb = b.Serve(key);
    EXPECT_TRUE(ra.plan_served);
    EXPECT_TRUE(rb.plan_served);
    EXPECT_EQ(ra.ranking, rb.ranking) << key;
  }
  std::remove(path.c_str());
}

TEST_F(QueryPlanTest, PutDropsPlanThatDisagreesWithMinedContent) {
  DiversificationStore store = Build(/*with_plans=*/true);
  const std::string& key = store.entries().begin()->first;
  StoredEntry tampered = *store.Find(key);
  ASSERT_FALSE(tampered.plan.empty());

  // Perturb the mined distribution without recompiling — the stale plan
  // must be dropped, not served.
  tampered.specializations[0].probability *= 0.5;
  ASSERT_TRUE(store.Put(tampered).ok());
  EXPECT_TRUE(store.Find(key)->plan.empty());

  // A plan whose spec_order is not a permutation of [0, m) — e.g. an
  // out-of-range index from a corrupted-but-checksummed file — is
  // dropped too (it would index probability/utilities out of bounds).
  StoredEntry bad_order = *store.Find(key);
  ASSERT_TRUE(bad_order.plan.empty());  // dropped above; rebuild it
  bad_order = *Build(/*with_plans=*/true).Find(key);
  bad_order.plan.spec_order[0] = 0xFFFFFFFFu;
  ASSERT_TRUE(store.Put(bad_order).ok());
  EXPECT_TRUE(store.Find(key)->plan.empty());

  // An untampered re-Put keeps its plan.
  DiversificationStore fresh = Build(/*with_plans=*/true);
  StoredEntry intact = *fresh.Find(key);
  ASSERT_TRUE(fresh.Put(intact).ok());
  EXPECT_FALSE(fresh.Find(key)->plan.empty());
}

TEST_F(QueryPlanTest, DeltaBuildsPreservePlansAndRecompileOnlyDirty) {
  DiversificationStore base_store = Build(/*with_plans=*/true);
  ASSERT_GE(base_store.size(), 2u);
  std::shared_ptr<const StoreSnapshot> base =
      StoreSnapshot::Own(std::move(base_store));

  // Re-mine exactly one stored query. MineDelta compiles plans for its
  // upserts; every other entry must ride through BuildSnapshot with its
  // original plan bit-intact.
  const std::string dirty = base->store().entries().begin()->second.query;
  StoreBuilderOptions options;
  options.compile_plans = true;
  options.plan = PlanOpts();
  StoreDelta delta = MineDelta(
      testbed_->detector(), testbed_->searcher(), testbed_->snippets(),
      testbed_->analyzer(), testbed_->corpus().store, {dirty}, options,
      base->store());
  for (const StoredEntry& upsert : delta.upserts) {
    EXPECT_FALSE(upsert.plan.empty()) << upsert.query;
  }

  SnapshotBuildResult built = BuildSnapshot(base.get(), delta);
  for (const auto& [key, entry] : built.snapshot->store().entries()) {
    const StoredEntry* before = base->store().Find(key);
    ASSERT_NE(before, nullptr);
    EXPECT_FALSE(entry.plan.empty()) << key;
    if (entry.query == dirty) continue;
    // Unchanged entries keep the identical compiled blocks.
    EXPECT_EQ(entry.plan.utilities, before->plan.utilities) << key;
    EXPECT_EQ(entry.plan.weighted, before->plan.weighted) << key;
  }
}

}  // namespace
}  // namespace store
}  // namespace optselect
