// Tests for the paper's Section 6 future-work features implemented as
// extensions: click-weighted popularity (ii), personalized detection (i),
// parallel OptSelect (iii), and the Section 4.1 footprint estimate.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/footprint.h"
#include "core/optselect.h"
#include "core/parallel_optselect.h"
#include "querylog/popularity.h"
#include "querylog/session_segmenter.h"
#include "recommend/personalized_detector.h"
#include "recommend/shortcuts_recommender.h"
#include "util/rng.h"

namespace optselect {
namespace {

querylog::QueryRecord Rec(const std::string& q, querylog::UserId u,
                          int64_t ts, size_t clicks = 0) {
  querylog::QueryRecord r;
  r.query = q;
  r.user = u;
  r.timestamp = ts;
  for (size_t i = 0; i < clicks; ++i) {
    r.results.push_back(static_cast<querylog::DocUrlId>(i));
    r.clicks.push_back(static_cast<querylog::DocUrlId>(i));
  }
  return r;
}

// -------------------------------------------- Click-weighted popularity

TEST(ClickWeightTest, ZeroWeightMatchesPlainCounts) {
  querylog::QueryLog log;
  log.Add(Rec("a", 1, 1, 3));
  log.Add(Rec("a", 2, 2, 0));
  querylog::PopularityMap plain(log);
  querylog::PopularityMap weighted(log, 0.0);
  EXPECT_EQ(plain.Frequency("a"), 2u);
  EXPECT_EQ(weighted.Frequency("a"), 2u);
}

TEST(ClickWeightTest, ClicksAddMass) {
  querylog::QueryLog log;
  log.Add(Rec("clicked", 1, 1, 4));   // 1 + 0.5·4 = 3
  log.Add(Rec("plain", 1, 2, 0));     // 1
  querylog::PopularityMap pop(log, 0.5);
  EXPECT_EQ(pop.Frequency("clicked"), 3u);
  EXPECT_EQ(pop.Frequency("plain"), 1u);
}

TEST(ClickWeightTest, ChangesDetectorProbabilities) {
  // Two specializations with equal submission counts; one gets clicks.
  querylog::QueryLog log;
  int64_t ts = 0;
  for (int i = 0; i < 6; ++i) {
    querylog::UserId u = static_cast<querylog::UserId>(i + 1);
    log.Add(Rec("root", u, ts));
    log.Add(Rec(i % 2 == 0 ? "root left" : "root right", u, ts + 30,
                i % 2 == 0 ? 5 : 0));
    ts += 10000;
  }
  auto sessions = querylog::SessionSegmenter().Segment(log, nullptr);

  recommend::ShortcutsRecommender::Options opt;
  opt.click_weight = 1.0;
  recommend::ShortcutsRecommender rec(opt);
  rec.Train(log, sessions);
  recommend::AmbiguityDetector detector(&rec);
  recommend::SpecializationSet set = detector.Detect("root");
  ASSERT_TRUE(set.ambiguous());
  // The clicked specialization must carry more probability mass.
  ASSERT_EQ(set.items[0].query, "root left");
  EXPECT_GT(set.items[0].probability, set.items[1].probability);
}

// ------------------------------------------------ Personalized detection

class PersonalizedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    int64_t ts = 0;
    // Global traffic: "tank" twice as popular as "pictures" (8 vs 4),
    // and user 42's own history (3 more "pictures") keeps tank dominant
    // globally: f(tank) = 8 > f(pictures) = 7.
    for (int i = 0; i < 12; ++i) {
      querylog::UserId u = static_cast<querylog::UserId>(i + 1);
      log_.Add(Rec("leopard", u, ts));
      log_.Add(Rec(i % 3 == 2 ? "leopard pictures" : "leopard tank", u,
                   ts + 30));
      ts += 10000;
    }
    // User 42's own history: all about pictures.
    for (int i = 0; i < 3; ++i) {
      log_.Add(Rec("leopard pictures", 42, ts));
      ts += 10000;
    }
    sessions_ = querylog::SessionSegmenter().Segment(log_, nullptr);
    recommender_.Train(log_, sessions_);
    profiles_ = recommend::UserProfileStore(log_);
  }

  querylog::QueryLog log_;
  std::vector<querylog::Session> sessions_;
  recommend::ShortcutsRecommender recommender_;
  recommend::UserProfileStore profiles_;
};

TEST_F(PersonalizedTest, ProfileCountsPerUser) {
  EXPECT_EQ(profiles_.Frequency(42, "leopard pictures"), 3u);
  EXPECT_EQ(profiles_.Frequency(42, "leopard tank"), 0u);
  EXPECT_EQ(profiles_.Frequency(1, "leopard"), 1u);
  EXPECT_EQ(profiles_.Frequency(999, "leopard"), 0u);
}

TEST_F(PersonalizedTest, BetaZeroMatchesGlobal) {
  recommend::AmbiguityDetector base(&recommender_);
  recommend::PersonalizedDetector personalized(
      &base, &profiles_, recommend::PersonalizedDetector::Options{0.0});
  recommend::SpecializationSet global = base.Detect("leopard");
  recommend::SpecializationSet user = personalized.Detect(42, "leopard");
  ASSERT_EQ(global.size(), user.size());
  for (size_t i = 0; i < global.size(); ++i) {
    EXPECT_EQ(global.items[i].query, user.items[i].query);
    EXPECT_DOUBLE_EQ(global.items[i].probability,
                     user.items[i].probability);
  }
}

TEST_F(PersonalizedTest, HistoryBoostsUsersPreferredIntent) {
  recommend::AmbiguityDetector base(&recommender_);
  recommend::PersonalizedDetector personalized(
      &base, &profiles_, recommend::PersonalizedDetector::Options{2.0});

  recommend::SpecializationSet global = base.Detect("leopard");
  ASSERT_TRUE(global.ambiguous());
  ASSERT_EQ(global.items[0].query, "leopard tank");

  recommend::SpecializationSet user = personalized.Detect(42, "leopard");
  ASSERT_TRUE(user.ambiguous());
  double p_pictures_global = 0;
  double p_pictures_user = 0;
  for (const auto& sp : global.items) {
    if (sp.query == "leopard pictures") p_pictures_global = sp.probability;
  }
  for (const auto& sp : user.items) {
    if (sp.query == "leopard pictures") p_pictures_user = sp.probability;
  }
  EXPECT_GT(p_pictures_user, p_pictures_global);

  // Probabilities still sum to 1.
  double sum = 0;
  for (const auto& sp : user.items) sum += sp.probability;
  EXPECT_NEAR(sum, 1.0, 1e-12);

  // A user with no history sees the global distribution.
  recommend::SpecializationSet anon = personalized.Detect(777, "leopard");
  for (size_t i = 0; i < anon.size(); ++i) {
    EXPECT_NEAR(anon.items[i].probability, global.items[i].probability,
                1e-12);
  }
}

// -------------------------------------------------- Parallel OptSelect

core::UtilityMatrix RandomUtilities(util::Rng* rng,
                                    core::DiversificationInput* input,
                                    size_t n, size_t m) {
  core::UtilityMatrix u(n, m);
  double total = 0;
  std::vector<double> probs(m);
  for (double& p : probs) {
    p = rng->UniformDouble() + 0.05;
    total += p;
  }
  for (size_t j = 0; j < m; ++j) {
    core::SpecializationProfile sp;
    sp.probability = probs[j] / total;
    input->specializations.push_back(sp);
  }
  for (size_t i = 0; i < n; ++i) {
    core::Candidate c;
    c.doc = static_cast<DocId>(i);
    c.relevance = rng->UniformDouble();
    input->candidates.push_back(c);
    for (size_t j = 0; j < m; ++j) {
      if (rng->Bernoulli(0.4)) u.Set(i, j, rng->UniformDouble());
    }
  }
  return u;
}

class ParallelOptSelectTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelOptSelectTest,
                         ::testing::Values(1, 2, 4, 8));

TEST_P(ParallelOptSelectTest, BitIdenticalToSerial) {
  util::Rng rng(404 + GetParam());
  for (int round = 0; round < 6; ++round) {
    core::DiversificationInput input;
    size_t n = 2000 + rng.Uniform(6000);
    size_t m = 2 + rng.Uniform(6);
    core::UtilityMatrix u = RandomUtilities(&rng, &input, n, m);

    core::DiversifyParams params;
    params.k = 1 + rng.Uniform(200);

    core::OptSelectDiversifier serial;
    core::ParallelOptSelectDiversifier parallel(GetParam());
    EXPECT_EQ(serial.Select(input, u, params),
              parallel.Select(input, u, params))
        << "n=" << n << " m=" << m << " k=" << params.k;
  }
}

TEST(ParallelOptSelectTest2, FactoryCreatesParallelVariant) {
  auto r = core::MakeDiversifier("parallel-optselect");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->name(), "ParallelOptSelect");
}

TEST(ParallelOptSelectTest2, SmallInputFallsBackGracefully) {
  util::Rng rng(11);
  core::DiversificationInput input;
  core::UtilityMatrix u = RandomUtilities(&rng, &input, 10, 3);
  core::ParallelOptSelectDiversifier parallel(8);
  core::DiversifyParams params;
  params.k = 5;
  EXPECT_EQ(parallel.Select(input, u, params).size(), 5u);
}

// ------------------------------------------------------------ Footprint

TEST(FootprintTest, MatchesSection41Formula) {
  core::FootprintParams p;
  p.num_ambiguous_queries = 1000;
  p.max_specializations = 8;
  p.results_per_specialization = 20;
  p.surrogate_bytes = 256;
  EXPECT_EQ(core::MaxFootprintBytes(p), 1000ull * 8 * 20 * 256);
}

TEST(FootprintTest, FormatBytesUnits) {
  EXPECT_EQ(core::FormatBytes(512), "512 B");
  EXPECT_EQ(core::FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(core::FormatBytes(5ull * 1024 * 1024), "5.0 MiB");
  EXPECT_EQ(core::FormatBytes(3ull * 1024 * 1024 * 1024), "3.0 GiB");
}

TEST(FootprintTest, PaperScaleIsSmall) {
  // A million ambiguous queries, 8 specializations, 20 surrogates of
  // 200 bytes: ~30 GiB upper bound across a whole engine — or per the
  // paper's framing, trivially shardable; 100k queries fit in ~3 GiB.
  core::FootprintParams p;
  p.num_ambiguous_queries = 100000;
  p.max_specializations = 8;
  p.results_per_specialization = 20;
  p.surrogate_bytes = 200;
  EXPECT_LT(core::MaxFootprintBytes(p), 4ull * 1024 * 1024 * 1024);
}

}  // namespace
}  // namespace optselect
