// Property tests for the streaming selector (core/streaming_select.h).
//
// The oracle differential test (oracle_diff_test.cc) pins the streaming
// selection to the materialized OptSelect path bit-for-bit; this file
// checks the properties the streaming design *itself* promises:
//
//   - arrival-order invariance: the bounded heaps' retained set is a
//     pure function of the push multiset, so any permutation of the
//     candidate stream yields the same final top-k;
//   - bounded state: after every single push, the entries retained
//     across all heaps stay within the configured cap, no matter how
//     many candidates have streamed by;
//   - pruning soundness: a scan that skips CanPrune candidates selects
//     exactly what a scan that pushes everything selects;
//   - degenerate shapes: empty stream, one candidate, all-ties.

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/candidate.h"
#include "core/factory.h"
#include "core/optselect.h"
#include "core/streaming_select.h"
#include "core/utility.h"
#include "util/rng.h"

namespace optselect {
namespace core {
namespace {

/// A random problem instance in flat form (the shape the stream eats).
struct FlatInstance {
  size_t n = 0;
  size_t m = 0;
  size_t k = 0;
  double lambda = 0.15;
  std::vector<double> relevance;    // [n]
  std::vector<double> probability;  // [m]
  std::vector<double> utilities;    // [n*m] row-major
};

FlatInstance MakeFlat(util::Rng* rng, bool quantize) {
  FlatInstance fi;
  fi.n = 2 + rng->Uniform(40);
  fi.m = 2 + rng->Uniform(5);
  fi.k = 1 + rng->Uniform(fi.n);
  const double lambdas[] = {0.0, 0.15, 0.5, 1.0};
  fi.lambda = lambdas[rng->Uniform(4)];

  double norm = 0.0;
  fi.probability.resize(fi.m);
  for (size_t j = 0; j < fi.m; ++j) {
    fi.probability[j] = quantize
                            ? static_cast<double>(1 + rng->Uniform(4))
                            : rng->UniformDouble() + 0.05;
    norm += fi.probability[j];
  }
  for (double& p : fi.probability) p /= norm;

  fi.relevance.resize(fi.n);
  fi.utilities.assign(fi.n * fi.m, 0.0);
  for (size_t i = 0; i < fi.n; ++i) {
    fi.relevance[i] = quantize
                          ? static_cast<double>(rng->Uniform(9)) / 8.0
                          : rng->UniformDouble();
    for (size_t j = 0; j < fi.m; ++j) {
      if (rng->Bernoulli(0.4)) continue;
      fi.utilities[i * fi.m + j] =
          quantize ? static_cast<double>(1 + rng->Uniform(8)) / 8.0
                   : rng->UniformDouble();
    }
  }
  return fi;
}

/// Streams candidates in the order given by `arrival` (indices keep
/// their original identity — only the arrival order changes). With
/// `prune` set, CanPrune candidates are skipped like the serving scan.
std::vector<size_t> RunStream(const FlatInstance& fi,
                              const std::vector<size_t>& arrival,
                              size_t max_k, bool prune,
                              StreamingTopK* stream) {
  stream->Begin(fi.probability.data(), fi.m, max_k, fi.lambda);
  for (size_t i : arrival) {
    if (prune && stream->CanPrune(fi.relevance[i])) {
      stream->Skip();
      continue;
    }
    stream->Push(i, fi.relevance[i], fi.utilities.data() + i * fi.m);
  }
  std::vector<size_t> out;
  stream->Finalize(fi.k, &out);
  return out;
}

TEST(StreamingSelectTest, ArrivalOrderPermutationsYieldTheSameTopK) {
  util::Rng rng(7021);
  StreamingTopK stream;
  for (int trial = 0; trial < 200; ++trial) {
    FlatInstance fi = MakeFlat(&rng, trial % 2 == 1);
    SCOPED_TRACE("trial " + std::to_string(trial) +
                 " n=" + std::to_string(fi.n) +
                 " m=" + std::to_string(fi.m) +
                 " k=" + std::to_string(fi.k));

    std::vector<size_t> arrival(fi.n);
    std::iota(arrival.begin(), arrival.end(), size_t{0});
    // Reference: in-order, no pruning (pruning is order-dependent in
    // *which* candidates it skips, so the invariance property is
    // stated over the full push multiset).
    std::vector<size_t> reference =
        RunStream(fi, arrival, fi.k, /*prune=*/false, &stream);

    for (int perm = 0; perm < 5; ++perm) {
      for (size_t i = arrival.size(); i > 1; --i) {
        std::swap(arrival[i - 1], arrival[rng.Uniform(i)]);
      }
      EXPECT_EQ(RunStream(fi, arrival, fi.k, /*prune=*/false, &stream),
                reference)
          << "permutation " << perm << " changed the selection";
    }
  }
}

TEST(StreamingSelectTest, PruningNeverChangesTheSelection) {
  util::Rng rng(7022);
  StreamingTopK pruned_stream;
  StreamingTopK full_stream;
  size_t pruned_total = 0;
  for (int trial = 0; trial < 200; ++trial) {
    FlatInstance fi = MakeFlat(&rng, trial % 2 == 1);
    SCOPED_TRACE("trial " + std::to_string(trial));
    std::vector<size_t> arrival(fi.n);
    std::iota(arrival.begin(), arrival.end(), size_t{0});
    // Descending-relevance arrival (the index-scan order) makes the
    // bound bite; ascending order exercises the no-prune-yet regime.
    std::sort(arrival.begin(), arrival.end(), [&](size_t a, size_t b) {
      if (fi.relevance[a] != fi.relevance[b]) {
        return trial % 2 == 0 ? fi.relevance[a] > fi.relevance[b]
                              : fi.relevance[a] < fi.relevance[b];
      }
      return a < b;
    });
    EXPECT_EQ(RunStream(fi, arrival, fi.k, /*prune=*/true, &pruned_stream),
              RunStream(fi, arrival, fi.k, /*prune=*/false, &full_stream));
    pruned_total += pruned_stream.pruned();
    EXPECT_EQ(pruned_stream.offered(), fi.n);
    EXPECT_EQ(pruned_stream.pushed() + pruned_stream.pruned(), fi.n);
  }
  // The bound must actually fire somewhere across 200 instances, or
  // this test proves nothing about pruning.
  EXPECT_GT(pruned_total, 0u);
}

TEST(StreamingSelectTest, RetainedStateStaysWithinTheCapAfterEveryPush) {
  util::Rng rng(7023);
  StreamingTopK stream;
  for (int trial = 0; trial < 50; ++trial) {
    FlatInstance fi = MakeFlat(&rng, trial % 2 == 1);
    stream.Begin(fi.probability.data(), fi.m, fi.k, fi.lambda);
    const size_t bound = stream.retained_bound();
    // The cap is a function of k and the probabilities alone — never
    // of n, which is the whole point of bounded-state streaming.
    EXPECT_LE(bound, fi.k + fi.m * (fi.k + 1));
    for (size_t i = 0; i < fi.n; ++i) {
      stream.Push(i, fi.relevance[i], fi.utilities.data() + i * fi.m);
      ASSERT_LE(stream.retained(), bound)
          << "push " << i << " of trial " << trial
          << " overflowed the configured cap";
    }
  }
}

TEST(StreamingSelectTest, EmptyStreamSelectsNothing) {
  const double probs[] = {0.6, 0.4};
  StreamingTopK stream;
  stream.Begin(probs, 2, 10, 0.15);
  std::vector<size_t> out{99};  // must be cleared
  stream.Finalize(10, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stream.retained(), 0u);
}

TEST(StreamingSelectTest, SingleCandidateIsSelectedForAnyK) {
  const double probs[] = {0.5, 0.3, 0.2};
  const double row[] = {0.8, 0.0, 0.2};
  for (size_t k : {size_t{1}, size_t{5}, size_t{100}}) {
    StreamingTopK stream;
    stream.Begin(probs, 3, k, 0.15);
    stream.Push(0, 0.7, row);
    std::vector<size_t> out;
    stream.Finalize(k, &out);
    EXPECT_EQ(out, std::vector<size_t>{0}) << "k=" << k;
  }
}

TEST(StreamingSelectTest, AllTiesBreakByCandidateIndex) {
  // Identical relevance, identical utility rows: the selection must be
  // the k lowest indices in ascending order (the library's universal
  // tie rule), and must match the materialized path exactly.
  const size_t n = 12;
  const size_t m = 3;
  const size_t k = 5;
  FlatInstance fi;
  fi.n = n;
  fi.m = m;
  fi.k = k;
  fi.lambda = 0.15;
  fi.relevance.assign(n, 0.5);
  fi.probability = {0.5, 0.25, 0.25};
  fi.utilities.assign(n * m, 0.25);

  StreamingTopK stream;
  std::vector<size_t> arrival(n);
  std::iota(arrival.begin(), arrival.end(), size_t{0});
  std::vector<size_t> got = RunStream(fi, arrival, k, /*prune=*/true,
                                      &stream);
  EXPECT_EQ(got, (std::vector<size_t>{0, 1, 2, 3, 4}));

  // Reversed arrival: identity of the winners must not move.
  std::reverse(arrival.begin(), arrival.end());
  EXPECT_EQ(RunStream(fi, arrival, k, /*prune=*/false, &stream), got);
}

TEST(StreamingSelectTest, FactoryExposesTheStreamingBackend) {
  auto names = AvailableDiversifiers();
  EXPECT_NE(std::find(names.begin(), names.end(), "streaming"),
            names.end());
  auto made = MakeDiversifier("streaming");
  ASSERT_TRUE(made.ok());
  EXPECT_EQ(made.value()->name(), "StreamingOptSelect");
}

/// The Diversifier facade must clamp and degenerate exactly like
/// OptSelect: k = 0, k > n, zero-utility views.
TEST(StreamingSelectTest, FacadeMatchesOptSelectOnDegenerateViews) {
  OptSelectDiversifier optselect;
  StreamingDiversifier streaming;
  DiversificationInput input;
  input.query = "q";
  for (size_t j = 0; j < 2; ++j) {
    SpecializationProfile profile;
    profile.query = "s" + std::to_string(j);
    profile.probability = 0.5;
    input.specializations.push_back(std::move(profile));
  }
  for (size_t i = 0; i < 4; ++i) {
    Candidate c;
    c.doc = static_cast<DocId>(i);
    c.relevance = 0.25 * static_cast<double>(4 - i);
    input.candidates.push_back(std::move(c));
  }
  UtilityMatrix utilities(4, 2);  // all zeros

  for (size_t k : {size_t{0}, size_t{2}, size_t{4}, size_t{9}}) {
    DiversifyParams params;
    params.k = k;
    EXPECT_EQ(streaming.Select(input, utilities, params),
              optselect.Select(input, utilities, params))
        << "k=" << k;
  }
}

}  // namespace
}  // namespace core
}  // namespace optselect
